/// \file basched_lint.cpp
/// \brief Repo-invariant linter: enforces the contracts no off-the-shelf
/// checker knows about.
///
/// The engine's performance and determinism story rests on a handful of
/// whole-repo invariants that are easy to break silently — a stray
/// `std::exp` in a pricing path bypasses the fastmath counter and the warm
/// caches, a `std::random_device` breaks fixed-seed reproducibility, an
/// iteration over an unordered container feeding output breaks the
/// byte-identical `--jobs` contract. This tool walks the given roots
/// (normally `src/`) and enforces them textually, on every line, as a ctest
/// and a CI step.
///
/// Rules (ids are stable; tests pin them):
///   raw-exp         std::exp/std::pow/expf/... in core/, battery/ or
///                   baselines/ outside util/fastmath — route through
///                   util::fastmath (batch_exp, exp_one, pow_one) so the
///                   exp-counter probes and warm caches stay truthful.
///   raw-rng         rand()/srand()/std::random_device/... outside util/rng —
///                   all randomness flows through util::Rng's seeded streams.
///   raw-socket      bare `::recv`/`::send` outside serve/socket_io — all
///                   daemon socket I/O goes through the shim so BASCHED_FAULT
///                   fault injection (short writes, EINTR) covers every byte.
///   unordered-iter  iteration over a std::unordered_* container — unordered
///                   iteration order is implementation-defined and must never
///                   feed an output or reduction path (determinism contract).
///                   Keyed lookup is fine; ordered iteration wants std::map.
///   stdout-write    stdout/stderr writes (std::cout/cerr/clog, printf,
///                   fprintf(stdout|stderr), puts, putchar, perror) inside
///                   the library — the basched library must stay silent;
///                   surfaces report through return values and exceptions.
///   pragma-once     every header carries `#pragma once`.
///   include-direct  a header using a std:: symbol must include its standard
///                   header directly (self-containment; no transitive rides).
///   root-scratch    (only with --repo-root DIR) scratch files at the repo
///                   root: zero-byte files, and .json files that are not
///                   committed BENCH_*.json snapshots. Debugging leftovers
///                   (r1.json, out.json, ...) land at the root and then ride
///                   into commits silently; the snapshot naming convention is
///                   the only sanctioned root-level JSON.
///
/// Escape hatch: a comment `basched-lint: allow(<rule>) <justification>` on
/// the offending line or the line directly above suppresses that rule there.
/// The justification is mandatory (an allow without one is itself the
/// violation `allow-without-reason`), and every used suppression is counted
/// and reported in the summary.
///
/// The scanner strips comments and string literals first (rules match code,
/// not prose), so documentation may mention std::exp freely.
///
/// Exit status: 0 = clean (suppressions allowed), 1 = unsuppressed
/// violations, 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---- scanning helpers ---------------------------------------------------

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

/// One source line split into the code view (comments and literal bodies
/// blanked with spaces, so columns keep their positions) and the comment
/// text (for allow() directives).
struct Line {
  std::string code;
  std::string comment;
};

/// Splits a file into code/comment views. Handles //, /*...*/, "...", '...'
/// and R"tag(...)tag" spanning lines.
std::vector<Line> split_views(const std::string& text) {
  std::vector<Line> out;
  enum class St { Code, LineComment, BlockComment, String, Char, RawString } st = St::Code;
  std::string raw_close;  // )tag" terminator of the active raw string
  Line cur;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == St::LineComment) st = St::Code;
      out.push_back(std::move(cur));
      cur = Line{};
      continue;
    }
    switch (st) {
      case St::Code:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          st = St::LineComment;
          cur.code += "  ";
          ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          st = St::BlockComment;
          cur.code += "  ";
          ++i;
        } else if (c == 'R' && i + 1 < text.size() && text[i + 1] == '"' &&
                   !(i > 0 && ident_char(text[i - 1]))) {
          // R"tag( ... )tag"
          std::size_t open = text.find('(', i + 2);
          if (open == std::string::npos) {
            cur.code += c;  // malformed; treat literally
          } else {
            raw_close = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            st = St::RawString;
            cur.code += ' ';
            for (std::size_t k = i + 1; k <= open && k < text.size(); ++k)
              cur.code += text[k] == '\n' ? '\n' : ' ';
            i = open;
          }
        } else if (c == '"') {
          st = St::String;
          cur.code += ' ';
        } else if (c == '\'') {
          st = St::Char;
          cur.code += ' ';
        } else {
          cur.code += c;
        }
        break;
      case St::LineComment:
        cur.comment += c;
        cur.code += ' ';
        break;
      case St::BlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          st = St::Code;
          cur.code += "  ";
          ++i;
        } else {
          cur.comment += c;
          cur.code += ' ';
        }
        break;
      case St::String:
        if (c == '\\' && i + 1 < text.size()) {
          cur.code += "  ";
          ++i;
        } else {
          if (c == '"') st = St::Code;
          cur.code += ' ';
        }
        break;
      case St::Char:
        if (c == '\\' && i + 1 < text.size()) {
          cur.code += "  ";
          ++i;
        } else {
          if (c == '\'') st = St::Code;
          cur.code += ' ';
        }
        break;
      case St::RawString:
        if (c == ')' && text.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) cur.code += ' ';
          i += raw_close.size() - 1;
          st = St::Code;
        } else {
          cur.code += ' ';
        }
        break;
    }
  }
  if (!cur.code.empty() || !cur.comment.empty()) out.push_back(std::move(cur));
  return out;
}

/// Finds `token` in `code` at identifier boundaries (the char before must
/// not be an identifier char; `token` itself may end in '(' or any
/// non-identifier char, which anchors the right edge).
std::size_t find_token(const std::string& code, const std::string& token, std::size_t from = 0) {
  for (std::size_t at = code.find(token, from); at != std::string::npos;
       at = code.find(token, at + 1)) {
    if (at > 0 && ident_char(code[at - 1])) continue;
    if (ident_char(token.back())) {  // right-boundary check for bare identifiers
      const std::size_t end = at + token.size();
      if (end < code.size() && ident_char(code[end])) continue;
    }
    return at;
  }
  return std::string::npos;
}

bool path_contains(const std::string& path, const char* segment) {
  return path.find(segment) != std::string::npos;
}

// ---- findings and suppression -------------------------------------------

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct Allow {
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string reason;
  bool used = false;
};

/// Parses `basched-lint: allow(rule) reason` directives out of a comment.
void parse_allows(const std::string& comment, std::size_t line_no, std::vector<Allow>& allows,
                  const std::string& path, std::vector<Finding>& findings) {
  const std::string needle = "basched-lint:";
  std::size_t at = comment.find(needle);
  if (at == std::string::npos) return;
  std::size_t p = at + needle.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  const std::string allow_kw = "allow(";
  if (comment.compare(p, allow_kw.size(), allow_kw) != 0) {
    findings.push_back({path, line_no, "allow-without-reason",
                        "malformed basched-lint directive (expected 'allow(<rule>) <reason>')"});
    return;
  }
  p += allow_kw.size();
  const std::size_t close = comment.find(')', p);
  if (close == std::string::npos) {
    findings.push_back({path, line_no, "allow-without-reason",
                        "malformed basched-lint directive (unterminated allow)"});
    return;
  }
  Allow a;
  a.line = line_no;
  a.rule = comment.substr(p, close - p);
  std::string reason = comment.substr(close + 1);
  // Strip leading separators (dashes, em-dashes, colons) and whitespace.
  std::size_t r = 0;
  while (r < reason.size() &&
         (std::isspace(static_cast<unsigned char>(reason[r])) || reason[r] == '-' ||
          reason[r] == ':' || static_cast<unsigned char>(reason[r]) >= 0x80))
    ++r;
  reason.erase(0, r);
  while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.back())))
    reason.pop_back();
  if (reason.empty()) {
    findings.push_back({path, line_no, "allow-without-reason",
                        "allow(" + a.rule + ") needs a justification after the closing paren"});
    return;
  }
  a.reason = reason;
  allows.push_back(std::move(a));
}

// ---- rules ---------------------------------------------------------------

const char* const kExpTokens[] = {"exp(",  "expf(",  "expl(",  "exp2(",  "exp2f(",
                                  "expm1(", "pow(",  "powf(",  "powl("};

void rule_raw_exp(const std::string& path, const std::vector<Line>& lines,
                  std::vector<Finding>& out) {
  const bool restricted = path_contains(path, "/core/") || path_contains(path, "/battery/") ||
                          path_contains(path, "/baselines/");
  if (!restricted || path_contains(path, "/util/fastmath")) return;
  for (std::size_t i = 0; i < lines.size(); ++i)
    for (const char* tok : kExpTokens)
      if (find_token(lines[i].code, tok) != std::string::npos) {
        std::string name(tok);
        name.pop_back();
        out.push_back({path, i + 1, "raw-exp",
                       "raw '" + name + "' call; route exponentials through util/fastmath "
                       "(batch_exp / exp_one / pow_one) so probe counters and caches stay "
                       "truthful"});
        break;
      }
}

const char* const kRngTokens[] = {"rand(", "srand(", "rand_r(", "drand48(", "lrand48(",
                                  "random_device"};

void rule_raw_rng(const std::string& path, const std::vector<Line>& lines,
                  std::vector<Finding>& out) {
  if (path_contains(path, "/util/rng")) return;
  for (std::size_t i = 0; i < lines.size(); ++i)
    for (const char* tok : kRngTokens)
      if (find_token(lines[i].code, tok) != std::string::npos) {
        out.push_back({path, i + 1, "raw-rng",
                       "raw randomness source; all randomness flows through util::Rng "
                       "(seeded, platform-stable streams)"});
        break;
      }
}

// Bare socket syscalls bypass the serve layer's fault-injection shim
// (serve/socket_io.hpp), so a test matrix that injects short writes or EINTR
// would silently not cover them. find_token's identifier-boundary match
// keeps the shim's own wrappers (send_all(, recv_some() from tripping it.
const char* const kSocketTokens[] = {"recv(", "send("};

void rule_raw_socket(const std::string& path, const std::vector<Line>& lines,
                     std::vector<Finding>& out) {
  if (path_contains(path, "/serve/socket_io")) return;
  for (std::size_t i = 0; i < lines.size(); ++i)
    for (const char* tok : kSocketTokens)
      if (find_token(lines[i].code, tok) != std::string::npos) {
        std::string name(tok);
        name.pop_back();
        out.push_back({path, i + 1, "raw-socket",
                       "raw '" + name + "' syscall; route socket I/O through "
                       "serve/socket_io.hpp (send_all / recv_some) so fault injection "
                       "covers every byte the daemon moves"});
        break;
      }
}

void rule_unordered_iter(const std::string& path, const std::vector<Line>& lines,
                         std::vector<Finding>& out) {
  // Pass 1: names declared with a std::unordered_* type on one line. The
  // needle is a *prefix* (unordered_map/set/multimap/multiset), so only the
  // left boundary is checked.
  const auto find_prefix = [](const std::string& code, std::size_t from) {
    const std::string needle = "std::unordered_";
    for (std::size_t at = code.find(needle, from); at != std::string::npos;
         at = code.find(needle, at + 1))
      if (at == 0 || !ident_char(code[at - 1])) return at;
    return std::string::npos;
  };
  std::set<std::string> names;
  for (const Line& l : lines) {
    const std::string& c = l.code;
    for (std::size_t at = find_prefix(c, 0); at != std::string::npos;
         at = find_prefix(c, at + 1)) {
      const std::size_t open = c.find('<', at);
      if (open == std::string::npos) break;
      int depth = 0;
      std::size_t p = open;
      for (; p < c.size(); ++p) {
        if (c[p] == '<') ++depth;
        if (c[p] == '>' && --depth == 0) break;
      }
      if (p >= c.size()) break;  // declaration spans lines; heuristic gives up
      ++p;
      while (p < c.size() && (std::isspace(static_cast<unsigned char>(c[p])) || c[p] == '&' ||
                              c[p] == '*'))
        ++p;
      std::size_t e = p;
      while (e < c.size() && ident_char(c[e])) ++e;
      if (e > p) names.insert(c.substr(p, e - p));
    }
  }
  if (names.empty()) return;
  // Pass 2: range-for over, or .begin()/.cbegin() on, a tracked name.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].code;
    for (const std::string& name : names) {
      bool hit = false;
      const std::size_t colon = c.find(" : " + name);
      if (colon != std::string::npos && c.find("for") != std::string::npos) {
        const std::size_t end = colon + 3 + name.size();
        if (end >= c.size() || !ident_char(c[end])) hit = true;
      }
      if (!hit && (find_token(c, name + ".begin(") != std::string::npos ||
                   find_token(c, name + ".cbegin(") != std::string::npos))
        hit = true;
      if (hit) {
        out.push_back({path, i + 1, "unordered-iter",
                       "iteration over std::unordered_* container '" + name +
                           "': order is implementation-defined and breaks the deterministic "
                           "output contract; use std::map/std::set or sort first"});
        break;
      }
    }
  }
}

void rule_stdout_write(const std::string& path, const std::vector<Line>& lines,
                       std::vector<Finding>& out) {
  static const char* const simple[] = {"std::cout", "std::cerr", "std::clog", "printf(",
                                       "puts(",     "putchar(",  "perror("};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].code;
    bool flagged = false;
    for (const char* tok : simple)
      if (find_token(c, tok) != std::string::npos) {
        out.push_back({path, i + 1, "stdout-write",
                       "stdout/stderr write inside the basched library; the library stays "
                       "silent — report through return values, exceptions, or the caller's "
                       "streams"});
        flagged = true;
        break;
      }
    if (flagged) continue;
    // fprintf counts only when aimed at stdout/stderr.
    const std::size_t at = find_token(c, "fprintf(");
    if (at != std::string::npos) {
      std::size_t p = at + std::strlen("fprintf(");
      while (p < c.size() && std::isspace(static_cast<unsigned char>(c[p]))) ++p;
      if (c.compare(p, 6, "stdout") == 0 || c.compare(p, 6, "stderr") == 0)
        out.push_back({path, i + 1, "stdout-write",
                       "fprintf to stdout/stderr inside the basched library; the library "
                       "stays silent"});
    }
  }
}

bool is_header(const std::string& path) {
  return path.size() > 4 && (path.compare(path.size() - 4, 4, ".hpp") == 0 ||
                             (path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0));
}

void rule_pragma_once(const std::string& path, const std::vector<Line>& lines,
                      std::vector<Finding>& out) {
  if (!is_header(path)) return;
  for (const Line& l : lines)
    if (l.code.find("#pragma once") != std::string::npos) return;
  out.push_back({path, 1, "pragma-once", "header is missing '#pragma once'"});
}

/// symbol (searched as `std::<symbol>`) -> standard headers satisfying it.
struct StdSymbol {
  const char* symbol;
  const char* headers[3];  // nullptr-terminated alternatives
};

const StdSymbol kStdSymbols[] = {
    {"string_view", {"string_view", nullptr}},
    {"string", {"string", nullptr}},
    {"vector", {"vector", nullptr}},
    {"span", {"span", nullptr}},
    {"array", {"array", nullptr}},
    {"deque", {"deque", nullptr}},
    {"map", {"map", nullptr}},
    {"multimap", {"map", nullptr}},
    {"set", {"set", nullptr}},
    {"multiset", {"set", nullptr}},
    {"unordered_map", {"unordered_map", nullptr}},
    {"unordered_set", {"unordered_set", nullptr}},
    {"pair", {"utility", nullptr}},
    {"move", {"utility", nullptr}},
    {"forward", {"utility", nullptr}},
    {"swap", {"utility", nullptr}},
    {"exchange", {"utility", nullptr}},
    {"tuple", {"tuple", nullptr}},
    {"optional", {"optional", nullptr}},
    {"nullopt", {"optional", nullptr}},
    {"variant", {"variant", nullptr}},
    {"function", {"functional", nullptr}},
    {"shared_ptr", {"memory", nullptr}},
    {"unique_ptr", {"memory", nullptr}},
    {"weak_ptr", {"memory", nullptr}},
    {"make_shared", {"memory", nullptr}},
    {"make_unique", {"memory", nullptr}},
    {"atomic", {"atomic", nullptr}},
    {"mutex", {"mutex", nullptr}},
    {"lock_guard", {"mutex", nullptr}},
    {"unique_lock", {"mutex", nullptr}},
    {"scoped_lock", {"mutex", nullptr}},
    {"condition_variable", {"condition_variable", nullptr}},
    {"condition_variable_any", {"condition_variable", nullptr}},
    {"thread", {"thread", nullptr}},
    {"numeric_limits", {"limits", nullptr}},
    {"initializer_list", {"initializer_list", nullptr}},
    {"ostream", {"ostream", "iosfwd", nullptr}},
    {"istream", {"istream", "iosfwd", nullptr}},
    {"exception_ptr", {"exception", nullptr}},
    {"exception", {"exception", "stdexcept", nullptr}},
    {"current_exception", {"exception", nullptr}},
    {"runtime_error", {"stdexcept", nullptr}},
    {"logic_error", {"stdexcept", nullptr}},
    {"invalid_argument", {"stdexcept", nullptr}},
    {"out_of_range", {"stdexcept", nullptr}},
    {"size_t", {"cstddef", nullptr}},
    {"ptrdiff_t", {"cstddef", nullptr}},
    {"uint8_t", {"cstdint", nullptr}},
    {"uint16_t", {"cstdint", nullptr}},
    {"uint32_t", {"cstdint", nullptr}},
    {"uint64_t", {"cstdint", nullptr}},
    {"int8_t", {"cstdint", nullptr}},
    {"int16_t", {"cstdint", nullptr}},
    {"int32_t", {"cstdint", nullptr}},
    {"int64_t", {"cstdint", nullptr}},
    {"chrono", {"chrono", nullptr}},
    {"isnan", {"cmath", nullptr}},
    {"isfinite", {"cmath", nullptr}},
    {"sqrt", {"cmath", nullptr}},
};

void rule_include_direct(const std::string& path, const std::vector<Line>& lines,
                         std::vector<Finding>& out) {
  if (!is_header(path)) return;
  std::set<std::string> includes;
  for (const Line& l : lines) {
    const std::size_t at = l.code.find("#include");
    if (at == std::string::npos) continue;
    const std::size_t open = l.code.find('<', at);
    const std::size_t close = l.code.find('>', open);
    if (open != std::string::npos && close != std::string::npos)
      includes.insert(l.code.substr(open + 1, close - open - 1));
  }
  std::set<std::string> reported;  // one finding per (symbol) per file
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].code;
    if (c.find("std::") == std::string::npos) continue;
    for (const StdSymbol& s : kStdSymbols) {
      if (reported.count(s.symbol) != 0) continue;
      if (find_token(c, std::string("std::") + s.symbol) == std::string::npos) continue;
      bool satisfied = false;
      for (const char* const* h = s.headers; *h != nullptr; ++h)
        satisfied = satisfied || includes.count(*h) != 0;
      if (!satisfied) {
        reported.insert(s.symbol);
        out.push_back({path, i + 1, "include-direct",
                       "header uses std::" + std::string(s.symbol) + " but does not include <" +
                           s.headers[0] + "> directly (self-containment)"});
      }
    }
  }
}

// ---- driver --------------------------------------------------------------

struct Report {
  std::vector<Finding> violations;
  std::vector<std::pair<Finding, std::string>> suppressed;  // finding + reason
  std::size_t files = 0;
};

bool lint_file(const std::string& path, Report& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "basched_lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<Line> lines = split_views(buf.str());

  std::vector<Finding> findings;
  std::vector<Allow> allows;
  for (std::size_t i = 0; i < lines.size(); ++i)
    parse_allows(lines[i].comment, i + 1, allows, path, findings);

  rule_raw_exp(path, lines, findings);
  rule_raw_rng(path, lines, findings);
  rule_raw_socket(path, lines, findings);
  rule_unordered_iter(path, lines, findings);
  rule_stdout_write(path, lines, findings);
  rule_pragma_once(path, lines, findings);
  rule_include_direct(path, lines, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });

  for (Finding& f : findings) {
    bool was_suppressed = false;
    // An allow on the finding's line or the line directly above suppresses
    // it. allow-without-reason is never suppressible.
    if (f.rule != "allow-without-reason") {
      for (Allow& a : allows)
        if (a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line)) {
          a.used = true;
          was_suppressed = true;
          report.suppressed.push_back({std::move(f), a.reason});
          break;
        }
    }
    if (!was_suppressed) report.violations.push_back(std::move(f));
  }
  ++report.files;
  return true;
}

bool wanted_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// root-scratch: immediate children of the repo root only (no recursion —
/// build trees and source dirs have their own conventions). Directories are
/// never flagged.
void lint_repo_root(const std::string& root, Report& report) {
  std::error_code ec;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(root, ec))
    if (entry.is_regular_file()) entries.push_back(entry.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    const std::string name = p.filename().string();
    if (!name.empty() && name.front() == '.') continue;  // dotfiles are config
    std::error_code size_ec;
    const auto size = fs::file_size(p, size_ec);
    if (!size_ec && size == 0) {
      report.violations.push_back(
          {p.string(), 1, "root-scratch",
           "zero-byte file at the repo root — debugging leftover? delete it or move it "
           "where it belongs"});
      continue;
    }
    if (p.extension() == ".json" && name.compare(0, 6, "BENCH_") != 0) {
      report.violations.push_back(
          {p.string(), 1, "root-scratch",
           "root-level JSON that is not a committed BENCH_*.json snapshot — scratch "
           "output? delete it or write it under /tmp"});
    }
  }
  ++report.files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: basched_lint [--repo-root DIR] <dir-or-file>...\n");
    return 2;
  }
  std::vector<std::string> files;
  std::vector<std::string> repo_roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repo-root") == 0 && i + 1 < argc) {
      std::error_code root_ec;
      if (!fs::is_directory(argv[i + 1], root_ec)) {
        std::fprintf(stderr, "basched_lint: --repo-root: no such directory: %s\n", argv[i + 1]);
        return 2;
      }
      repo_roots.emplace_back(argv[++i]);
      continue;
    }
    std::error_code ec;
    const fs::path root(argv[i]);
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root.string());
    } else if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec))
        if (entry.is_regular_file() && wanted_file(entry.path()))
          files.push_back(entry.path().string());
      if (ec) {
        std::fprintf(stderr, "basched_lint: error walking %s: %s\n", argv[i],
                     ec.message().c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "basched_lint: no such file or directory: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Report report;
  for (const std::string& f : files)
    if (!lint_file(f, report)) return 2;
  for (const std::string& root : repo_roots) lint_repo_root(root, report);

  for (const auto& [f, reason] : report.suppressed)
    std::printf("%s:%zu: allowed: %s (%s)\n", f.path.c_str(), f.line, f.rule.c_str(),
                reason.c_str());
  for (const Finding& f : report.violations)
    std::printf("%s:%zu: %s: %s\n", f.path.c_str(), f.line, f.rule.c_str(), f.message.c_str());

  std::printf("basched_lint: %zu file(s), %zu violation(s), %zu allowed suppression(s)\n",
              report.files, report.violations.size(), report.suppressed.size());
  return report.violations.empty() ? 0 : 1;
}
