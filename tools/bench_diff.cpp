/// \file bench_diff.cpp
/// \brief Compare a fresh BENCH_search.json against the committed snapshot.
///
/// CI regenerates the search-engine bench per push and needs a trend gate
/// that survives machine-to-machine throughput differences: absolute
/// evals/sec vary wildly across runners, but the *speedup* columns
/// (delta vs full on the same machine, same run) are ratios and transfer.
/// bench_diff therefore:
///
///  * matches rows of the two files by (mode, n),
///  * prints a per-mode ratio table (fresh speedup / committed speedup,
///    plus the absolute throughput ratio for context),
///  * exits non-zero when any row's fresh speedup falls more than
///    --max-regression percent (default 20) below the committed one, when
///    a committed row is missing from the fresh run (silent coverage loss),
///    or when the fresh run's max_rel_err exceeds 1e-9.
///
/// The parser targets exactly the flat JSON bench/search_engine writes (one
/// result object per line); it is not a general JSON reader.
///
/// usage: bench_diff <fresh.json> <committed.json> [--max-regression PCT]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string mode;
  std::size_t n = 0;
  double full_evals_per_sec = 0.0;
  double delta_evals_per_sec = 0.0;
  double speedup = 0.0;
  double max_rel_err = 0.0;
};

struct BenchFile {
  std::string schema;
  std::string model;
  bool quick = false;
  std::vector<Row> rows;
};

/// Extracts the number following `"key": ` in `line`, if present.
std::optional<double> find_number(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return std::nullopt;
  return v;
}

/// Extracts the string following `"key": "` in `line`, if present.
std::optional<std::string> find_string(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto start = at + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(start, close - start);
}

std::optional<BenchFile> parse(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return std::nullopt;
  }
  BenchFile f;
  std::string line;
  while (std::getline(in, line)) {
    if (f.schema.empty()) {
      if (auto s = find_string(line, "schema")) f.schema = *s;
    }
    if (f.model.empty()) {
      if (auto s = find_string(line, "model")) f.model = *s;
    }
    if (line.find("\"quick\": true") != std::string::npos) f.quick = true;
    const auto mode = find_string(line, "mode");
    const auto n = find_number(line, "n");
    if (!mode || !n) continue;
    Row r;
    r.mode = *mode;
    r.n = static_cast<std::size_t>(*n);
    // Every result row must carry all four metric keys: a silent 0.0 default
    // would read as "infinitely regressed" (or worse, mask a real
    // regression), so a missing or malformed key is a hard parse error.
    const struct {
      const char* key;
      double Row::* field;
    } metrics[] = {
        {"full_evals_per_sec", &Row::full_evals_per_sec},
        {"delta_evals_per_sec", &Row::delta_evals_per_sec},
        {"speedup", &Row::speedup},
        {"max_rel_err", &Row::max_rel_err},
    };
    for (const auto& m : metrics) {
      const auto v = find_number(line, m.key);
      if (!v) {
        std::fprintf(stderr,
                     "bench_diff: %s: result row (mode=%s, n=%zu) has a missing or "
                     "malformed \"%s\" value\n",
                     path, r.mode.c_str(), r.n, m.key);
        return std::nullopt;
      }
      r.*m.field = *v;
    }
    f.rows.push_back(std::move(r));
  }
  if (f.schema.empty()) {
    std::fprintf(stderr, "bench_diff: %s: missing \"schema\" field — not a bench snapshot?\n",
                 path);
    return std::nullopt;
  }
  if (f.rows.empty()) {
    std::fprintf(stderr, "bench_diff: no result rows found in %s\n", path);
    return std::nullopt;
  }
  return f;
}

const Row* find_row(const BenchFile& f, const std::string& mode, std::size_t n) {
  for (const Row& r : f.rows)
    if (r.mode == mode && r.n == n) return &r;
  return nullptr;
}

/// Modes whose speedup is a property of the runner hardware, not of the code
/// under review: exp_batch measures the batched-vs-libm kernel (ISA level),
/// parallel_bnb/portfolio measure multicore wall-clock scaling (core count,
/// --jobs), serve_rtt measures socket round trips (scheduler/loopback
/// latency), serve_deadline measures wall-clock timeout behavior. Their
/// rows are reported for context and gated only on accuracy — which for
/// the parallel modes is the cross-job byte-determinism check, for
/// serve_rtt the byte-identity of repeated request payloads, and for
/// serve_deadline the anytime contract (every budgeted request answered
/// in time with a valid best-so-far result).
bool hardware_dependent(const std::string& mode) {
  return mode == "exp_batch" || mode == "parallel_bnb" || mode == "portfolio" ||
         mode == "serve_rtt" || mode == "serve_deadline";
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression_pct = 20.0;
  const char* fresh_path = nullptr;
  const char* committed_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression_pct = std::strtod(argv[++i], nullptr);
      if (!(max_regression_pct > 0.0) || !std::isfinite(max_regression_pct)) {
        std::fprintf(stderr, "bench_diff: --max-regression must be a positive percentage\n");
        return 2;
      }
    } else if (fresh_path == nullptr) {
      fresh_path = argv[i];
    } else if (committed_path == nullptr) {
      committed_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_diff <fresh.json> <committed.json> [--max-regression PCT]\n");
      return 2;
    }
  }
  if (fresh_path == nullptr || committed_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <fresh.json> <committed.json> [--max-regression PCT]\n");
    return 2;
  }

  const auto fresh = parse(fresh_path);
  const auto committed = parse(committed_path);
  if (!fresh || !committed) return 2;
  if (fresh->schema != committed->schema)
    std::fprintf(stderr, "bench_diff: note: schema differs (fresh '%s' vs committed '%s')\n",
                 fresh->schema.c_str(), committed->schema.c_str());
  if (fresh->model != committed->model)
    std::fprintf(stderr, "bench_diff: note: model differs (fresh '%s' vs committed '%s')\n",
                 fresh->model.c_str(), committed->model.c_str());
  if (fresh->quick != committed->quick)
    std::fprintf(stderr,
                 "bench_diff: note: timing budgets differ (fresh %s vs committed %s) — "
                 "ratios carry extra noise; widen --max-regression accordingly\n",
                 fresh->quick ? "quick" : "full", committed->quick ? "quick" : "full");

  const double floor = 1.0 - max_regression_pct / 100.0;
  bool failed = false;

  std::printf("%-17s %5s  %9s %9s %7s   %9s %7s\n", "mode", "n", "spd.base", "spd.fresh",
              "ratio", "thr.ratio", "status");
  for (const Row& base : committed->rows) {
    const Row* f = find_row(*fresh, base.mode, base.n);
    if (f == nullptr) {
      std::printf("%-17s %5zu  %9.2f %9s %7s   %9s %7s\n", base.mode.c_str(), base.n,
                  base.speedup, "-", "-", "-", "MISSING");
      failed = true;
      continue;
    }
    const double ratio = base.speedup > 0.0 ? f->speedup / base.speedup : 0.0;
    const double thr_ratio = base.delta_evals_per_sec > 0.0
                                 ? f->delta_evals_per_sec / base.delta_evals_per_sec
                                 : 0.0;
    const bool gated = !hardware_dependent(base.mode);
    const bool regressed = gated && ratio < floor;
    const bool inaccurate = f->max_rel_err > 1e-9;
    failed = failed || regressed || inaccurate;
    std::printf("%-17s %5zu  %9.2f %9.2f %7.2f   %9.2f %7s\n", base.mode.c_str(), base.n,
                base.speedup, f->speedup, ratio, thr_ratio,
                inaccurate ? "ERR" : (regressed ? "REGR" : (gated ? "ok" : "info")));
  }
  for (const Row& f : fresh->rows) {
    if (find_row(*committed, f.mode, f.n) == nullptr)
      std::printf("%-17s %5zu  %9s %9.2f %7s   %9s %7s\n", f.mode.c_str(), f.n, "-", f.speedup,
                  "-", "-", "new");
  }

  if (failed) {
    std::fprintf(stderr,
                 "bench_diff: FAIL — speedup regression > %.0f%%, missing row, or "
                 "max_rel_err > 1e-9 (see table)\n",
                 max_regression_pct);
    return 1;
  }
  std::printf("bench_diff: ok (no speedup regression > %.0f%%, accuracy within 1e-9)\n",
              max_regression_pct);
  return 0;
}
