/// \file baschedule.cpp
/// \brief Command-line front end for the basched library.
///
/// Commands:
///   baschedule generate --family chain|forkjoin|layered|sp|independent
///                       --tasks N [--points M] [--seed S] [--out FILE]
///   baschedule schedule --graph FILE --deadline D [--beta B]
///                       [--algorithm ours|rvdp|chowdhury|annealing|random|bnb]
///                       [--seed S] [--jobs N] [--restarts K]
///                       [--frontier-depth D] [--timeout-ms T]
///                       [--out FILE] [--csv FILE]
///   baschedule evaluate --graph FILE --schedule FILE [--beta B] [--alpha A]
///   baschedule sweep    --graph FILE --from A --to B [--steps N] [--beta B]
///                       [--jobs N] [--timeout-ms T] [--out FILE]
///   baschedule suite    [--seed S] [--per-family K] [--tightness T]
///                       [--beta B] [--jobs N]
///   baschedule dot      --graph FILE
///   baschedule serve    [--socket PATH] [--port N] [--max-inflight K]
///                       [--jobs N] [--catalog-capacity K] [--timeout-ms T]
///                       [--drain-timeout MS] [--retry-after-ms MS]
///
/// `--jobs N` runs sweep/suite work items on N threads (default: hardware
/// concurrency; `--jobs 1` is serial and byte-identical to any other N).
/// For `schedule` it parallelizes the search itself (default 1, 0 = hardware
/// concurrency): `bnb` splits the order tree across workers, and
/// `annealing`/`random` with `--restarts K` run a K-seed portfolio — in
/// every case the result is byte-identical for any job count.
/// `--timeout-ms T` (0 = off, the default) bounds the wall-clock of the
/// search: the anytime algorithms (annealing/random/bnb) return their best
/// incumbent when the budget expires; a sweep is all-or-nothing and aborts.
/// Graphs use the text format of basched/graph/io.hpp; schedules the format
/// of basched/core/schedule_io.hpp. `--out -` (default) writes to stdout.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "basched/analysis/executor.hpp"
#include "basched/analysis/suite.hpp"
#include "basched/analysis/sweeps.hpp"
#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/parallel.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/lifetime.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_io.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/server.hpp"
#include "basched/serve/service.hpp"
#include "basched/util/args.hpp"
#include "basched/util/stop.hpp"

namespace {

using namespace basched;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fputs(content.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot write '" + path + "'");
  out << content;
}

int cmd_generate(const util::Args& args) {
  const std::string family = args.get_string("family");
  const auto n = static_cast<std::size_t>(args.get_uint("tasks"));
  graph::DesignPointSynthesis synth;
  synth.num_points = static_cast<std::size_t>(args.get_uint("points", 4));
  util::Rng rng(args.get_uint("seed", 1));

  graph::TaskGraph g;
  if (family == "chain") {
    g = graph::make_chain(n, synth, rng);
  } else if (family == "forkjoin") {
    g = graph::make_fork_join(std::max<std::size_t>(1, n / 4), 3, synth, rng);
  } else if (family == "layered") {
    g = graph::make_layered_random(std::max<std::size_t>(1, n / 3), 3, 0.3, synth, rng);
  } else if (family == "sp") {
    g = graph::make_series_parallel(n, synth, rng);
  } else if (family == "independent") {
    g = graph::make_independent(n, synth, rng);
  } else {
    throw std::invalid_argument("unknown --family '" + family + "'");
  }
  write_output(args.get_string("out", "-"), graph::serialize(g));
  return 0;
}

int cmd_schedule(const util::Args& args) {
  const auto g = graph::parse(read_file(args.get_string("graph")));
  const double deadline = args.get_double("deadline");
  const battery::RakhmatovVrudhulaModel model(args.get_double("beta", 0.273));
  const std::string algorithm = args.get_string("algorithm", "ours");
  const auto seed = args.get_uint("seed", 1);
  // Parallel search knobs: --jobs N workers (default 1 = serial; 0 =
  // hardware concurrency), --restarts K portfolio restarts for the
  // stochastic baselines. Results are byte-identical for any --jobs.
  const auto jobs = static_cast<unsigned>(args.get_uint("jobs", 1));
  const auto restarts = static_cast<std::size_t>(args.get_uint("restarts", 1));
  if (restarts < 1) throw std::invalid_argument("--restarts must be >= 1");
  // Anytime budget: 0 (the default) disables the clock entirely, so a run
  // without --timeout-ms is byte-identical to builds without the option.
  const util::Deadline time_budget = util::Deadline::after_ms(args.get_uint("timeout-ms", 0));

  core::Schedule schedule;
  double sigma = 0.0;
  bool feasible = false;
  std::string error = "unknown algorithm '" + algorithm + "'";
  if (algorithm == "ours") {
    const auto r = core::schedule_battery_aware(g, deadline, model);
    feasible = r.feasible;
    schedule = r.schedule;
    sigma = r.sigma;
    error = r.error;
  } else {
    baselines::ScheduleResult r;
    if (algorithm == "rvdp") {
      r = baselines::schedule_rv_dp(g, deadline, model);
    } else if (algorithm == "chowdhury") {
      r = baselines::schedule_chowdhury(g, deadline, model);
    } else if (algorithm == "annealing") {
      baselines::AnnealingOptions opts;
      opts.seed = seed;
      opts.time_budget = time_budget;
      if (restarts > 1) {
        // Portfolio restart k streams from derive_seed(seed, k), so the
        // result depends on --restarts and --seed but never on --jobs.
        analysis::Executor executor(jobs);
        baselines::AnnealingPortfolioOptions popts;
        popts.annealing = opts;
        popts.restarts = restarts;
        r = baselines::schedule_annealing_portfolio(g, deadline, model, executor, popts);
      } else {
        r = baselines::schedule_annealing(g, deadline, model, opts);
      }
    } else if (algorithm == "random") {
      baselines::RandomSearchOptions opts;
      opts.seed = seed;
      opts.time_budget = time_budget;
      if (restarts > 1) {
        analysis::Executor executor(jobs);
        baselines::RandomPortfolioOptions popts;
        popts.search = opts;
        popts.restarts = restarts;
        r = baselines::schedule_random_search_portfolio(g, deadline, model, executor, popts);
      } else {
        r = baselines::schedule_random_search(g, deadline, model, opts);
      }
    } else if (algorithm == "bnb") {
      if (jobs != 1) {
        analysis::Executor executor(jobs);
        baselines::ParallelBnbOptions popts;
        popts.frontier_depth =
            static_cast<std::size_t>(args.get_uint("frontier-depth", 0));
        popts.base.time_budget = time_budget;
        r = baselines::schedule_branch_and_bound_parallel(g, deadline, model, executor, popts);
      } else {
        baselines::BnbOptions opts;
        opts.time_budget = time_budget;
        r = baselines::schedule_branch_and_bound(g, deadline, model, opts);
      }
      if (r.stop_reason == util::StopReason::node_budget)
        std::fprintf(stderr,
                     "warning: node budget exceeded — result is best-found, not proven optimal\n");
    } else {
      throw std::invalid_argument(error);
    }
    if (r.stop_reason == util::StopReason::deadline)
      std::fprintf(stderr, "warning: time budget expired — result is best-so-far\n");
    feasible = r.feasible;
    schedule = r.schedule;
    sigma = r.sigma;
    error = r.error;
  }

  if (!feasible) {
    std::fprintf(stderr, "infeasible: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "sigma = %.2f mA*min, duration = %.3f min\n", sigma,
               schedule.duration(g));
  write_output(args.get_string("out", "-"), core::serialize_schedule(g, schedule));
  if (args.has("csv")) write_output(args.get_string("csv"), core::profile_csv(g, schedule));
  return 0;
}

int cmd_evaluate(const util::Args& args) {
  const auto g = graph::parse(read_file(args.get_string("graph")));
  const auto schedule = core::parse_schedule(g, read_file(args.get_string("schedule")));
  const battery::RakhmatovVrudhulaModel model(args.get_double("beta", 0.273));
  const auto profile = schedule.to_profile(g);
  std::printf("tasks        : %zu\n", schedule.sequence.size());
  std::printf("duration     : %.3f min\n", profile.end_time());
  std::printf("energy       : %.2f mA*min\n", profile.total_charge());
  std::printf("sigma (RV)   : %.2f mA*min\n", model.charge_lost(profile, profile.end_time()));
  if (args.has("alpha")) {
    const double alpha = args.get_double("alpha");
    const auto death = battery::find_lifetime(model, profile, alpha);
    if (death)
      std::printf("battery DIES : at %.3f min (capacity %.0f mA*min)\n", *death, alpha);
    else
      std::printf("battery OK   : survives the schedule (capacity %.0f mA*min)\n", alpha);
  }
  return 0;
}

int cmd_dot(const util::Args& args) {
  const auto g = graph::parse(read_file(args.get_string("graph")));
  write_output(args.get_string("out", "-"), graph::to_dot(g));
  return 0;
}

analysis::Executor make_executor(const util::Args& args) {
  return analysis::Executor(static_cast<unsigned>(args.get_uint("jobs", 0)));
}

int cmd_sweep(const util::Args& args) {
  const auto g = graph::parse(read_file(args.get_string("graph")));
  const double from = args.get_double("from");
  const double to = args.get_double("to");
  const auto steps = static_cast<int>(args.get_uint("steps", 16));
  const double beta = args.get_double("beta", 0.273);
  const auto timeout_ms = args.get_uint("timeout-ms", 0);
  analysis::Executor executor = make_executor(args);
  try {
    const auto points = analysis::deadline_sweep(g, from, to, steps, beta, executor,
                                                 util::StopToken{},
                                                 util::Deadline::after_ms(timeout_ms));
    write_output(args.get_string("out", "-"), analysis::deadline_sweep_csv(points));
  } catch (const util::DeadlineExceeded&) {
    // All-or-nothing: a partial sweep table would be misleading, so nothing
    // is written when the budget expires.
    std::fprintf(stderr, "sweep aborted: time budget (%llu ms) expired\n",
                 static_cast<unsigned long long>(timeout_ms));
    return 1;
  }
  return 0;
}

int cmd_suite(const util::Args& args) {
  const auto seed = args.get_uint("seed", 1);
  const auto per_family = static_cast<int>(args.get_uint("per-family", 3));
  const double tightness = args.get_double("tightness", 0.6);
  const double beta = args.get_double("beta", 0.273);
  analysis::Executor executor = make_executor(args);
  const auto instances = analysis::standard_suite(seed, per_family, tightness);
  const auto summary = analysis::run_suite(instances, beta, executor);
  std::fprintf(stderr, "%zu instances, %u jobs\n", instances.size(), executor.jobs());
  write_output(args.get_string("out", "-"), analysis::format_suite(summary));
  return 0;
}

// SIGTERM/SIGINT must drain the server gracefully; the handler may only do
// async-signal-safe work, which is exactly what the server's self-pipe is
// for: one write(2) wakes the accept loop.
std::atomic<int> g_drain_fd{-1};

extern "C" void handle_drain_signal(int) {
  const int fd = g_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const auto rc = ::write(fd, &byte, 1);
  }
}

int cmd_serve(const util::Args& args) {
  serve::ServerOptions opts;
  opts.unix_path = args.get_string("socket", "");
  if (args.has("port")) {
    const auto port = args.get_uint("port");
    if (port > 65535) throw std::invalid_argument("--port must be <= 65535");
    opts.tcp_port = static_cast<int>(port);
  }
  opts.max_inflight = static_cast<std::size_t>(args.get_uint("max-inflight", 8));
  opts.jobs = static_cast<unsigned>(args.get_uint("jobs", 0));
  opts.default_timeout_ms = args.get_uint("timeout-ms", 0);
  opts.drain_timeout_ms = args.get_uint("drain-timeout", 5000);
  opts.retry_after_ms = args.get_uint("retry-after-ms", 25);

  serve::Service service(static_cast<std::size_t>(args.get_uint("catalog-capacity", 16)));
  serve::Server server(service, opts);

  g_drain_fd.store(server.drain_notify_fd(), std::memory_order_relaxed);
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);

  if (!opts.unix_path.empty())
    std::fprintf(stderr, "serving on unix socket %s\n", opts.unix_path.c_str());
  if (server.tcp_port() >= 0)
    std::fprintf(stderr, "serving on 127.0.0.1:%d\n", server.tcp_port());

  server.run();

  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_drain_fd.store(-1, std::memory_order_relaxed);
  const auto stats = service.stats();
  std::fprintf(stderr, "drained: %llu requests (%llu errors)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors));
  const auto hard = server.stats();
  if (hard.disconnect_cancels > 0 || hard.drain_cancels > 0 || hard.overloaded > 0 ||
      stats.deadline_stops > 0 || stats.cancelled_stops > 0)
    std::fprintf(stderr,
                 "hardening: %llu disconnect-cancelled, %llu drain-cancelled, "
                 "%llu overloaded, %llu deadline stops, %llu cancelled stops\n",
                 static_cast<unsigned long long>(hard.disconnect_cancels),
                 static_cast<unsigned long long>(hard.drain_cancels),
                 static_cast<unsigned long long>(hard.overloaded),
                 static_cast<unsigned long long>(stats.deadline_stops),
                 static_cast<unsigned long long>(stats.cancelled_stops));
  return 0;
}

void usage() {
  std::fputs(
      "usage: baschedule <command> [options]\n"
      "  generate --family chain|forkjoin|layered|sp|independent --tasks N\n"
      "           [--points M] [--seed S] [--out FILE]\n"
      "  schedule --graph FILE --deadline D [--beta B] [--seed S]\n"
      "           [--algorithm ours|rvdp|chowdhury|annealing|random|bnb]\n"
      "           [--jobs N] [--restarts K] [--frontier-depth D]\n"
      "           [--timeout-ms T] [--out FILE] [--csv FILE]\n"
      "  evaluate --graph FILE --schedule FILE [--beta B] [--alpha A]\n"
      "  sweep    --graph FILE --from A --to B [--steps N] [--beta B]\n"
      "           [--jobs N] [--timeout-ms T] [--out FILE]\n"
      "  suite    [--seed S] [--per-family K] [--tightness T] [--beta B]\n"
      "           [--jobs N] [--out FILE]\n"
      "  dot      --graph FILE [--out FILE]\n"
      "  serve    [--socket PATH] [--port N] [--max-inflight K] [--jobs N]\n"
      "           [--catalog-capacity K] [--timeout-ms T] [--drain-timeout MS]\n"
      "           [--retry-after-ms MS]   (JSON-lines daemon; SIGTERM drains)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc - 1, argv + 1);
    int rc = 0;
    if (args.command() == "generate") {
      rc = cmd_generate(args);
    } else if (args.command() == "schedule") {
      rc = cmd_schedule(args);
    } else if (args.command() == "evaluate") {
      rc = cmd_evaluate(args);
    } else if (args.command() == "sweep") {
      rc = cmd_sweep(args);
    } else if (args.command() == "suite") {
      rc = cmd_suite(args);
    } else if (args.command() == "dot") {
      rc = cmd_dot(args);
    } else if (args.command() == "serve") {
      rc = cmd_serve(args);
    } else {
      usage();
      return 2;
    }
    if (rc == 0) {  // a failed command may bail before reading all options
      for (const auto& key : args.unused_keys())
        std::fprintf(stderr, "warning: unknown option --%s ignored\n", key.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
