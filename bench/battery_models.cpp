/// \file battery_models.cpp
/// \brief Battery-model study: (a) σ of the same G3 schedule as β varies —
/// the RV model's nonlinearity knob; (b) the four models side by side on the
/// schedules our algorithm and the naive all-fastest policy produce; (c) the
/// rate-capacity effect as a lifetime curve under constant load.
#include <cstdio>

#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/lifetime.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const auto g3 = graph::make_g3();

  // (a) β sweep on a fixed schedule.
  const battery::RakhmatovVrudhulaModel paper_model(graph::kPaperBeta);
  const auto ours = core::schedule_battery_aware(g3, graph::kG3ExampleDeadline, paper_model);
  if (!ours.feasible) {
    std::printf("G3 schedule infeasible: %s\n", ours.error.c_str());
    return 1;
  }
  const auto profile = ours.schedule.to_profile(g3);

  std::printf("== (a) RV sigma of the chosen G3 schedule vs beta ==\n");
  std::printf("(delivered charge = %.0f mA*min; sigma -> delivered as beta -> inf)\n\n",
              profile.total_charge());
  util::Table beta_table({"beta", "sigma (mA*min)", "unavailable (mA*min)"});
  for (double beta : {0.1, 0.2, 0.273, 0.4, 0.6, 1.0, 2.0, 5.0}) {
    const battery::RakhmatovVrudhulaModel m(beta);
    const double sigma = m.charge_lost_at_end(profile);
    beta_table.add_row({util::fmt_double(beta, 3), util::fmt_double(sigma, 0),
                        util::fmt_double(sigma - profile.total_charge(), 0)});
  }
  std::printf("%s\n", beta_table.str().c_str());

  // (b) Four models on two schedules.
  const core::Schedule fastest{ours.schedule.sequence, core::uniform_assignment(g3, 0)};
  const auto fast_profile = fastest.to_profile(g3);
  const battery::IdealModel ideal;
  const battery::PeukertModel peukert(1.2, 200.0);
  const battery::KibamModel kibam(0.4, 0.2, 120000.0);

  std::printf("== (b) model comparison on G3 schedules (charge lost at end, mA*min) ==\n\n");
  util::Table model_table({"model", "battery-aware schedule", "all-fastest schedule"});
  model_table.set_align(0, util::Align::Left);
  const battery::BatteryModel* models[] = {&ideal, &peukert, &paper_model, &kibam};
  for (const auto* m : models) {
    model_table.add_row({m->name(), util::fmt_double(m->charge_lost_at_end(profile), 0),
                         util::fmt_double(m->charge_lost_at_end(fast_profile), 0)});
  }
  std::printf("%s\n", model_table.str().c_str());

  // (c) Rate-capacity effect: delivered charge vs. constant discharge rate.
  std::printf("== (c) rate-capacity effect: constant-load lifetime (alpha = 40000 mA*min) ==\n\n");
  util::Table rate_table({"current (mA)", "RV lifetime (min)", "RV delivered (mA*min)",
                          "ideal lifetime (min)"});
  const double alpha = 40000.0;
  for (double current : {100.0, 200.0, 400.0, 800.0, 1600.0}) {
    const auto rv_lt = battery::constant_load_lifetime(paper_model, current, alpha);
    const auto id_lt = battery::constant_load_lifetime(ideal, current, alpha);
    rate_table.add_row({util::fmt_double(current, 0),
                        rv_lt ? util::fmt_double(*rv_lt, 1) : "-",
                        rv_lt ? util::fmt_double(current * *rv_lt, 0) : "-",
                        id_lt ? util::fmt_double(*id_lt, 1) : "-"});
  }
  std::printf("%s\n", rate_table.str().c_str());
  std::printf("Higher rates deliver visibly less total charge under RV — the effect the\n"
              "paper's scheduler exploits by running hot early and resting late.\n");
  return 0;
}
