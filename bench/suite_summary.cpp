/// \file suite_summary.cpp
/// \brief Breadth evaluation the paper lacks: a 20-instance synthetic suite
/// (chains, fork-joins, layered DAGs, series-parallel, independent sets)
/// scheduled by every practical algorithm in the repo, at two deadline
/// tightness levels, with aggregate win counts and geometric-mean σ ratios.
#include <cstdio>

#include "basched/analysis/suite.hpp"

int main() {
  using namespace basched;

  for (double tightness : {0.35, 0.7}) {
    const auto suite = analysis::standard_suite(/*seed=*/2005, /*per_family=*/4, tightness);
    const auto summary = analysis::run_suite(suite, 0.273);
    std::printf("== suite shoot-out: %zu instances, deadline tightness %.2f ==\n", suite.size(),
                tightness);
    std::printf("(tightness = position between all-fastest and all-slowest time)\n\n%s\n",
                analysis::format_suite(summary).c_str());
  }
  std::printf("Reading: 'wins' counts instances where the algorithm matched the best σ\n"
              "among the four (ties count for all); the geomean ratio is its average\n"
              "multiplicative distance from the per-instance best. Tight deadlines leave\n"
              "little selection freedom (everyone converges); loose ones reward the\n"
              "battery-aware search.\n");
  return 0;
}
