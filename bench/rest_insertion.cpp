/// \file rest_insertion.cpp
/// \brief Recovery-effect study: how much deadline slack, spent as *rest*,
/// rescues a battery too small for the back-to-back schedule?
///
/// For each paper graph we take the all-fastest schedule, shrink the battery
/// below its peak σ, and ask the greedy rest inserter to save the mission
/// within increasingly generous deadlines.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/rest_insertion.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  // Strong nonlinearity so recovery over minutes is visible.
  const battery::RakhmatovVrudhulaModel model(0.15);

  struct Inst {
    const char* name;
    graph::TaskGraph g;
  };
  Inst insts[] = {{"G2 (all-fastest)", graph::make_g2()}, {"G3 (all-fastest)", graph::make_g3()}};

  for (auto& inst : insts) {
    const core::Schedule s{graph::topological_order(inst.g),
                           core::uniform_assignment(inst.g, 0)};
    const double work = s.duration(inst.g);
    const double sigma_end = model.charge_lost_at_end(s.to_profile(inst.g));
    const double alpha = sigma_end * 0.95;  // battery dies mid-run without rest

    std::printf("== %s: work %.1f min, back-to-back sigma %.0f, battery alpha %.0f ==\n\n",
                inst.name, work, sigma_end, alpha);
    std::printf("back-to-back survives: %s\n\n",
                core::survives_without_rest(inst.g, s, model, alpha) ? "yes" : "NO");

    util::Table table({"deadline (min)", "rescued?", "total rest (min)", "completion (min)"});
    for (double factor : {1.02, 1.1, 1.3, 1.6, 2.0, 3.0}) {
      const double d = work * factor;
      const auto plan = core::insert_rest_for_survival(inst.g, s, d, model, alpha);
      table.add_row({util::fmt_double(d, 1), plan ? "yes" : "no",
                     plan ? util::fmt_double(plan->total_rest(), 2) : "-",
                     plan ? util::fmt_double(plan->completion_time, 1) : "-"});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("Reading: with enough slack the recovery effect lets an undersized battery\n"
              "finish a workload that kills it when run back-to-back — the flip side of the\n"
              "paper's observation that idle periods restore lost capacity.\n");
  return 0;
}
