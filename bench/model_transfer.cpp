/// \file model_transfer.cpp
/// \brief Cross-model robustness: the paper commits to the RV cost function;
/// how much does that choice matter? Schedule G3 with each battery model as
/// the optimization target, then evaluate every resulting schedule under
/// every model (charge lost at the end of the schedule). Small off-diagonal
/// penalties mean the schedules transfer — the heuristic's decisions are
/// driven by robust structure (low energy, non-increasing currents), not by
/// model quirks.
#include <cstdio>
#include <memory>
#include <vector>

#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const auto g3 = graph::make_g3();
  const double deadline = graph::kG3ExampleDeadline;

  // The model zoo. KiBaM capacity is set far above any schedule's needs so
  // its σ stays in the pre-death regime.
  const battery::RakhmatovVrudhulaModel rv(graph::kPaperBeta);
  const battery::IdealModel ideal;
  const battery::PeukertModel peukert(1.2, 200.0);
  const battery::KibamModel kibam(0.4, 0.2, 500000.0);
  struct Entry {
    const char* name;
    const battery::BatteryModel* model;
  };
  const std::vector<Entry> models = {
      {"RV (paper)", &rv}, {"ideal", &ideal}, {"Peukert", &peukert}, {"KiBaM", &kibam}};

  // Schedule once per optimization target.
  std::vector<core::Schedule> schedules;
  for (const auto& target : models) {
    const auto r = core::schedule_battery_aware(g3, deadline, *target.model);
    if (!r.feasible) {
      std::printf("scheduling under %s failed: %s\n", target.name, r.error.c_str());
      return 1;
    }
    schedules.push_back(r.schedule);
  }

  std::printf("== schedule transfer across battery models (G3, d = %.0f) ==\n", deadline);
  std::printf("rows: model the schedule was optimized FOR; columns: model it is evaluated\n"
              "UNDER (charge lost at schedule end, mA*min)\n\n");
  std::vector<std::string> header{"optimized for \\ evaluated under"};
  for (const auto& m : models) header.emplace_back(m.name);
  util::Table table(std::move(header));
  table.set_align(0, util::Align::Left);
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::vector<std::string> row{models[i].name};
    for (const auto& eval : models) {
      row.push_back(
          util::fmt_double(eval.model->charge_lost_at_end(schedules[i].to_profile(g3)), 0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  // Regret per evaluation model: how much worse is the best *other* model's
  // schedule than the matched one?
  util::Table regret({"evaluated under", "matched schedule", "worst transferred", "regret %"});
  regret.set_align(0, util::Align::Left);
  for (std::size_t e = 0; e < models.size(); ++e) {
    const double matched =
        models[e].model->charge_lost_at_end(schedules[e].to_profile(g3));
    double worst = matched;
    for (std::size_t i = 0; i < models.size(); ++i)
      worst = std::max(worst,
                       models[e].model->charge_lost_at_end(schedules[i].to_profile(g3)));
    regret.add_row({models[e].name, util::fmt_double(matched, 0), util::fmt_double(worst, 0),
                    util::fmt_double(100.0 * (worst - matched) / matched, 1)});
  }
  std::printf("%s\n", regret.str().c_str());
  std::printf("Reading: small regrets mean the cost-function choice is forgiving — the\n"
              "schedules share the same structure (frugal design-points, decreasing\n"
              "currents) — while large regrets would flag model-specific overfitting.\n");
  return 0;
}
