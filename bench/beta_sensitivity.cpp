/// \file beta_sensitivity.cpp
/// \brief How battery nonlinearity changes the *decisions*: re-runs the
/// whole algorithm on G3 for a range of β and reports the chosen schedule's
/// σ, plain energy, and how many tasks ended up on fast (high-power)
/// design-points. Near-ideal batteries (large β) reduce the problem to plain
/// energy minimization; strongly nonlinear ones (small β) make ordering and
/// current shaping matter.
#include <cstdio>

#include "basched/analysis/sweeps.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const auto g3 = graph::make_g3();
  const std::vector<double> betas{0.05, 0.1, 0.2, 0.273, 0.4, 0.6, 1.0, 2.0, 10.0};

  const auto points = analysis::beta_sweep(g3, graph::kG3ExampleDeadline, betas);

  std::printf("== beta sensitivity of the full algorithm (G3, d = %.0f) ==\n\n",
              graph::kG3ExampleDeadline);
  util::Table table({"beta", "sigma (mA*min)", "energy (mA*min)", "sigma/energy",
                     "tasks on fast columns"});
  for (const auto& p : points) {
    if (!p.feasible) {
      table.add_row({util::fmt_double(p.beta, 3), "infeas", "-", "-", "-"});
      continue;
    }
    table.add_row({util::fmt_double(p.beta, 3), util::fmt_double(p.sigma, 0),
                   util::fmt_double(p.energy, 0), util::fmt_double(p.sigma / p.energy, 3),
                   std::to_string(p.fast_tasks)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("sigma/energy -> 1 as beta grows (ideal battery); the unavailable-charge\n"
              "premium explodes for small beta, which is when the scheduler works hardest\n"
              "(and the paper's beta = 0.273 sits in the interesting middle).\n");
  return 0;
}
