/// \file table3_windows.cpp
/// \brief Regenerates the paper's **Table 3**: battery capacity σ (mA·min)
/// and duration Δ (min) for every design-point window in every iteration of
/// the algorithm on G3 (deadline 230 min, β = 0.273), plus the per-iteration
/// minimum.
#include <cstdio>

#include "basched/analysis/report.hpp"
#include "basched/graph/paper_graphs.hpp"

int main() {
  using namespace basched;
  const auto g3 = graph::make_g3();

  analysis::RunSpec spec;
  spec.name = "G3";
  spec.graph = &g3;
  spec.deadline = graph::kG3ExampleDeadline;
  spec.beta = graph::kPaperBeta;
  const auto result = analysis::run_ours(spec);

  std::printf("== Table 3: algorithm execution data for different iterations (G3) ==\n");
  std::printf("deadline %.0f min, beta %.3f\n\n", spec.deadline, spec.beta);
  if (!result.feasible) {
    std::printf("INFEASIBLE: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s\n", analysis::format_table3(result, g3.num_design_points()).c_str());
  std::printf("Final: min sigma = %.0f mA*min at duration %.1f min after %zu iterations.\n",
              result.sigma, result.duration, result.iterations.size());
  std::printf("Paper (for reference): per-iteration minima 16353 / 14725 / 13737 / 13737 "
              "mA*min,\n");
  std::printf("durations 228.3-229.8 min; window 1:5 wins from iteration 2 onward.\n");
  return 0;
}
