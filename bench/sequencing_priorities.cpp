/// \file sequencing_priorities.cpp
/// \brief Sequencing-priority ablation: with the design-point assignment
/// *fixed* (to our algorithm's choice), how much does the task order alone
/// move the battery cost? Compares the paper's Eq. 4 weighted sequence
/// against Eq. 5 (the [1] baseline), plain own-current, critical-path, the
/// initial decreasing-average-energy order, and the analytic lower bound.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/bounds.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  struct Inst {
    std::string name;
    graph::TaskGraph g;
    double deadline;
  };
  std::vector<Inst> insts;
  insts.push_back({"G2 d=75", graph::make_g2(), 75.0});
  insts.push_back({"G3 d=230", graph::make_g3(), 230.0});
  {
    util::Rng rng(55);
    graph::DesignPointSynthesis synth;
    synth.num_points = 4;
    auto g = graph::make_layered_random(5, 3, 0.3, synth, rng);
    const double d = g.column_time(0) + 0.6 * (g.column_time(3) - g.column_time(0));
    insts.push_back({"layered seed=55", std::move(g), d});
  }

  std::printf("== Sequencing priorities at a fixed design-point assignment ==\n");
  std::printf("(sigma in mA*min; assignment = our algorithm's; 'noninc bound' ignores\n"
              "dependencies and is unachievable in general)\n\n");

  util::Table table({"instance", "Eq.4 (ours)", "Eq.5 [1]", "own current", "critical path",
                     "dec energy", "noninc bound"});
  table.set_align(0, util::Align::Left);

  for (auto& inst : insts) {
    const auto r = core::schedule_battery_aware(inst.g, inst.deadline, model);
    if (!r.feasible) continue;
    const core::Assignment& a = r.schedule.assignment;
    auto sigma_of = [&](const std::vector<graph::TaskId>& seq) {
      return core::calculate_battery_cost_unchecked(inst.g, core::Schedule{seq, a}, model).sigma;
    };
    const auto bounds = core::sigma_bounds(inst.g, a, model);
    table.add_row({inst.name, util::fmt_double(sigma_of(core::weighted_sequence(inst.g, a)), 0),
                   util::fmt_double(sigma_of(core::greedy_max_current_sequence(inst.g, a)), 0),
                   util::fmt_double(sigma_of(core::max_current_sequence(inst.g, a)), 0),
                   util::fmt_double(sigma_of(core::critical_path_sequence(inst.g, a)), 0),
                   util::fmt_double(sigma_of(core::sequence_dec_energy(inst.g)), 0),
                   util::fmt_double(bounds.lower, 0)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Current-aware priorities (Eq.4/Eq.5/own-current) should sit close to the\n"
              "unconstrained bound; battery-blind orders (critical path) drift upward.\n");
  return 0;
}
