/// \file battery_pack.cpp
/// \brief Multi-battery study with the physics kept honest.
///
/// Two questions, two answers:
///  1. Does *parallel* current sharing extend lifetime? Yes, under
///     rate-nonlinear chemistry (Peukert p > 1): N cells at I/N each drain
///     superlinearly less than one cell at I — the classic multi-battery
///     result, quantified below as delivered charge before death.
///  2. Does *time switching* between cells beat a monolith of the same total
///     capacity? Not under σ-linear models (RV/KiBaM): σ is additive over
///     intervals, so the switched cells' σ values sum to the monolith's and
///     the worse cell always carries at least half. The table shows the
///     measured max-cell-σ / monolith-σ ratio sitting above 0.5 exactly as
///     the theory demands.
#include <cstdio>

#include "basched/battery/pack.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/util/table.hpp"

namespace {

basched::battery::DischargeProfile burst_train(int n, double current, double on, double off) {
  basched::battery::DischargeProfile p;
  for (int i = 0; i < n; ++i) {
    p.append(on, current);
    if (i + 1 < n) p.append_rest(off);
  }
  return p;
}

}  // namespace

int main() {
  using namespace basched;

  // (1) Parallel splitting under Peukert: intervals served before death, at
  // equal total capacity, for 1/2/4-cell packs.
  std::printf("== (1) parallel splitting under Peukert (p = 1.5, rated 100 mA) ==\n\n");
  const battery::PeukertModel peukert(1.5, 100.0);
  const auto heavy = burst_train(40, 800.0, 3.0, 1.0);
  const double total = 60000.0;
  util::Table split_table({"configuration", "intervals served (of 40)", "failure time (min)"});
  split_table.set_align(0, util::Align::Left);
  for (std::size_t cells : {1u, 2u, 4u}) {
    const battery::BatteryPack pack(
        peukert, std::vector<double>(cells, total / static_cast<double>(cells)));
    const auto r = pack.serve(heavy, battery::PackPolicy::SplitEvenly);
    split_table.add_row({std::to_string(cells) + " cell(s), total 60000 mA*min",
                         std::to_string(r.intervals_served),
                         r.survived ? "-" : util::fmt_double(r.failure_time, 0)});
  }
  std::printf("%s\n", split_table.str().c_str());
  std::printf("Analytic expectation: lifetime scales as N^(p-1) = sqrt(N) for p = 1.5.\n\n");

  // (2) Time switching under RV: max-cell σ vs monolith σ.
  std::printf("== (2) time switching under RV (beta = 0.2): the >= 1/2 theorem ==\n\n");
  const battery::RakhmatovVrudhulaModel rv(0.2);
  util::Table sw_table({"burst train", "monolith sigma", "max cell sigma (2-way RR)", "ratio"});
  sw_table.set_align(0, util::Align::Left);
  struct Train {
    const char* name;
    int n;
    double i, on, off;
  };
  const Train trains[] = {{"8 x 600mA x 2min, 4min gaps", 8, 600, 2, 4},
                          {"20 x 400mA x 1min, 1min gaps", 20, 400, 1, 1},
                          {"6 x 900mA x 5min, 10min gaps", 6, 900, 5, 10}};
  for (const auto& t : trains) {
    const auto load = burst_train(t.n, t.i, t.on, t.off);
    const battery::BatteryPack pack(rv, {1e9, 1e9});
    const auto r = pack.serve(load, battery::PackPolicy::RoundRobin);
    const double mono = rv.charge_lost(load, load.end_time());
    const double worst = std::max(r.cell_sigma[0], r.cell_sigma[1]);
    sw_table.add_row({t.name, util::fmt_double(mono, 0), util::fmt_double(worst, 0),
                      util::fmt_double(worst / mono, 3)});
  }
  std::printf("%s\n", sw_table.str().c_str());
  std::printf("Every ratio >= 0.5: a switched pack of half-capacity cells can never beat\n"
              "the monolith under a current-linear sigma model — the multi-battery win\n"
              "needs parallel rate sharing (above) or heterogeneous constraints.\n");
  return 0;
}
