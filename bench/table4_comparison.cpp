/// \file table4_comparison.cpp
/// \brief Regenerates the paper's **Table 4**: battery capacity used by our
/// algorithm vs. the dynamic-programming approach of Rakhmatov & Vrudhula
/// [1], on G2 (deadlines 55/75/95 min) and G3 (deadlines 100/150/230 min).
#include <cstdio>
#include <vector>

#include "basched/analysis/report.hpp"
#include "basched/graph/paper_graphs.hpp"

int main() {
  using namespace basched;

  const auto g2 = graph::make_g2();
  const auto g3 = graph::make_g3();

  std::printf("== Table 4: comparison of our algorithm with the approach in [1] ==\n");
  std::printf("beta %.3f; sigma in mA*min; %% vs [1] = 100*(ours - theirs)/theirs\n"
              "(negative = ours uses less charge; the paper itself prints\n"
              " 100*(theirs - ours)/ours, so its percentages differ in scale)\n\n",
              graph::kPaperBeta);

  std::vector<analysis::ComparisonRow> rows;
  for (const auto& r : analysis::run_comparisons(
           g2, "G2 (9 nodes, 4 DPs)",
           std::vector<double>(graph::kG2Deadlines.begin(), graph::kG2Deadlines.end()),
           graph::kPaperBeta))
    rows.push_back(r);
  for (const auto& r : analysis::run_comparisons(
           g3, "G3 (15 nodes, 5 DPs)",
           std::vector<double>(graph::kG3Deadlines.begin(), graph::kG3Deadlines.end()),
           graph::kPaperBeta))
    rows.push_back(r);

  std::printf("%s\n", analysis::format_table4(rows).c_str());
  std::printf("Paper (for reference):\n");
  std::printf("  G2: 30913 vs 35739 (15.6%%) | 13751 vs 13885 (0.9%%) | 7961 vs 8517 (7.0%%)\n");
  std::printf("  G3: 57429 vs 68120 (18.6%%) | 41801 vs 48650 (16.4%%) | 13737 vs 22686 "
              "(65.0%%)\n");
  return 0;
}
