/// \file search_engine.cpp
/// \brief Machine-readable benchmark of the delta-evaluation search engine
/// (core::ScheduleEvaluator) against from-scratch full re-evaluation.
///
/// Emits **BENCH_search.json** (schema documented in README.md §Performance)
/// so the perf trajectory has committed data points and CI can gate on it
/// (tools/bench_diff compares a fresh run against the committed snapshot).
///
/// Schedule workloads per instance size n ∈ {20, 50, 100, 200}:
///
///  * `anneal_candidate` — price a stream of annealing moves (adjacent swaps
///    and design-point bumps) against a fixed schedule. Full = copy the
///    schedule, mutate, rebuild the profile, run charge_lost (the pre-delta
///    annealer's per-candidate cost). Delta = O(terms) peeks.
///  * `anneal_mix` — same stream, but every 4th candidate is accepted and
///    committed (delta commits via the O(terms)-exp row rescale); the
///    amortized cost of a real annealing run.
///  * `commit_move` — a stream of *accepted* moves only. Full = the PR 3
///    commit path (reprice_suffix: truncate + re-extend, O(suffix · terms)
///    exps). Delta = commit_swap_adjacent / commit_replace (row rescale,
///    O(terms) exps). Isolates the commit-cost cliff at high acceptance.
///  * `bnb_extend` — a random extend/pop walk pricing σ after every
///    extension. Full = charge_lost over the whole prefix profile,
///    O(depth · terms); delta = warm prefix rows, O(terms).
///  * `order_tree` — price the first 256 complete topological orders of the
///    graph (one fixed assignment). Full = the legacy exhaustive shape
///    (materialized order list, evaluator reset + full re-extension per
///    order); delta = the streaming core::OrderTreeWalker, which shares
///    sequence-prefix state *across orders*. The speedup is the cross-order
///    prefix sharing the PR's refactor buys.
///  * `block_peek` — the same candidate stream priced through the SoA block
///    peeks in groups of 8 vs one scalar peek per candidate, cold decay keys
///    per pass (the regime block pricing accelerates: all lanes' rows leave
///    in one fused kernel pass). `--check` additionally gates ≥ 2x at n=100
///    with max_rel_err ≤ 1e-12 under rv.
///
/// Parallel modes (wall-clock scaling; speedup = --jobs N vs 1 worker on
/// identical work, so it depends on the runner's core count — tools/
/// bench_diff reports these rows as info and gates only their accuracy):
///
///  * `parallel_bnb` — frontier-split B&B solves of a fixed 11-task
///    instance; "max_rel_err" doubles as the byte-determinism check
///    (σ at --jobs N must equal σ at 1 worker exactly).
///  * `portfolio` — an 8-restart annealing portfolio on the n=50 graph,
///    same determinism check.
///
/// Kernel micro-mode (model-independent, emitted once):
///
///  * `exp_batch` — exponentials per second over a 4096-argument buffer
///    shaped like the series' exponents. Full = element-wise std::exp,
///    delta = util::fastmath::batch_exp under the active kernel.
///
/// Every mode cross-checks delta vs full pricing on a sample of the stream
/// and reports the max relative error (expect ~1e-15).
///
/// Flags: --quick (shorter timing windows), --out <path> (default
/// BENCH_search.json), --model rv|kibam|peukert|ideal (battery model for the
/// schedule workloads; default rv), --jobs N (worker count for the parallel
/// modes; default: hardware concurrency), --check (exit 1 unless the
/// anneal_candidate speedup at n=100 is >= 5x and pricing agrees — rv only;
/// CI additionally diffs against the committed snapshot via
/// tools/bench_diff).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/parallel.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/battery/ideal.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/graph/topology.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace {

using namespace basched;
using Clock = std::chrono::steady_clock;

struct Move {
  bool swap = false;      ///< adjacent swap at pos vs design-point bump at pos
  std::size_t pos = 0;
  std::size_t col = 0;    ///< bump column (catalog), so commits are replayable
  double duration = 0.0;  ///< bump replacement interval
  double current = 0.0;
};

struct Result {
  std::size_t n = 0;
  std::string mode;
  double full_evals_per_sec = 0.0;
  double delta_evals_per_sec = 0.0;
  double speedup = 0.0;
  double max_rel_err = 0.0;
  std::uint64_t candidates = 0;  ///< priced per timing pass (stream length)
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Runs `body(stream_index)` over the move stream repeatedly until
/// `budget_s` elapsed; returns evaluations per second.
template <typename Body>
double throughput(std::size_t stream_len, double budget_s, Body&& body) {
  // Warm-up pass (stabilizes caches and buffer capacities).
  for (std::size_t i = 0; i < stream_len; ++i) body(i);
  std::uint64_t count = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t i = 0; i < stream_len; ++i) body(i);
    count += stream_len;
    elapsed = seconds_since(t0);
  } while (elapsed < budget_s);
  return static_cast<double>(count) / elapsed;
}

core::Schedule base_schedule(const graph::TaskGraph& g, util::Rng& rng) {
  core::Schedule s;
  s.sequence = baselines::random_topological_order(g, rng);
  s.assignment.resize(g.num_tasks());
  for (auto& col : s.assignment) col = rng.pick_index(g.num_design_points());
  return s;
}

std::vector<Move> make_moves(const graph::TaskGraph& g, const core::Schedule& s, util::Rng& rng,
                             std::size_t count) {
  const std::size_t n = g.num_tasks();
  const std::size_t m = g.num_design_points();
  std::vector<Move> moves(count);
  for (auto& mv : moves) {
    mv.swap = n >= 2 && rng.bernoulli(0.5);
    if (mv.swap) {
      mv.pos = rng.pick_index(n - 1);
    } else {
      mv.pos = rng.pick_index(n);
      mv.col = rng.pick_index(m);
      const auto& pt = g.task(s.sequence[mv.pos]).point(mv.col);
      mv.duration = pt.duration;
      mv.current = pt.current;
    }
  }
  return moves;
}

/// Full pricing of one candidate the way the pre-delta baselines did it:
/// copy the schedule, mutate, rebuild the discharge profile, sweep Eq. 1.
double price_full(const graph::TaskGraph& g, const battery::BatteryModel& model,
                  const core::Schedule& s, const Move& mv) {
  core::Schedule proposal = s;
  if (mv.swap) {
    std::swap(proposal.sequence[mv.pos], proposal.sequence[mv.pos + 1]);
    return core::calculate_battery_cost_unchecked(g, proposal, model).sigma;
  }
  // A bump replaces the interval wholesale; emulate via a direct profile so
  // arbitrary (duration, current) pairs — not just catalog columns — price
  // identically to ScheduleEvaluator::peek_replace.
  battery::DischargeProfile profile;
  for (std::size_t i = 0; i < proposal.sequence.size(); ++i) {
    if (i == mv.pos) {
      profile.append(mv.duration, mv.current);
    } else {
      const auto& pt = g.task(proposal.sequence[i]).point(proposal.assignment[proposal.sequence[i]]);
      profile.append(pt.duration, pt.current);
    }
  }
  return model.charge_lost(profile, profile.end_time());
}

double price_delta(core::ScheduleEvaluator& eval, const Move& mv) {
  return mv.swap ? eval.peek_swap_adjacent(mv.pos) : eval.peek_replace(mv.pos, mv.duration, mv.current);
}

Result bench_anneal(const graph::TaskGraph& g, const battery::BatteryModel& model,
                    std::uint64_t seed, double budget_s, bool with_commits) {
  util::Rng rng(seed);
  const core::Schedule base = base_schedule(g, rng);
  const std::vector<Move> moves = make_moves(g, base, rng, 512);

  Result r;
  r.n = g.num_tasks();
  r.mode = with_commits ? "anneal_mix" : "anneal_candidate";
  r.candidates = moves.size();

  core::ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(base);

  // Cross-check delta vs full on a sample of the stream.
  for (std::size_t i = 0; i < std::min<std::size_t>(moves.size(), 64); ++i) {
    const double full = price_full(g, model, base, moves[i]);
    const double delta = price_delta(eval, moves[i]);
    const double rel = std::abs(full - delta) / std::max(1.0, std::abs(full));
    r.max_rel_err = std::max(r.max_rel_err, rel);
  }

  if (!with_commits) {
    r.full_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
      (void)price_full(g, model, base, moves[i]);
    });
    r.delta_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
      (void)price_delta(eval, moves[i]);
    });
  } else {
    // Every 4th candidate is committed; both variants walk the identical
    // schedule trajectory (acceptance is positional, not cost-based, so the
    // comparison stays apples-to-apples).
    core::Schedule full_sched = base;
    r.full_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
      if (i == 0) full_sched = base;  // restart the trajectory per stream pass
      const Move& mv = moves[i];
      (void)price_full(g, model, full_sched, mv);
      if (i % 4 == 0) {
        if (mv.swap) {
          std::swap(full_sched.sequence[mv.pos], full_sched.sequence[mv.pos + 1]);
        }
        // Bumps to non-catalog intervals cannot be stored in a Schedule;
        // swaps alone mutate the trajectory, which is enough to defeat
        // memoization on both sides.
      }
    });
    core::Schedule delta_sched = base;
    r.delta_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
      if (i == 0) {
        delta_sched = base;
        (void)eval.full_eval(delta_sched);
      }
      const Move& mv = moves[i];
      (void)price_delta(eval, mv);
      if (i % 4 == 0 && mv.swap) {
        std::swap(delta_sched.sequence[mv.pos], delta_sched.sequence[mv.pos + 1]);
        (void)eval.commit_swap_adjacent(mv.pos);
      }
    });
  }
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// A stream of 100 %-accepted moves: the isolated commit cost. Full = the
/// PR 3 accept path (reprice_suffix re-extends the changed suffix,
/// O(suffix · terms) exps); delta = the analytic row rescale
/// (commit_swap_adjacent / commit_replace, O(terms) exps).
Result bench_commit_move(const graph::TaskGraph& g, const battery::BatteryModel& model,
                         std::uint64_t seed, double budget_s) {
  util::Rng rng(seed);
  const core::Schedule base = base_schedule(g, rng);
  const std::vector<Move> moves = make_moves(g, base, rng, 512);

  Result r;
  r.n = g.num_tasks();
  r.mode = "commit_move";
  r.candidates = moves.size();

  // Both variants replay the identical accepted trajectory. Bumps store the
  // catalog *column*; the concrete (duration, current) pair depends on which
  // task currently sits at the position (swaps move tasks around), so it is
  // resolved against the live schedule at apply time — exactly what the
  // annealer does.
  auto apply = [&](core::Schedule& s, const Move& mv) {
    if (mv.swap) {
      std::swap(s.sequence[mv.pos], s.sequence[mv.pos + 1]);
      return battery::DischargeInterval{};
    }
    const graph::TaskId v = s.sequence[mv.pos];
    s.assignment[v] = mv.col;
    const auto& pt = g.task(v).point(mv.col);
    return battery::DischargeInterval{0.0, pt.duration, pt.current};
  };

  // Cross-check: commit σ vs reprice σ along one trajectory.
  {
    core::ScheduleEvaluator commit_eval(g, model);
    core::ScheduleEvaluator reprice_eval(g, model);
    core::Schedule s = base;
    (void)commit_eval.full_eval(s);
    (void)reprice_eval.full_eval(s);
    for (std::size_t i = 0; i < std::min<std::size_t>(moves.size(), 64); ++i) {
      const Move& mv = moves[i];
      const auto iv = apply(s, mv);
      const double committed =
          (mv.swap ? commit_eval.commit_swap_adjacent(mv.pos)
                   : commit_eval.commit_replace(mv.pos, iv.duration, iv.current))
              .sigma;
      const double repriced = reprice_eval.reprice_suffix(s, mv.pos).sigma;
      const double rel = std::abs(committed - repriced) / std::max(1.0, std::abs(repriced));
      r.max_rel_err = std::max(r.max_rel_err, rel);
    }
  }

  core::ScheduleEvaluator reprice_eval(g, model);
  core::Schedule reprice_sched = base;
  r.full_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
    if (i == 0) {
      reprice_sched = base;
      (void)reprice_eval.full_eval(reprice_sched);
    }
    const Move& mv = moves[i];
    (void)apply(reprice_sched, mv);
    (void)reprice_eval.reprice_suffix(reprice_sched, mv.pos);
  });

  core::ScheduleEvaluator commit_eval(g, model);
  core::Schedule commit_sched = base;
  r.delta_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
    if (i == 0) {
      commit_sched = base;
      (void)commit_eval.full_eval(commit_sched);
    }
    const Move& mv = moves[i];
    const auto iv = apply(commit_sched, mv);
    if (mv.swap)
      (void)commit_eval.commit_swap_adjacent(mv.pos);
    else
      (void)commit_eval.commit_replace(mv.pos, iv.duration, iv.current);
  });
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

Result bench_bnb_extend(const graph::TaskGraph& g, const battery::BatteryModel& model,
                        std::uint64_t seed, double budget_s) {
  util::Rng rng(seed);
  const core::Schedule base = base_schedule(g, rng);
  const std::size_t n = g.num_tasks();

  // Pre-generate one extend/pop walk: a biased random walk over prefix
  // depth, pricing σ after every extension (as bound checks would).
  struct Step {
    bool extend;
  };
  std::vector<Step> steps;
  std::size_t depth = 0;
  for (std::size_t i = 0; i < 1024; ++i) {
    const bool extend = depth == 0 || (depth < n && rng.bernoulli(0.6));
    steps.push_back({extend});
    if (extend)
      ++depth;
    else
      --depth;
  }

  Result r;
  r.n = n;
  r.mode = "bnb_extend";
  r.candidates = steps.size();

  // Cross-check: evaluator prefix σ vs full profile σ at a few depths.
  {
    core::ScheduleEvaluator eval(g, model);
    battery::DischargeProfile profile;
    for (std::size_t i = 0; i < std::min<std::size_t>(n, 32); ++i) {
      const graph::TaskId v = base.sequence[i];
      eval.extend(v, base.assignment[v]);
      const auto& pt = g.task(v).point(base.assignment[v]);
      profile.append(pt.duration, pt.current);
      const double full = model.charge_lost(profile, profile.end_time());
      const double delta = eval.prefix_sigma();
      r.max_rel_err = std::max(r.max_rel_err,
                               std::abs(full - delta) / std::max(1.0, std::abs(full)));
    }
  }

  // Full variant: the pre-delta B&B data structure — a DischargeProfile
  // appended per extension, σ re-swept from scratch, pop by rebuild.
  battery::DischargeProfile profile;
  std::size_t d = 0;
  r.full_evals_per_sec = throughput(steps.size(), budget_s, [&](std::size_t i) {
    if (i == 0) {
      profile = battery::DischargeProfile{};
      d = 0;
    }
    if (steps[i].extend) {
      const graph::TaskId v = base.sequence[d];
      const auto& pt = g.task(v).point(base.assignment[v]);
      profile.append(pt.duration, pt.current);
      ++d;
      (void)model.charge_lost(profile, profile.end_time());
    } else {
      auto ivs = profile.intervals();
      ivs.pop_back();
      profile = battery::DischargeProfile(std::move(ivs));
      --d;
    }
  });

  core::ScheduleEvaluator eval(g, model);
  r.delta_evals_per_sec = throughput(steps.size(), budget_s, [&](std::size_t i) {
    if (i == 0) eval.reset();
    if (steps[i].extend) {
      const graph::TaskId v = base.sequence[eval.depth()];
      eval.extend(v, base.assignment[v]);
      (void)eval.prefix_sigma();
    } else {
      eval.pop();
    }
  });
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// Streaming order-tree walk vs the legacy materialize-and-reset shape: both
/// sides price σ at the end of the *same* first-K complete topological
/// orders under one fixed assignment; the delta side shares each order's
/// common prefix with its predecessor instead of re-extending from scratch.
Result bench_order_tree(const graph::TaskGraph& g, const battery::BatteryModel& model,
                        double budget_s) {
  constexpr std::size_t kOrders = 256;
  const std::size_t n = g.num_tasks();

  // Pinned-assignment visitor: explore column 0 only, price each leaf, stop
  // after kOrders leaves. The DFS child order matches all_topological_orders,
  // so both sides see the identical order set.
  struct Walk {
    std::size_t limit;
    std::size_t leaves = 0;
    double last_sigma = 0.0;
    std::vector<std::vector<graph::TaskId>>* collect = nullptr;

    bool node(core::OrderTreeWalker&) { return true; }
    bool enter(core::OrderTreeWalker&, graph::TaskId, std::size_t col,
               const graph::DesignPoint&) {
      return col == 0;
    }
    void leaf(core::OrderTreeWalker& w) {
      last_sigma = w.evaluator().prefix_sigma();
      if (collect != nullptr) collect->push_back(w.sequence());
      if (++leaves >= limit) w.stop();
    }
  };

  // Materialize the order list once (this is the legacy data structure; its
  // cost is *not* charged to either side — the comparison isolates the
  // pricing walk).
  std::vector<std::vector<graph::TaskId>> orders;
  core::ScheduleEvaluator eval(g, model);
  core::OrderTreeWalker walker(g, eval);
  {
    Walk collector{kOrders};
    collector.collect = &orders;
    (void)walker.walk(collector);
  }

  Result r;
  r.n = n;
  r.mode = "order_tree";
  r.candidates = orders.size();

  // Cross-check: streaming leaf σ vs per-order reset pricing.
  {
    core::ScheduleEvaluator check(g, model);
    std::vector<double> reset_sigmas;
    for (const auto& order : orders) {
      check.reset();
      for (const graph::TaskId v : order) check.extend(v, 0);
      reset_sigmas.push_back(check.prefix_sigma());
    }
    std::size_t i = 0;
    struct Verify {
      const std::vector<double>& expect;
      std::size_t& i;
      double max_rel_err = 0.0;
      bool node(core::OrderTreeWalker&) { return true; }
      bool enter(core::OrderTreeWalker&, graph::TaskId, std::size_t col,
                 const graph::DesignPoint&) {
        return col == 0;
      }
      void leaf(core::OrderTreeWalker& w) {
        const double sigma = w.evaluator().prefix_sigma();
        const double want = expect[i];
        max_rel_err =
            std::max(max_rel_err, std::abs(sigma - want) / std::max(1.0, std::abs(want)));
        if (++i >= expect.size()) w.stop();
      }
    } verify{reset_sigmas, i};
    (void)walker.walk(verify);
    r.max_rel_err = verify.max_rel_err;
  }

  // Full: the legacy exhaustive inner loop — reset + re-extend every task of
  // every order. Throughput counts orders priced.
  const double full_passes = throughput(1, budget_s, [&](std::size_t) {
    for (const auto& order : orders) {
      eval.reset();
      for (const graph::TaskId v : order) eval.extend(v, 0);
      (void)eval.prefix_sigma();
    }
  });
  r.full_evals_per_sec = full_passes * static_cast<double>(orders.size());

  // Delta: one streaming walk over the same leaves.
  eval.reset();
  const double delta_passes = throughput(1, budget_s, [&](std::size_t) {
    Walk pass{orders.size()};
    (void)walker.walk(pass);
  });
  r.delta_evals_per_sec = delta_passes * static_cast<double>(orders.size());
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// Wall-clock scaling of the frontier-split parallel B&B: identical solves
/// on 1 worker vs --jobs workers. max_rel_err doubles as the determinism
/// check — the two σ values must match exactly.
Result bench_parallel_bnb(const battery::BatteryModel& model, unsigned jobs, double budget_s) {
  util::Rng rng(4242);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const auto g = graph::make_series_parallel(11, synth, rng);
  const double deadline =
      g.column_time(0) + 0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));

  Result r;
  r.n = g.num_tasks();
  r.mode = "parallel_bnb";
  r.candidates = 1;

  analysis::Executor serial(1);
  analysis::Executor parallel(jobs);
  const auto solve = [&](analysis::Executor& executor) {
    const auto res =
        baselines::schedule_branch_and_bound_parallel(g, deadline, model, executor);
    return res.feasible && !res.truncated() ? res.sigma : -1.0;
  };
  const double sigma_serial = solve(serial);
  const double sigma_parallel = solve(parallel);
  r.max_rel_err = std::abs(sigma_serial - sigma_parallel) /
                  std::max(1.0, std::abs(sigma_serial));  // byte-determinism: expect 0

  r.full_evals_per_sec = throughput(1, budget_s, [&](std::size_t) { (void)solve(serial); });
  r.delta_evals_per_sec = throughput(1, budget_s, [&](std::size_t) { (void)solve(parallel); });
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// Wall-clock scaling of the annealing restart portfolio (8 restarts), same
/// determinism check as parallel_bnb.
Result bench_portfolio(const graph::TaskGraph& g, const battery::BatteryModel& model,
                       unsigned jobs, double budget_s) {
  const double deadline =
      g.column_time(0) + 0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
  baselines::AnnealingPortfolioOptions opts;
  opts.annealing.iterations = 2000;
  opts.annealing.seed = 77;
  opts.restarts = 8;

  Result r;
  r.n = g.num_tasks();
  r.mode = "portfolio";
  r.candidates = opts.restarts;

  analysis::Executor serial(1);
  analysis::Executor parallel(jobs);
  const auto solve = [&](analysis::Executor& executor) {
    const auto res = baselines::schedule_annealing_portfolio(g, deadline, model, executor, opts);
    return res.feasible ? res.sigma : -1.0;
  };
  const double sigma_serial = solve(serial);
  const double sigma_parallel = solve(parallel);
  r.max_rel_err =
      std::abs(sigma_serial - sigma_parallel) / std::max(1.0, std::abs(sigma_serial));

  r.full_evals_per_sec = throughput(1, budget_s, [&](std::size_t) { (void)solve(serial); }) *
                         static_cast<double>(opts.restarts);
  r.delta_evals_per_sec = throughput(1, budget_s, [&](std::size_t) { (void)solve(parallel); }) *
                          static_cast<double>(opts.restarts);
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// Horizontal block pricing (the SoA block peeks) vs per-candidate scalar
/// peeks over the *same* move stream in groups of K = 8. Each timing pass
/// starts from a fresh evaluator so every peek prices cold decay keys — the
/// regime a real annealing run lives in (the schedule mutates under the
/// search, so suffix-offset keys churn) and the one the block entry point
/// accelerates: K candidates' rows leave in one fused kernel pass instead of
/// one small batch_exp call per key. Both sides pay the identical per-pass
/// full_eval, so the ratio isolates peek pricing.
Result bench_block_peek(const graph::TaskGraph& g, const battery::BatteryModel& model,
                        std::uint64_t seed, double budget_s) {
  constexpr std::size_t kGroup = 8;
  util::Rng rng(seed);
  const core::Schedule base = base_schedule(g, rng);
  const std::vector<Move> moves = make_moves(g, base, rng, 2048);

  Result r;
  r.n = g.num_tasks();
  r.mode = "block_peek";
  r.candidates = moves.size();

  core::ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(base);

  // Cross-check: block σ vs scalar peek σ over one pass of the stream.
  {
    std::vector<std::size_t> swap_pos;
    std::vector<core::ScheduleEvaluator::ReplaceCandidate> bump_cands;
    std::vector<double> sigmas;
    for (std::size_t at = 0; at < moves.size(); at += kGroup) {
      const std::size_t hi = std::min(moves.size(), at + kGroup);
      swap_pos.clear();
      bump_cands.clear();
      for (std::size_t i = at; i < hi; ++i) {
        if (moves[i].swap)
          swap_pos.push_back(moves[i].pos);
        else
          bump_cands.push_back({moves[i].pos, moves[i].duration, moves[i].current});
      }
      sigmas.resize(swap_pos.size());
      eval.peek_swap_adjacent_block(swap_pos, sigmas);
      for (std::size_t j = 0; j < swap_pos.size(); ++j) {
        const double want = eval.peek_swap_adjacent(swap_pos[j]);
        r.max_rel_err = std::max(r.max_rel_err,
                                 std::abs(sigmas[j] - want) / std::max(1.0, std::abs(want)));
      }
      sigmas.resize(bump_cands.size());
      eval.peek_replace_block(bump_cands, sigmas);
      for (std::size_t j = 0; j < bump_cands.size(); ++j) {
        const double want = eval.peek_replace(bump_cands[j].pos, bump_cands[j].duration,
                                              bump_cands[j].current);
        r.max_rel_err = std::max(r.max_rel_err,
                                 std::abs(sigmas[j] - want) / std::max(1.0, std::abs(want)));
      }
    }
  }

  // Scalar side: one peek per candidate, cold caches per pass.
  r.full_evals_per_sec = throughput(moves.size(), budget_s, [&](std::size_t i) {
    if (i == 0) {
      eval = core::ScheduleEvaluator(g, model);
      (void)eval.full_eval(base);
    }
    (void)price_delta(eval, moves[i]);
  });

  // Block side: the same stream in K-candidate groups, cold caches per pass.
  std::vector<std::size_t> swap_pos;
  std::vector<core::ScheduleEvaluator::ReplaceCandidate> bump_cands;
  std::vector<double> sigmas;
  const std::size_t groups = (moves.size() + kGroup - 1) / kGroup;
  const double group_passes = throughput(groups, budget_s, [&](std::size_t gi) {
    if (gi == 0) {
      eval = core::ScheduleEvaluator(g, model);
      (void)eval.full_eval(base);
    }
    const std::size_t at = gi * kGroup;
    const std::size_t hi = std::min(moves.size(), at + kGroup);
    swap_pos.clear();
    bump_cands.clear();
    for (std::size_t i = at; i < hi; ++i) {
      if (moves[i].swap)
        swap_pos.push_back(moves[i].pos);
      else
        bump_cands.push_back({moves[i].pos, moves[i].duration, moves[i].current});
    }
    if (!swap_pos.empty()) {
      sigmas.resize(swap_pos.size());
      eval.peek_swap_adjacent_block(swap_pos, sigmas);
    }
    if (!bump_cands.empty()) {
      sigmas.resize(bump_cands.size());
      eval.peek_replace_block(bump_cands, sigmas);
    }
  });
  r.delta_evals_per_sec =
      group_passes * static_cast<double>(moves.size()) / static_cast<double>(groups);
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

/// Kernel micro-mode: exponentials/sec, element-wise std::exp vs
/// fastmath::batch_exp, over arguments shaped like the series' exponents
/// (90 % in the working band, a slice of deep/underflow tail).
Result bench_exp_batch(double budget_s) {
  constexpr std::size_t kBuf = 4096;
  std::vector<double> args(kBuf);
  std::vector<double> out(kBuf);
  util::Rng rng(4096);
  for (std::size_t i = 0; i < kBuf; ++i) {
    const double u = rng.next_double();
    args[i] = i % 16 == 15 ? -745.0 * u : -35.0 * u * u * u;
  }

  Result r;
  r.n = kBuf;
  r.mode = "exp_batch";
  r.candidates = kBuf;

  for (std::size_t i = 0; i < kBuf; ++i) {
    double v = args[i];
    util::fastmath::batch_exp(std::span<double>(&v, 1));
    const double want = std::exp(args[i]);
    const double rel = want == 0.0 ? std::abs(v) : std::abs(v - want) / want;
    r.max_rel_err = std::max(r.max_rel_err, rel);
  }

  // Both sides copy the argument buffer, so the comparison isolates the
  // exponential itself. Throughput counts per element.
  const double scalar_passes = throughput(1, budget_s, [&](std::size_t) {
    std::copy(args.begin(), args.end(), out.begin());
    for (double& x : out) x = std::exp(x);
  });
  r.full_evals_per_sec = scalar_passes * static_cast<double>(kBuf);
  const double batched_passes = throughput(1, budget_s, [&](std::size_t) {
    std::copy(args.begin(), args.end(), out.begin());
    util::fastmath::batch_exp(out);
  });
  r.delta_evals_per_sec = batched_passes * static_cast<double>(kBuf);
  r.speedup = r.delta_evals_per_sec / r.full_evals_per_sec;
  return r;
}

std::unique_ptr<battery::BatteryModel> make_model(const std::string& name) {
  if (name == "rv") return std::make_unique<battery::RakhmatovVrudhulaModel>(0.273);
  if (name == "kibam") return std::make_unique<battery::KibamModel>(0.5, 0.05, 5.0e7);
  if (name == "peukert") return std::make_unique<battery::PeukertModel>(1.2, 500.0);
  if (name == "ideal") return std::make_unique<battery::IdealModel>();
  return nullptr;
}

void write_json(const std::string& path, const std::string& model_name, unsigned jobs,
                const std::vector<Result>& results, bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "search_engine: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"basched-bench-search-v4\",\n");
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"build\": \"%s\",\n",
#ifdef NDEBUG
               "release"
#else
               "debug"
#endif
  );
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"model\": \"%s\",\n", model_name.c_str());
  std::fprintf(f, "  \"exp_kernel\": \"%s\",\n", util::fastmath::exp_kernel_name());
  std::fprintf(f, "  \"exp_isa\": \"%s\",\n", util::fastmath::exp_isa_name());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"mode\": \"%s\", \"full_evals_per_sec\": %.6g, "
                 "\"delta_evals_per_sec\": %.6g, \"speedup\": %.6g, \"max_rel_err\": %.3g, "
                 "\"stream_len\": %llu}%s\n",
                 r.n, r.mode.c_str(), r.full_evals_per_sec, r.delta_evals_per_sec, r.speedup,
                 r.max_rel_err, static_cast<unsigned long long>(r.candidates),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out = "BENCH_search.json";
  std::string model_name = "rv";
  unsigned jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: search_engine [--quick] [--check] [--model rv|kibam|peukert|ideal] "
                   "[--jobs N] [--out BENCH_search.json]\n");
      return 2;
    }
  }
  if (jobs == 0) jobs = analysis::Executor::default_jobs();

  const std::unique_ptr<battery::BatteryModel> model = make_model(model_name);
  if (model == nullptr) {
    std::fprintf(stderr, "search_engine: unknown --model '%s' (rv|kibam|peukert|ideal)\n",
                 model_name.c_str());
    return 2;
  }
  const double budget_s = quick ? 0.08 : 0.5;

  std::vector<Result> results;
  results.push_back(bench_exp_batch(budget_s));
  std::printf("exp_batch  %10.3g -> %10.3g exps/s (%4.1fx, kernel=%s)\n",
              results.back().full_evals_per_sec, results.back().delta_evals_per_sec,
              results.back().speedup, util::fastmath::exp_kernel_name());

  graph::TaskGraph portfolio_graph;  // the n=50 instance, reused below
  for (const std::size_t n : {std::size_t{20}, std::size_t{50}, std::size_t{100},
                              std::size_t{200}}) {
    util::Rng rng(1000 + n);
    graph::DesignPointSynthesis synth;
    synth.num_points = 4;
    const auto g = graph::make_series_parallel(n, synth, rng);
    if (n == 50) portfolio_graph = g;
    results.push_back(bench_anneal(g, *model, 7 * n + 1, budget_s, /*with_commits=*/false));
    results.push_back(bench_anneal(g, *model, 7 * n + 2, budget_s, /*with_commits=*/true));
    results.push_back(bench_commit_move(g, *model, 7 * n + 4, budget_s));
    results.push_back(bench_bnb_extend(g, *model, 7 * n + 3, budget_s));
    results.push_back(bench_order_tree(g, *model, budget_s));
    results.push_back(bench_block_peek(g, *model, 7 * n + 5, budget_s));
    std::printf("n=%3zu  candidate %8.0f -> %9.0f evals/s (%5.1fx)   mix %5.1fx   "
                "commit %5.1fx   bnb_extend %5.1fx   order_tree %5.1fx   block_peek %5.1fx\n",
                n, results[results.size() - 6].full_evals_per_sec,
                results[results.size() - 6].delta_evals_per_sec,
                results[results.size() - 6].speedup, results[results.size() - 5].speedup,
                results[results.size() - 4].speedup, results[results.size() - 3].speedup,
                results[results.size() - 2].speedup, results[results.size() - 1].speedup);
  }

  // Parallel modes: wall-clock scaling at --jobs vs one worker. On a
  // single-core container expect ~1.0x; these rows are hardware reports,
  // not code gates (bench_diff treats them as info).
  results.push_back(bench_parallel_bnb(*model, jobs, budget_s));
  std::printf("parallel_bnb  n=%zu  %0.3f -> %0.3f solves/s (%4.2fx at --jobs %u)\n",
              results.back().n, results.back().full_evals_per_sec,
              results.back().delta_evals_per_sec, results.back().speedup, jobs);
  results.push_back(bench_portfolio(portfolio_graph, *model, jobs, budget_s));
  std::printf("portfolio     n=%zu  %0.3f -> %0.3f restarts/s (%4.2fx at --jobs %u)\n",
              results.back().n, results.back().full_evals_per_sec,
              results.back().delta_evals_per_sec, results.back().speedup, jobs);

  write_json(out, model->name(), jobs, results, quick);
  std::printf("wrote %s\n", out.c_str());

  if (check) {
    for (const Result& r : results) {
      if (model_name == "rv" && r.n == 100 && r.mode == "anneal_candidate" && r.speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: anneal_candidate speedup at n=100 is %.2fx (< 5x gate)\n", r.speedup);
        return 1;
      }
      if (model_name == "rv" && r.n == 100 && r.mode == "block_peek") {
        if (r.speedup < 2.0) {
          std::fprintf(stderr, "FAIL: block_peek speedup at n=100 is %.2fx (< 2x gate)\n",
                       r.speedup);
          return 1;
        }
        if (r.max_rel_err > 1e-12) {
          std::fprintf(stderr, "FAIL: block_peek max_rel_err %.3g (> 1e-12 gate)\n",
                       r.max_rel_err);
          return 1;
        }
      }
      if (r.max_rel_err > 1e-9) {
        std::fprintf(stderr, "FAIL: %s n=%zu delta/full relative error %.3g (> 1e-9)\n",
                     r.mode.c_str(), r.n, r.max_rel_err);
        return 1;
      }
    }
    std::printf("check passed: delta >= 5x at n=100, pricing agrees\n");
  }
  return 0;
}
