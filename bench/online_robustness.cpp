/// \file online_robustness.cpp
/// \brief Execution-time noise study: the paper schedules offline from
/// estimates; what happens when tasks finish early or late? Compares blind
/// execution of the stale plan against receding-horizon re-planning (the
/// paper's own algorithm re-run on the remaining subgraph after every task),
/// over a range of noise regimes and seeds.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/sim/online.hpp"
#include "basched/util/stats.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const auto g3 = graph::make_g3();
  const double deadline = graph::kG3ExampleDeadline;
  constexpr int kSeeds = 10;

  struct Regime {
    const char* name;
    double lo, hi;
  };
  const Regime regimes[] = {
      {"early finishes (0.6-1.0x)", 0.6, 1.0},
      {"symmetric jitter (0.8-1.2x)", 0.8, 1.2},
      {"overruns (1.0-1.3x)", 1.0, 1.3},
  };

  std::printf("== Online robustness on G3 (d = %.0f, %d seeds per regime) ==\n\n", deadline,
              kSeeds);
  util::Table table({"noise regime", "policy", "mean sigma", "mean finish", "deadline met"});
  table.set_align(0, util::Align::Left);
  table.set_align(1, util::Align::Left);

  for (const auto& regime : regimes) {
    for (auto policy : {sim::ReplanPolicy::Never, sim::ReplanPolicy::Always}) {
      std::vector<double> sigmas, finishes;
      int met = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        sim::OnlineOptions opts;
        opts.policy = policy;
        opts.noise = {regime.lo, regime.hi, static_cast<std::uint64_t>(seed)};
        const auto r = sim::execute_online(g3, deadline, model, opts);
        sigmas.push_back(r.sigma);
        finishes.push_back(r.finish_time);
        if (r.deadline_met) ++met;
      }
      table.add_row({regime.name,
                     policy == sim::ReplanPolicy::Never ? "stale plan" : "replan each task",
                     util::fmt_double(util::mean(sigmas), 0),
                     util::fmt_double(util::mean(finishes), 1),
                     std::to_string(met) + "/" + std::to_string(kSeeds)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: with early finishes, re-planning converts the freed slack into\n"
              "lower-power design-points (lower sigma); with overruns it sacrifices sigma\n"
              "to protect the deadline. The stale plan does neither.\n");
  return 0;
}
