/// \file deadline_curve.cpp
/// \brief A fine-grained Table 4: σ vs. deadline curves for G2 and G3 (ours
/// vs. RV-DP [1] vs. Chowdhury [7]). The paper samples three deadlines per
/// graph; this sweep shows the full curve shape — where the gaps open, where
/// they close, and where crossovers (if any) fall. Also emits CSV for
/// plotting.
#include <cstdio>

#include "basched/analysis/sweeps.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;

  struct Inst {
    const char* name;
    graph::TaskGraph g;
    double from, to;
  };
  Inst insts[] = {
      {"G2", graph::make_g2(), 45.0, 104.0},
      {"G3", graph::make_g3(), 90.0, 250.0},
  };

  for (auto& inst : insts) {
    const auto points = analysis::deadline_sweep(inst.g, inst.from, inst.to, 12,
                                                 graph::kPaperBeta);
    std::printf("== sigma vs deadline, %s (beta %.3f) ==\n\n", inst.name, graph::kPaperBeta);
    util::Table table({"deadline", "ours", "RV-DP [1]", "Chowdhury [7]", "[1] vs ours %"});
    for (const auto& p : points) {
      std::string diff = "-";
      if (p.ours_feasible && p.rvdp_feasible && p.ours_sigma > 0.0)
        diff = util::fmt_double(100.0 * (p.rvdp_sigma - p.ours_sigma) / p.ours_sigma, 1);
      table.add_row({util::fmt_double(p.deadline, 1),
                     p.ours_feasible ? util::fmt_double(p.ours_sigma, 0) : "infeas",
                     p.rvdp_feasible ? util::fmt_double(p.rvdp_sigma, 0) : "infeas",
                     p.chowdhury_feasible ? util::fmt_double(p.chowdhury_sigma, 0) : "infeas",
                     diff});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("CSV:\n%s\n", analysis::deadline_sweep_csv(points).c_str());
  }
  std::printf("Shape to check against Table 4: all curves decrease with deadline, and ours\n"
              "sits below [1] at the paper's sampled deadlines. The fine sweep also exposes\n"
              "what three samples cannot: occasional mid-range crossovers where the DP's\n"
              "energy-optimal selection happens to align with the battery's preference, and\n"
              "the tightest deadlines where the paper-faithful last-task-pinning rule costs\n"
              "feasibility (CT(0) fits but the pinned slowest last task does not — see the\n"
              "'no last-task pin' ablation row in ablation_window).\n");
  return 0;
}
