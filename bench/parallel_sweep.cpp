/// \file parallel_sweep.cpp
/// \brief Serial-vs-parallel wall time for the deadline sweep through the
/// analysis::Executor — the scaling check for the parallel experiment
/// engine. Also verifies the parallel CSV output is byte-identical to the
/// serial one (index-ordered collection makes the job count unobservable in
/// the results).
///
///   parallel_sweep [--steps N] [--jobs N] [--graph-tasks N]
///
/// Defaults: 96 steps on a 5-point layered graph, jobs ∈ {1, 2, 4, 8, hw}.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "basched/analysis/executor.hpp"
#include "basched/analysis/sweeps.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/args.hpp"
#include "basched/util/rng.hpp"

namespace {

double run_once(const basched::graph::TaskGraph& g, double from, double to, int steps,
                unsigned jobs, std::string* csv) {
  using clock = std::chrono::steady_clock;
  basched::analysis::Executor executor(jobs);
  const auto t0 = clock::now();
  const auto points =
      basched::analysis::deadline_sweep(g, from, to, steps, basched::graph::kPaperBeta, executor);
  const auto t1 = clock::now();
  *csv = basched::analysis::deadline_sweep_csv(points);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace basched;
  try {
    const util::Args args(argc - 1, argv + 1);
    const auto steps = static_cast<int>(args.get_int("steps", 96));
    const auto graph_tasks = static_cast<std::size_t>(args.get_int("graph-tasks", 36));

    // A layered graph somewhat larger than G3 so each work item carries real
    // scheduling work; deadlines span fastest..slowest column time.
    graph::DesignPointSynthesis synth;
    synth.num_points = 5;
    util::Rng rng(42);
    const graph::TaskGraph g =
        graph::make_layered_random(std::max<std::size_t>(2, graph_tasks / 3), 3, 0.3, synth, rng);
    const double from = g.column_time(0) * 1.01;
    const double to = g.column_time(g.num_design_points() - 1) * 1.2;

    std::vector<unsigned> job_counts{1, 2, 4, 8};
    const unsigned hw = analysis::Executor::default_jobs();
    if (args.has("jobs")) {
      job_counts = {1, static_cast<unsigned>(args.get_int("jobs"))};
    } else if (hw > 8) {
      job_counts.push_back(hw);
    }

    std::printf("deadline sweep: %zu tasks, %zu design points, %d steps, deadlines "
                "[%.1f, %.1f] min (hardware concurrency: %u)\n\n",
                g.num_tasks(), g.num_design_points(), steps, from, to, hw);
    std::printf("%8s %12s %10s %8s\n", "jobs", "wall (s)", "speedup", "output");

    std::string serial_csv;
    const double serial = run_once(g, from, to, steps, 1, &serial_csv);
    std::printf("%8u %12.3f %9.2fx %8s\n", 1u, serial, 1.0, "ref");

    bool all_identical = true;
    for (std::size_t i = 1; i < job_counts.size(); ++i) {
      const unsigned jobs = job_counts[i];
      std::string csv;
      const double wall = run_once(g, from, to, steps, jobs, &csv);
      const bool identical = csv == serial_csv;
      all_identical = all_identical && identical;
      std::printf("%8u %12.3f %9.2fx %8s\n", jobs, wall, serial / wall,
                  identical ? "same" : "DIFFERS");
    }

    if (!all_identical) {
      std::fprintf(stderr, "error: parallel CSV output differs from --jobs 1\n");
      return 1;
    }
    std::printf("\nall job counts produced byte-identical CSV output\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
