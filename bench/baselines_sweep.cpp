/// \file baselines_sweep.cpp
/// \brief Context beyond the paper's Table 4: our algorithm vs. every
/// baseline in the repo (RV-DP [1], Chowdhury [7], simulated annealing,
/// random search, and the exhaustive optimum where tractable) on the paper
/// graphs and a family of random instances.
#include <cstdio>
#include <string>
#include <vector>

#include "basched/baselines/annealing.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/exhaustive.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  struct Instance {
    std::string name;
    graph::TaskGraph graph;
    double deadline;
  };
  std::vector<Instance> instances;
  instances.push_back({"G2 d=75", graph::make_g2(), 75.0});
  instances.push_back({"G3 d=230", graph::make_g3(), 230.0});
  for (std::uint64_t seed : {31, 32, 33}) {
    util::Rng rng(seed);
    graph::DesignPointSynthesis synth;
    synth.num_points = 3;
    auto g = graph::make_series_parallel(7, synth, rng);
    const double d = g.column_time(0) + 0.6 * (g.column_time(2) - g.column_time(0));
    instances.push_back({"sp7 seed=" + std::to_string(seed), std::move(g), d});
  }

  std::printf("== Scheduler shoot-out (sigma in mA*min; '-' = infeasible/intractable) ==\n");
  std::printf("SA: 20000 moves, seed 1. Random: 2000 samples, seed 1. Exhaustive only on\n"
              "instances small enough to enumerate.\n\n");

  util::Table table({"instance", "ours", "RV-DP [1]", "Chowdhury [7]", "annealing", "random",
                     "optimal"});
  table.set_align(0, util::Align::Left);
  util::Table effort({"instance", "SA evals", "random evals", "exhaustive evals",
                      "exhaustive steps"});
  effort.set_align(0, util::Align::Left);
  for (const auto& inst : instances) {
    auto cell = [](bool feasible, double sigma) {
      return feasible ? util::fmt_double(sigma, 0) : std::string("-");
    };
    const auto ours = core::schedule_battery_aware(inst.graph, inst.deadline, model);
    const auto dp = baselines::schedule_rv_dp(inst.graph, inst.deadline, model);
    const auto ch = baselines::schedule_chowdhury(inst.graph, inst.deadline, model);
    const auto sa = baselines::schedule_annealing(inst.graph, inst.deadline, model);
    const auto rnd = baselines::schedule_random_search(inst.graph, inst.deadline, model);
    auto opt = baselines::schedule_exhaustive(inst.graph, inst.deadline, model);
    // A budget-truncated walk is a best-found, not a proven optimum — show
    // the instance as intractable rather than mislabel the column.
    if (opt && opt->truncated()) opt = std::nullopt;
    table.add_row({inst.name, cell(ours.feasible, ours.sigma), cell(dp.feasible, dp.sigma),
                   cell(ch.feasible, ch.sigma), cell(sa.feasible, sa.sigma),
                   cell(rnd.feasible, rnd.sigma),
                   (opt && opt->feasible) ? util::fmt_double(opt->sigma, 0) : std::string("-")});
    effort.add_row({inst.name, std::to_string(sa.evaluations), std::to_string(rnd.evaluations),
                    opt ? std::to_string(opt->evaluations) : std::string("-"),
                    opt ? std::to_string(opt->nodes_explored) : std::string("-")});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Search effort (candidate schedules priced by the delta evaluator):\n%s\n",
              effort.str().c_str());
  std::printf("Expected shape: ours tracks the annealer/optimum closely and beats the\n"
              "single-pass heuristics ([1]'s DP ignores the battery during selection;\n"
              "[7] never re-sequences).\n");
  return 0;
}
