/// \file serve_latency.cpp
/// \brief Machine-readable benchmark of the `baschedule serve` request path.
///
/// Emits **BENCH_serve.json** (same flat row schema as BENCH_search.json, so
/// tools/bench_diff gates it identically). Two rows:
///
///  * `serve_warm` — schedule-request throughput through Service::handle_line
///    with a cold catalog (fresh Service per request: every request pays
///    graph parse + master decay-cache build) vs a warm one (one Service,
///    every request after the first is a catalog hit). The speedup is the
///    warm-catalog sharing the serve tentpole buys and is a property of the
///    code, so bench_diff gates it. "max_rel_err" is the serving-correctness
///    check: 0 only when the warm payload is byte-identical to both the cold
///    payload and the direct library call (serving must change *where* work
///    runs, never its result).
///
///  * `serve_rtt` — round trips per second through a real unix-socket Server
///    (accept loop, framing, executor dispatch): pings (pure protocol
///    overhead) in the "full" column, warm schedule requests in the "delta"
///    column, with p50/p99 request latency as extra fields. Wall-clock
///    socket numbers are runner-dependent, so bench_diff reports this row as
///    info and gates only its accuracy (byte-identity of repeated payloads).
///
///  * `serve_deadline` — budgeted requests over the socket: branch-and-bound
///    on a graph far too large to finish, with a small `timeout_ms`. Extra
///    fields count `timeouts` (responses reporting stop_reason deadline) and
///    `cancels`; `deadline_hit` is the fraction of requests whose budget
///    tripped. "max_rel_err" is the anytime-contract check: 0 only when
///    every response arrived within timeout + grace AND carried a feasible
///    best-so-far schedule. Wall-clock dependent, so bench_diff reports it
///    as info and gates only that contract bit.
///
/// Overloaded responses (never expected with one connection, but possible
/// in principle) are retried through serve::Backoff, honoring the server's
/// retry_after_ms hint — the same helper the fault-injection tests use.
///
/// Flags: --quick (shorter timing windows), --out <path> (default
/// BENCH_serve.json).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_io.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/json.hpp"
#include "basched/serve/retry.hpp"
#include "basched/serve/server.hpp"
#include "basched/serve/service.hpp"
#include "basched/serve/socket_io.hpp"
#include "basched/util/rng.hpp"

namespace {

using namespace basched;
using Clock = std::chrono::steady_clock;

struct Result {
  std::size_t n = 0;
  std::string mode;
  double full_evals_per_sec = 0.0;   ///< cold requests/sec (or pings/sec)
  double delta_evals_per_sec = 0.0;  ///< warm requests/sec
  double speedup = 0.0;
  double max_rel_err = 0.0;  ///< 0 iff payloads byte-identical, else 1
  std::uint64_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t timeouts = 0;  ///< responses with stop_reason "deadline"
  std::uint64_t cancels = 0;   ///< responses with stop_reason "cancelled"
  double deadline_hit = 0.0;   ///< fraction of requests whose budget tripped
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr std::size_t kTasks = 8;

std::string bench_graph() {
  util::Rng rng(42);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::serialize(graph::make_series_parallel(kTasks, synth, rng));
}

std::string schedule_request(const std::string& graph_text) {
  serve::json::Object params;
  params["graph"] = graph_text;
  params["deadline"] = 100.0;
  serve::json::Object frame;
  frame["verb"] = "schedule";
  frame["params"] = serve::json::Value(std::move(params));
  return serve::json::dump(serve::json::Value(std::move(frame)));
}

std::string payload_of(const std::string& response_line) {
  const auto frame = serve::json::parse(response_line).as_object();
  if (!frame.at("ok").as_bool()) {
    std::fprintf(stderr, "serve_latency: request failed: %s\n", response_line.c_str());
    std::exit(1);
  }
  return frame.at("result").as_object().at("schedule").as_string();
}

Result bench_serve_warm(const std::string& graph_text, double budget_s) {
  const std::string request = schedule_request(graph_text);

  // Reference payload straight from the library (what the CLI prints).
  const auto g = graph::parse(graph_text);
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto direct = core::schedule_battery_aware(g, 100.0, model);
  const std::string reference =
      direct.feasible ? core::serialize_schedule(g, direct.schedule) : "";

  Result r;
  r.n = kTasks;
  r.mode = "serve_warm";

  // Cold: a fresh Service per request — every request builds the catalog.
  std::uint64_t cold_requests = 0;
  std::string cold_payload;
  auto t0 = Clock::now();
  do {
    serve::Service service;
    cold_payload = payload_of(service.handle_line(request).line);
    ++cold_requests;
  } while (seconds_since(t0) < budget_s);
  r.full_evals_per_sec = static_cast<double>(cold_requests) / seconds_since(t0);

  // Warm: one Service — every request after the first is a catalog hit.
  serve::Service service;
  std::string warm_payload = payload_of(service.handle_line(request).line);
  std::uint64_t warm_requests = 0;
  t0 = Clock::now();
  do {
    warm_payload = payload_of(service.handle_line(request).line);
    ++warm_requests;
  } while (seconds_since(t0) < budget_s);
  r.delta_evals_per_sec = static_cast<double>(warm_requests) / seconds_since(t0);

  r.speedup = r.full_evals_per_sec > 0.0 ? r.delta_evals_per_sec / r.full_evals_per_sec : 0.0;
  r.requests = cold_requests + warm_requests;
  // Byte-identity is the accuracy gate: warm == cold == direct library call.
  r.max_rel_err =
      (warm_payload == cold_payload && warm_payload == reference && !reference.empty()) ? 0.0
                                                                                        : 1.0;
  return r;
}

/// One blocking JSON-lines round trip on a connected fd, through the
/// fault-injection shim (so BASCHED_FAULT also exercises this client).
std::string round_trip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  if (!serve::sock::send_all(fd, framed)) {
    std::fprintf(stderr, "serve_latency: send failed\n");
    std::exit(1);
  }
  std::string response;
  char c = 0;
  for (;;) {
    const auto got = serve::sock::recv_some(fd, &c, 1);
    if (got < 0 && errno == EINTR) continue;
    if (got != 1 || c == '\n') break;
    response.push_back(c);
  }
  return response;
}

/// round_trip plus the standard overloaded-retry dance: exponential backoff
/// with full jitter, floored at the server's retry_after_ms hint.
std::string round_trip_retry(int fd, const std::string& line, serve::Backoff& backoff) {
  for (;;) {
    std::string response = round_trip(fd, line);
    const auto frame = serve::json::parse(response).as_object();
    if (!frame.at("ok").as_bool()) {
      const auto& err = frame.at("error").as_object();
      if (err.at("code").as_string() == "overloaded") {
        std::uint64_t hint_ms = 0;
        if (const auto it = err.find("retry_after_ms"); it != err.end())
          hint_ms = static_cast<std::uint64_t>(it->second.as_number());
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff.next_delay_ms(hint_ms)));
        continue;
      }
    }
    backoff.reset();
    return response;
  }
}

Result bench_serve_rtt(const std::string& graph_text, double budget_s) {
  char dir_template[] = "/tmp/basched_serve_bench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "serve_latency: mkdtemp failed\n");
    std::exit(1);
  }
  const std::string socket_path = std::string(dir_template) + "/bench.sock";

  serve::Service service;
  serve::ServerOptions options;
  options.unix_path = socket_path;
  options.jobs = 2;
  serve::Server server(service, options);
  std::thread runner([&server] { server.run(); });

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "serve_latency: cannot connect to %s\n", socket_path.c_str());
    std::exit(1);
  }

  Result r;
  r.n = kTasks;
  r.mode = "serve_rtt";

  // Pings: protocol + dispatch overhead with no scheduling work.
  std::uint64_t pings = 0;
  auto t0 = Clock::now();
  do {
    (void)round_trip(fd, R"({"verb":"ping"})");
    ++pings;
  } while (seconds_since(t0) < budget_s);
  r.full_evals_per_sec = static_cast<double>(pings) / seconds_since(t0);

  // Warm schedule requests with per-request latency for p50/p99.
  const std::string request = schedule_request(graph_text);
  const std::string first = payload_of(round_trip(fd, request));  // warm the catalog
  std::vector<double> latencies_us;
  bool identical = true;
  t0 = Clock::now();
  do {
    const auto q0 = Clock::now();
    const std::string payload = payload_of(round_trip(fd, request));
    latencies_us.push_back(seconds_since(q0) * 1e6);
    identical = identical && payload == first;
  } while (seconds_since(t0) < budget_s);
  r.delta_evals_per_sec = static_cast<double>(latencies_us.size()) / seconds_since(t0);
  r.speedup = r.full_evals_per_sec > 0.0 ? r.delta_evals_per_sec / r.full_evals_per_sec : 0.0;
  r.requests = pings + latencies_us.size();
  r.max_rel_err = identical && !first.empty() ? 0.0 : 1.0;

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto pct = [&latencies_us](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  };
  if (!latencies_us.empty()) {
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
  }

  ::close(fd);
  server.request_drain();
  runner.join();
  ::rmdir(dir_template);  // socket file was unlinked by the server
  return r;
}

Result bench_serve_deadline(double budget_s, std::uint64_t timeout_ms) {
  // A graph the exact search cannot finish inside the budget: the row then
  // measures the deadline path, not bnb throughput.
  constexpr std::size_t kBigTasks = 20;
  util::Rng rng(7);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const std::string graph_text =
      graph::serialize(graph::make_series_parallel(kBigTasks, synth, rng));

  char dir_template[] = "/tmp/basched_serve_bench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "serve_latency: mkdtemp failed\n");
    std::exit(1);
  }
  const std::string socket_path = std::string(dir_template) + "/bench.sock";

  serve::Service service;
  serve::ServerOptions options;
  options.unix_path = socket_path;
  options.jobs = 2;
  serve::Server server(service, options);
  std::thread runner([&server] { server.run(); });

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "serve_latency: cannot connect to %s\n", socket_path.c_str());
    std::exit(1);
  }

  serve::json::Object params;
  params["graph"] = graph_text;
  params["deadline"] = 200.0;
  params["algorithm"] = std::string("bnb");
  params["timeout_ms"] = static_cast<double>(timeout_ms);
  serve::json::Object frame;
  frame["verb"] = "schedule";
  frame["params"] = serve::json::Value(std::move(params));
  const std::string request = serve::json::dump(serve::json::Value(std::move(frame)));

  // Warm the catalog with a fast heuristic request first, so the timed loop
  // measures the budgeted search, not the one-time decay-cache build.
  {
    serve::json::Object wparams;
    wparams["graph"] = graph_text;
    wparams["deadline"] = 200.0;
    serve::json::Object wframe;
    wframe["verb"] = "schedule";
    wframe["params"] = serve::json::Value(std::move(wparams));
    (void)round_trip(fd, serve::json::dump(serve::json::Value(std::move(wframe))));
  }

  Result r;
  r.n = kBigTasks;
  r.mode = "serve_deadline";
  // Grace covers request framing, executor handoff and the budget's
  // amortized clock stride — generous so slow/sanitized runners don't flap.
  const double grace_ms = 400.0;
  serve::Backoff backoff({}, util::Rng(99));
  std::vector<double> latencies_us;
  bool contract_ok = true;
  const auto t0 = Clock::now();
  do {
    const auto q0 = Clock::now();
    const std::string response = round_trip_retry(fd, request, backoff);
    const double rtt_ms = seconds_since(q0) * 1e3;
    latencies_us.push_back(rtt_ms * 1e3);

    const auto rframe = serve::json::parse(response).as_object();
    if (!rframe.at("ok").as_bool()) {
      contract_ok = false;
      continue;
    }
    const auto& result = rframe.at("result").as_object();
    // Anytime contract: answered within budget + grace, with a feasible
    // best-so-far schedule (bnb seeds from the heuristic incumbent).
    if (rtt_ms > static_cast<double>(timeout_ms) + grace_ms) contract_ok = false;
    if (!result.at("feasible").as_bool()) contract_ok = false;
    if (const auto it = result.find("stop_reason"); it != result.end()) {
      if (it->second.as_string() == "deadline") ++r.timeouts;
      if (it->second.as_string() == "cancelled") ++r.cancels;
    }
  } while (seconds_since(t0) < budget_s);

  r.requests = latencies_us.size();
  r.full_evals_per_sec = static_cast<double>(r.requests) / seconds_since(t0);
  r.delta_evals_per_sec = r.full_evals_per_sec;
  r.speedup = 1.0;
  r.max_rel_err = contract_ok ? 0.0 : 1.0;
  r.deadline_hit =
      r.requests > 0 ? static_cast<double>(r.timeouts) / static_cast<double>(r.requests) : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    const auto pct = [&latencies_us](double p) {
      const auto idx = static_cast<std::size_t>(p * static_cast<double>(latencies_us.size() - 1));
      return latencies_us[idx];
    };
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
  }

  ::close(fd);
  server.request_drain();
  runner.join();
  ::rmdir(dir_template);
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results, bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_latency: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"basched-bench-serve-v2\",\n");
  std::fprintf(f, "  \"build\": \"%s\",\n",
#ifdef NDEBUG
               "release"
#else
               "debug"
#endif
  );
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"model\": \"rakhmatov-vrudhula\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"mode\": \"%s\", \"full_evals_per_sec\": %.6g, "
                 "\"delta_evals_per_sec\": %.6g, \"speedup\": %.6g, \"max_rel_err\": %.3g, "
                 "\"stream_len\": %llu, \"p50_us\": %.6g, \"p99_us\": %.6g, "
                 "\"timeouts\": %llu, \"cancels\": %llu, \"deadline_hit\": %.3g}%s\n",
                 r.n, r.mode.c_str(), r.full_evals_per_sec, r.delta_evals_per_sec, r.speedup,
                 r.max_rel_err, static_cast<unsigned long long>(r.requests), r.p50_us, r.p99_us,
                 static_cast<unsigned long long>(r.timeouts),
                 static_cast<unsigned long long>(r.cancels), r.deadline_hit,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: serve_latency [--quick] [--out BENCH_serve.json]\n");
      return 2;
    }
  }
  const double budget_s = quick ? 0.2 : 1.0;
  const std::string graph_text = bench_graph();

  std::vector<Result> results;
  results.push_back(bench_serve_warm(graph_text, budget_s));
  std::printf("serve_warm  n=%zu  cold %.0f req/s  warm %.0f req/s  speedup %.2fx  ident=%s\n",
              results.back().n, results.back().full_evals_per_sec,
              results.back().delta_evals_per_sec, results.back().speedup,
              results.back().max_rel_err == 0.0 ? "yes" : "NO");
  results.push_back(bench_serve_rtt(graph_text, budget_s));
  std::printf("serve_rtt   n=%zu  ping %.0f rt/s  sched %.0f req/s  p50 %.0fus  p99 %.0fus\n",
              results.back().n, results.back().full_evals_per_sec,
              results.back().delta_evals_per_sec, results.back().p50_us, results.back().p99_us);
  results.push_back(bench_serve_deadline(budget_s, quick ? 20 : 40));
  std::printf(
      "serve_deadline n=%zu  %.1f req/s  p99 %.0fus  deadline_hit %.0f%%  contract=%s\n",
      results.back().n, results.back().full_evals_per_sec, results.back().p99_us,
      results.back().deadline_hit * 100.0, results.back().max_rel_err == 0.0 ? "ok" : "VIOLATED");

  write_json(out, results, quick);
  std::printf("wrote %s\n", out.c_str());

  for (const Result& r : results) {
    if (r.max_rel_err > 0.0) {
      std::fprintf(stderr, "FAIL: %s violated its correctness contract\n", r.mode.c_str());
      return 1;
    }
  }
  return 0;
}
