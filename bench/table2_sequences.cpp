/// \file table2_sequences.cpp
/// \brief Regenerates the paper's **Table 2**: the task sequence, chosen
/// design-points, and weighted re-sequencing of every iteration of the
/// algorithm on G3 (deadline 230 min, β = 0.273).
#include <cstdio>

#include "basched/analysis/report.hpp"
#include "basched/graph/paper_graphs.hpp"

int main() {
  using namespace basched;
  const auto g3 = graph::make_g3();

  analysis::RunSpec spec;
  spec.name = "G3";
  spec.graph = &g3;
  spec.deadline = graph::kG3ExampleDeadline;
  spec.beta = graph::kPaperBeta;
  const auto result = analysis::run_ours(spec);

  std::printf("== Table 2: task sequences of G3 for different iterations ==\n");
  std::printf("deadline %.0f min, beta %.3f\n\n", spec.deadline, spec.beta);
  if (!result.feasible) {
    std::printf("INFEASIBLE: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s\n", analysis::format_table2(g3, result).c_str());
  std::printf("Paper (for reference): S1 = T1,T4,T5,T7,T3,T2,T6,T8,T10,T9,T13,T12,T11,T14,T15\n");
  std::printf("                       converging to T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,"
              "T14,T15 after 4 iterations.\n");
  return 0;
}
