/// \file perf_micro.cpp
/// \brief google-benchmark microbenchmarks: σ-evaluation throughput and
/// scheduler runtime scaling in task count n and design-point count m. The
/// paper argues the heuristic is cheap enough for on-device use; these
/// numbers quantify that on this host.
#include <benchmark/benchmark.h>

#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"

namespace {

using namespace basched;

void BM_SigmaEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  battery::DischargeProfile p;
  for (std::size_t i = 0; i < n; ++i) p.append(rng.uniform(0.5, 8.0), rng.uniform(20.0, 900.0));
  const battery::RakhmatovVrudhulaModel model(0.273);
  const double t = p.end_time();
  for (auto _ : state) benchmark::DoNotOptimize(model.charge_lost(p, t));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SigmaEvaluation)->Arg(15)->Arg(60)->Arg(240);

void BM_IterativeSchedulerG3(benchmark::State& state) {
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  for (auto _ : state) {
    auto r = core::schedule_battery_aware(g, graph::kG3ExampleDeadline, model);
    benchmark::DoNotOptimize(r.sigma);
  }
}
BENCHMARK(BM_IterativeSchedulerG3)->Unit(benchmark::kMillisecond);

void BM_IterativeSchedulerScalingN(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  const auto g = graph::make_layered_random(layers, 3, 0.3, synth, rng);
  const double d = g.column_time(0) + 0.6 * (g.column_time(3) - g.column_time(0));
  const battery::RakhmatovVrudhulaModel model(0.273);
  for (auto _ : state) {
    auto r = core::schedule_battery_aware(g, d, model);
    benchmark::DoNotOptimize(r.sigma);
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_IterativeSchedulerScalingN)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_IterativeSchedulerScalingM(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  graph::DesignPointSynthesis synth;
  synth.num_points = m;
  const auto g = graph::make_fork_join(3, 3, synth, rng);
  const double d =
      g.column_time(0) + 0.6 * (g.column_time(m - 1) - g.column_time(0));
  const battery::RakhmatovVrudhulaModel model(0.273);
  for (auto _ : state) {
    auto r = core::schedule_battery_aware(g, d, model);
    benchmark::DoNotOptimize(r.sigma);
  }
}
BENCHMARK(BM_IterativeSchedulerScalingM)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_RvDpBaselineG3(benchmark::State& state) {
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  for (auto _ : state) {
    auto r = baselines::schedule_rv_dp(g, 230.0, model);
    benchmark::DoNotOptimize(r.sigma);
  }
}
BENCHMARK(BM_RvDpBaselineG3)->Unit(benchmark::kMillisecond);

}  // namespace
