/// \file mission_lifetime.cpp
/// \brief The title's claim, made concrete: **battery lifetime** of a
/// periodic mission (frames completed before the battery dies) under
/// different schedulers. One frame = one execution of the task graph within
/// its period.
///
/// Two battery sizes per instance separate the regimes: on a *small*
/// battery (a couple of frames) the transient unavailable charge still
/// matters, while on a *large* battery the mission runs long enough that
/// cumulative *delivered* energy dominates and the plain min-energy
/// selection of [1] catches up — an honest boundary of the paper's
/// single-shot σ metric that the simulator makes measurable.
#include <cstdio>

#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"
#include "basched/sim/mission.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  struct Inst {
    const char* name;
    graph::TaskGraph g;
    double period;
    double alpha_small;
    double alpha_large;
  };
  Inst insts[] = {
      {"G2, period 75 min", graph::make_g2(), 75.0, 36000.0, 150000.0},
      {"G3, period 230 min", graph::make_g3(), 230.0, 40000.0, 250000.0},
  };

  std::printf("== Mission lifetime: frames completed before battery death ==\n\n");

  for (auto& inst : insts) {
    util::Table table({"scheduler", "frame sigma", "frame energy", "frames (small batt)",
                       "frames (large batt)"});
    table.set_align(0, util::Align::Left);

    auto frames_at = [&](const core::Schedule& s, double alpha) {
      sim::MissionSpec spec;
      spec.period = inst.period;
      spec.alpha = alpha;
      spec.max_frames = 500;
      return sim::run_mission(inst.g, s, spec, model).frames_completed;
    };
    auto report = [&](const char* name, const core::Schedule& s) {
      const auto profile = s.to_profile(inst.g);
      table.add_row({name, util::fmt_double(model.charge_lost_at_end(profile), 0),
                     util::fmt_double(profile.total_charge(), 0),
                     std::to_string(frames_at(s, inst.alpha_small)),
                     std::to_string(frames_at(s, inst.alpha_large))});
    };

    const auto ours = core::schedule_battery_aware(inst.g, inst.period, model);
    if (ours.feasible) report("battery-aware (ours)", ours.schedule);
    const auto dp = baselines::schedule_rv_dp(inst.g, inst.period, model);
    if (dp.feasible) report("RV-DP [1]", dp.schedule);
    const auto ch = baselines::schedule_chowdhury(inst.g, inst.period, model);
    if (ch.feasible) report("Chowdhury [7]", ch.schedule);
    report("all-fastest", core::Schedule{graph::topological_order(inst.g),
                                         core::uniform_assignment(inst.g, 0)});

    std::printf("%s (small battery %.0f mA*min, large %.0f mA*min)\n%s\n", inst.name,
                inst.alpha_small, inst.alpha_large, table.str().c_str());
  }
  std::printf("Reading: battery-aware scheduling minimizes sigma over ONE discharge burst —\n"
              "the paper's objective (Table 4) and the right call when the whole workload\n"
              "must finish on the remaining charge. Once frames repeat with inter-frame\n"
              "recovery, the transient advantage amortizes away and cumulative delivered\n"
              "energy takes over, letting the min-energy selection of [1] tie on the small\n"
              "battery and edge ahead on the large one. Battery-blind orders (Chowdhury's\n"
              "single pass, all-fastest) lose in every regime. The simulator makes this\n"
              "boundary of the single-shot sigma metric measurable.\n");
  return 0;
}
