/// \file bounds_check.cpp
/// \brief Empirical check of the §3 analytic properties the algorithm is
/// built on: (i) non-increasing current order minimizes σ and non-decreasing
/// maximizes it (Rakhmatov [1]); (ii) slack is better spent on later tasks
/// (Chowdhury [7]). Prints where our schedules sit inside the [lower, upper]
/// envelope.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/bounds.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  // (i) ordering bounds on random independent load sets.
  std::printf("== (i) ordering bounds on random independent loads (20 trials) ==\n\n");
  util::Rng rng(2005);
  int violations = 0;
  double worst_spread = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::Load> loads;
    const int n = static_cast<int>(rng.uniform_int(3, 10));
    for (int i = 0; i < n; ++i) loads.push_back({rng.uniform(20, 900), rng.uniform(0.5, 8)});
    const double lower = core::sigma_noninc_current(loads, model);
    const double upper = core::sigma_nondec_current(loads, model);
    rng.shuffle(loads);
    const double mid = core::sigma_in_order(loads, model);
    if (mid < lower - 1e-9 || mid > upper + 1e-9) ++violations;
    worst_spread = std::max(worst_spread, (upper - lower) / lower * 100.0);
  }
  std::printf("violations of lower <= shuffled <= upper: %d / 20\n", violations);
  std::printf("largest bound spread observed: %.1f%% of the lower bound\n\n", worst_spread);

  // (ii) slack placement: downscale the k-th of five identical tasks.
  std::printf("== (ii) slack placement ([7]): downscale one of five identical tasks ==\n\n");
  util::Table slack_table({"downscaled task index", "sigma (mA*min)"});
  for (int k = 0; k < 5; ++k) {
    battery::DischargeProfile p;
    for (int i = 0; i < 5; ++i) {
      if (i == k)
        p.append(8.0, 150.0);  // downscaled: half current, double duration
      else
        p.append(4.0, 300.0);
    }
    slack_table.add_row({std::to_string(k + 1),
                         util::fmt_double(model.charge_lost(p, p.end_time()), 1)});
  }
  std::printf("%s\n", slack_table.str().c_str());
  std::printf("sigma must decrease monotonically down the table: the later the slack, the\n"
              "better (the paper's justification for starting design-point selection from\n"
              "the last task).\n\n");

  // (iii) where our G3/G2 schedules sit inside the envelope.
  std::printf("== (iii) our schedules inside the [noninc, nondec] envelope ==\n\n");
  util::Table env_table({"instance", "lower", "ours", "upper", "position %"});
  env_table.set_align(0, util::Align::Left);
  struct Inst {
    const char* name;
    graph::TaskGraph g;
    double d;
  };
  Inst insts[] = {{"G2 d=75", graph::make_g2(), 75.0}, {"G3 d=230", graph::make_g3(), 230.0}};
  for (auto& inst : insts) {
    const auto r = core::schedule_battery_aware(inst.g, inst.d, model);
    if (!r.feasible) continue;
    const auto b = core::sigma_bounds(inst.g, r.schedule.assignment, model);
    const double pos = (r.sigma - b.lower) / std::max(b.upper - b.lower, 1e-9) * 100.0;
    env_table.add_row({inst.name, util::fmt_double(b.lower, 0), util::fmt_double(r.sigma, 0),
                       util::fmt_double(b.upper, 0), util::fmt_double(pos, 1)});
  }
  std::printf("%s\n", env_table.str().c_str());
  std::printf("'position' near 0%% means the dependency-constrained schedule almost achieves\n"
              "the unconstrained non-increasing-current optimum.\n");
  return 0;
}
