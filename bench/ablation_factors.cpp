/// \file ablation_factors.cpp
/// \brief Ablation of the suitability metric B = SR + CR + ENR + CIF + DPF:
/// drop each term in turn (weight 0) and measure the battery cost on the
/// paper graphs and a few synthetic ones. Shows how much each factor
/// contributes to the full heuristic's quality.
#include <cstdio>
#include <string>
#include <vector>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

namespace {

struct Instance {
  std::string name;
  basched::graph::TaskGraph graph;
  double deadline;
};

}  // namespace

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  std::vector<Instance> instances;
  instances.push_back({"G2 d=75", graph::make_g2(), 75.0});
  instances.push_back({"G3 d=230", graph::make_g3(), graph::kG3ExampleDeadline});
  {
    util::Rng rng(7);
    graph::DesignPointSynthesis synth;
    synth.num_points = 4;
    auto g = graph::make_fork_join(3, 3, synth, rng);
    const double d = g.column_time(0) + 0.6 * (g.column_time(3) - g.column_time(0));
    instances.push_back({"fork-join seed=7", std::move(g), d});
  }
  {
    util::Rng rng(11);
    graph::DesignPointSynthesis synth;
    synth.num_points = 4;
    auto g = graph::make_layered_random(5, 3, 0.3, synth, rng);
    const double d = g.column_time(0) + 0.6 * (g.column_time(3) - g.column_time(0));
    instances.push_back({"layered seed=11", std::move(g), d});
  }

  struct Variant {
    const char* name;
    core::FactorWeights weights;
  };
  const std::vector<Variant> variants = {
      {"full B", {1, 1, 1, 1, 1}},  {"no SR", {0, 1, 1, 1, 1}}, {"no CR", {1, 0, 1, 1, 1}},
      {"no ENR", {1, 1, 0, 1, 1}}, {"no CIF", {1, 1, 1, 0, 1}}, {"no DPF", {1, 1, 1, 1, 0}},
  };

  std::printf("== Ablation: dropping individual B terms (sigma in mA*min) ==\n\n");
  std::vector<std::string> header{"variant"};
  for (const auto& inst : instances) header.push_back(inst.name);
  util::Table table(std::move(header));
  table.set_align(0, util::Align::Left);

  for (const auto& var : variants) {
    std::vector<std::string> row{var.name};
    for (const auto& inst : instances) {
      core::IterativeOptions opts;
      opts.window.chooser.weights = var.weights;
      const auto r = core::schedule_battery_aware(inst.graph, inst.deadline, model, opts);
      row.push_back(r.feasible ? util::fmt_double(r.sigma, 0) : "infeas");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: 'full B' reproduces the paper; each 'no X' row shows the cost of\n"
              "removing one factor from the suitability metric. Infeasible cells mean the\n"
              "ablated heuristic failed to meet the deadline at all.\n");
  return 0;
}
