/// \file bnb_optimality_gap.cpp
/// \brief How far from optimal is the paper's heuristic? Branch-and-bound
/// gives exact optima on small/medium instances; this bench reports the gap
/// of our algorithm and the baselines against it, plus BnB pruning stats.
#include <cstdio>

#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  struct Inst {
    std::string name;
    graph::TaskGraph g;
    double deadline;
  };
  std::vector<Inst> insts;
  insts.push_back({"G2 d=55", graph::make_g2(), 55.0});
  insts.push_back({"G2 d=75", graph::make_g2(), 75.0});
  insts.push_back({"G2 d=95", graph::make_g2(), 95.0});
  for (std::uint64_t seed : {41, 42, 43}) {
    util::Rng rng(seed);
    graph::DesignPointSynthesis synth;
    synth.num_points = 3;
    auto g = graph::make_series_parallel(8, synth, rng);
    const double d = g.column_time(0) + 0.6 * (g.column_time(2) - g.column_time(0));
    insts.push_back({"sp8 seed=" + std::to_string(seed), std::move(g), d});
  }

  std::printf("== Optimality gap vs branch-and-bound (gap %% = 100*(algo-opt)/opt) ==\n\n");
  util::Table table({"instance", "optimal sigma", "ours gap %", "RV-DP gap %", "Chowdhury gap %",
                     "BnB nodes", "BnB evals", "pruned"});
  table.set_align(0, util::Align::Left);

  for (auto& inst : insts) {
    baselines::BnbStats stats;
    const auto opt = baselines::schedule_branch_and_bound(inst.g, inst.deadline, model, {}, &stats);
    if (!opt.feasible || opt.truncated()) {  // a truncated σ is not an optimum to gap against
      table.add_row({inst.name, "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    auto gap = [&](bool feasible, double sigma) {
      return feasible ? util::fmt_double(100.0 * (sigma - opt.sigma) / opt.sigma, 2)
                      : std::string("-");
    };
    const auto ours = core::schedule_battery_aware(inst.g, inst.deadline, model);
    const auto dp = baselines::schedule_rv_dp(inst.g, inst.deadline, model);
    const auto ch = baselines::schedule_chowdhury(inst.g, inst.deadline, model);
    table.add_row({inst.name, util::fmt_double(opt.sigma, 0), gap(ours.feasible, ours.sigma),
                   gap(dp.feasible, dp.sigma), gap(ch.feasible, ch.sigma),
                   std::to_string(opt.nodes_explored), std::to_string(opt.evaluations),
                   std::to_string(stats.pruned_deadline + stats.pruned_sigma)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Small 'ours' gaps confirm the iterative heuristic's quality; large baseline\n"
              "gaps show what battery-blind selection ([1]) or sequencing ([7]) costs.\n"
              "'BnB evals' counts leaves priced by the incremental evaluator (O(terms)\n"
              "each); 'pruned' = subtrees cut by the deadline + sigma bounds.\n");
  return 0;
}
