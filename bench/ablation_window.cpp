/// \file ablation_window.cpp
/// \brief Ablation of the paper's two structural mechanisms: the window
/// sweep (EvaluateWindows) and the Eq. 4 weighted re-sequencing between
/// iterations. Also covers the last-task pinning rule.
#include <cstdio>
#include <string>
#include <vector>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);

  struct Instance {
    std::string name;
    graph::TaskGraph graph;
    double deadline;
  };
  std::vector<Instance> instances;
  instances.push_back({"G2 d=55", graph::make_g2(), 55.0});
  instances.push_back({"G2 d=95", graph::make_g2(), 95.0});
  instances.push_back({"G3 d=150", graph::make_g3(), 150.0});
  instances.push_back({"G3 d=230", graph::make_g3(), 230.0});
  {
    util::Rng rng(21);
    graph::DesignPointSynthesis synth;
    synth.num_points = 5;
    auto g = graph::make_series_parallel(12, synth, rng);
    const double d = g.column_time(0) + 0.55 * (g.column_time(4) - g.column_time(0));
    instances.push_back({"series-par seed=21", std::move(g), d});
  }

  struct Variant {
    const char* name;
    bool sweep, reseq, pin;
  };
  const std::vector<Variant> variants = {
      {"full algorithm", true, true, true},
      {"no window sweep", false, true, true},
      {"no re-sequencing", true, false, true},
      {"neither", false, false, true},
      {"no last-task pin", true, true, false},
  };

  std::printf("== Ablation: window sweep / weighted re-sequencing / last-task pin ==\n");
  std::printf("(sigma in mA*min; smaller is better)\n\n");
  std::vector<std::string> header{"variant"};
  for (const auto& inst : instances) header.push_back(inst.name);
  util::Table table(std::move(header));
  table.set_align(0, util::Align::Left);

  for (const auto& var : variants) {
    std::vector<std::string> row{var.name};
    for (const auto& inst : instances) {
      core::IterativeOptions opts;
      opts.window.sweep = var.sweep;
      opts.resequence = var.reseq;
      opts.window.chooser.pin_last_task = var.pin;
      const auto r = core::schedule_battery_aware(inst.graph, inst.deadline, model, opts);
      row.push_back(r.feasible ? util::fmt_double(r.sigma, 0) : "infeas");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("The paper's Table 3 shows why the sweep matters: at iteration 1 the narrow\n"
              "window 4:5 wins (16353 vs 17169 for the full window), while from iteration 2\n"
              "the full window 1:5 wins — no single fixed window dominates.\n");
  return 0;
}
