#include "basched/sim/mission.hpp"

#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::sim {

namespace {

/// First σ = alpha crossing within [iv.start, iv.end()] of the accumulated
/// profile, assuming σ(iv.end()) >= alpha. Mirrors battery::find_lifetime's
/// scan-and-bisect but over a single interval, so the per-frame death check
/// touches only the frame's own intervals (keeping the whole mission
/// quadratic instead of cubic in the frame count).
double crossing_in_interval(const battery::BatteryModel& model,
                            const battery::DischargeProfile& profile,
                            const battery::DischargeInterval& iv, double alpha) {
  constexpr int kSamples = 64;
  double lo = iv.start;
  if (model.charge_lost(profile, lo) >= alpha) return lo;
  const double step = iv.duration / kSamples;
  double hi = iv.end();
  for (int j = 1; j <= kSamples; ++j) {
    const double t = (j == kSamples) ? iv.end() : iv.start + j * step;
    if (model.charge_lost(profile, t) >= alpha) {
      hi = t;
      break;
    }
    lo = t;
  }
  while (hi - lo > 1e-9) {
    const double mid = 0.5 * (lo + hi);
    if (model.charge_lost(profile, mid) >= alpha)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace

MissionResult run_mission(const graph::TaskGraph& graph, const core::Schedule& schedule,
                          const MissionSpec& spec, const battery::BatteryModel& model) {
  schedule.validate(graph);
  if (!(spec.alpha > 0.0)) throw std::invalid_argument("run_mission: alpha must be > 0");
  if (spec.max_frames < 1) throw std::invalid_argument("run_mission: max_frames must be >= 1");
  const double frame_work = schedule.duration(graph);
  if (!(spec.period >= frame_work))
    throw std::invalid_argument("run_mission: period is shorter than the frame's execution time");

  // One frame's burst, relative to its period start.
  const battery::DischargeProfile frame = schedule.to_profile(graph);

  MissionResult result;
  battery::DischargeProfile accumulated;
  for (int f = 0; f < spec.max_frames; ++f) {
    const double frame_start = f * spec.period;
    const std::size_t first_new = accumulated.size();
    for (const auto& iv : frame.intervals())
      accumulated.append_at(frame_start + iv.start, iv.duration, iv.current);

    // Death can only occur while current flows, and earlier frames were
    // already verified, so only this frame's intervals need checking. The
    // guard samples a few interior points besides the end because σ can peak
    // mid-interval when a light task follows a heavy one.
    bool died = false;
    for (std::size_t k = first_new; k < accumulated.size() && !died; ++k) {
      const auto& iv = accumulated.intervals()[k];
      if (iv.current <= 0.0) continue;
      constexpr int kGuardSamples = 8;
      for (int j = 1; j <= kGuardSamples; ++j) {
        const double t = iv.start + iv.duration * j / kGuardSamples;
        if (model.charge_lost(accumulated, t) >= spec.alpha) {
          died = true;
          break;
        }
      }
      if (died) {
        result.death_time = crossing_in_interval(model, accumulated, iv, spec.alpha);
        result.final_sigma = model.charge_lost(accumulated, result.death_time);
        return result;  // frames_completed excludes the fatal frame
      }
    }
    ++result.frames_completed;
  }
  result.battery_survived = true;
  result.final_sigma = model.charge_lost(accumulated, accumulated.end_time());
  return result;
}

int compare_missions(const graph::TaskGraph& graph, const core::Schedule& a,
                     const core::Schedule& b, const MissionSpec& spec,
                     const battery::BatteryModel& model) {
  const MissionResult ra = run_mission(graph, a, spec, model);
  const MissionResult rb = run_mission(graph, b, spec, model);
  return ra.frames_completed - rb.frames_completed;
}

}  // namespace basched::sim
