#include "basched/sim/online.hpp"

#include <stdexcept>

#include "basched/graph/topology.hpp"
#include "basched/util/assert.hpp"
#include "basched/util/rng.hpp"

namespace basched::sim {

namespace {

/// The queue of (original task id, column) pairs still to execute.
struct PendingPlan {
  std::vector<graph::TaskId> order;  // original ids, execution order
  core::Assignment columns;          // indexed by original id
};

PendingPlan plan_or_fallback(const graph::TaskGraph& graph, double deadline,
                             const battery::BatteryModel& model,
                             const core::IterativeOptions& planner, bool* feasible) {
  PendingPlan plan;
  const auto r = core::schedule_battery_aware(graph, deadline, model, planner);
  if (r.feasible) {
    plan.order = r.schedule.sequence;
    plan.columns = r.schedule.assignment;
    if (feasible != nullptr) *feasible = true;
    return plan;
  }
  // Fall back to all-fastest in deterministic topological order.
  plan.order = graph::topological_order(graph);
  plan.columns = core::uniform_assignment(graph, 0);
  if (feasible != nullptr) *feasible = false;
  return plan;
}

}  // namespace

OnlineResult execute_online(const graph::TaskGraph& graph, double deadline,
                            const battery::BatteryModel& model, const OnlineOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("execute_online: deadline must be > 0");
  if (!(options.noise.factor_lo > 0.0) || options.noise.factor_hi < options.noise.factor_lo)
    throw std::invalid_argument("execute_online: require 0 < factor_lo <= factor_hi");

  util::Rng rng(options.noise.seed);
  OnlineResult result;

  bool initial_feasible = false;
  PendingPlan plan = plan_or_fallback(graph, deadline, model, options.planner, &initial_feasible);
  result.planned = initial_feasible;

  std::vector<bool> executed(graph.num_tasks(), false);
  std::size_t cursor = 0;  // next position in plan.order
  double now = 0.0;
  std::size_t done = 0;

  while (done < graph.num_tasks()) {
    BASCHED_ASSERT(cursor < plan.order.size());
    const graph::TaskId v = plan.order[cursor++];
    BASCHED_ASSERT(!executed[v]);
    const auto& pt = graph.task(v).point(plan.columns[v]);
    const double factor = (options.noise.factor_lo == options.noise.factor_hi)
                              ? options.noise.factor_lo
                              : rng.uniform(options.noise.factor_lo, options.noise.factor_hi);
    const double actual = pt.duration * factor;
    result.realized.append(actual, pt.current);
    now += actual;
    executed[v] = true;
    ++done;

    if (done == graph.num_tasks()) break;

    if (options.policy == ReplanPolicy::Always) {
      // Re-plan the unexecuted remainder against the remaining deadline.
      std::vector<graph::TaskId> remaining;
      for (graph::TaskId u = 0; u < graph.num_tasks(); ++u)
        if (!executed[u]) remaining.push_back(u);
      const graph::Subgraph sub = graph::induced_subgraph(graph, remaining);
      const double left = deadline - now;
      PendingPlan next;
      if (left > 0.0) {
        bool ok = false;
        const PendingPlan sub_plan =
            plan_or_fallback(sub.graph, left, model, options.planner, &ok);
        if (ok) ++result.replans;
        next.order.reserve(sub_plan.order.size());
        next.columns.assign(graph.num_tasks(), 0);
        for (std::size_t i = 0; i < sub_plan.order.size(); ++i) {
          const graph::TaskId orig = sub.original_ids[sub_plan.order[i]];
          next.order.push_back(orig);
          next.columns[orig] = sub_plan.columns[sub_plan.order[i]];
        }
      } else {
        // Slack exhausted: sprint — fastest columns, deterministic order.
        const auto sub_order = graph::topological_order(sub.graph);
        next.columns.assign(graph.num_tasks(), 0);
        for (graph::TaskId s : sub_order) next.order.push_back(sub.original_ids[s]);
      }
      plan = std::move(next);
      cursor = 0;
    }
  }

  result.finish_time = now;
  result.deadline_met = now <= deadline * (1.0 + 1e-9);
  result.sigma = model.charge_lost(result.realized, now);
  return result;
}

}  // namespace basched::sim
