/// \file mission.hpp
/// \brief Battery-lifetime mission simulator: how many *frames* of a
/// periodic application does a finite battery sustain?
///
/// This closes the loop on the paper's motivation ("battery lifetime
/// maximization is one of the most important design goals"): the task graph
/// is one frame of a periodic workload (sensor sweep, control loop, video
/// frame …) that must complete within each period. The schedule fixes the
/// discharge burst of a frame; idle time to the end of the period is genuine
/// rest during which the battery recovers. The simulator repeats frames
/// until the battery dies and reports the count — so two schedules with
/// similar per-frame σ can still differ meaningfully in delivered frames.
#pragma once

#include <optional>

#include "basched/battery/model.hpp"
#include "basched/core/schedule.hpp"

namespace basched::sim {

/// A periodic mission.
struct MissionSpec {
  double period = 0.0;     ///< frame period (minutes); must be >= schedule duration
  double alpha = 0.0;      ///< battery capacity (mA·min)
  int max_frames = 10000;  ///< simulation horizon (frames)
};

/// Outcome of a mission run.
struct MissionResult {
  int frames_completed = 0;      ///< frames fully executed before death
  bool battery_survived = false; ///< true if max_frames completed without death
  double death_time = 0.0;       ///< battery-death instant (minutes); 0 if survived
  double final_sigma = 0.0;      ///< σ at the end of the simulation
};

/// Simulates the periodic mission. Frames run back-to-back at the start of
/// each period; the remainder of the period is rest. A frame *counts* only
/// if the battery survives the entire frame. Throws std::invalid_argument on
/// malformed inputs (invalid schedule, period shorter than the frame,
/// non-positive alpha, max_frames < 1).
[[nodiscard]] MissionResult run_mission(const graph::TaskGraph& graph,
                                        const core::Schedule& schedule, const MissionSpec& spec,
                                        const battery::BatteryModel& model);

/// Convenience: the largest battery-sustainable frame count difference
/// between two schedules under the same spec (positive = `a` lasts longer).
[[nodiscard]] int compare_missions(const graph::TaskGraph& graph, const core::Schedule& a,
                                   const core::Schedule& b, const MissionSpec& spec,
                                   const battery::BatteryModel& model);

}  // namespace basched::sim
