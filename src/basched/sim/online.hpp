/// \file online.hpp
/// \brief Online (receding-horizon) execution with execution-time noise.
///
/// The paper schedules *offline* from worst/average-case execution-time
/// estimates. On a real platform tasks finish early or late, which skews the
/// carefully-shaped discharge profile. The paper's related-work section
/// notes that its own algorithm is cheap enough to run "on an embedded
/// computing platform"; this module takes that seriously: after each task
/// completes, the executor can *re-plan* the unexecuted remainder of the
/// DAG against the remaining deadline, using the same iterative algorithm.
///
/// Noise model: each task's realized duration is its estimate multiplied by
/// an independent uniform factor in [factor_lo, factor_hi]; the platform
/// current is unchanged (the implementation draws what it draws — only the
/// time varies). Re-planning optimizes the suffix in isolation, which is
/// justified by the RV model's additivity over intervals (the prefix's
/// contribution to future σ is fixed by the time already spent).
#pragma once

#include <cstdint>

#include "basched/battery/model.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule.hpp"

namespace basched::sim {

/// When the executor recomputes the plan.
enum class ReplanPolicy {
  Never,   ///< execute the offline plan verbatim (assignment and order fixed)
  Always,  ///< re-run the scheduler on the remaining subgraph after every task
};

/// Execution-time noise: realized = estimate · U[factor_lo, factor_hi].
struct ExecutionNoise {
  double factor_lo = 1.0;  ///< must be > 0
  double factor_hi = 1.0;  ///< must be >= factor_lo
  std::uint64_t seed = 1;
};

/// Online-execution configuration.
struct OnlineOptions {
  ReplanPolicy policy = ReplanPolicy::Never;
  ExecutionNoise noise{};
  core::IterativeOptions planner{};  ///< options for the (re)planning calls
};

/// What actually happened.
struct OnlineResult {
  bool planned = false;       ///< the initial offline plan existed
  bool deadline_met = false;  ///< realized finish time <= deadline
  double finish_time = 0.0;   ///< realized completion of the last task
  double sigma = 0.0;         ///< σ of the realized profile at finish_time
  int replans = 0;            ///< re-planning invocations that produced a new plan
  battery::DischargeProfile realized;  ///< the profile the battery actually saw
};

/// Executes `graph` online against `deadline`. The initial plan comes from
/// the paper's algorithm; when it is infeasible the executor falls back to
/// the all-fastest assignment in deterministic topological order (reporting
/// deadline_met accordingly — the show must go on). When a mid-run re-plan
/// is infeasible (overruns ate the slack), the remaining tasks run at their
/// fastest design-points. Throws std::invalid_argument on invalid graph,
/// deadline, or noise bounds.
[[nodiscard]] OnlineResult execute_online(const graph::TaskGraph& graph, double deadline,
                                          const battery::BatteryModel& model,
                                          const OnlineOptions& options = {});

}  // namespace basched::sim
