#include "basched/core/battery_cost.hpp"

namespace basched::core {

CostResult calculate_battery_cost_unchecked(const graph::TaskGraph& graph,
                                            const Schedule& schedule,
                                            const battery::BatteryModel& model) {
  const battery::DischargeProfile profile = schedule.to_profile(graph);
  CostResult r;
  r.duration = profile.end_time();
  r.energy = profile.total_charge();
  r.sigma = model.charge_lost(profile, r.duration);
  return r;
}

CostResult calculate_battery_cost(const graph::TaskGraph& graph, const Schedule& schedule,
                                  const battery::BatteryModel& model) {
  schedule.validate(graph);
  return calculate_battery_cost_unchecked(graph, schedule, model);
}

}  // namespace basched::core
