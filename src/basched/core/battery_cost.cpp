#include "basched/core/battery_cost.hpp"

#include <memory>

namespace basched::core {

CostResult calculate_battery_cost_unchecked(const graph::TaskGraph& graph,
                                            const Schedule& schedule,
                                            const battery::BatteryModel& model) {
  const battery::DischargeProfile profile = schedule.to_profile(graph);
  CostResult r;
  r.duration = profile.end_time();
  r.energy = profile.total_charge();
  r.sigma = model.charge_lost(profile, r.duration);
  return r;
}

CostResult calculate_battery_cost(const graph::TaskGraph& graph, const Schedule& schedule,
                                  const battery::BatteryModel& model) {
  schedule.validate(graph);
  return calculate_battery_cost_unchecked(graph, schedule, model);
}

CostResult calculate_battery_cost_incremental(const graph::TaskGraph& graph,
                                              const Schedule& schedule,
                                              const battery::BatteryModel& model) {
  const std::unique_ptr<battery::IncrementalSigma> eval = model.incremental_sigma();
  CostResult r;
  for (graph::TaskId v : schedule.sequence) {
    const auto& pt = graph.task(v).point(schedule.assignment[v]);
    eval->append(pt.duration, pt.current);
    r.energy += pt.energy();
  }
  r.duration = eval->end_time();
  r.sigma = eval->sigma(r.duration);
  return r;
}

}  // namespace basched::core
