#include "basched/core/design_point_chooser.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/core/list_scheduler.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

namespace {

double total_duration(const graph::TaskGraph& graph, const Assignment& assignment) {
  double t = 0.0;
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    t += graph.task(v).point(assignment[v]).duration;
  return t;
}

double total_energy(const graph::TaskGraph& graph, const Assignment& assignment) {
  double e = 0.0;
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    e += graph.task(v).point(assignment[v]).energy();
  return e;
}

double sequence_cif(const graph::TaskGraph& graph, const std::vector<graph::TaskId>& sequence,
                    const Assignment& assignment) {
  std::vector<double> currents;
  currents.reserve(sequence.size());
  for (graph::TaskId v : sequence) currents.push_back(graph.task(v).point(assignment[v]).current);
  return current_increase_fraction(currents);
}

}  // namespace

DpfFactors calculate_dpf(const graph::TaskGraph& graph,
                         const std::vector<graph::TaskId>& sequence,
                         const std::vector<graph::TaskId>& energy_order,
                         const Assignment& assignment, const std::vector<bool>& fixed_or_tagged,
                         std::size_t window_start, double deadline, const GraphStats& stats) {
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  BASCHED_ASSERT(assignment.size() == n && fixed_or_tagged.size() == n);
  BASCHED_ASSERT(window_start < m);

  // Scratch copies (the paper's Stemp / Etemp).
  Assignment a = assignment;
  std::vector<bool> efixed = fixed_or_tagged;
  // A free task already at the window's fastest column cannot be upgraded.
  for (graph::TaskId v = 0; v < n; ++v)
    if (a[v] <= window_start) efixed[v] = true;

  double te = total_duration(graph, a);

  // Upgrade free tasks, cheapest average energy first, until the deadline is
  // met or nobody is left to upgrade.
  while (te > deadline) {
    graph::TaskId q = n;  // sentinel
    for (graph::TaskId cand : energy_order) {
      if (!efixed[cand]) {
        q = cand;
        break;
      }
    }
    if (q == n) {
      // Deadline unmeetable with this tag: DPF = ∞; ENR/CIF still reported
      // on the scratch state, per Fig. 2.
      return {energy_ratio(total_energy(graph, a), stats), sequence_cif(graph, sequence, a),
              kInfeasible};
    }
    BASCHED_ASSERT(a[q] > window_start);
    te -= graph.task(q).point(a[q]).duration;
    --a[q];
    te += graph.task(q).point(a[q]).duration;
    if (a[q] == window_start) efixed[q] = true;
  }

  // DPF per Eq. 2/3 over the *free* tasks (free in S: not fixed, not tagged).
  std::vector<std::size_t> counts(m, 0);
  std::size_t free_total = 0;
  for (graph::TaskId v = 0; v < n; ++v) {
    if (!fixed_or_tagged[v]) {
      ++counts[a[v]];
      ++free_total;
    }
  }
  double dpf = 0.0;
  if (free_total == 0) {
    // "If we are considering the last task we set DPF equal to the slack
    // ratio so that more emphasis is given to decreasing the slack."
    dpf = (deadline - te) / deadline;
  } else {
    dpf = dpf_from_histogram(counts, free_total);
  }
  return {energy_ratio(total_energy(graph, a), stats), sequence_cif(graph, sequence, a), dpf};
}

Assignment choose_design_points(const graph::TaskGraph& graph,
                                const std::vector<graph::TaskId>& sequence,
                                std::size_t window_start, double deadline,
                                const GraphStats& stats, const ChooserOptions& options) {
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  if (n == 0) throw std::invalid_argument("choose_design_points: empty graph");
  if (window_start >= m) throw std::invalid_argument("choose_design_points: window_start >= m");
  if (!(deadline > 0.0)) throw std::invalid_argument("choose_design_points: deadline must be > 0");
  if (!graph::is_topological_order(graph, sequence))
    throw std::invalid_argument("choose_design_points: sequence is not a topological order");

  const std::vector<graph::TaskId> energy_order = energy_vector(graph);

  Assignment assign(n, m - 1);           // everyone starts on the lowest-power column
  std::vector<bool> fixed(n, false);     // fixed in S
  double tsum = 0.0;                     // execution time of the fixed tasks

  std::size_t first_pos = n;  // first sequence position that still needs a choice (exclusive)
  if (options.pin_last_task) {
    const graph::TaskId last = sequence.back();
    fixed[last] = true;  // pinned to column m-1
    tsum += graph.task(last).point(m - 1).duration;
    first_pos = n - 1;
  }

  for (std::size_t pos = first_pos; pos-- > 0;) {
    const graph::TaskId tid = sequence[pos];
    double best_b = kInfeasible;
    std::size_t best_j = window_start;  // fall back to the fastest column if every tag is infeasible
    bool found = false;

    for (std::size_t j = m; j-- > window_start;) {  // j = m-1 downto window_start
      assign[tid] = j;                              // tag
      fixed[tid] = true;
      const double ttemp = tsum + graph.task(tid).point(j).duration;
      const double sr = slack_ratio(deadline, ttemp);
      const double cr = current_ratio(graph.task(tid).point(j).current, stats);
      const DpfFactors f =
          calculate_dpf(graph, sequence, energy_order, assign, fixed, window_start, deadline, stats);
      const double b = options.weights.combine(sr, cr, f.enr, f.cif, f.dpf);
      fixed[tid] = false;  // untag
      if (!std::isinf(b) && b < best_b) {
        best_b = b;
        best_j = j;
        found = true;
      }
    }
    if (!found) best_j = window_start;  // infeasible either way; run as fast as allowed

    assign[tid] = best_j;
    fixed[tid] = true;
    tsum += graph.task(tid).point(best_j).duration;
  }
  return assign;
}

}  // namespace basched::core
