/// \file window_evaluator.hpp
/// \brief EvaluateWindows (Fig. 1): sweep design-point windows and keep the
/// assignment with the smallest battery cost.
///
/// A *window* [w .. m-1] restricts the chooser to the w-th through last
/// design-point columns (the paper's "Window w:m" notation, Fig. 3; columns
/// are 0-based here). The sweep starts at the narrowest window whose fastest
/// column can meet the deadline — the paper's CT(k) feasibility walk — and
/// widens one column at a time until the full window [0 .. m-1] has been
/// evaluated. Each window's assignment is scored with CalculateBatteryCost;
/// the best *feasible* (deadline-respecting) one wins.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "basched/battery/model.hpp"
#include "basched/core/design_point_chooser.hpp"
#include "basched/core/schedule.hpp"

namespace basched::util::fastmath {
class DecayRowCache;
}

namespace basched::core {

/// Outcome of one window's evaluation.
struct WindowResult {
  std::size_t window_start = 0;  ///< 0-based first column of the window
  Assignment assignment;         ///< chooser output for this window
  double sigma = 0.0;            ///< battery cost σ of (sequence, assignment)
  double duration = 0.0;         ///< makespan Δ of the assignment
  bool feasible = false;         ///< duration <= deadline (within tolerance)
};

/// Outcome of the full sweep for one sequence.
struct WindowsOutcome {
  std::vector<WindowResult> windows;  ///< in evaluation order (narrow → wide)
  /// Index into `windows` of the best feasible result, or std::nullopt when
  /// every window violated the deadline.
  std::optional<std::size_t> best;

  [[nodiscard]] bool feasible() const noexcept { return best.has_value(); }
  [[nodiscard]] const WindowResult& best_window() const { return windows.at(best.value()); }
};

/// Sweep options.
struct WindowOptions {
  ChooserOptions chooser{};
  /// When false, only the widest window [0 .. m-1] is evaluated (ablation:
  /// "no window function").
  bool sweep = true;
  /// Optional pre-warmed per-Δt decay cache the sweep's evaluator adopts (a
  /// copy) instead of warming its own — see ScheduleEvaluator's warm
  /// constructor. Null (the default) keeps the self-warming behaviour; the
  /// pointee must outlive the call. Results are bit-identical either way.
  const util::fastmath::DecayRowCache* warm_cache = nullptr;
};

/// Runs the sweep. Returns std::nullopt if the deadline is unmeetable even
/// with every task at the fastest column (d < CT(0)) — the paper's
/// "Exit with error" branch. Throws std::invalid_argument on malformed
/// inputs (invalid sequence, non-positive deadline, empty graph).
[[nodiscard]] std::optional<WindowsOutcome> evaluate_windows(
    const graph::TaskGraph& graph, const std::vector<graph::TaskId>& sequence, double deadline,
    const battery::BatteryModel& model, const GraphStats& stats, const WindowOptions& options = {});

/// Tolerance used for deadline feasibility checks: duration <= d * (1 + eps).
inline constexpr double kDeadlineRelTol = 1e-9;

}  // namespace basched::core
