/// \file design_point_chooser.hpp
/// \brief ChooseDesignPoints + CalculateDPF (Figs. 1 and 2 of the paper): the
/// backward pass that assigns one design-point column to every task of a
/// given sequence.
///
/// The pass walks the sequence from the last task to the first. The last task
/// is pinned to the lowest-power column (paper: "S(n,m) = 1"). For every
/// earlier task the pass *tags* each column j inside the window
/// [window_start .. m-1], scores it with the suitability
/// B = SR + CR + ENR + CIF + DPF, and *fixes* the task at the column with the
/// smallest B (ties go to the lower-power column, which the scan order makes
/// automatic).
///
/// Scoring a tagged column requires the DPF simulation (CalculateDPF,
/// Fig. 2): on a scratch copy of the assignment, *free* tasks (those not yet
/// fixed/tagged — the ones earlier in the sequence, still parked on the
/// lowest-power column) are upgraded one column at a time, in increasing
/// average-energy order (the paper's Energy Vector E), until the tentative
/// total execution time meets the deadline. If the deadline cannot be met
/// even with every free task at the window's fastest column, DPF = +∞ (the
/// tagged choice is infeasible). Otherwise DPF scores how far up the power
/// scale the free tasks had to move (Eq. 2/3, `dpf_from_histogram`), and ENR
/// / CIF are evaluated on the scratch assignment (CalculateFactors).
///
/// Interpretation notes vs. the paper's garbled pseudocode (DESIGN.md §5.3):
///  * "first free task in E" = the free task with the smallest average
///    energy (Fig. 4's E = [3,4,5,1,2] picks T1 before T2).
///  * a free task that reaches column window_start is fixed in Etemp (cannot
///    be upgraded further), per the "p = WindowStart+1 → fix" branch.
///  * DPF uses Eq. 2/3 over free tasks — weight (m-k)/(m-1) for 1-based
///    column k — which reproduces Fig. 4's worked example (DPF = 1/3).
///  * when the tagged task is the first of the sequence (no free tasks
///    remain), DPF = (d - Te)/d, the "last free task" special case.
#pragma once

#include <cstddef>
#include <vector>

#include "basched/core/metrics.hpp"
#include "basched/core/schedule.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::core {

/// Configuration for the chooser (and everything above it).
struct ChooserOptions {
  FactorWeights weights{};  ///< B-term multipliers (1s reproduce the paper)
  /// Paper-faithful pinning of the sequence's last task to the lowest-power
  /// column. Disable to let the last task compete like any other (an
  /// ablation; also rescues single-task graphs with tight deadlines).
  bool pin_last_task = true;
};

/// Result of one CalculateDPF evaluation (the three factors it produces).
struct DpfFactors {
  double enr = 0.0;
  double cif = 0.0;
  double dpf = 0.0;  ///< +∞ when the tagged choice makes the deadline unmeetable
};

/// CalculateDPF (Fig. 2), exposed for unit testing against the paper's
/// worked example.
///
/// \param graph        the task graph
/// \param sequence     execution order L (positions, not ids)
/// \param energy_order tasks in increasing average-energy order (Energy
///                     Vector E)
/// \param assignment   current columns per task; free tasks sit at m-1 (or
///                     wherever the caller parked them), fixed tasks at their
///                     fixed columns, and the tagged task at the tagged column
/// \param fixed_or_tagged flags per task: true for tasks fixed in S *and* for
///                     the tagged task (these are never upgraded)
/// \param window_start lowest (fastest) column the window allows
/// \param deadline     the task-graph deadline d
/// \param stats        graph normalization constants
[[nodiscard]] DpfFactors calculate_dpf(const graph::TaskGraph& graph,
                                       const std::vector<graph::TaskId>& sequence,
                                       const std::vector<graph::TaskId>& energy_order,
                                       const Assignment& assignment,
                                       const std::vector<bool>& fixed_or_tagged,
                                       std::size_t window_start, double deadline,
                                       const GraphStats& stats);

/// ChooseDesignPoints (Fig. 1): returns the column assignment for `sequence`
/// under the window [window_start .. m-1]. Always returns a complete
/// assignment; it may exceed the deadline when no feasible assignment exists
/// within this window (the window evaluator checks and discards those).
/// Throws std::invalid_argument on malformed inputs (bad window, sequence
/// not a permutation).
[[nodiscard]] Assignment choose_design_points(const graph::TaskGraph& graph,
                                              const std::vector<graph::TaskId>& sequence,
                                              std::size_t window_start, double deadline,
                                              const GraphStats& stats,
                                              const ChooserOptions& options = {});

}  // namespace basched::core
