/// \file rest_insertion.hpp
/// \brief Rest-period insertion for finite-capacity batteries — exploiting
/// the *recovery effect* directly.
///
/// The paper's cost function σ is evaluated with an effectively unbounded
/// battery ("we assumed that the amount of battery capacity available α was
/// sufficiently large"). On a real battery of capacity α the schedule can
/// *die mid-execution*: σ(t) reaches α inside some task. Because the RV (and
/// KiBaM) models recover unavailable charge during idle periods, inserting a
/// rest before the offending task can pull σ back below α and let the
/// mission finish — at the price of deadline slack.
///
/// `insert_rest_for_survival` implements the natural greedy: walk the
/// sequence; whenever the next task would kill the battery, bisect the
/// minimal rest that lets it survive (more rest before a task strictly helps:
/// the prefix's unavailable charge decays further and the task shifts later,
/// so survivability is monotone in the rest length — which makes bisection
/// sound); fail if even the maximal affordable rest cannot save it or the
/// deadline is exhausted.
#pragma once

#include <optional>
#include <vector>

#include "basched/battery/model.hpp"
#include "basched/core/schedule.hpp"

namespace basched::core {

/// A schedule augmented with idle periods.
struct RestPlan {
  std::vector<double> rest_before;  ///< idle minutes before each sequence position
  double completion_time = 0.0;     ///< finish time of the last task
  double peak_sigma = 0.0;          ///< max σ observed at any task boundary
  /// The realized discharge profile (tasks + gaps).
  battery::DischargeProfile profile;

  /// Total idle time inserted.
  [[nodiscard]] double total_rest() const;
};

/// Options for the rest inserter.
struct RestOptions {
  double safety_margin = 0.0;   ///< keep σ <= alpha * (1 - margin), margin in [0, 1)
  double bisect_tolerance = 1e-6;  ///< rest-length resolution (minutes)
};

/// Tries to execute `schedule` on a battery of capacity `alpha` finishing by
/// `deadline`, inserting the minimum greedy rest periods needed to survive.
/// Returns std::nullopt when no amount of affordable rest saves the battery
/// (or the tasks alone exceed the deadline). Throws std::invalid_argument on
/// malformed inputs (invalid schedule, non-positive deadline/alpha, margin
/// out of range).
[[nodiscard]] std::optional<RestPlan> insert_rest_for_survival(
    const graph::TaskGraph& graph, const Schedule& schedule, double deadline,
    const battery::BatteryModel& model, double alpha, const RestOptions& options = {});

/// True iff the back-to-back execution of `schedule` (no rests) keeps
/// σ(t) < alpha throughout.
[[nodiscard]] bool survives_without_rest(const graph::TaskGraph& graph, const Schedule& schedule,
                                         const battery::BatteryModel& model, double alpha);

}  // namespace basched::core
