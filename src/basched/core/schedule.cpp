#include "basched/core/schedule.hpp"

#include <stdexcept>

#include "basched/graph/topology.hpp"

namespace basched::core {

double Schedule::duration(const graph::TaskGraph& graph) const {
  double t = 0.0;
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    t += graph.task(v).point(assignment.at(v)).duration;
  return t;
}

double Schedule::energy(const graph::TaskGraph& graph) const {
  double e = 0.0;
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    e += graph.task(v).point(assignment.at(v)).energy();
  return e;
}

battery::DischargeProfile Schedule::to_profile(const graph::TaskGraph& graph) const {
  battery::DischargeProfile p;
  for (graph::TaskId v : sequence) {
    const auto& pt = graph.task(v).point(assignment.at(v));
    p.append(pt.duration, pt.current);
  }
  return p;
}

bool Schedule::is_valid(const graph::TaskGraph& graph) const {
  if (assignment.size() != graph.num_tasks()) return false;
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    if (assignment[v] >= graph.num_design_points()) return false;
  return graph::is_topological_order(graph, sequence);
}

void Schedule::validate(const graph::TaskGraph& graph) const {
  if (assignment.size() != graph.num_tasks())
    throw std::invalid_argument("Schedule: assignment size != task count");
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    if (assignment[v] >= graph.num_design_points())
      throw std::invalid_argument("Schedule: design-point column out of range for task '" +
                                  graph.task(v).name() + "'");
  if (!graph::is_topological_order(graph, sequence))
    throw std::invalid_argument("Schedule: sequence is not a topological order of the graph");
}

Assignment uniform_assignment(const graph::TaskGraph& graph, std::size_t column) {
  if (column >= graph.num_design_points())
    throw std::invalid_argument("uniform_assignment: column out of range");
  return Assignment(graph.num_tasks(), column);
}

}  // namespace basched::core
