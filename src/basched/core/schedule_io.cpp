#include "basched/core/schedule_io.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "basched/util/csv.hpp"
#include "basched/util/table.hpp"

namespace basched::core {

std::string serialize_schedule(const graph::TaskGraph& graph, const Schedule& schedule) {
  schedule.validate(graph);
  std::ostringstream os;
  os << "schedule\n";
  for (graph::TaskId v : schedule.sequence)
    os << "run " << graph.task(v).name() << ' ' << (schedule.assignment[v] + 1) << "\n";
  return os.str();
}

Schedule parse_schedule(const graph::TaskGraph& graph, const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;

  Schedule sched;
  sched.assignment.assign(graph.num_tasks(), 0);
  std::vector<bool> seen(graph.num_tasks(), false);

  auto fail = [&](const std::string& msg) -> void {
    throw std::invalid_argument("schedule parse error at line " + std::to_string(line_no) + ": " +
                                msg);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive == "schedule") {
      if (saw_header) fail("duplicate 'schedule' header");
      saw_header = true;
    } else if (directive == "run") {
      if (!saw_header) fail("'run' before 'schedule' header");
      std::string name;
      std::size_t column = 0;
      if (!(ls >> name >> column)) fail("expected 'run <task> <column>'");
      graph::TaskId id = 0;
      try {
        id = graph.task_by_name(name);
      } catch (const std::invalid_argument&) {
        fail("unknown task '" + name + "'");
      }
      if (column < 1 || column > graph.num_design_points())
        fail("design-point column out of range (1.." +
             std::to_string(graph.num_design_points()) + ")");
      if (seen[id]) fail("task '" + name + "' listed twice");
      seen[id] = true;
      sched.sequence.push_back(id);
      sched.assignment[id] = column - 1;
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) throw std::invalid_argument("schedule parse error: missing 'schedule' header");
  if (sched.sequence.size() != graph.num_tasks())
    throw std::invalid_argument("schedule parse error: " +
                                std::to_string(graph.num_tasks() - sched.sequence.size()) +
                                " task(s) missing from the schedule");
  sched.validate(graph);  // rejects non-topological orders
  return sched;
}

std::string profile_csv(const graph::TaskGraph& graph, const Schedule& schedule) {
  schedule.validate(graph);
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.write_row({"task", "start_min", "duration_min", "current_mA", "energy_mAmin"});
  double t = 0.0;
  for (graph::TaskId v : schedule.sequence) {
    const auto& pt = graph.task(v).point(schedule.assignment[v]);
    csv.write_row({graph.task(v).name(), util::fmt_double(t, 6), util::fmt_double(pt.duration, 6),
                   util::fmt_double(pt.current, 6), util::fmt_double(pt.energy(), 6)});
    t += pt.duration;
  }
  return os.str();
}

}  // namespace basched::core
