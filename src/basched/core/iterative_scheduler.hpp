/// \file iterative_scheduler.hpp
/// \brief BatteryAwareSQNDPAllocation (Fig. 1): the paper's top-level
/// iterative loop that alternates window sweeps with weighted re-sequencing.
///
/// Each iteration:
///  1. run the window sweep on the current sequence L (EvaluateWindows) and
///     take its best assignment S with cost MinBCost;
///  2. re-sequence with Eq. 4 weights computed from S (FindWeightedSequence),
///     yielding Ltemp, and evaluate (Ltemp, S) — if it beats MinBCost, it
///     becomes the iteration's solution;
///  3. terminate when the iteration's best cost fails to improve on the
///     previous iteration's (the paper's "no improvement over two
///     consecutive iterations" rule); otherwise continue with L = Ltemp.
///
/// The full per-iteration trace (sequences, every window's σ/Δ, the weighted
/// sequence and its cost) is recorded so the benches can regenerate the
/// paper's Tables 2 and 3 directly.
#pragma once

#include <string>
#include <vector>

#include "basched/battery/model.hpp"
#include "basched/core/window_evaluator.hpp"

namespace basched::core {

/// Everything that happened in one iteration of the top-level loop.
struct IterationRecord {
  std::vector<graph::TaskId> sequence;          ///< L used by this iteration
  WindowsOutcome windows;                       ///< the sweep's per-window results
  std::vector<graph::TaskId> weighted_sequence; ///< Ltemp (Eq. 4 re-sequencing)
  double weighted_sigma = 0.0;                  ///< cost of (Ltemp, best S); 0 if sweep failed
  double best_sigma = 0.0;                      ///< iteration's MinBCost (min of sweep and weighted)
  bool weighted_improved = false;               ///< weighted beat the sweep's best
};

/// Options of the full algorithm.
struct IterativeOptions {
  WindowOptions window{};
  /// When false, skip the Eq. 4 re-sequencing (ablation: the algorithm
  /// becomes a single window sweep on the initial sequence).
  bool resequence = true;
  /// Hard cap on iterations (the paper's loop terminates on its own in a
  /// handful of iterations; this is a safety net against cycling).
  int max_iterations = 64;
};

/// Result of the full algorithm.
struct IterativeResult {
  bool feasible = false;   ///< a deadline-respecting schedule was found
  Schedule schedule;       ///< best schedule (valid iff feasible)
  double sigma = 0.0;      ///< its battery cost σ (mA·min)
  double duration = 0.0;   ///< its makespan Δ (minutes)
  double energy = 0.0;     ///< its plain energy Σ I·D (mA·min)
  std::vector<IterationRecord> iterations;  ///< full trace
  std::string error;       ///< non-empty when !feasible
};

/// Runs the paper's algorithm on `graph` with the given deadline and battery
/// model. Throws std::invalid_argument on an empty or cyclic graph or a
/// non-positive deadline; an unmeetable deadline is reported via
/// IterativeResult::feasible == false (the paper's error exit).
[[nodiscard]] IterativeResult schedule_battery_aware(const graph::TaskGraph& graph,
                                                     double deadline,
                                                     const battery::BatteryModel& model,
                                                     const IterativeOptions& options = {});

}  // namespace basched::core
