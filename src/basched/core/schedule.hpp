/// \file schedule.hpp
/// \brief A complete scheduling decision: task order plus design-point
/// assignment.
///
/// The platform has one processing element, so a schedule is (a) a
/// topological order in which tasks execute back-to-back, and (b) one chosen
/// design-point column per task. The order determines the shape of the
/// battery discharge profile; the assignment determines both the profile and
/// the makespan (which is order-independent: the sum of chosen durations).
#pragma once

#include <cstddef>
#include <vector>

#include "basched/battery/discharge_profile.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::core {

/// Design-point column chosen for each task, indexed by TaskId.
/// Column 0 is the fastest/highest-power point, column m-1 the slowest/
/// lowest-power one (the canonical Task ordering).
using Assignment = std::vector<std::size_t>;

/// A (sequence, assignment) pair.
struct Schedule {
  std::vector<graph::TaskId> sequence;  ///< execution order (all tasks exactly once)
  Assignment assignment;                ///< chosen column per task

  /// Makespan: Σ duration of the chosen design-points (order-independent).
  [[nodiscard]] double duration(const graph::TaskGraph& graph) const;

  /// Total energy proxy Σ I·D of the chosen design-points (mA·min).
  [[nodiscard]] double energy(const graph::TaskGraph& graph) const;

  /// The battery discharge profile of executing the tasks back-to-back from
  /// t = 0 in `sequence` order with the assigned design-points.
  [[nodiscard]] battery::DischargeProfile to_profile(const graph::TaskGraph& graph) const;

  /// True iff sequence is a topological order of the graph and assignment
  /// has one in-range column per task.
  [[nodiscard]] bool is_valid(const graph::TaskGraph& graph) const;

  /// Throws std::invalid_argument with a description if !is_valid(graph).
  void validate(const graph::TaskGraph& graph) const;
};

/// An all-same-column assignment (e.g. all tasks at the lowest-power point).
[[nodiscard]] Assignment uniform_assignment(const graph::TaskGraph& graph, std::size_t column);

}  // namespace basched::core
