#include "basched/core/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace basched::core {

double FactorWeights::combine(double sr_v, double cr_v, double enr_v, double cif_v,
                              double dpf_v) const noexcept {
  // Infeasibility must survive a zero ablation weight (0 * inf == NaN), so
  // handle infinite factors explicitly.
  if (std::isinf(sr_v) || std::isinf(cr_v) || std::isinf(enr_v) || std::isinf(cif_v) ||
      std::isinf(dpf_v))
    return kInfeasible;
  return sr * sr_v + cr * cr_v + enr * enr_v + cif * cif_v + dpf * dpf_v;
}

GraphStats::GraphStats(const graph::TaskGraph& graph)
    : i_min(graph.min_current_overall()),
      i_max(graph.max_current_overall()),
      e_min(graph.min_total_energy()),
      e_max(graph.max_total_energy()) {}

double slack_ratio(double deadline, double elapsed) {
  if (!(deadline > 0.0)) throw std::invalid_argument("slack_ratio: deadline must be > 0");
  return (deadline - elapsed) / deadline;
}

double current_ratio(double current, const GraphStats& stats) noexcept {
  const double range = stats.i_max - stats.i_min;
  if (range <= 0.0) return 0.0;
  return (current - stats.i_min) / range;
}

double energy_ratio(double total_energy, const GraphStats& stats) noexcept {
  const double range = stats.e_max - stats.e_min;
  if (range <= 0.0) return 0.0;
  return (total_energy - stats.e_min) / range;
}

double current_increase_fraction(std::span<const double> sequence_currents) noexcept {
  if (sequence_currents.size() < 2) return 0.0;
  std::size_t increases = 0;
  for (std::size_t k = 1; k < sequence_currents.size(); ++k)
    if (sequence_currents[k - 1] < sequence_currents[k]) ++increases;
  return static_cast<double>(increases) / static_cast<double>(sequence_currents.size() - 1);
}

double current_increase_fraction(const graph::TaskGraph& graph, const Schedule& schedule) {
  std::vector<double> currents;
  currents.reserve(schedule.sequence.size());
  for (graph::TaskId v : schedule.sequence)
    currents.push_back(graph.task(v).point(schedule.assignment.at(v)).current);
  return current_increase_fraction(currents);
}

double dpf_from_histogram(std::span<const std::size_t> counts, std::size_t free_total) noexcept {
  const std::size_t m = counts.size();
  if (m <= 1 || free_total == 0) return 0.0;
  double dpf = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double weight = static_cast<double>(m - 1 - k) / static_cast<double>(m - 1);
    dpf += weight * static_cast<double>(counts[k]) / static_cast<double>(free_total);
  }
  return dpf;
}

}  // namespace basched::core
