#include "basched/core/iterative_scheduler.hpp"

#include <limits>
#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

IterativeResult schedule_battery_aware(const graph::TaskGraph& graph, double deadline,
                                       const battery::BatteryModel& model,
                                       const IterativeOptions& options) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_battery_aware: deadline must be > 0");

  const GraphStats stats(graph);
  IterativeResult result;
  // Per-candidate pricing inside the iteration loop goes through one reused
  // evaluator (allocation-free, O(terms)/task for RV); only the final
  // reported schedule is re-priced by the reference full evaluation.
  ScheduleEvaluator evaluator(graph, model, options.window.warm_cache);

  std::vector<graph::TaskId> sequence = sequence_dec_energy(graph);
  double prev_iter_cost = std::numeric_limits<double>::infinity();
  double global_best = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    IterationRecord rec;
    rec.sequence = sequence;

    auto sweep = evaluate_windows(graph, sequence, deadline, model, stats, options.window);
    if (!sweep) {
      result.error = "deadline unmeetable: even the fastest design-points exceed it (d < CT(0))";
      result.iterations.push_back(std::move(rec));
      return result;
    }
    rec.windows = std::move(*sweep);

    double min_b_cost = std::numeric_limits<double>::infinity();
    Schedule iter_best;
    if (rec.windows.feasible()) {
      const WindowResult& w = rec.windows.best_window();
      min_b_cost = w.sigma;
      iter_best = Schedule{sequence, w.assignment};
    }

    // FindWeightedSequence: Eq. 4 re-sequencing from the sweep's assignment.
    // The makespan is order-independent, so (Ltemp, S) is feasible whenever
    // (L, S) is.
    if (options.resequence && rec.windows.feasible()) {
      const Assignment& s = rec.windows.best_window().assignment;
      rec.weighted_sequence = weighted_sequence(graph, s);
      const CostResult wc = evaluator.full_eval(rec.weighted_sequence, s);
      rec.weighted_sigma = wc.sigma;
      if (wc.sigma < min_b_cost) {
        min_b_cost = wc.sigma;
        iter_best = Schedule{rec.weighted_sequence, s};
        rec.weighted_improved = true;
      }
    }
    rec.best_sigma = min_b_cost;

    // Track the best schedule seen across all iterations.
    if (rec.windows.feasible() && min_b_cost < global_best) {
      global_best = min_b_cost;
      result.schedule = iter_best;
      result.feasible = true;
    }

    const bool improved = min_b_cost < prev_iter_cost;
    const std::vector<graph::TaskId> next_sequence =
        (options.resequence && rec.windows.feasible()) ? rec.weighted_sequence : sequence;
    result.iterations.push_back(std::move(rec));

    // Termination: "if the solution does not improve over two consecutive
    // iterations the algorithm terminates" — i.e. stop as soon as an
    // iteration's best fails to beat the previous iteration's.
    if (!improved) break;
    prev_iter_cost = min_b_cost;

    if (!options.resequence) break;  // nothing changes without re-sequencing
    sequence = next_sequence;
  }

  if (result.feasible) {
    const CostResult c = calculate_battery_cost_unchecked(graph, result.schedule, model);
    result.sigma = c.sigma;
    result.duration = c.duration;
    result.energy = c.energy;
  } else if (result.error.empty()) {
    result.error = "no deadline-respecting schedule found by the heuristic";
  }
  return result;
}

}  // namespace basched::core
