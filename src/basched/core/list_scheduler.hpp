/// \file list_scheduler.hpp
/// \brief Priority-driven list scheduling and the paper's three sequencing
/// priorities.
///
/// All sequences in the paper come from the same skeleton: keep a ready list
/// (tasks whose predecessors are all scheduled) and repeatedly emit the ready
/// task with the *largest* weight. What varies is the weight:
///
///  * `sequence_dec_energy` — initial sequence: w(v) = average energy of v's
///    design-points (SequenceDecEnergy in Fig. 1).
///  * `weighted_sequence` — the re-sequencing step between iterations:
///    w(v) = Σ_{u ∈ G_v} I(u, chosen) over the sub-graph rooted at v, using
///    the current design-point assignment (Eq. 4).
///  * `greedy_max_current_sequence` — the sequencing rule of the Rakhmatov
///    comparison baseline [1]: w(v) = max(I_v, meanI(G_v)) (Eq. 5).
#pragma once

#include <span>
#include <vector>

#include "basched/core/schedule.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::core {

/// Generic list scheduler: emits a topological order that always picks the
/// ready task with the highest weight (ties broken by lower task id, making
/// the result deterministic). `weights` is indexed by TaskId and must cover
/// all tasks. Throws std::invalid_argument on cyclic graphs or size
/// mismatches.
[[nodiscard]] std::vector<graph::TaskId> list_schedule(const graph::TaskGraph& graph,
                                                       std::span<const double> weights);

/// Initial sequence: priority = average design-point energy, larger first.
[[nodiscard]] std::vector<graph::TaskId> sequence_dec_energy(const graph::TaskGraph& graph);

/// Eq. 4 re-sequencing: priority = total chosen current of the sub-graph
/// rooted at each task (descendants including the task itself).
[[nodiscard]] std::vector<graph::TaskId> weighted_sequence(const graph::TaskGraph& graph,
                                                           const Assignment& assignment);

/// Eq. 5 sequencing of the comparison baseline [1]:
/// priority = max(own chosen current, mean chosen current of the sub-graph
/// rooted at the task).
[[nodiscard]] std::vector<graph::TaskId> greedy_max_current_sequence(
    const graph::TaskGraph& graph, const Assignment& assignment);

/// Tasks ordered by *increasing* average design-point energy — the paper's
/// Energy Vector E, which prioritizes free-task upgrades inside the DPF
/// computation ("moving the first free task in E ... yields the least
/// increase in overall energy"). Ties broken by lower task id.
[[nodiscard]] std::vector<graph::TaskId> energy_vector(const graph::TaskGraph& graph);

/// Own-current priority: w(v) = I(v, chosen). The most literal reading of
/// the §3 ordering property ("non-increasing order of their currents"),
/// ignoring the subtree aggregation of Eq. 4/5. Useful as a sequencing
/// ablation.
[[nodiscard]] std::vector<graph::TaskId> max_current_sequence(const graph::TaskGraph& graph,
                                                              const Assignment& assignment);

/// Critical-path priority: w(v) = longest chain of chosen durations from v
/// to any sink (inclusive). The classic makespan-oriented list-scheduling
/// priority [9] — battery-blind, included as a sequencing ablation.
[[nodiscard]] std::vector<graph::TaskId> critical_path_sequence(const graph::TaskGraph& graph,
                                                                const Assignment& assignment);

}  // namespace basched::core
