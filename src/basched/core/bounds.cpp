#include "basched/core/bounds.hpp"

#include <algorithm>

namespace basched::core {

double sigma_in_order(const std::vector<Load>& loads, const battery::BatteryModel& model) {
  battery::DischargeProfile p;
  for (const Load& l : loads) p.append(l.duration, l.current);
  return model.charge_lost(p, p.end_time());
}

double sigma_noninc_current(std::vector<Load> loads, const battery::BatteryModel& model) {
  std::stable_sort(loads.begin(), loads.end(),
                   [](const Load& a, const Load& b) { return a.current > b.current; });
  return sigma_in_order(loads, model);
}

double sigma_nondec_current(std::vector<Load> loads, const battery::BatteryModel& model) {
  std::stable_sort(loads.begin(), loads.end(),
                   [](const Load& a, const Load& b) { return a.current < b.current; });
  return sigma_in_order(loads, model);
}

std::vector<Load> loads_of(const graph::TaskGraph& graph, const Assignment& assignment) {
  std::vector<Load> loads;
  loads.reserve(graph.num_tasks());
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v) {
    const auto& pt = graph.task(v).point(assignment.at(v));
    loads.push_back({pt.current, pt.duration});
  }
  return loads;
}

SigmaBounds sigma_bounds(const graph::TaskGraph& graph, const Assignment& assignment,
                         const battery::BatteryModel& model) {
  const auto loads = loads_of(graph, assignment);
  return {sigma_noninc_current(loads, model), sigma_nondec_current(loads, model)};
}

}  // namespace basched::core
