/// \file battery_cost.hpp
/// \brief The paper's CalculateBatteryCost: battery charge consumed by a
/// schedule, evaluated with a (nonlinear) battery model.
#pragma once

#include "basched/battery/model.hpp"
#include "basched/core/schedule.hpp"

namespace basched::core {

/// Battery cost of one schedule.
struct CostResult {
  double sigma = 0.0;     ///< apparent charge lost σ at schedule end (mA·min)
  double duration = 0.0;  ///< makespan Δ (minutes)
  double energy = 0.0;    ///< plain Σ I·D (mA·min), for reference
};

/// Builds the back-to-back discharge profile of `schedule` and evaluates
/// model σ at its end time — the quantity the paper's Tables 3 and 4 report.
/// The schedule is validated first (throws std::invalid_argument when it is
/// not a topological order or the assignment is malformed).
[[nodiscard]] CostResult calculate_battery_cost(const graph::TaskGraph& graph,
                                                const Schedule& schedule,
                                                const battery::BatteryModel& model);

/// Variant without sequence/assignment validation, for hot inner loops where
/// the caller guarantees validity (asserts in debug via the profile builder).
[[nodiscard]] CostResult calculate_battery_cost_unchecked(const graph::TaskGraph& graph,
                                                          const Schedule& schedule,
                                                          const battery::BatteryModel& model);

}  // namespace basched::core
