/// \file metrics.hpp
/// \brief The five components of the paper's design-point suitability metric
///        B = SR + CR + ENR + CIF + DPF (§4 of the paper).
///
/// Each factor is normalized to [0, 1] (DPF can additionally be +∞ to encode
/// "choosing this design-point makes the deadline unmeetable"); *smaller is
/// better* for every one of them:
///
///  * **SR** — slack ratio (d - t)/d: how much of the deadline is still
///    unused. Small SR = slack is being used up, which the paper prefers.
///  * **CR** — current ratio (I - Imin)/(Imax - Imin): how high this
///    design-point's current is relative to all design-points of all tasks.
///  * **ENR** — energy ratio (En - Emin)/(Emax - Emin) of a whole tentative
///    assignment, where Emin/Emax are the total energies with all tasks at
///    their lowest-/highest-power points.
///  * **CIF** — current-increase fraction: the fraction of adjacent task
///    pairs in the sequence whose current steps *up* (the battery model
///    favors non-increasing discharge profiles).
///  * **DPF** — design-point fraction (Eq. 2/3): penalizes parking free
///    tasks on high-power columns; computed by the chooser (it needs the
///    free-task upgrade simulation) from the F_k histogram via
///    `dpf_from_histogram`.
///
/// `FactorWeights` scales each term so ablation studies can knock out
/// individual factors.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "basched/core/schedule.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::core {

/// Multipliers for the five B-terms (1.0 each reproduces the paper).
struct FactorWeights {
  double sr = 1.0;
  double cr = 1.0;
  double enr = 1.0;
  double cif = 1.0;
  double dpf = 1.0;

  /// Combines the five factors. Any factor that is +∞ makes B +∞ regardless
  /// of its weight (an infeasible choice stays infeasible under ablation).
  [[nodiscard]] double combine(double sr_v, double cr_v, double enr_v, double cif_v,
                               double dpf_v) const noexcept;
};

/// Per-graph normalization constants, computed once per run.
struct GraphStats {
  double i_min = 0.0;  ///< min current over all design-points of all tasks
  double i_max = 0.0;  ///< max current over all design-points of all tasks
  double e_min = 0.0;  ///< Σ_i lowest-power design-point energy
  double e_max = 0.0;  ///< Σ_i highest-power design-point energy

  explicit GraphStats(const graph::TaskGraph& graph);
};

/// SR = (d - t)/d. Requires d > 0 (throws std::invalid_argument otherwise);
/// may be negative when t exceeds the deadline.
[[nodiscard]] double slack_ratio(double deadline, double elapsed);

/// CR = (I - Imin)/(Imax - Imin); 0 when Imax == Imin.
[[nodiscard]] double current_ratio(double current, const GraphStats& stats) noexcept;

/// ENR = (En - Emin)/(Emax - Emin); 0 when Emax == Emin.
[[nodiscard]] double energy_ratio(double total_energy, const GraphStats& stats) noexcept;

/// CIF over explicit per-position currents: the fraction of positions k >= 1
/// with current[k-1] < current[k]; 0 for fewer than two entries.
[[nodiscard]] double current_increase_fraction(std::span<const double> sequence_currents) noexcept;

/// CIF of a schedule: currents of the chosen design-points in sequence order.
[[nodiscard]] double current_increase_fraction(const graph::TaskGraph& graph,
                                               const Schedule& schedule);

/// DPF from the free-task column histogram (Eq. 2/3): given `counts[k]` free
/// tasks parked on column k (0-based, m columns total) out of `free_total`,
///   DPF = Σ_k (m-1-k)/(m-1) · counts[k]/free_total.
/// The highest-power column (k = 0) carries weight 1, the lowest-power
/// column weight 0. Returns 0 when m == 1 or free_total == 0.
[[nodiscard]] double dpf_from_histogram(std::span<const std::size_t> counts,
                                        std::size_t free_total) noexcept;

/// The +∞ used for infeasible DPF values.
inline constexpr double kInfeasible = std::numeric_limits<double>::infinity();

}  // namespace basched::core
