/// \file schedule_evaluator.hpp
/// \brief Delta-evaluation engine for schedule search: O(terms) candidate
/// costs under the Rakhmatov–Vrudhula model, incremental prefix state for
/// every built-in battery model, allocation-free for any model.
///
/// Every search baseline in this repo — annealing, random search, exhaustive
/// enumeration, branch-and-bound — and the paper heuristic's own inner loops
/// share one operation: "propose a schedule, price it under the battery
/// model". Doing that the obvious way costs O(intervals · terms) per
/// candidate plus a fresh `DischargeProfile` heap allocation. This evaluator
/// amortizes the work across candidates:
///
///  * **Enumerative search** (`extend` / `pop`): the evaluator keeps a stack
///    of per-position prefix state — cumulative time, cumulative delivered
///    charge, and (for RV) the per-term decayed partial sums
///    A_m(k) = Σ_{j<k} I_j·(e^{-β²m²(t_k−e_j)} − e^{-β²m²(t_k−t_j)})/(β²m²)
///    at each interval's start. Extending by one task is O(terms); popping is
///    O(1); σ of the current prefix is O(terms). A branch-and-bound node or a
///    lexicographic-enumeration step therefore costs O(terms), not
///    O(depth · terms). The decay factors the recurrence consumes are keyed
///    (almost) exclusively on the catalog's distinct interval durations, so
///    they come from a warm `util::fastmath::DecayRowCache` — an extension
///    typically performs *zero* exp evaluations; cold keys batch through
///    `fastmath::batch_exp`.
///
///  * **Local-move search** (`peek_swap_adjacent` / `peek_replace`): because
///    Eq. 1's σ(T) is a sum of independent per-interval terms, an adjacent
///    swap (T unchanged) or a single design-point change (all later intervals
///    and T shift rigidly, leaving their terms numerically invariant) can be
///    priced in O(terms) from the prefix rows without touching the suffix —
///    one fused batch of 3–4·terms exponentials per peek.
///
///  * **Committed moves** (`commit_swap_adjacent` / `commit_replace`): an
///    accepted annealing move no longer re-extends the suffix
///    (O(suffix · terms) exps). Both moves perturb the decayed partial-sum
///    rows *analytically*: the change each move makes to the profile is, at
///    any later checkpoint t_k, a fixed per-term amount F_m decayed by
///    e^{-β²m²(t_k − t_ref)} — a running product of per-duration decay rows.
///    A commit is therefore O(suffix · terms) multiply/adds with O(terms)
///    exp evaluations worst case, and zero with a warm duration cache
///    (probe-verified via `fastmath::exp_evaluations()`).
///
///  * **Every built-in model is incremental** (`KibamModel`: a prefix stack
///    of (y1, y2) well states advanced by the model's own closed-form step —
///    O(1) extend and σ-at-end, O(suffix) peeks/commits from the checkpoint;
///    `PeukertModel` / `IdealModel`: prefix sums — O(1) extend, σ-at-end and
///    peeks). Unknown models fall back to pricing a flat, reused interval
///    buffer through the span-based `BatteryModel::charge_lost` — same
///    semantics as the profile walk, zero allocations after warm-up.
///
/// Agreement with `calculate_battery_cost_unchecked` is limited only by FP
/// summation order: ~1e-14 relative, tested to 1e-12 over randomized move
/// and commit sequences (tests/core/schedule_evaluator_test.cpp). The RV
/// fast path never calls `charge_lost`, so
/// `RakhmatovVrudhulaModel::full_evaluations()` stays flat across a search —
/// the probe tests rely on this.
///
/// Not thread-safe; use one evaluator per thread (they are cheap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "basched/battery/discharge_profile.hpp"
#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/model.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/schedule.hpp"
#include "basched/util/fastmath.hpp"

namespace basched::core {

/// Reusable schedule-pricing engine (see file comment). The graph and model
/// are held by reference and must outlive the evaluator.
class ScheduleEvaluator {
 public:
  ScheduleEvaluator(const graph::TaskGraph& graph, const battery::BatteryModel& model);

  /// Like the two-argument constructor, but adopts a *copy* of `warm` as the
  /// duration cache when it is compatible (same coefficient ladder β²m²):
  /// construction then performs zero exp evaluations for every key `warm`
  /// already holds. An incompatible or null `warm` is ignored and the
  /// evaluator warms its own cache from the catalog as usual. This is the
  /// warm-state injection point of the serve layer: one master cache per
  /// catalog, copied into each request's evaluators.
  ScheduleEvaluator(const graph::TaskGraph& graph, const battery::BatteryModel& model,
                    const util::fastmath::DecayRowCache* warm);

  // ---- Enumerative interface (prefix stack) -------------------------------

  /// Clears the prefix to empty. Keeps buffer capacity.
  void reset();

  /// Appends `task` at design-point column `design_point` to the prefix.
  /// O(terms) for RV (zero exps on a warm duration cache), O(1) for
  /// KiBaM/Peukert/ideal. Throws std::out_of_range on a bad task/column.
  void extend(graph::TaskId task, std::size_t design_point);

  /// Removes the most recently extended task. O(1). Restores cumulative
  /// time/charge bit-exactly (values are stored per position, not
  /// re-derived). Throws std::logic_error on an empty prefix.
  void pop();

  /// Number of tasks currently in the prefix.
  [[nodiscard]] std::size_t depth() const noexcept { return intervals_.size(); }

  /// Makespan of the prefix (end time of its last interval).
  [[nodiscard]] double prefix_duration() const noexcept {
    return intervals_.empty() ? 0.0 : intervals_.back().end();
  }

  /// Σ I·D of the prefix (mA·min) — equals the delivered charge.
  [[nodiscard]] double prefix_energy() const noexcept { return cum_charge_.back(); }

  /// σ at the prefix's end time. O(terms) for RV. Counts one evaluation.
  [[nodiscard]] double prefix_sigma() { return current().sigma; }

  /// CostResult of the prefix priced as a complete schedule. Counts one
  /// evaluation.
  [[nodiscard]] CostResult current();

  // ---- Whole-schedule interface -------------------------------------------

  /// Loads `schedule` (replacing the prefix) and returns its cost. The
  /// assignment is indexed by TaskId, as everywhere in basched. No
  /// validation — hot-loop contract of calculate_battery_cost_unchecked.
  CostResult full_eval(const Schedule& schedule);
  CostResult full_eval(std::span<const graph::TaskId> sequence,
                       std::span<const std::size_t> assignment);

  /// Re-prices `schedule` assuming positions < `first_changed_pos` are
  /// unchanged since the last load: truncates the prefix there and re-extends
  /// only the suffix — O((n − first_changed_pos) · terms) for RV. Prefer the
  /// `commit_*` moves below for single accepted local moves; this remains the
  /// general path for arbitrary suffix rewrites. Throws std::invalid_argument
  /// when first_changed_pos exceeds the loaded depth or the schedule length.
  CostResult reprice_suffix(const Schedule& schedule, std::size_t first_changed_pos);

  // ---- O(terms) candidate peeks (require a loaded schedule) ---------------

  /// σ at the end of the loaded schedule with intervals `pos` and `pos + 1`
  /// swapped (the annealer's adjacent-swap move; the makespan is unchanged).
  /// Does not mutate the evaluator. Throws std::out_of_range unless
  /// pos + 1 < depth().
  [[nodiscard]] double peek_swap_adjacent(std::size_t pos);

  /// σ at the end of the loaded schedule with interval `pos` replaced by
  /// (duration, current) — the annealer's design-point bump; the whole
  /// suffix and the end time shift rigidly by the duration delta. Does not
  /// mutate the evaluator. Throws std::out_of_range on a bad pos and
  /// std::invalid_argument on a malformed interval.
  [[nodiscard]] double peek_replace(std::size_t pos, double duration, double current);

  // ---- SoA block peeks (horizontal pricing across candidates) -------------
  //
  // Each block call prices K independent candidates against the same loaded
  // schedule in one pass: the per-candidate decay rows are gathered from a
  // dedicated peek-row DecayRowCache into contiguous K-major SoA scratch
  // (warm rows copy exp-free; all cold rows batch through ONE fused
  // batch_exp_block), then the same reductions as the scalar peeks run per
  // lane. σ outputs are bit-identical to the corresponding scalar peek —
  // the kernel is batch-boundary invariant and the reduction code is the
  // same expression graph — so search drivers can switch freely between
  // block and scalar pricing without perturbing pinned trajectories.
  // Duplicate/overlapping positions are fine (peeks never mutate). Non-RV
  // models fall back to the scalar peeks per candidate (same values, same
  // evaluation counts). Each lane counts one evaluation.

  /// One candidate of `peek_replace_block`: interval `pos` replaced by
  /// (duration, current).
  struct ReplaceCandidate {
    std::size_t pos = 0;
    double duration = 0.0;
    double current = 0.0;
  };

  /// One candidate of `peek_extend_block`: a prospective next interval.
  struct ExtendCandidate {
    double duration = 0.0;
    double current = 0.0;
  };

  /// Block form of `peek_swap_adjacent`: sigmas[j] = σ with intervals
  /// positions[j] and positions[j]+1 swapped. Throws std::out_of_range
  /// (before pricing anything) unless every positions[j] + 1 < depth().
  /// `sigmas` must hold at least positions.size() doubles.
  void peek_swap_adjacent_block(std::span<const std::size_t> positions,
                                std::span<double> sigmas);

  /// Block form of `peek_replace`: sigmas[j] = σ with candidates[j] applied.
  /// Same validation as `peek_replace`, performed for the whole block before
  /// pricing any lane.
  void peek_replace_block(std::span<const ReplaceCandidate> candidates,
                          std::span<double> sigmas);

  /// Prices extending the current prefix by each candidate interval:
  /// sigmas[j] = σ the prefix would report after
  /// `extend_interval(candidates[j])` — bit-identical to extend + σ + pop,
  /// without mutating the prefix. RV shares the candidate-independent row
  /// advance across the block and gathers the per-duration decay rows (warm
  /// catalog keys: zero exps) in one pass — the B&B/exhaustive leaf fan.
  /// Throws std::invalid_argument on a malformed candidate interval.
  void peek_extend_block(std::span<const ExtendCandidate> candidates,
                         std::span<double> sigmas);

  // ---- Committed moves (the annealer's accept path) -----------------------

  /// Applies the adjacent swap peeked by `peek_swap_adjacent` to the loaded
  /// schedule and returns the new cost. RV: O(suffix · terms) mult/adds and
  /// O(terms) exps (zero when the duration cache is warm) — the suffix rows
  /// are rescaled in place, never re-extended. KiBaM: O(suffix) closed-form
  /// steps from the checkpoint at pos. Peukert/ideal: O(suffix) adds.
  /// Counts one evaluation. Throws std::out_of_range unless
  /// pos + 1 < depth().
  CostResult commit_swap_adjacent(std::size_t pos);

  /// Applies the design-point bump peeked by `peek_replace` (same contract)
  /// and returns the new cost. Complexity as commit_swap_adjacent. Throws
  /// std::out_of_range on a bad pos and std::invalid_argument on a malformed
  /// interval.
  CostResult commit_replace(std::size_t pos, double duration, double current);

  /// Reverses the loaded schedule's intervals [first, last] (inclusive) and
  /// returns the new cost — the annealer's commit-aware large-neighborhood
  /// move (segment reversal is its own inverse, so a rejected move rolls
  /// back with a second call). Built from the adjacent-swap commit
  /// machinery: RV applies the (last−first+1)(last−first)/2 elementary
  /// swaps' analytic row rescales — zero exp evaluations on a warm duration
  /// cache — and prices σ once at the end; other models reverse the buffer
  /// and rebuild from the checkpoint at `first`. Counts one evaluation.
  /// Throws std::out_of_range unless first < last < depth().
  CostResult commit_reverse_segment(std::size_t first, std::size_t last);

  /// Candidate schedules priced so far (peeks + full/prefix/reprice/commit
  /// evaluations). Baselines surface this as ScheduleResult::evaluations.
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// The per-Δt decay-row cache (empty for non-RV models). Exposed so a
  /// catalog registry can keep one evaluator's warm cache as the master copy
  /// other evaluators adopt via the warm constructor.
  [[nodiscard]] const util::fastmath::DecayRowCache& decay_cache() const noexcept {
    return decay_cache_;
  }

  /// True when the model has an incremental fast path (RV's O(terms) rows,
  /// KiBaM's well-state stack, Peukert/ideal prefix sums); false when
  /// candidates are priced by re-walking the interval buffer through
  /// `charge_lost`.
  [[nodiscard]] bool has_fast_path() const noexcept { return kind_ != ModelKind::Generic; }

 private:
  enum class ModelKind { Rv, Kibam, Peukert, Ideal, Generic };

  /// KiBaM checkpoint: well state at a position's start plus the sticky
  /// death flag.
  struct KibamCheckpoint {
    battery::KibamModel::State state;
    bool dead = false;
  };

  /// Appends one back-to-back interval and maintains all prefix state.
  void extend_interval(double duration, double current);

  /// The adjacent-swap commit without the final pricing: mutates the buffer
  /// and rescales/rebuilds all prefix state. commit_swap_adjacent and
  /// commit_reverse_segment are thin wrappers over this.
  void apply_swap_adjacent(std::size_t pos);

  /// Truncates the prefix to `k` tasks (k <= depth()).
  void truncate(std::size_t k);

  /// Recomputes interval starts, cumulative charge and the model prefix
  /// stacks (KiBaM states / Peukert sums) for positions >= first, after a
  /// commit mutated the buffer. RV rows are NOT rebuilt here — commits
  /// rescale them analytically.
  void rebuild_tail(std::size_t first);

  /// σ at the prefix end (cached until the next mutation).
  [[nodiscard]] double sigma_end();
  [[nodiscard]] double sigma_end_uncached();

  /// Decay row e^{-β²m²·Δ_k} for position k's duration: a direct index into
  /// the cache (recorded at extend time — no hashing), or computed into
  /// `scratch` for the rare uncached duration. RV only.
  [[nodiscard]] const double* duration_row(std::size_t k, double* scratch);

  /// RV row pointer for position k.
  [[nodiscard]] double* rv_row(std::size_t k) noexcept {
    return rows_.data() + k * static_cast<std::size_t>(terms_);
  }
  [[nodiscard]] const double* rv_row(std::size_t k) const noexcept {
    return rows_.data() + k * static_cast<std::size_t>(terms_);
  }

  const graph::TaskGraph* graph_;
  const battery::BatteryModel* model_;
  const battery::RakhmatovVrudhulaModel* rv_ = nullptr;
  const battery::KibamModel* kibam_ = nullptr;
  const battery::PeukertModel* peukert_ = nullptr;
  ModelKind kind_ = ModelKind::Generic;
  double beta_sq_ = 0.0;
  int terms_ = 0;

  std::vector<battery::DischargeInterval> intervals_;  ///< flat reused buffer
  std::vector<double> cum_charge_;  ///< cum_charge_[k] = Σ_{j<k} I_j·Δ_j; size depth+1
  std::vector<double> rows_;        ///< RV: rows_[k·terms + (m−1)] = A_m(k)
  std::vector<KibamCheckpoint> kstates_;  ///< KiBaM: state at t_k; size depth+1
  std::vector<double> peff_;        ///< Peukert: Σ_{j<k} rate_j·Δ_j; size depth+1
  std::vector<double> scratch_;     ///< saved suffix starts for generic peeks

  std::vector<double> bm_;          ///< RV: β²m², m = 1..terms
  util::fastmath::DecayRowCache decay_cache_;  ///< rows e^{-β²m²·Δt} keyed on Δt
  /// Peek-row cache for the block peeks' suffix-offset keys (T − t_p and
  /// friends). Separate from decay_cache_ so the churning offset key space
  /// cannot evict/cap-out the pristine per-Δt duration rows; rows are pure
  /// functions of the key, so staleness is impossible.
  util::fastmath::DecayRowCache peek_cache_;
  std::vector<std::uint32_t> row_idx_;  ///< RV: per-position cache index of Δ_k's row
  std::vector<double> cache_scratch_;  ///< decay row landing zone on cache overflow
  std::vector<double> work_;           ///< fused peek/commit buffers (4·terms)
  std::vector<double> block_keys_;     ///< block peeks: gathered row keys
  std::vector<double> block_rows_;     ///< block peeks: K-major SoA row scratch
  std::vector<double> ext_row_;        ///< peek_extend_block: advanced prefix row

  bool sigma_cached_ = false;
  double sigma_cache_ = 0.0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace basched::core
