/// \file schedule_evaluator.hpp
/// \brief Delta-evaluation engine for schedule search: O(terms) candidate
/// costs under the Rakhmatov–Vrudhula model, allocation-free for any model.
///
/// Every search baseline in this repo — annealing, random search, exhaustive
/// enumeration, branch-and-bound — and the paper heuristic's own inner loops
/// share one operation: "propose a schedule, price it under the battery
/// model". Doing that the obvious way costs O(intervals · terms) per
/// candidate plus a fresh `DischargeProfile` heap allocation. This evaluator
/// amortizes the work across candidates:
///
///  * **Enumerative search** (`extend` / `pop`): the evaluator keeps a stack
///    of per-position prefix state — cumulative time, cumulative delivered
///    charge, and (for RV) the per-term decayed partial sums
///    A_m(k) = Σ_{j<k} I_j·(e^{-β²m²(t_k−e_j)} − e^{-β²m²(t_k−t_j)})/(β²m²)
///    at each interval's start. Extending by one task is O(terms); popping is
///    O(1); σ of the current prefix is O(terms). A branch-and-bound node or a
///    lexicographic-enumeration step therefore costs O(terms), not
///    O(depth · terms).
///
///  * **Local-move search** (`peek_swap_adjacent` / `peek_replace`): because
///    Eq. 1's σ(T) is a sum of independent per-interval terms, an adjacent
///    swap (T unchanged) or a single design-point change (all later intervals
///    and T shift rigidly, leaving their terms numerically invariant) can be
///    priced in O(terms) from the prefix rows without touching the suffix.
///    An annealer prices every candidate this way and only pays
///    `reprice_suffix` (O(suffix · terms)) on *accepted* moves.
///
///  * **Any model** (`KibamModel`, `PeukertModel`, `IdealModel`, …): a flat,
///    reused interval buffer is priced through the span-based
///    `BatteryModel::charge_lost` — same semantics as the profile walk, zero
///    allocations after warm-up (no O(terms) shortcut; the asymptotics match
///    the full evaluation).
///
/// Agreement with `calculate_battery_cost_unchecked` is limited only by FP
/// summation order: ~1e-14 relative, tested to 1e-12 over randomized move
/// sequences (tests/core/schedule_evaluator_test.cpp). The RV fast path never
/// calls `charge_lost`, so `RakhmatovVrudhulaModel::full_evaluations()` stays
/// flat across a search — the probe tests rely on this.
///
/// Not thread-safe; use one evaluator per thread (they are cheap).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "basched/battery/discharge_profile.hpp"
#include "basched/battery/model.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/schedule.hpp"

namespace basched::core {

/// Reusable schedule-pricing engine (see file comment). The graph and model
/// are held by reference and must outlive the evaluator.
class ScheduleEvaluator {
 public:
  ScheduleEvaluator(const graph::TaskGraph& graph, const battery::BatteryModel& model);

  // ---- Enumerative interface (prefix stack) -------------------------------

  /// Clears the prefix to empty. Keeps buffer capacity.
  void reset();

  /// Appends `task` at design-point column `design_point` to the prefix.
  /// O(terms) for RV, O(1) otherwise. Throws std::out_of_range on a bad
  /// task/column.
  void extend(graph::TaskId task, std::size_t design_point);

  /// Removes the most recently extended task. O(1). Restores cumulative
  /// time/charge bit-exactly (values are stored per position, not
  /// re-derived). Throws std::logic_error on an empty prefix.
  void pop();

  /// Number of tasks currently in the prefix.
  [[nodiscard]] std::size_t depth() const noexcept { return intervals_.size(); }

  /// Makespan of the prefix (end time of its last interval).
  [[nodiscard]] double prefix_duration() const noexcept {
    return intervals_.empty() ? 0.0 : intervals_.back().end();
  }

  /// Σ I·D of the prefix (mA·min) — equals the delivered charge.
  [[nodiscard]] double prefix_energy() const noexcept { return cum_charge_.back(); }

  /// σ at the prefix's end time. O(terms) for RV. Counts one evaluation.
  [[nodiscard]] double prefix_sigma() { return current().sigma; }

  /// CostResult of the prefix priced as a complete schedule. Counts one
  /// evaluation.
  [[nodiscard]] CostResult current();

  // ---- Whole-schedule interface -------------------------------------------

  /// Loads `schedule` (replacing the prefix) and returns its cost. The
  /// assignment is indexed by TaskId, as everywhere in basched. No
  /// validation — hot-loop contract of calculate_battery_cost_unchecked.
  CostResult full_eval(const Schedule& schedule);
  CostResult full_eval(std::span<const graph::TaskId> sequence,
                       std::span<const std::size_t> assignment);

  /// Re-prices `schedule` assuming positions < `first_changed_pos` are
  /// unchanged since the last load: truncates the prefix there and re-extends
  /// only the suffix — O((n − first_changed_pos) · terms) for RV. This is the
  /// commit path of a local-move search (the candidate was already priced by
  /// a peek). Throws std::invalid_argument when first_changed_pos exceeds the
  /// loaded depth or the schedule length.
  CostResult reprice_suffix(const Schedule& schedule, std::size_t first_changed_pos);

  // ---- O(terms) candidate peeks (require a loaded schedule) ---------------

  /// σ at the end of the loaded schedule with intervals `pos` and `pos + 1`
  /// swapped (the annealer's adjacent-swap move; the makespan is unchanged).
  /// Does not mutate the evaluator. Throws std::out_of_range unless
  /// pos + 1 < depth().
  [[nodiscard]] double peek_swap_adjacent(std::size_t pos);

  /// σ at the end of the loaded schedule with interval `pos` replaced by
  /// (duration, current) — the annealer's design-point bump; the whole
  /// suffix and the end time shift rigidly by the duration delta. Does not
  /// mutate the evaluator. Throws std::out_of_range on a bad pos and
  /// std::invalid_argument on a malformed interval.
  [[nodiscard]] double peek_replace(std::size_t pos, double duration, double current);

  /// Candidate schedules priced so far (peeks + full/prefix/reprice
  /// evaluations). Baselines surface this as ScheduleResult::evaluations.
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// True when the model has the O(terms) incremental fast path (RV);
  /// false when candidates are priced by re-walking the interval buffer.
  [[nodiscard]] bool has_fast_path() const noexcept { return rv_ != nullptr; }

 private:
  /// Appends one back-to-back interval and maintains the RV rows.
  void extend_interval(double duration, double current);

  /// Truncates the prefix to `k` tasks (k <= depth()).
  void truncate(std::size_t k);

  /// σ at time `t` contributed by intervals j < k, for t >= start of
  /// interval k. RV fast path only. O(terms).
  [[nodiscard]] double prefix_part(std::size_t k, double t) const noexcept;

  /// σ at the prefix end (cached until the next mutation).
  [[nodiscard]] double sigma_end();
  [[nodiscard]] double sigma_end_uncached() const;

  const graph::TaskGraph* graph_;
  const battery::BatteryModel* model_;
  const battery::RakhmatovVrudhulaModel* rv_;  ///< non-null => O(terms) fast path
  double beta_sq_ = 0.0;
  int terms_ = 0;

  std::vector<battery::DischargeInterval> intervals_;  ///< flat reused buffer
  std::vector<double> cum_charge_;  ///< cum_charge_[k] = Σ_{j<k} I_j·Δ_j; size depth+1
  std::vector<double> rows_;        ///< RV: rows_[k·terms + (m−1)] = A_m(k)
  std::vector<double> scratch_;     ///< saved suffix starts for generic peeks

  bool sigma_cached_ = false;
  double sigma_cache_ = 0.0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace basched::core
