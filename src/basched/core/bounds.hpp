/// \file bounds.hpp
/// \brief Analytic sequencing bounds from §3 of the paper.
///
/// Rakhmatov et al. [1] proved that for n *independent* tasks (dependencies
/// ignored) and a sufficiently large battery, executing them in
/// non-increasing order of current minimizes σ at the end of the profile and
/// non-decreasing order maximizes it. For a task graph these two orders
/// (which generally violate dependencies) bound the achievable cost of any
/// legal sequence under a *fixed* design-point assignment — a cheap sanity
/// envelope used by tests and the bounds bench.
#pragma once

#include <vector>

#include "basched/battery/model.hpp"
#include "basched/core/schedule.hpp"

namespace basched::core {

/// (current, duration) pairs of whatever jobs are being ordered.
struct Load {
  double current = 0.0;
  double duration = 0.0;
};

/// σ at the end of the back-to-back profile obtained by executing `loads` in
/// non-increasing current order (the [1] lower bound).
[[nodiscard]] double sigma_noninc_current(std::vector<Load> loads,
                                          const battery::BatteryModel& model);

/// σ for the non-decreasing current order (the [1] upper bound).
[[nodiscard]] double sigma_nondec_current(std::vector<Load> loads,
                                          const battery::BatteryModel& model);

/// σ for the given explicit order.
[[nodiscard]] double sigma_in_order(const std::vector<Load>& loads,
                                    const battery::BatteryModel& model);

/// Extracts the loads of a graph under a design-point assignment.
[[nodiscard]] std::vector<Load> loads_of(const graph::TaskGraph& graph,
                                         const Assignment& assignment);

/// Bounds of a (graph, assignment) pair, dependencies ignored.
struct SigmaBounds {
  double lower = 0.0;  ///< non-increasing-current order
  double upper = 0.0;  ///< non-decreasing-current order
};

[[nodiscard]] SigmaBounds sigma_bounds(const graph::TaskGraph& graph,
                                       const Assignment& assignment,
                                       const battery::BatteryModel& model);

}  // namespace basched::core
