#include "basched/core/window_evaluator.hpp"

#include <stdexcept>

#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

std::optional<WindowsOutcome> evaluate_windows(const graph::TaskGraph& graph,
                                               const std::vector<graph::TaskId>& sequence,
                                               double deadline,
                                               const battery::BatteryModel& model,
                                               const GraphStats& stats,
                                               const WindowOptions& options) {
  const std::size_t m = graph.num_design_points();
  if (graph.num_tasks() == 0) throw std::invalid_argument("evaluate_windows: empty graph");
  if (!(deadline > 0.0)) throw std::invalid_argument("evaluate_windows: deadline must be > 0");
  if (!graph::is_topological_order(graph, sequence))
    throw std::invalid_argument("evaluate_windows: sequence is not a topological order");

  // The paper's feasibility walk: start at WindowStart = m-1 (1-based; the
  // second-to-last column) and retreat while even the window's fastest
  // column cannot meet the deadline. If that drives us past the first
  // column, the deadline is unmeetable outright.
  std::size_t start = (m >= 2) ? m - 2 : 0;
  while (deadline < graph.column_time(start)) {
    if (start == 0) return std::nullopt;  // d < CT(0): "Exit with error"
    --start;
  }
  if (!options.sweep) start = 0;  // ablation: only the full window

  WindowsOutcome outcome;
  // One evaluator for the whole sweep: the per-window walk is O(terms) per
  // task for the RV model, with every interval buffer reused across windows
  // (no DischargeProfile, no per-window Schedule copy).
  ScheduleEvaluator evaluator(graph, model, options.warm_cache);
  const double tol = deadline * (1.0 + kDeadlineRelTol);
  for (std::size_t ws = start + 1; ws-- > 0;) {  // ws = start downto 0
    WindowResult wr;
    wr.window_start = ws;
    wr.assignment = choose_design_points(graph, sequence, ws, deadline, stats, options.chooser);
    const CostResult cost = evaluator.full_eval(sequence, wr.assignment);
    wr.sigma = cost.sigma;
    wr.duration = cost.duration;
    wr.feasible = cost.duration <= tol;
    outcome.windows.push_back(std::move(wr));
    const auto& added = outcome.windows.back();
    if (added.feasible &&
        (!outcome.best || added.sigma < outcome.windows[*outcome.best].sigma)) {
      outcome.best = outcome.windows.size() - 1;
    }
  }
  return outcome;
}

}  // namespace basched::core
