#include "basched/core/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "basched/graph/topology.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

std::vector<graph::TaskId> list_schedule(const graph::TaskGraph& graph,
                                         std::span<const double> weights) {
  const std::size_t n = graph.num_tasks();
  if (weights.size() != n)
    throw std::invalid_argument("list_schedule: weights size != task count");

  std::vector<std::size_t> indeg(n);
  for (graph::TaskId v = 0; v < n; ++v) indeg[v] = graph.predecessors(v).size();

  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);

  std::vector<graph::TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    // Largest weight wins; ties go to the smaller id for determinism.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (weights[ready[i]] > weights[ready[best]] ||
          (weights[ready[i]] == weights[ready[best]] && ready[i] < ready[best]))
        best = i;
    }
    const graph::TaskId v = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    order.push_back(v);
    for (graph::TaskId w : graph.successors(v))
      if (--indeg[w] == 0) ready.push_back(w);
  }
  if (order.size() != n) throw std::invalid_argument("list_schedule: graph contains a cycle");
  return order;
}

std::vector<graph::TaskId> sequence_dec_energy(const graph::TaskGraph& graph) {
  std::vector<double> w(graph.num_tasks());
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v) w[v] = graph.task(v).average_energy();
  return list_schedule(graph, w);
}

namespace {

double chosen_current(const graph::TaskGraph& graph, const Assignment& assignment,
                      graph::TaskId v) {
  return graph.task(v).point(assignment.at(v)).current;
}

}  // namespace

std::vector<graph::TaskId> weighted_sequence(const graph::TaskGraph& graph,
                                             const Assignment& assignment) {
  if (assignment.size() != graph.num_tasks())
    throw std::invalid_argument("weighted_sequence: assignment size != task count");
  std::vector<double> w(graph.num_tasks(), 0.0);
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v) {
    for (graph::TaskId u : graph::descendants_inclusive(graph, v))
      w[v] += chosen_current(graph, assignment, u);
  }
  return list_schedule(graph, w);
}

std::vector<graph::TaskId> greedy_max_current_sequence(const graph::TaskGraph& graph,
                                                       const Assignment& assignment) {
  if (assignment.size() != graph.num_tasks())
    throw std::invalid_argument("greedy_max_current_sequence: assignment size != task count");
  std::vector<double> w(graph.num_tasks(), 0.0);
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v) {
    const auto sub = graph::descendants_inclusive(graph, v);
    BASCHED_ASSERT(!sub.empty());
    double sum = 0.0;
    for (graph::TaskId u : sub) sum += chosen_current(graph, assignment, u);
    const double mean = sum / static_cast<double>(sub.size());
    w[v] = std::max(chosen_current(graph, assignment, v), mean);
  }
  return list_schedule(graph, w);
}

std::vector<graph::TaskId> max_current_sequence(const graph::TaskGraph& graph,
                                                const Assignment& assignment) {
  if (assignment.size() != graph.num_tasks())
    throw std::invalid_argument("max_current_sequence: assignment size != task count");
  std::vector<double> w(graph.num_tasks());
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
    w[v] = chosen_current(graph, assignment, v);
  return list_schedule(graph, w);
}

std::vector<graph::TaskId> critical_path_sequence(const graph::TaskGraph& graph,
                                                  const Assignment& assignment) {
  if (assignment.size() != graph.num_tasks())
    throw std::invalid_argument("critical_path_sequence: assignment size != task count");
  // Longest chosen-duration path from each task to a sink, computed in
  // reverse topological order.
  const auto order = graph::topological_order(graph);
  std::vector<double> w(graph.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best_succ = 0.0;
    for (graph::TaskId s : graph.successors(v)) best_succ = std::max(best_succ, w[s]);
    w[v] = graph.task(v).point(assignment.at(v)).duration + best_succ;
  }
  return list_schedule(graph, w);
}

std::vector<graph::TaskId> energy_vector(const graph::TaskGraph& graph) {
  std::vector<graph::TaskId> order(graph.num_tasks());
  for (graph::TaskId v = 0; v < graph.num_tasks(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](graph::TaskId a, graph::TaskId b) {
    return graph.task(a).average_energy() < graph.task(b).average_energy();
  });
  return order;
}

}  // namespace basched::core
