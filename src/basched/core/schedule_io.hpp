/// \file schedule_io.hpp
/// \brief Schedule serialization: a text format tied to task *names* (stable
/// across graph rebuilds) and a CSV export of the realized discharge
/// profile for offline plotting.
///
/// Text format, one entry per line:
///
///     schedule
///     run <task_name> <design_point_column_1_based>
///     ...
///
/// Entries appear in execution order. Round-trips exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "basched/core/schedule.hpp"

namespace basched::core {

/// Serializes a schedule against its graph (task ids → names). The schedule
/// is validated first (throws std::invalid_argument when invalid).
[[nodiscard]] std::string serialize_schedule(const graph::TaskGraph& graph,
                                             const Schedule& schedule);

/// Parses the text format against a graph. Throws std::invalid_argument with
/// a line number on syntax errors, unknown task names, out-of-range columns,
/// duplicate or missing tasks, or a sequence that is not a topological order
/// of `graph`.
[[nodiscard]] Schedule parse_schedule(const graph::TaskGraph& graph, const std::string& text);

/// CSV of the schedule's discharge profile: header
/// `task,start_min,duration_min,current_mA,energy_mAmin` and one row per
/// executed task in sequence order.
[[nodiscard]] std::string profile_csv(const graph::TaskGraph& graph, const Schedule& schedule);

}  // namespace basched::core
