#include "basched/core/order_tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace basched::core {

OrderTreeWalker::OrderTreeWalker(const graph::TaskGraph& graph, ScheduleEvaluator& evaluator)
    : graph_(&graph), evaluator_(&evaluator), frontier_(graph) {
  const std::size_t n = graph.num_tasks();
  seq_.reserve(n);
  assignment_.assign(n, 0);
  min_duration_.resize(n);
  min_energy_.resize(n);
  for (graph::TaskId v = 0; v < n; ++v) {
    min_duration_[v] = graph.task(v).min_duration();
    double e = std::numeric_limits<double>::infinity();
    for (const auto& pt : graph.task(v).points()) e = std::min(e, pt.energy());
    min_energy_[v] = e;
    remaining_min_duration_ += min_duration_[v];
    remaining_min_energy_ += min_energy_[v];
  }
}

void OrderTreeWalker::reset() {
  while (!seq_.empty()) {
    const graph::TaskId v = seq_.back();
    seq_.pop_back();
    evaluator_->pop();
    remaining_min_duration_ += min_duration_[v];
    remaining_min_energy_ += min_energy_[v];
    frontier_.unschedule(v);
  }
  stopped_ = false;
}

void OrderTreeWalker::load_prefix(std::span<const graph::TaskId> seq,
                                  std::span<const std::size_t> cols) {
  if (seq.size() != cols.size() || seq.size() > graph_->num_tasks())
    throw std::invalid_argument("OrderTreeWalker::load_prefix: malformed prefix");
  reset();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const graph::TaskId v = seq[i];
    if (v >= graph_->num_tasks() || !frontier_.is_ready(v))
      throw std::invalid_argument(
          "OrderTreeWalker::load_prefix: prefix is not a partial topological order");
    if (cols[i] >= graph_->num_design_points())
      throw std::invalid_argument("OrderTreeWalker::load_prefix: column out of range");
    frontier_.schedule(v);
    remaining_min_duration_ -= min_duration_[v];
    remaining_min_energy_ -= min_energy_[v];
    seq_.push_back(v);
    assignment_[v] = cols[i];
    evaluator_->extend(v, cols[i]);
  }
}

}  // namespace basched::core
