#include "basched/core/schedule_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::core {

namespace {

using battery::KibamModel;
using battery::RakhmatovVrudhulaModel;
using util::fastmath::DecayRowCache;

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const graph::TaskGraph& graph,
                                     const battery::BatteryModel& model)
    : ScheduleEvaluator(graph, model, nullptr) {}

ScheduleEvaluator::ScheduleEvaluator(const graph::TaskGraph& graph,
                                     const battery::BatteryModel& model,
                                     const DecayRowCache* warm)
    : graph_(&graph),
      model_(&model),
      rv_(dynamic_cast<const RakhmatovVrudhulaModel*>(&model)),
      kibam_(dynamic_cast<const KibamModel*>(&model)),
      peukert_(dynamic_cast<const battery::PeukertModel*>(&model)) {
  if (rv_ != nullptr) {
    kind_ = ModelKind::Rv;
  } else if (kibam_ != nullptr) {
    kind_ = ModelKind::Kibam;
  } else if (peukert_ != nullptr) {
    kind_ = ModelKind::Peukert;
  } else if (dynamic_cast<const battery::IdealModel*>(&model) != nullptr) {
    kind_ = ModelKind::Ideal;
  } else {
    kind_ = ModelKind::Generic;
  }

  const std::size_t n = graph.num_tasks();
  intervals_.reserve(n);
  cum_charge_.reserve(n + 1);
  cum_charge_.push_back(0.0);

  if (kind_ == ModelKind::Rv) {
    beta_sq_ = rv_->beta() * rv_->beta();
    terms_ = rv_->terms();
    const auto t = static_cast<std::size_t>(terms_);
    rows_.reserve(n * t);
    row_idx_.reserve(n);
    bm_.resize(t);
    for (int m = 1; m <= terms_; ++m)
      bm_[m - 1] = beta_sq_ * static_cast<double>(m) * static_cast<double>(m);
    // Adopt a compatible pre-warmed cache (a copy — caches are not shared
    // mutably) instead of recomputing its rows; the catalog warm loop below
    // then costs zero exp evaluations for every key the master already held.
    const auto eq = [&](const DecayRowCache& c) {
      return c.terms() == t && std::equal(c.coeffs().begin(), c.coeffs().end(), bm_.begin());
    };
    if (warm != nullptr && eq(*warm))
      decay_cache_ = *warm;
    else
      decay_cache_ = DecayRowCache(bm_);
    peek_cache_ = DecayRowCache(bm_);
    cache_scratch_.resize(t);
    work_.resize(4 * t);
    // Warm the duration cache with the catalog's distinct Δt values: every
    // extend/commit/σ-at-end decay row below is keyed on one of these, so
    // the whole search phase runs with zero exp evaluations on this path.
    for (graph::TaskId v = 0; v < n; ++v)
      for (const auto& pt : graph.task(v).points())
        (void)decay_cache_.index_of(pt.duration);
  } else if (kind_ == ModelKind::Kibam) {
    kstates_.reserve(n + 1);
    kstates_.push_back({kibam_->full_state(), false});
  } else if (kind_ == ModelKind::Peukert) {
    peff_.reserve(n + 1);
    peff_.push_back(0.0);
  }
}

void ScheduleEvaluator::reset() { truncate(0); }

void ScheduleEvaluator::truncate(std::size_t k) {
  BASCHED_ASSERT(k <= intervals_.size());
  intervals_.resize(k);
  cum_charge_.resize(k + 1);
  if (kind_ == ModelKind::Rv) {
    rows_.resize(k * static_cast<std::size_t>(terms_));
    row_idx_.resize(k);
  }
  if (kind_ == ModelKind::Kibam) kstates_.resize(k + 1);
  if (kind_ == ModelKind::Peukert) peff_.resize(k + 1);
  sigma_cached_ = false;
}

void ScheduleEvaluator::extend(graph::TaskId task, std::size_t design_point) {
  const auto& pt = graph_->task(task).point(design_point);
  extend_interval(pt.duration, pt.current);
}

void ScheduleEvaluator::extend_interval(double duration, double current) {
  BASCHED_ASSERT(duration > 0.0 && current >= 0.0);
  const double start = prefix_duration();
  const std::size_t k = intervals_.size();
  switch (kind_) {
    case ModelKind::Rv: {
      // Advance the decayed partial sums from checkpoint t_{k-1} to
      // t_k = start, folding in interval k-1, which is now fully elapsed
      // (the shared A_m recurrence of incremental_sigma.hpp). Back-to-back
      // intervals decay by exactly the previous duration, so the factors
      // come from the warm per-Δt cache — no exp evaluations — and the
      // row *index* recorded per position lets later commits and σ-at-end
      // queries dereference them without even hashing.
      rows_.resize((k + 1) * static_cast<std::size_t>(terms_));
      row_idx_.push_back(decay_cache_.index_of(duration));  // may grow cache rows
      double* row = rv_row(k);
      if (k == 0) {
        std::fill_n(row, terms_, 0.0);
      } else {
        const battery::DischargeInterval& prev = intervals_[k - 1];
        const double* c = duration_row(k - 1, cache_scratch_.data());
        const double* prev_row = rv_row(k - 1);
        for (int i = 0; i < terms_; ++i)
          row[i] = prev_row[i] * c[i] + prev.current * (1.0 - c[i]) / bm_[i];
      }
      break;
    }
    case ModelKind::Kibam: {
      KibamCheckpoint cp = kstates_.back();
      cp.state = kibam_->advance(cp.state, cp.dead, current, duration);
      kstates_.push_back(cp);
      break;
    }
    case ModelKind::Peukert:
      peff_.push_back(peff_.back() + peukert_->apparent_rate(current) * duration);
      break;
    case ModelKind::Ideal:
    case ModelKind::Generic:
      break;
  }
  intervals_.push_back({start, duration, current});
  cum_charge_.push_back(cum_charge_.back() + current * duration);
  sigma_cached_ = false;
}

void ScheduleEvaluator::pop() {
  if (intervals_.empty()) throw std::logic_error("ScheduleEvaluator::pop: empty prefix");
  truncate(intervals_.size() - 1);
}

void ScheduleEvaluator::rebuild_tail(std::size_t first) {
  const std::size_t n = intervals_.size();
  for (std::size_t k = first; k < n; ++k) {
    intervals_[k].start = k == 0 ? 0.0 : intervals_[k - 1].end();
    cum_charge_[k + 1] = cum_charge_[k] + intervals_[k].charge();
    if (kind_ == ModelKind::Kibam) {
      KibamCheckpoint cp = kstates_[k];
      cp.state = kibam_->advance(cp.state, cp.dead, intervals_[k].current,
                                 intervals_[k].duration);
      kstates_[k + 1] = cp;
    } else if (kind_ == ModelKind::Peukert) {
      peff_[k + 1] =
          peff_[k] + peukert_->apparent_rate(intervals_[k].current) * intervals_[k].duration;
    }
  }
}

const double* ScheduleEvaluator::duration_row(std::size_t k, double* scratch) {
  const std::uint32_t idx = row_idx_[k];
  if (idx != DecayRowCache::kNoIndex) return decay_cache_.row_at(idx);
  decay_cache_.compute(intervals_[k].duration, scratch);
  return scratch;
}

double ScheduleEvaluator::sigma_end_uncached() {
  if (intervals_.empty()) return 0.0;
  const battery::DischargeInterval& last = intervals_.back();
  switch (kind_) {
    case ModelKind::Rv: {
      // σ = decayed prefix at the last checkpoint + the last interval's own
      // Eq. 1 term, both keyed on the last duration — warm-cache rows, no
      // hashing (the row index was recorded at extend time).
      const std::size_t k = intervals_.size() - 1;
      const double* c = duration_row(k, cache_scratch_.data());
      const double pref =
          RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, rv_row(k), cum_charge_[k], c);
      double tail = 0.0;
      for (int i = 0; i < terms_; ++i) tail += (1.0 - c[i]) / bm_[i];
      return pref + last.current * (last.duration + 2.0 * tail);
    }
    case ModelKind::Kibam:
      return kibam_->sigma_of(kstates_.back().state);
    case ModelKind::Peukert:
      return peff_.back();
    case ModelKind::Ideal:
      return cum_charge_.back();
    case ModelKind::Generic:
      break;
  }
  return model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_),
                             prefix_duration());
}

double ScheduleEvaluator::sigma_end() {
  if (!sigma_cached_) {
    sigma_cache_ = sigma_end_uncached();
    sigma_cached_ = true;
  }
  return sigma_cache_;
}

CostResult ScheduleEvaluator::current() {
  ++evaluations_;
  CostResult r;
  r.sigma = sigma_end();
  r.duration = prefix_duration();
  r.energy = prefix_energy();
  return r;
}

CostResult ScheduleEvaluator::full_eval(const Schedule& schedule) {
  return full_eval(schedule.sequence, schedule.assignment);
}

CostResult ScheduleEvaluator::full_eval(std::span<const graph::TaskId> sequence,
                                        std::span<const std::size_t> assignment) {
  reset();
  for (const graph::TaskId v : sequence) extend(v, assignment[v]);
  return current();
}

CostResult ScheduleEvaluator::reprice_suffix(const Schedule& schedule,
                                             std::size_t first_changed_pos) {
  const std::size_t n = schedule.sequence.size();
  if (first_changed_pos > depth() || first_changed_pos > n)
    throw std::invalid_argument(
        "ScheduleEvaluator::reprice_suffix: first_changed_pos beyond loaded prefix");
#ifndef NDEBUG
  // The contract is that the loaded prefix still matches the schedule; a
  // violation silently re-prices the wrong profile, so verify it in Debug.
  for (std::size_t i = 0; i < first_changed_pos; ++i) {
    const graph::TaskId v = schedule.sequence[i];
    const auto& pt = graph_->task(v).point(schedule.assignment[v]);
    BASCHED_ASSERT(intervals_[i].duration == pt.duration && intervals_[i].current == pt.current);
  }
#endif
  truncate(first_changed_pos);
  for (std::size_t i = first_changed_pos; i < n; ++i)
    extend(schedule.sequence[i], schedule.assignment[schedule.sequence[i]]);
  return current();
}

double ScheduleEvaluator::peek_swap_adjacent(std::size_t pos) {
  if (pos + 1 >= depth())
    throw std::out_of_range("ScheduleEvaluator::peek_swap_adjacent: pos + 1 must be < depth()");
  ++evaluations_;
  const battery::DischargeInterval a = intervals_[pos];
  const battery::DischargeInterval b = intervals_[pos + 1];
  const double t_end = prefix_duration();  // unchanged by the swap
  switch (kind_) {
    case ModelKind::Rv: {
      // σ(T) is a sum of independent per-interval terms, so only the two
      // swapped intervals' terms change; everything before pos comes from
      // the decayed prefix rows, everything after pos+1 is read off as
      // σ − prefix − old terms. Four decay rows cover all eight series
      // bounds — one fused batch_exp call.
      const double x1 = t_end - a.start;     // T − t_a
      const double x2 = x1 - a.duration;     // T − e_a == T − t_b
      const double x4r = x2 - b.duration;    // T − e_b (clamped below)
      const double x5 = x1 - b.duration;     // T − (t_a + Δ_b)
      const double x4 = x4r > 0.0 ? x4r : 0.0;
      double* e1 = work_.data();
      double* e2 = e1 + terms_;
      double* e4 = e2 + terms_;
      double* e5 = e4 + terms_;
      for (int i = 0; i < terms_; ++i) {
        e1[i] = -bm_[i] * x1;
        e2[i] = -bm_[i] * x2;
        e4[i] = -bm_[i] * x4;
        e5[i] = -bm_[i] * x5;
      }
      util::fastmath::batch_exp(
          std::span<double>(work_.data(), 4 * static_cast<std::size_t>(terms_)));
      const double pref =
          RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, rv_row(pos), cum_charge_[pos], e1);
      double sa_old = 0.0, sb_old = 0.0, sb_new = 0.0, sa_new = 0.0;
      for (int i = 0; i < terms_; ++i) {
        const double inv = 1.0 / bm_[i];
        sa_old += (e2[i] - e1[i]) * inv;  // series(T−e_a, T−t_a)
        sb_old += (e4[i] - e2[i]) * inv;  // series(T−e_b, T−t_b)
        sb_new += (e5[i] - e1[i]) * inv;  // b moved first
        sa_new += (e4[i] - e5[i]) * inv;  // a moved second
      }
      const double old_terms = a.current * (a.duration + 2.0 * sa_old) +
                               b.current * (b.duration + 2.0 * sb_old);
      const double new_terms = b.current * (b.duration + 2.0 * sb_new) +
                               a.current * (a.duration + 2.0 * sa_new);
      const double suffix = sigma_end() - pref - old_terms;
      return pref + new_terms + suffix;
    }
    case ModelKind::Kibam: {
      // Restart the closed-form walk at the checkpoint before the swap.
      KibamCheckpoint cp = kstates_[pos];
      cp.state = kibam_->advance(cp.state, cp.dead, b.current, b.duration);
      cp.state = kibam_->advance(cp.state, cp.dead, a.current, a.duration);
      for (std::size_t j = pos + 2; j < depth(); ++j)
        cp.state =
            kibam_->advance(cp.state, cp.dead, intervals_[j].current, intervals_[j].duration);
      return kibam_->sigma_of(cp.state);
    }
    case ModelKind::Peukert:
    case ModelKind::Ideal:
      // At the (unchanged) end time every interval is fully elapsed and both
      // models are order-independent sums — the swap cannot change σ.
      return sigma_end();
    case ModelKind::Generic:
      break;
  }
  // Generic models: mutate the buffer in place, price, restore exactly.
  intervals_[pos] = {a.start, b.duration, b.current};
  intervals_[pos + 1] = {a.start + b.duration, a.duration, a.current};
  const double sigma =
      model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_), t_end);
  intervals_[pos] = a;
  intervals_[pos + 1] = b;
  return sigma;
}

double ScheduleEvaluator::peek_replace(std::size_t pos, double duration, double current) {
  if (pos >= depth())
    throw std::out_of_range("ScheduleEvaluator::peek_replace: pos must be < depth()");
  if (!(duration > 0.0) || !std::isfinite(duration) || current < 0.0 || !std::isfinite(current))
    throw std::invalid_argument("ScheduleEvaluator::peek_replace: malformed interval");
  ++evaluations_;
  const battery::DischargeInterval old = intervals_[pos];
  const double t_end = prefix_duration();
  const double t_new = t_end + (duration - old.duration);
  switch (kind_) {
    case ModelKind::Rv: {
      // All intervals after pos shift rigidly with the end time, so their
      // Eq. 1 terms are numerically invariant: recover their sum at the
      // *old* end time and reuse it at the new one. Three decay rows cover
      // both prefix queries and both own-terms — one fused batch_exp call.
      const double x1 = t_end - old.start;            // T − t_pos
      const double x3r = x1 - old.duration;           // T − e_pos (clamped)
      const double x3 = x3r > 0.0 ? x3r : 0.0;
      const double x2 = x3 + duration;                // T' − t_pos
      double* e1 = work_.data();
      double* e2 = e1 + terms_;
      double* e3 = e2 + terms_;
      for (int i = 0; i < terms_; ++i) {
        e1[i] = -bm_[i] * x1;
        e2[i] = -bm_[i] * x2;
        e3[i] = -bm_[i] * x3;
      }
      util::fastmath::batch_exp(
          std::span<double>(work_.data(), 3 * static_cast<std::size_t>(terms_)));
      const double* row = rv_row(pos);
      const double pref_old =
          RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, row, cum_charge_[pos], e1);
      const double pref_new =
          RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, row, cum_charge_[pos], e2);
      double s_old = 0.0, s_new = 0.0;
      for (int i = 0; i < terms_; ++i) {
        const double inv = 1.0 / bm_[i];
        s_old += (e3[i] - e1[i]) * inv;  // series(T−e_pos, T−t_pos)
        s_new += (e3[i] - e2[i]) * inv;  // series(T'−e'_pos, T'−t_pos)
      }
      const double own_old = old.current * (old.duration + 2.0 * s_old);
      const double own_new = current * (duration + 2.0 * s_new);
      const double suffix = sigma_end() - pref_old - own_old;
      return pref_new + own_new + suffix;
    }
    case ModelKind::Kibam: {
      KibamCheckpoint cp = kstates_[pos];
      cp.state = kibam_->advance(cp.state, cp.dead, current, duration);
      for (std::size_t j = pos + 1; j < depth(); ++j)
        cp.state =
            kibam_->advance(cp.state, cp.dead, intervals_[j].current, intervals_[j].duration);
      return kibam_->sigma_of(cp.state);
    }
    case ModelKind::Peukert:
      return sigma_end() - peukert_->apparent_rate(old.current) * old.duration +
             peukert_->apparent_rate(current) * duration;
    case ModelKind::Ideal:
      return sigma_end() - old.charge() + current * duration;
    case ModelKind::Generic:
      break;
  }
  // Generic models: apply the replacement (shifting suffix starts), price,
  // restore the saved starts bit-exactly.
  const std::size_t n = depth();
  scratch_.resize(n - pos - 1);
  for (std::size_t j = pos + 1; j < n; ++j) scratch_[j - pos - 1] = intervals_[j].start;
  intervals_[pos].duration = duration;
  intervals_[pos].current = current;
  for (std::size_t j = pos + 1; j < n; ++j) intervals_[j].start = intervals_[j - 1].end();
  const double sigma =
      model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_), t_new);
  intervals_[pos] = old;
  for (std::size_t j = pos + 1; j < n; ++j) intervals_[j].start = scratch_[j - pos - 1];
  return sigma;
}

void ScheduleEvaluator::peek_swap_adjacent_block(std::span<const std::size_t> positions,
                                                 std::span<double> sigmas) {
  BASCHED_ASSERT(sigmas.size() >= positions.size());
  if (positions.empty()) return;
  if (kind_ != ModelKind::Rv) {
    for (std::size_t j = 0; j < positions.size(); ++j)
      sigmas[j] = peek_swap_adjacent(positions[j]);
    return;
  }
  const auto t = static_cast<std::size_t>(terms_);
  const double t_end = prefix_duration();
  // Same four series bounds per candidate as the scalar peek — but the K×4
  // rows are gathered through the peek-row cache in one pass: warm offsets
  // copy exp-free, every cold offset lands in ONE fused kernel call.
  block_keys_.resize(4 * positions.size());
  for (std::size_t j = 0; j < positions.size(); ++j) {
    const std::size_t pos = positions[j];
    if (pos + 1 >= depth())
      throw std::out_of_range(
          "ScheduleEvaluator::peek_swap_adjacent_block: pos + 1 must be < depth()");
    const battery::DischargeInterval& a = intervals_[pos];
    const battery::DischargeInterval& b = intervals_[pos + 1];
    const double x1 = t_end - a.start;   // T − t_a
    const double x2 = x1 - a.duration;   // T − e_a == T − t_b
    const double x4r = x2 - b.duration;  // T − e_b (clamped below)
    const double x5 = x1 - b.duration;   // T − (t_a + Δ_b)
    block_keys_[4 * j + 0] = x1;
    block_keys_[4 * j + 1] = x2;
    block_keys_[4 * j + 2] = x4r > 0.0 ? x4r : 0.0;
    block_keys_[4 * j + 3] = x5;
  }
  evaluations_ += positions.size();
  const double sig = sigma_end();
  block_rows_.resize(4 * positions.size() * t);
  (void)peek_cache_.rows_block(block_keys_, block_rows_.data());
  for (std::size_t j = 0; j < positions.size(); ++j) {
    const std::size_t pos = positions[j];
    const battery::DischargeInterval& a = intervals_[pos];
    const battery::DischargeInterval& b = intervals_[pos + 1];
    const double* e1 = block_rows_.data() + 4 * j * t;
    const double* e2 = e1 + t;
    const double* e4 = e2 + t;
    const double* e5 = e4 + t;
    const double pref =
        RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, rv_row(pos), cum_charge_[pos], e1);
    double sa_old = 0.0, sb_old = 0.0, sb_new = 0.0, sa_new = 0.0;
    for (int i = 0; i < terms_; ++i) {
      const double inv = 1.0 / bm_[i];
      sa_old += (e2[i] - e1[i]) * inv;
      sb_old += (e4[i] - e2[i]) * inv;
      sb_new += (e5[i] - e1[i]) * inv;
      sa_new += (e4[i] - e5[i]) * inv;
    }
    const double old_terms =
        a.current * (a.duration + 2.0 * sa_old) + b.current * (b.duration + 2.0 * sb_old);
    const double new_terms =
        b.current * (b.duration + 2.0 * sb_new) + a.current * (a.duration + 2.0 * sa_new);
    const double suffix = sig - pref - old_terms;
    sigmas[j] = pref + new_terms + suffix;
  }
}

void ScheduleEvaluator::peek_replace_block(std::span<const ReplaceCandidate> candidates,
                                           std::span<double> sigmas) {
  BASCHED_ASSERT(sigmas.size() >= candidates.size());
  if (candidates.empty()) return;
  if (kind_ != ModelKind::Rv) {
    for (std::size_t j = 0; j < candidates.size(); ++j)
      sigmas[j] = peek_replace(candidates[j].pos, candidates[j].duration, candidates[j].current);
    return;
  }
  const auto t = static_cast<std::size_t>(terms_);
  const double t_end = prefix_duration();
  block_keys_.resize(3 * candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const ReplaceCandidate& cand = candidates[j];
    if (cand.pos >= depth())
      throw std::out_of_range("ScheduleEvaluator::peek_replace_block: pos must be < depth()");
    if (!(cand.duration > 0.0) || !std::isfinite(cand.duration) || cand.current < 0.0 ||
        !std::isfinite(cand.current))
      throw std::invalid_argument("ScheduleEvaluator::peek_replace_block: malformed interval");
    const battery::DischargeInterval& old = intervals_[cand.pos];
    const double x1 = t_end - old.start;   // T − t_pos
    const double x3r = x1 - old.duration;  // T − e_pos (clamped)
    const double x3 = x3r > 0.0 ? x3r : 0.0;
    const double x2 = x3 + cand.duration;  // T' − t_pos
    block_keys_[3 * j + 0] = x1;
    block_keys_[3 * j + 1] = x2;
    block_keys_[3 * j + 2] = x3;
  }
  evaluations_ += candidates.size();
  const double sig = sigma_end();
  block_rows_.resize(3 * candidates.size() * t);
  (void)peek_cache_.rows_block(block_keys_, block_rows_.data());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const ReplaceCandidate& cand = candidates[j];
    const battery::DischargeInterval& old = intervals_[cand.pos];
    const double* e1 = block_rows_.data() + 3 * j * t;
    const double* e2 = e1 + t;
    const double* e3 = e2 + t;
    const double* row = rv_row(cand.pos);
    const double pref_old =
        RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, row, cum_charge_[cand.pos], e1);
    const double pref_new =
        RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, row, cum_charge_[cand.pos], e2);
    double s_old = 0.0, s_new = 0.0;
    for (int i = 0; i < terms_; ++i) {
      const double inv = 1.0 / bm_[i];
      s_old += (e3[i] - e1[i]) * inv;
      s_new += (e3[i] - e2[i]) * inv;
    }
    const double own_old = old.current * (old.duration + 2.0 * s_old);
    const double own_new = cand.current * (cand.duration + 2.0 * s_new);
    const double suffix = sig - pref_old - own_old;
    sigmas[j] = pref_new + own_new + suffix;
  }
}

void ScheduleEvaluator::peek_extend_block(std::span<const ExtendCandidate> candidates,
                                          std::span<double> sigmas) {
  BASCHED_ASSERT(sigmas.size() >= candidates.size());
  if (candidates.empty()) return;
  for (const ExtendCandidate& cand : candidates)
    if (!(cand.duration > 0.0) || !std::isfinite(cand.duration) || cand.current < 0.0 ||
        !std::isfinite(cand.current))
      throw std::invalid_argument("ScheduleEvaluator::peek_extend_block: malformed interval");
  evaluations_ += candidates.size();
  switch (kind_) {
    case ModelKind::Rv: {
      // σ after extend(candidate) splits into a candidate-independent part —
      // the decayed partial sums advanced across the current last interval,
      // exactly extend_interval's row recurrence — and a per-candidate Eq. 1
      // term keyed on the candidate duration. The advance runs once for the
      // whole block; the K duration rows (warm catalog keys) gather in one
      // pass. Bit-identical to extend + σ + pop by construction: same
      // expressions, same row bits.
      const auto t = static_cast<std::size_t>(terms_);
      const std::size_t k = intervals_.size();
      ext_row_.resize(t);
      if (k == 0) {
        std::fill_n(ext_row_.data(), terms_, 0.0);
      } else {
        const battery::DischargeInterval& prev = intervals_[k - 1];
        const double* c = duration_row(k - 1, cache_scratch_.data());
        const double* prev_row = rv_row(k - 1);
        for (int i = 0; i < terms_; ++i)
          ext_row_[static_cast<std::size_t>(i)] =
              prev_row[i] * c[i] + prev.current * (1.0 - c[i]) / bm_[i];
      }
      const double cum = cum_charge_.back();
      block_keys_.resize(candidates.size());
      for (std::size_t j = 0; j < candidates.size(); ++j) block_keys_[j] = candidates[j].duration;
      block_rows_.resize(candidates.size() * t);
      (void)decay_cache_.rows_block(block_keys_, block_rows_.data());
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        const double* c = block_rows_.data() + j * t;
        const double pref =
            RakhmatovVrudhulaModel::decayed_prefix_sigma_row(terms_, ext_row_.data(), cum, c);
        double tail = 0.0;
        for (int i = 0; i < terms_; ++i) tail += (1.0 - c[i]) / bm_[i];
        sigmas[j] = pref + candidates[j].current * (candidates[j].duration + 2.0 * tail);
      }
      return;
    }
    case ModelKind::Kibam: {
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        KibamCheckpoint cp = kstates_.back();
        cp.state = kibam_->advance(cp.state, cp.dead, candidates[j].current,
                                   candidates[j].duration);
        sigmas[j] = kibam_->sigma_of(cp.state);
      }
      return;
    }
    case ModelKind::Peukert: {
      for (std::size_t j = 0; j < candidates.size(); ++j)
        sigmas[j] = peff_.back() +
                    peukert_->apparent_rate(candidates[j].current) * candidates[j].duration;
      return;
    }
    case ModelKind::Ideal: {
      for (std::size_t j = 0; j < candidates.size(); ++j)
        sigmas[j] = cum_charge_.back() + candidates[j].current * candidates[j].duration;
      return;
    }
    case ModelKind::Generic:
      break;
  }
  // Generic models: extend for real, price through charge_lost, pop. Same
  // operations a walker leaf performs, so the bits match that path too.
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    extend_interval(candidates[j].duration, candidates[j].current);
    sigmas[j] = sigma_end_uncached();
    truncate(intervals_.size() - 1);
  }
}

CostResult ScheduleEvaluator::commit_swap_adjacent(std::size_t pos) {
  if (pos + 1 >= depth())
    throw std::out_of_range("ScheduleEvaluator::commit_swap_adjacent: pos + 1 must be < depth()");
  apply_swap_adjacent(pos);
  sigma_cached_ = false;
  return current();
}

void ScheduleEvaluator::apply_swap_adjacent(std::size_t pos) {
  const battery::DischargeInterval a = intervals_[pos];
  const battery::DischargeInterval b = intervals_[pos + 1];
  if (kind_ == ModelKind::Rv) {
    // The swap changes later checkpoints' partial sums by a fixed per-term
    // amount G_m (the swapped pair's contribution delta at t_{pos+2}),
    // decayed onward by the running product of per-duration rows — so the
    // whole commit is O(suffix · terms) mult/adds with zero exp evaluations
    // and zero hash lookups on a warm cache (all rows by recorded index).
    double* G = work_.data();
    double* v = work_.data() + terms_;
    const double* ca = duration_row(pos, work_.data() + 2 * terms_);
    const double* cb = duration_row(pos + 1, work_.data() + 3 * terms_);
    for (int i = 0; i < terms_; ++i) {
      const double cab = ca[i] * cb[i];
      G[i] = (b.current * (ca[i] - cab) + a.current * (1.0 - ca[i]) -
              a.current * (cb[i] - cab) - b.current * (1.0 - cb[i])) /
             bm_[i];
      v[i] = 1.0;
    }
    // Checkpoint pos+1 moves to t_pos + Δ_b: re-advance it across b.
    {
      const double* r0 = rv_row(pos);
      double* r1 = rv_row(pos + 1);
      for (int i = 0; i < terms_; ++i)
        r1[i] = r0[i] * cb[i] + b.current * (1.0 - cb[i]) / bm_[i];
    }
    // Buffer + bookkeeping first, then one fused sweep over the suffix:
    // row rescale, start chain and cumulative charge in the same pass.
    intervals_[pos] = {a.start, b.duration, b.current};
    intervals_[pos + 1] = {a.start + b.duration, a.duration, a.current};
    std::swap(row_idx_[pos], row_idx_[pos + 1]);
    cum_charge_[pos + 1] = cum_charge_[pos] + intervals_[pos].charge();
    cum_charge_[pos + 2] = cum_charge_[pos + 1] + intervals_[pos + 1].charge();
    const std::size_t n = depth();
    for (std::size_t k = pos + 2; k < n; ++k) {
      double* rk = rv_row(k);
      for (int i = 0; i < terms_; ++i) rk[i] += v[i] * G[i];
      intervals_[k].start = intervals_[k - 1].end();
      cum_charge_[k + 1] = cum_charge_[k] + intervals_[k].charge();
      if (k + 1 < n) {
        const double* ck = duration_row(k, cache_scratch_.data());
        for (int i = 0; i < terms_; ++i) v[i] *= ck[i];
      }
    }
  } else {
    intervals_[pos].duration = b.duration;
    intervals_[pos].current = b.current;
    intervals_[pos + 1].duration = a.duration;
    intervals_[pos + 1].current = a.current;
    rebuild_tail(pos);
  }
}

CostResult ScheduleEvaluator::commit_reverse_segment(std::size_t first, std::size_t last) {
  if (first >= last || last >= depth())
    throw std::out_of_range(
        "ScheduleEvaluator::commit_reverse_segment: need first < last < depth()");
  if (kind_ == ModelKind::Rv) {
    // Express the reversal as adjacent swaps so the decayed partial-sum rows
    // stay analytically maintained (one bubble pass per target position:
    // the segment's last interval sinks to `target`, preserving the order of
    // the rest). σ is priced once, at the end.
    for (std::size_t target = first; target < last; ++target)
      for (std::size_t k = last; k-- > target;) apply_swap_adjacent(k);
  } else {
    // Everything downstream of `first` is rebuilt from its checkpoint
    // anyway, so reverse the buffer wholesale instead of swap-by-swap.
    std::reverse(intervals_.begin() + static_cast<std::ptrdiff_t>(first),
                 intervals_.begin() + static_cast<std::ptrdiff_t>(last) + 1);
    rebuild_tail(first);
  }
  sigma_cached_ = false;
  return current();
}

CostResult ScheduleEvaluator::commit_replace(std::size_t pos, double duration, double current) {
  if (pos >= depth())
    throw std::out_of_range("ScheduleEvaluator::commit_replace: pos must be < depth()");
  if (!(duration > 0.0) || !std::isfinite(duration) || current < 0.0 || !std::isfinite(current))
    throw std::invalid_argument("ScheduleEvaluator::commit_replace: malformed interval");
  const battery::DischargeInterval old = intervals_[pos];
  if (kind_ == ModelKind::Rv) {
    // Every later checkpoint shifts rigidly with the suffix, so its partial
    // sums change by a fixed per-term amount F_m — the prefix-before-pos
    // decay delta plus the replaced interval's own delta, both expressible
    // through the old/new duration rows — decayed onward exactly as in
    // commit_swap_adjacent.
    double* F = work_.data();
    double* v = work_.data() + terms_;
    // Insert the new duration first: growth may relocate cache rows, and
    // every pointer below must stay valid through the sweep.
    const std::uint32_t idx_new = decay_cache_.index_of(duration);
    const double* c_old = duration_row(pos, work_.data() + 2 * terms_);
    const double* c_new = idx_new != DecayRowCache::kNoIndex
                              ? decay_cache_.row_at(idx_new)
                              : [&] {
                                  decay_cache_.compute(duration, work_.data() + 3 * terms_);
                                  return work_.data() + 3 * terms_;
                                }();
    const double* r0 = rv_row(pos);
    for (int i = 0; i < terms_; ++i) {
      F[i] = r0[i] * (c_new[i] - c_old[i]) +
             (current * (1.0 - c_new[i]) - old.current * (1.0 - c_old[i])) / bm_[i];
      v[i] = 1.0;
    }
    intervals_[pos].duration = duration;
    intervals_[pos].current = current;
    row_idx_[pos] = idx_new;
    cum_charge_[pos + 1] = cum_charge_[pos] + intervals_[pos].charge();
    const std::size_t n = depth();
    for (std::size_t k = pos + 1; k < n; ++k) {
      double* rk = rv_row(k);
      for (int i = 0; i < terms_; ++i) rk[i] += v[i] * F[i];
      intervals_[k].start = intervals_[k - 1].end();
      cum_charge_[k + 1] = cum_charge_[k] + intervals_[k].charge();
      if (k + 1 < n) {
        const double* ck = duration_row(k, cache_scratch_.data());
        for (int i = 0; i < terms_; ++i) v[i] *= ck[i];
      }
    }
  } else {
    intervals_[pos].duration = duration;
    intervals_[pos].current = current;
    rebuild_tail(pos);
  }
  sigma_cached_ = false;
  return this->current();  // the `current` parameter shadows the member
}

}  // namespace basched::core
