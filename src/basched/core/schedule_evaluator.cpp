#include "basched/core/schedule_evaluator.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::core {

namespace {

using battery::RakhmatovVrudhulaModel;

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const graph::TaskGraph& graph,
                                     const battery::BatteryModel& model)
    : graph_(&graph),
      model_(&model),
      rv_(dynamic_cast<const RakhmatovVrudhulaModel*>(&model)) {
  if (rv_ != nullptr) {
    beta_sq_ = rv_->beta() * rv_->beta();
    terms_ = rv_->terms();
  }
  const std::size_t n = graph.num_tasks();
  intervals_.reserve(n);
  cum_charge_.reserve(n + 1);
  cum_charge_.push_back(0.0);
  if (rv_ != nullptr) rows_.reserve(n * static_cast<std::size_t>(terms_));
}

void ScheduleEvaluator::reset() { truncate(0); }

void ScheduleEvaluator::truncate(std::size_t k) {
  BASCHED_ASSERT(k <= intervals_.size());
  intervals_.resize(k);
  cum_charge_.resize(k + 1);
  if (rv_ != nullptr) rows_.resize(k * static_cast<std::size_t>(terms_));
  sigma_cached_ = false;
}

void ScheduleEvaluator::extend(graph::TaskId task, std::size_t design_point) {
  const auto& pt = graph_->task(task).point(design_point);
  extend_interval(pt.duration, pt.current);
}

void ScheduleEvaluator::extend_interval(double duration, double current) {
  BASCHED_ASSERT(duration > 0.0 && current >= 0.0);
  const double start = prefix_duration();
  const std::size_t k = intervals_.size();
  if (rv_ != nullptr) {
    // Advance the decayed partial sums from checkpoint t_{k-1} to t_k = start
    // and fold in interval k-1, which is now fully elapsed (the shared A_m
    // recurrence of incremental_sigma.hpp).
    rows_.resize((k + 1) * static_cast<std::size_t>(terms_));
    double* row = rows_.data() + k * static_cast<std::size_t>(terms_);
    if (k == 0) {
      for (int m = 1; m <= terms_; ++m) row[m - 1] = 0.0;
    } else {
      const battery::DischargeInterval& prev = intervals_[k - 1];
      RakhmatovVrudhulaModel::advance_decay_row(beta_sq_, terms_, row - terms_, prev.start,
                                                prev.end(), prev.current, start, row);
    }
  }
  intervals_.push_back({start, duration, current});
  cum_charge_.push_back(cum_charge_.back() + current * duration);
  sigma_cached_ = false;
}

void ScheduleEvaluator::pop() {
  if (intervals_.empty()) throw std::logic_error("ScheduleEvaluator::pop: empty prefix");
  truncate(intervals_.size() - 1);
}

double ScheduleEvaluator::prefix_part(std::size_t k, double t) const noexcept {
  BASCHED_ASSERT(rv_ != nullptr && k < intervals_.size());
  BASCHED_ASSERT(t >= intervals_[k].start - 1e-12);
  const double* row = rows_.data() + k * static_cast<std::size_t>(terms_);
  return RakhmatovVrudhulaModel::decayed_prefix_sigma(beta_sq_, terms_, row, cum_charge_[k],
                                                      t - intervals_[k].start);
}

double ScheduleEvaluator::sigma_end_uncached() const {
  if (intervals_.empty()) return 0.0;
  const battery::DischargeInterval& last = intervals_.back();
  const double t = last.end();
  if (rv_ != nullptr) {
    return prefix_part(intervals_.size() - 1, t) +
           RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, last.start, last.duration,
                                                 last.current, t);
  }
  return model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_), t);
}

double ScheduleEvaluator::sigma_end() {
  if (!sigma_cached_) {
    sigma_cache_ = sigma_end_uncached();
    sigma_cached_ = true;
  }
  return sigma_cache_;
}

CostResult ScheduleEvaluator::current() {
  ++evaluations_;
  CostResult r;
  r.sigma = sigma_end();
  r.duration = prefix_duration();
  r.energy = prefix_energy();
  return r;
}

CostResult ScheduleEvaluator::full_eval(const Schedule& schedule) {
  return full_eval(schedule.sequence, schedule.assignment);
}

CostResult ScheduleEvaluator::full_eval(std::span<const graph::TaskId> sequence,
                                        std::span<const std::size_t> assignment) {
  reset();
  for (const graph::TaskId v : sequence) extend(v, assignment[v]);
  return current();
}

CostResult ScheduleEvaluator::reprice_suffix(const Schedule& schedule,
                                             std::size_t first_changed_pos) {
  const std::size_t n = schedule.sequence.size();
  if (first_changed_pos > depth() || first_changed_pos > n)
    throw std::invalid_argument(
        "ScheduleEvaluator::reprice_suffix: first_changed_pos beyond loaded prefix");
#ifndef NDEBUG
  // The contract is that the loaded prefix still matches the schedule; a
  // violation silently re-prices the wrong profile, so verify it in Debug.
  for (std::size_t i = 0; i < first_changed_pos; ++i) {
    const graph::TaskId v = schedule.sequence[i];
    const auto& pt = graph_->task(v).point(schedule.assignment[v]);
    BASCHED_ASSERT(intervals_[i].duration == pt.duration && intervals_[i].current == pt.current);
  }
#endif
  truncate(first_changed_pos);
  for (std::size_t i = first_changed_pos; i < n; ++i)
    extend(schedule.sequence[i], schedule.assignment[schedule.sequence[i]]);
  return current();
}

double ScheduleEvaluator::peek_swap_adjacent(std::size_t pos) {
  if (pos + 1 >= depth())
    throw std::out_of_range("ScheduleEvaluator::peek_swap_adjacent: pos + 1 must be < depth()");
  ++evaluations_;
  const battery::DischargeInterval a = intervals_[pos];
  const battery::DischargeInterval b = intervals_[pos + 1];
  const double t_end = prefix_duration();  // unchanged by the swap
  if (rv_ != nullptr) {
    // σ(T) is a sum of independent per-interval terms, so only the two
    // swapped intervals' terms change; everything before pos comes from the
    // decayed prefix rows, everything after pos+1 is read off as
    // σ − prefix − old terms.
    const double pref = prefix_part(pos, t_end);
    const double old_terms =
        RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, a.start, a.duration, a.current,
                                              t_end) +
        RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, b.start, b.duration, b.current,
                                              t_end);
    const double suffix = sigma_end() - pref - old_terms;
    const double new_terms =
        RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, a.start, b.duration, b.current,
                                              t_end) +
        RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, a.start + b.duration, a.duration,
                                              a.current, t_end);
    return pref + new_terms + suffix;
  }
  // Generic models: mutate the buffer in place, price, restore exactly.
  intervals_[pos] = {a.start, b.duration, b.current};
  intervals_[pos + 1] = {a.start + b.duration, a.duration, a.current};
  const double sigma =
      model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_), t_end);
  intervals_[pos] = a;
  intervals_[pos + 1] = b;
  return sigma;
}

double ScheduleEvaluator::peek_replace(std::size_t pos, double duration, double current) {
  if (pos >= depth())
    throw std::out_of_range("ScheduleEvaluator::peek_replace: pos must be < depth()");
  if (!(duration > 0.0) || !std::isfinite(duration) || current < 0.0 || !std::isfinite(current))
    throw std::invalid_argument("ScheduleEvaluator::peek_replace: malformed interval");
  ++evaluations_;
  const battery::DischargeInterval old = intervals_[pos];
  const double t_end = prefix_duration();
  const double t_new = t_end + (duration - old.duration);
  if (rv_ != nullptr) {
    // All intervals after pos shift rigidly with the end time, so their Eq. 1
    // terms are numerically invariant: recover their sum at the *old* end
    // time and reuse it at the new one. The prefix rows answer the j < pos
    // part at any query time in O(terms).
    const double pref_old = prefix_part(pos, t_end);
    const double pref_new = prefix_part(pos, t_new);
    const double own_old = RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, old.start,
                                                                 old.duration, old.current, t_end);
    const double own_new = RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, old.start,
                                                                 duration, current, t_new);
    const double suffix = sigma_end() - pref_old - own_old;
    return pref_new + own_new + suffix;
  }
  // Generic models: apply the replacement (shifting suffix starts), price,
  // restore the saved starts bit-exactly.
  const std::size_t n = depth();
  scratch_.resize(n - pos - 1);
  for (std::size_t j = pos + 1; j < n; ++j) scratch_[j - pos - 1] = intervals_[j].start;
  intervals_[pos].duration = duration;
  intervals_[pos].current = current;
  for (std::size_t j = pos + 1; j < n; ++j) intervals_[j].start = intervals_[j - 1].end();
  const double sigma =
      model_->charge_lost(std::span<const battery::DischargeInterval>(intervals_), t_new);
  intervals_[pos] = old;
  for (std::size_t j = pos + 1; j < n; ++j) intervals_[j].start = scratch_[j - pos - 1];
  return sigma;
}

}  // namespace basched::core
