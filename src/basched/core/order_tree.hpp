/// \file order_tree.hpp
/// \brief Streaming walker over the order tree — the shared search core of
/// every enumerative baseline.
///
/// The tree of topological orders × design-point assignments is the object
/// all exact baselines walk: a node fixes a prefix of the sequence (chosen
/// from the Kahn ready set, so every leaf is a topological order) together
/// with the design-point column of each placed task. Before this walker,
/// `schedule_exhaustive` materialized every order via
/// `graph::all_topological_orders` (a memory cliff at the `max_orders` cap)
/// and reset its evaluator per order, and `schedule_branch_and_bound` carried
/// its own private `SearchState::dfs`. The walker unifies both:
///
///  * **Backtracking Kahn** (graph::KahnFrontier): the ready set is
///    maintained incrementally, children are visited in ascending task id
///    then ascending column — a fixed, deterministic child order.
///  * **Sequence-prefix sharing *across orders***: one ScheduleEvaluator
///    rides along the DFS, so two orders sharing a k-task prefix share its
///    O(k · terms) pricing state; stepping to a sibling order costs only the
///    differing suffix. The old per-order reset re-paid the whole prefix.
///  * **Pluggable pruning** via visitor hooks — the only thing that differs
///    between exhaustive (deadline bound) and branch-and-bound (deadline +
///    incumbent σ bounds, node budget) is the policy, not the walk.
///  * **Subtree jobs**: `load_prefix` replays a frontier prefix so an
///    independent walker (own evaluator, own thread) can explore one subtree
///    of the order tree — the unit of work of the parallel B&B layer
///    (baselines/parallel.hpp).
///
/// Visitor concept (all hooks receive the walker; prefix state is loaded):
///
///   struct Visitor {
///     /// Entering a node with an incomplete prefix (including the root).
///     /// Return false to prune the subtree below it.
///     bool node(OrderTreeWalker&);
///     /// Child filter: task v at column `col` is about to be placed
///     /// (`pt` = its design-point; remaining_min_* exclude v). Return false
///     /// to skip this child without extending the evaluator.
///     bool enter(OrderTreeWalker&, graph::TaskId v, std::size_t col,
///                const graph::DesignPoint& pt);
///     /// A complete topological order + assignment is loaded.
///     void leaf(OrderTreeWalker&);
///   };
///
/// A visitor may additionally opt into the **leaf fan** by providing
///
///     bool use_leaf_fan() const;
///     void leaf_priced(OrderTreeWalker&, graph::TaskId v, std::size_t col,
///                      const graph::DesignPoint& pt, double sigma);
///
/// At a node whose children are all leaves (depth n−1), the walker then runs
/// `enter` per column as usual, block-prices every passing column in ONE
/// `ScheduleEvaluator::peek_extend_block` call, and reports each through
/// `leaf_priced` instead of extend → `leaf` → pop. σ is bit-identical to the
/// sequential path; `sequence()`/`assignment()` are complete inside the
/// hook, but the *evaluator* prefix stays at depth n−1 — use the passed
/// sigma/pt, not `evaluator().prefix_sigma()`. `enter` must be free of
/// side effects that observe the enter/leaf interleaving (both built-in
/// exact baselines qualify: B&B's enter is pure, exhaustive's counts enters
/// only). A `stop()` from `enter` still delivers the already-collected
/// leaves (sequential order would have priced them first); a `stop()` from
/// `leaf_priced` cuts the fan immediately.
///
/// A visitor may call `stop()` from any hook to abort the whole walk (node
/// budgets, anytime search). The walker is not thread-safe; parallel search
/// uses one walker + evaluator per worker.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "basched/core/schedule.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {

class OrderTreeWalker;

/// Detected opt-in to the walker's block-priced leaf fan (see file comment).
template <typename V>
concept LeafFanVisitor = requires(V v, OrderTreeWalker& w, graph::TaskId t, std::size_t col,
                                  const graph::DesignPoint& pt, double sigma) {
  { v.use_leaf_fan() } -> std::convertible_to<bool>;
  v.leaf_priced(w, t, col, pt, sigma);
};

/// Backtracking-Kahn DFS over the order tree (see file comment). The graph
/// and evaluator are held by reference and must outlive the walker.
class OrderTreeWalker {
 public:
  OrderTreeWalker(const graph::TaskGraph& graph, ScheduleEvaluator& evaluator);

  /// Clears the walk state (and the evaluator prefix) back to the root.
  void reset();

  /// Replays a frontier prefix — `seq[i]` placed at column `cols[i]` — so a
  /// subsequent `walk` explores only that subtree. Throws
  /// std::invalid_argument when the prefix is not a valid partial topological
  /// order or a column is out of range.
  void load_prefix(std::span<const graph::TaskId> seq, std::span<const std::size_t> cols);

  /// Runs the DFS from the current prefix. Returns false iff the visitor
  /// called stop(). May be called repeatedly (state is restored to the
  /// loaded prefix between calls).
  template <typename Visitor>
  bool walk(Visitor& visitor) {
    stopped_ = false;
    dfs(visitor);
    return !stopped_;
  }

  /// Aborts the walk in progress (callable from visitor hooks).
  void stop() noexcept { stopped_ = true; }

  // ---- Prefix state visible to visitors -----------------------------------

  /// Sequence prefix in placement order (root prefix included).
  [[nodiscard]] const std::vector<graph::TaskId>& sequence() const noexcept { return seq_; }

  /// Column per task id; meaningful only for placed tasks.
  [[nodiscard]] const Assignment& assignment() const noexcept { return assignment_; }

  /// Depth of the current prefix (== sequence().size()).
  [[nodiscard]] std::size_t depth() const noexcept { return seq_.size(); }

  [[nodiscard]] ScheduleEvaluator& evaluator() noexcept { return *evaluator_; }
  [[nodiscard]] const graph::TaskGraph& graph() const noexcept { return *graph_; }

  /// Σ fastest durations of the unscheduled tasks — the admissible deadline
  /// bound both exact baselines use. Inside `enter`, v is already excluded.
  [[nodiscard]] double remaining_min_duration() const noexcept {
    return remaining_min_duration_;
  }

  /// Σ cheapest design-point energies of the unscheduled tasks (σ ≥ delivered
  /// charge for every model in this repo, so prefix energy + this is an
  /// admissible σ bound). Inside `enter`, v is already excluded.
  [[nodiscard]] double remaining_min_energy() const noexcept { return remaining_min_energy_; }

 private:
  template <typename Visitor>
  void dfs(Visitor& visitor) {
    if (stopped_) return;
    if (seq_.size() == graph_->num_tasks()) {
      visitor.leaf(*this);
      return;
    }
    if (!visitor.node(*this)) return;
    if constexpr (LeafFanVisitor<Visitor>) {
      // Every child of a depth n−1 node is a leaf: price them all in one
      // block instead of extend → leaf → pop per column.
      if (seq_.size() + 1 == graph_->num_tasks() && visitor.use_leaf_fan()) {
        leaf_fan(visitor);
        return;
      }
    }
    frontier_.for_each_ready([&](graph::TaskId v) {
      if (stopped_) return;
      frontier_.schedule(v);
      remaining_min_duration_ -= min_duration_[v];
      remaining_min_energy_ -= min_energy_[v];
      seq_.push_back(v);
      const auto& task = graph_->task(v);
      for (std::size_t col = 0; col < graph_->num_design_points(); ++col) {
        if (stopped_) break;
        if (!visitor.enter(*this, v, col, task.point(col))) continue;
        assignment_[v] = col;
        evaluator_->extend(v, col);
        dfs(visitor);
        evaluator_->pop();
      }
      seq_.pop_back();
      remaining_min_energy_ += min_energy_[v];
      remaining_min_duration_ += min_duration_[v];
      frontier_.unschedule(v);
    });
  }

  /// The depth n−1 fan: run `enter` per column collecting passers, price all
  /// of them through ONE peek_extend_block call, report each via
  /// `leaf_priced`. Child order (ascending column of the single ready task)
  /// and the enter-call sequence are identical to the sequential path, so
  /// every bound/budget decision a visitor makes fires in the same order
  /// with the same inputs — only the extend/pop pair per leaf disappears.
  template <typename Visitor>
  void leaf_fan(Visitor& visitor) {
    frontier_.for_each_ready([&](graph::TaskId v) {
      if (stopped_) return;  // exactly one ready task at depth n−1 anyway
      frontier_.schedule(v);
      remaining_min_duration_ -= min_duration_[v];
      remaining_min_energy_ -= min_energy_[v];
      seq_.push_back(v);
      const auto& task = graph_->task(v);
      fan_cols_.clear();
      fan_cands_.clear();
      for (std::size_t col = 0; col < graph_->num_design_points(); ++col) {
        if (stopped_) break;
        if (!visitor.enter(*this, v, col, task.point(col))) continue;
        fan_cols_.push_back(col);
        fan_cands_.push_back({task.point(col).duration, task.point(col).current});
      }
      // A stop() out of `enter` (an enter-counted budget) does not cancel the
      // collected leaves: sequentially they were priced *before* the abort.
      const bool stopped_at_enter = stopped_;
      if (!fan_cols_.empty()) {
        fan_sigmas_.resize(fan_cols_.size());
        evaluator_->peek_extend_block(fan_cands_, fan_sigmas_);
        for (std::size_t i = 0; i < fan_cols_.size(); ++i) {
          assignment_[v] = fan_cols_[i];
          visitor.leaf_priced(*this, v, fan_cols_[i], task.point(fan_cols_[i]), fan_sigmas_[i]);
          if (stopped_ && !stopped_at_enter) break;  // a leaf aborted the walk
        }
      }
      seq_.pop_back();
      remaining_min_energy_ += min_energy_[v];
      remaining_min_duration_ += min_duration_[v];
      frontier_.unschedule(v);
    });
  }

  const graph::TaskGraph* graph_;
  ScheduleEvaluator* evaluator_;
  graph::KahnFrontier frontier_;
  std::vector<graph::TaskId> seq_;
  Assignment assignment_;
  std::vector<double> min_duration_;  ///< per task, fastest design-point
  std::vector<double> min_energy_;    ///< per task, cheapest design-point energy
  std::vector<std::size_t> fan_cols_;  ///< leaf fan: columns passing enter
  std::vector<ScheduleEvaluator::ExtendCandidate> fan_cands_;  ///< leaf fan: their intervals
  std::vector<double> fan_sigmas_;     ///< leaf fan: block-priced σ per column
  double remaining_min_duration_ = 0.0;
  double remaining_min_energy_ = 0.0;
  bool stopped_ = false;
};

}  // namespace basched::core
