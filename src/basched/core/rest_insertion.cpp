#include "basched/core/rest_insertion.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "basched/battery/lifetime.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

double RestPlan::total_rest() const {
  double s = 0.0;
  for (double r : rest_before) s += r;
  return s;
}

bool survives_without_rest(const graph::TaskGraph& graph, const Schedule& schedule,
                           const battery::BatteryModel& model, double alpha) {
  schedule.validate(graph);
  if (!(alpha > 0.0)) throw std::invalid_argument("survives_without_rest: alpha must be > 0");
  return !battery::find_lifetime(model, schedule.to_profile(graph), alpha).has_value();
}

namespace {

/// Sampling resolution inside the candidate task, matching
/// LifetimeOptions::samples_per_interval so the incremental check detects
/// exactly the crossings the full-profile `find_lifetime` scan would.
constexpr int kTaskSamples = 64;

/// Does extending the verified prefix by `rest` idle minutes plus one task
/// interval keep σ below the cap for the whole task? σ is non-increasing
/// during rest and every earlier interval was already verified by the caller
/// (σ at times inside the prefix is unaffected by what comes later), so
/// sampling the appended task alone is equivalent to scanning the whole
/// extended profile — but costs O(samples · terms) instead of
/// O(samples · intervals · terms).
bool task_survives(const battery::IncrementalSigma& eval, double rest, double current,
                   double duration, double cap) {
  const double start = eval.end_time() + rest;
  for (int j = 0; j <= kTaskSamples; ++j) {
    const double t =
        (j == kTaskSamples) ? start + duration : start + duration * j / kTaskSamples;
    if (eval.sigma_with_tail(rest, duration, current, t) >= cap) return false;
  }
  return true;
}

}  // namespace

std::optional<RestPlan> insert_rest_for_survival(const graph::TaskGraph& graph,
                                                 const Schedule& schedule, double deadline,
                                                 const battery::BatteryModel& model, double alpha,
                                                 const RestOptions& options) {
  schedule.validate(graph);
  if (!(deadline > 0.0))
    throw std::invalid_argument("insert_rest_for_survival: deadline must be > 0");
  if (!(alpha > 0.0)) throw std::invalid_argument("insert_rest_for_survival: alpha must be > 0");
  if (options.safety_margin < 0.0 || options.safety_margin >= 1.0)
    throw std::invalid_argument("insert_rest_for_survival: safety_margin must be in [0, 1)");

  const double cap = alpha * (1.0 - options.safety_margin);
  const double work = schedule.duration(graph);
  if (work > deadline * (1.0 + 1e-12)) return std::nullopt;  // tasks alone miss the deadline

  RestPlan plan;
  plan.rest_before.assign(schedule.sequence.size(), 0.0);
  double slack = deadline - work;

  // The evaluator carries the verified prefix; every bisection probe is then
  // an O(terms) tail query instead of a full-profile re-evaluation.
  const std::unique_ptr<battery::IncrementalSigma> eval = model.incremental_sigma();

  for (std::size_t pos = 0; pos < schedule.sequence.size(); ++pos) {
    const graph::TaskId v = schedule.sequence[pos];
    const auto& pt = graph.task(v).point(schedule.assignment[v]);

    if (!task_survives(*eval, 0.0, pt.current, pt.duration, cap)) {
      // Monotone in rest → bisect the minimal saving rest within the slack.
      if (slack <= 0.0 || !task_survives(*eval, slack, pt.current, pt.duration, cap))
        return std::nullopt;  // even all remaining slack cannot save this task
      double lo = 0.0, hi = slack;
      while (hi - lo > options.bisect_tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (task_survives(*eval, mid, pt.current, pt.duration, cap))
          hi = mid;
        else
          lo = mid;
      }
      plan.rest_before[pos] = hi;
      slack -= hi;
      plan.profile.append_rest(hi);
      eval->append_rest(hi);
    }
    plan.profile.append(pt.duration, pt.current);
    eval->append(pt.duration, pt.current);
    plan.peak_sigma = std::max(plan.peak_sigma, eval->sigma(eval->end_time()));
  }
  plan.completion_time = plan.profile.end_time();
  BASCHED_ASSERT(plan.completion_time <= deadline * (1.0 + 1e-9));
  return plan;
}

}  // namespace basched::core
