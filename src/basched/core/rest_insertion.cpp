#include "basched/core/rest_insertion.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/battery/lifetime.hpp"
#include "basched/util/assert.hpp"

namespace basched::core {

double RestPlan::total_rest() const {
  double s = 0.0;
  for (double r : rest_before) s += r;
  return s;
}

bool survives_without_rest(const graph::TaskGraph& graph, const Schedule& schedule,
                           const battery::BatteryModel& model, double alpha) {
  schedule.validate(graph);
  if (!(alpha > 0.0)) throw std::invalid_argument("survives_without_rest: alpha must be > 0");
  return !battery::find_lifetime(model, schedule.to_profile(graph), alpha).has_value();
}

namespace {

/// Does appending `task_current/task_duration` after `prefix` plus `rest`
/// idle minutes keep σ below the cap for the whole task?
bool task_survives(const battery::DischargeProfile& prefix, double rest, double current,
                   double duration, const battery::BatteryModel& model, double cap) {
  battery::DischargeProfile p = prefix;
  if (rest > 0.0) p.append_rest(rest);
  p.append(duration, current);
  // σ only grows while the task discharges, so checking the crossing over
  // the whole extended profile is equivalent to checking this task (the
  // prefix was already verified by the caller).
  return !battery::find_lifetime(model, p, cap).has_value();
}

}  // namespace

std::optional<RestPlan> insert_rest_for_survival(const graph::TaskGraph& graph,
                                                 const Schedule& schedule, double deadline,
                                                 const battery::BatteryModel& model, double alpha,
                                                 const RestOptions& options) {
  schedule.validate(graph);
  if (!(deadline > 0.0))
    throw std::invalid_argument("insert_rest_for_survival: deadline must be > 0");
  if (!(alpha > 0.0)) throw std::invalid_argument("insert_rest_for_survival: alpha must be > 0");
  if (options.safety_margin < 0.0 || options.safety_margin >= 1.0)
    throw std::invalid_argument("insert_rest_for_survival: safety_margin must be in [0, 1)");

  const double cap = alpha * (1.0 - options.safety_margin);
  const double work = schedule.duration(graph);
  if (work > deadline * (1.0 + 1e-12)) return std::nullopt;  // tasks alone miss the deadline

  RestPlan plan;
  plan.rest_before.assign(schedule.sequence.size(), 0.0);
  double slack = deadline - work;

  for (std::size_t pos = 0; pos < schedule.sequence.size(); ++pos) {
    const graph::TaskId v = schedule.sequence[pos];
    const auto& pt = graph.task(v).point(schedule.assignment[v]);

    if (!task_survives(plan.profile, 0.0, pt.current, pt.duration, model, cap)) {
      // Monotone in rest → bisect the minimal saving rest within the slack.
      if (slack <= 0.0 || !task_survives(plan.profile, slack, pt.current, pt.duration, model, cap))
        return std::nullopt;  // even all remaining slack cannot save this task
      double lo = 0.0, hi = slack;
      while (hi - lo > options.bisect_tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (task_survives(plan.profile, mid, pt.current, pt.duration, model, cap))
          hi = mid;
        else
          lo = mid;
      }
      plan.rest_before[pos] = hi;
      slack -= hi;
      plan.profile.append_rest(hi);
    }
    plan.profile.append(pt.duration, pt.current);
    plan.peak_sigma =
        std::max(plan.peak_sigma, model.charge_lost(plan.profile, plan.profile.end_time()));
  }
  plan.completion_time = plan.profile.end_time();
  BASCHED_ASSERT(plan.completion_time <= deadline * (1.0 + 1e-9));
  return plan;
}

}  // namespace basched::core
