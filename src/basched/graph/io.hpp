/// \file io.hpp
/// \brief Task-graph serialization: a simple line-based text format plus
/// Graphviz DOT export.
///
/// Text format (one record per line, '#' starts a comment):
///
///     taskgraph <num_design_points>
///     task <name> <I1> <D1> <I2> <D2> ...      # m (current, duration) pairs
///     edge <parent_name> <child_name>
///
/// Tasks must be declared before edges that reference them. Round-trips
/// exactly for graphs with finite data (doubles are printed with enough
/// digits to be recovered bit-exactly).
#pragma once

#include <iosfwd>
#include <string>

#include "basched/graph/task_graph.hpp"

namespace basched::graph {

/// Serializes the graph in the text format above.
[[nodiscard]] std::string serialize(const TaskGraph& graph);

/// Parses the text format. Throws std::invalid_argument with a line number
/// on any syntax or semantic error (unknown directive, wrong pair count,
/// unknown task names, duplicate edges, …).
[[nodiscard]] TaskGraph parse(const std::string& text);

/// Streaming variant of parse().
[[nodiscard]] TaskGraph parse(std::istream& in);

/// Graphviz DOT rendering; node labels show the task name and its
/// fastest/slowest design-point as "I mA / D min" ranges.
[[nodiscard]] std::string to_dot(const TaskGraph& graph);

}  // namespace basched::graph
