#include "basched/graph/dvs_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace basched::graph {

namespace {

void check_params(const CmosParams& p) {
  if (!(p.v_max > 0.0) || !(p.v_t >= 0.0) || !(p.v_t < p.v_max))
    throw std::invalid_argument("CmosParams: require 0 <= v_t < v_max");
  if (!(p.alpha > 1.0) || !(p.alpha <= 2.0))
    throw std::invalid_argument("CmosParams: alpha must be in (1, 2]");
  if (!(p.f_max > 0.0)) throw std::invalid_argument("CmosParams: f_max must be > 0");
  if (!(p.c_eff > 0.0)) throw std::invalid_argument("CmosParams: c_eff must be > 0");
  if (p.i_leak < 0.0) throw std::invalid_argument("CmosParams: i_leak must be >= 0");
  if (!(p.v_battery > 0.0)) throw std::invalid_argument("CmosParams: v_battery must be > 0");
  if (p.i_overhead < 0.0) throw std::invalid_argument("CmosParams: i_overhead must be >= 0");
}

}  // namespace

double dvs_frequency(const CmosParams& params, double v) {
  check_params(params);
  if (!(v > params.v_t))
    throw std::invalid_argument("dvs_frequency: operating voltage must exceed v_t");
  if (v > params.v_max * (1.0 + 1e-12))
    throw std::invalid_argument("dvs_frequency: operating voltage exceeds v_max");
  const double norm = std::pow(params.v_max - params.v_t, params.alpha) / params.v_max;
  return params.f_max * (std::pow(v - params.v_t, params.alpha) / v) / norm;
}

DesignPoint dvs_design_point(const CmosParams& params, double v, double cycles) {
  if (!(cycles > 0.0)) throw std::invalid_argument("dvs_design_point: cycles must be > 0");
  const double f = dvs_frequency(params, v);
  DesignPoint pt;
  pt.voltage = v;
  pt.duration = cycles / f;
  pt.current = (params.c_eff * v * v * f + v * params.i_leak) / params.v_battery +
               params.i_overhead;
  return pt;
}

std::vector<DesignPoint> dvs_design_points(const CmosParams& params,
                                           std::span<const double> voltages, double cycles) {
  if (voltages.empty()) throw std::invalid_argument("dvs_design_points: no voltages given");
  std::vector<double> sorted(voltages.begin(), voltages.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i] == sorted[i - 1])
      throw std::invalid_argument("dvs_design_points: duplicate voltage");

  std::vector<DesignPoint> pts;
  pts.reserve(sorted.size());
  for (double v : sorted) pts.push_back(dvs_design_point(params, v, cycles));
  return pts;
}

}  // namespace basched::graph
