#include "basched/graph/task.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace basched::graph {

Task::Task(std::string name, std::vector<DesignPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (name_.empty()) throw std::invalid_argument("Task: name must be non-empty");
  if (name_.find_first_of(" \t\n\r") != std::string::npos)
    throw std::invalid_argument("Task: name must not contain whitespace");
  if (points_.empty()) throw std::invalid_argument("Task: at least one design-point required");
  for (const auto& p : points_) {
    if (!(p.duration > 0.0) || !std::isfinite(p.duration))
      throw std::invalid_argument("Task '" + name_ + "': design-point duration must be > 0");
    if (p.current < 0.0 || !std::isfinite(p.current))
      throw std::invalid_argument("Task '" + name_ + "': design-point current must be >= 0");
  }
  std::stable_sort(points_.begin(), points_.end(),
                   [](const DesignPoint& a, const DesignPoint& b) { return a.duration < b.duration; });
  for (std::size_t j = 1; j < points_.size(); ++j) {
    if (points_[j].current > points_[j - 1].current)
      throw std::invalid_argument("Task '" + name_ +
                                  "': currents must be non-increasing as durations increase "
                                  "(monotone power/performance trade-off)");
  }
}

double Task::average_energy() const noexcept {
  double s = 0.0;
  for (const auto& p : points_) s += p.energy();
  return s / static_cast<double>(points_.size());
}

}  // namespace basched::graph
