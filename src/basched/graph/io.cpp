#include "basched/graph/io.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace basched::graph {

namespace {

std::string fmt_exact(double v) {
  char buf[64];
  // %.17g round-trips any finite double.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("taskgraph parse error at line " + std::to_string(line_no) + ": " +
                              msg);
}

}  // namespace

std::string serialize(const TaskGraph& graph) {
  std::ostringstream os;
  os << "taskgraph " << graph.num_design_points() << "\n";
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    const Task& t = graph.task(v);
    os << "task " << t.name();
    for (const DesignPoint& p : t.points()) os << ' ' << fmt_exact(p.current) << ' ' << fmt_exact(p.duration);
    os << "\n";
  }
  for (TaskId v = 0; v < graph.num_tasks(); ++v)
    for (TaskId w : graph.successors(v))
      os << "edge " << graph.task(v).name() << ' ' << graph.task(w).name() << "\n";
  return os.str();
}

TaskGraph parse(std::istream& in) {
  TaskGraph g;
  std::unordered_map<std::string, TaskId> by_name;
  std::size_t declared_m = 0;
  bool saw_header = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank line

    if (directive == "taskgraph") {
      if (saw_header) fail(line_no, "duplicate 'taskgraph' header");
      if (!(ls >> declared_m) || declared_m == 0) fail(line_no, "expected positive design-point count");
      saw_header = true;
    } else if (directive == "task") {
      if (!saw_header) fail(line_no, "'task' before 'taskgraph' header");
      std::string name;
      if (!(ls >> name)) fail(line_no, "expected task name");
      std::vector<DesignPoint> pts;
      double i = 0.0, d = 0.0;
      while (ls >> i >> d) pts.push_back({i, d, 0.0});
      if (!ls.eof()) fail(line_no, "malformed design-point pair");
      if (pts.size() != declared_m)
        fail(line_no, "task '" + name + "' has " + std::to_string(pts.size()) +
                          " design-points, header declared " + std::to_string(declared_m));
      try {
        const TaskId id = g.add_task(Task(name, std::move(pts)));
        by_name.emplace(name, id);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (directive == "edge") {
      std::string from, to;
      if (!(ls >> from >> to)) fail(line_no, "expected 'edge <parent> <child>'");
      const auto fit = by_name.find(from);
      const auto tit = by_name.find(to);
      if (fit == by_name.end()) fail(line_no, "unknown task '" + from + "'");
      if (tit == by_name.end()) fail(line_no, "unknown task '" + to + "'");
      try {
        g.add_edge(fit->second, tit->second);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) throw std::invalid_argument("taskgraph parse error: missing 'taskgraph' header");
  return g;
}

TaskGraph parse(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box];\n";
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    const Task& t = graph.task(v);
    os << "  \"" << t.name() << "\" [label=\"" << t.name() << "\\n" << t.max_current() << "mA/"
       << t.min_duration() << "min .. " << t.min_current() << "mA/" << t.max_duration()
       << "min\"];\n";
  }
  for (TaskId v = 0; v < graph.num_tasks(); ++v)
    for (TaskId w : graph.successors(v))
      os << "  \"" << graph.task(v).name() << "\" -> \"" << graph.task(w).name() << "\";\n";
  os << "}\n";
  return os.str();
}

}  // namespace basched::graph
