/// \file task.hpp
/// \brief A task: a named node of the application DAG with its design-points.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "basched/graph/design_point.hpp"

namespace basched::graph {

/// A schedulable unit of work with m alternative implementations.
///
/// Design-points are stored in the paper's canonical order: execution times
/// ascending, currents (weakly) descending — i.e. index 0 is the fastest,
/// highest-power option and index m-1 the slowest, lowest-power one. The
/// constructor sorts by duration and rejects inputs whose currents are not
/// weakly descending in that order, because the algorithm's window mechanism
/// and "upgrade one column left" moves rely on this monotone trade-off.
class Task {
 public:
  /// \param name   non-empty display name (also used by the text I/O format,
  ///               so it must not contain whitespace)
  /// \param points at least one design-point with duration > 0, current >= 0
  /// Throws std::invalid_argument on violations (including non-monotone
  /// current/duration trade-offs and duplicate durations with increasing
  /// current).
  Task(std::string name, std::vector<DesignPoint> points);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// All design-points, fastest (index 0) to slowest (index m-1).
  [[nodiscard]] std::span<const DesignPoint> points() const noexcept { return points_; }

  [[nodiscard]] std::size_t num_points() const noexcept { return points_.size(); }

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] const DesignPoint& point(std::size_t j) const { return points_.at(j); }

  /// Mean of I·D over all design-points — the priority used by the paper's
  /// initial sequencing (SequenceDecEnergy) and the ordering of the Energy
  /// Vector E.
  [[nodiscard]] double average_energy() const noexcept;

  /// Fastest / slowest execution times.
  [[nodiscard]] double min_duration() const noexcept { return points_.front().duration; }
  [[nodiscard]] double max_duration() const noexcept { return points_.back().duration; }

  /// Highest / lowest currents (index 0 / m-1 by the canonical order).
  [[nodiscard]] double max_current() const noexcept { return points_.front().current; }
  [[nodiscard]] double min_current() const noexcept { return points_.back().current; }

 private:
  std::string name_;
  std::vector<DesignPoint> points_;
};

}  // namespace basched::graph
