/// \file task_graph.hpp
/// \brief The application model: a directed acyclic task graph G(V, E).
///
/// Vertices are Tasks (each with the same number m of design-points — the
/// paper's uniform-m assumption, enforced here); edges are data/control
/// dependencies. The platform has a single processing element, so any
/// schedule executes the tasks *sequentially* in some topological order.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "basched/graph/task.hpp"

namespace basched::graph {

/// Index of a task within its TaskGraph (dense, 0-based, stable).
using TaskId = std::size_t;

/// A directed acyclic task graph with per-task design-point tables.
///
/// Mutation API (`add_task` / `add_edge`) performs local validation
/// (duplicate edges, self-loops, id range, uniform m); acyclicity is checked
/// by `is_acyclic()` / `validate()` and by every scheduler entry point.
class TaskGraph {
 public:
  /// Adds a task and returns its id (== previous num_tasks()). Throws
  /// std::invalid_argument if the task's design-point count differs from the
  /// graph's (set by the first task) or if the name duplicates an existing
  /// task's name.
  TaskId add_task(Task task);

  /// Adds a dependency edge from -> to ("to" cannot start before "from"
  /// completes). Throws std::invalid_argument on out-of-range ids,
  /// self-loops, or duplicate edges. Cycles are detected by validate().
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Uniform design-point count m (0 for an empty graph).
  [[nodiscard]] std::size_t num_design_points() const noexcept { return num_points_; }

  /// Bounds-checked task access; throws std::out_of_range.
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_.at(id); }

  /// Looks up a task id by name; throws std::invalid_argument if absent.
  [[nodiscard]] TaskId task_by_name(const std::string& name) const;

  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const { return pred_.at(id); }
  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const { return succ_.at(id); }

  [[nodiscard]] bool has_edge(TaskId from, TaskId to) const;

  /// True iff the graph contains no directed cycle (empty graphs are acyclic).
  [[nodiscard]] bool is_acyclic() const;

  /// Throws std::invalid_argument if the graph is empty or cyclic.
  void validate() const;

  /// Total execution time if every task ran at design-point column j —
  /// the paper's CT(j). Throws std::out_of_range if j >= m.
  [[nodiscard]] double column_time(std::size_t j) const;

  /// Extremes of current over *all* design-points of *all* tasks (the
  /// paper's Imax / Imin used by the Current Ratio). Zero for empty graphs.
  [[nodiscard]] double max_current_overall() const noexcept;
  [[nodiscard]] double min_current_overall() const noexcept;

  /// Σ_i energy of task i's lowest-power (slowest) design-point — the
  /// paper's Emin ("all the lowest power design-points used for all tasks").
  [[nodiscard]] double min_total_energy() const noexcept;
  /// Σ_i energy of task i's highest-power (fastest) design-point (Emax).
  [[nodiscard]] double max_total_energy() const noexcept;

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::size_t num_edges_ = 0;
  std::size_t num_points_ = 0;
};

}  // namespace basched::graph
