#include "basched/graph/generators.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "basched/util/assert.hpp"

namespace basched::graph {

namespace {

// Built via append rather than `"T" + std::to_string(...)` to dodge the
// GCC 12 -Wrestrict false positive on operator+(const char*, string&&)
// (GCC bug 105651) at -O2.
std::string task_name(std::size_t i) {
  std::string name("T");
  name += std::to_string(i + 1);
  return name;
}

void check_positive(double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v))
    throw std::invalid_argument(std::string("generators: ") + what + " must be finite and > 0");
}

}  // namespace

std::vector<DesignPoint> dvs_points_speedup(double i_ref, double d_ref,
                                            std::span<const double> speedups) {
  check_positive(i_ref, "i_ref");
  check_positive(d_ref, "d_ref");
  if (speedups.empty()) throw std::invalid_argument("dvs_points_speedup: factors empty");
  std::vector<DesignPoint> pts;
  pts.reserve(speedups.size());
  for (double s : speedups) {
    if (!(s >= 1.0)) throw std::invalid_argument("dvs_points_speedup: speedups must be >= 1");
    pts.push_back({i_ref * s * s * s, d_ref / s, 0.0});
  }
  return pts;
}

std::vector<DesignPoint> dvs_points_g3_style(double i_peak, double d_max,
                                             std::span<const double> factors) {
  check_positive(i_peak, "i_peak");
  check_positive(d_max, "d_max");
  if (factors.empty()) throw std::invalid_argument("dvs_points_g3_style: factors empty");
  for (std::size_t j = 0; j < factors.size(); ++j) {
    if (!(factors[j] > 0.0 && factors[j] <= 1.0))
      throw std::invalid_argument("dvs_points_g3_style: factors must lie in (0, 1]");
    if (j > 0 && factors[j] >= factors[j - 1])
      throw std::invalid_argument("dvs_points_g3_style: factors must be strictly descending");
  }
  const std::size_t m = factors.size();
  std::vector<DesignPoint> pts;
  pts.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    // I_j = I_pk * s_j^3, D_j = D_max * s_{m+1-j} (1-based) — the reversed
    // factor list for durations, matching Table 1 of the paper.
    const double s = factors[j];
    const double srev = factors[m - 1 - j];
    pts.push_back({i_peak * s * s * s, d_max * srev, 0.0});
  }
  return pts;
}

std::vector<DesignPoint> random_dvs_points(const DesignPointSynthesis& synth, util::Rng& rng) {
  if (synth.num_points == 0)
    throw std::invalid_argument("random_dvs_points: num_points must be >= 1");
  if (!(synth.max_speedup >= 1.0))
    throw std::invalid_argument("random_dvs_points: max_speedup must be >= 1");
  const double i_peak = rng.uniform(synth.min_peak_current, synth.max_peak_current);
  const double d_fast = rng.uniform(synth.min_fast_duration, synth.max_fast_duration);
  // Speedups evenly spaced over [1, max_speedup]; point 0 is the fastest, so
  // build speedups descending and reference the slowest point.
  const std::size_t m = synth.num_points;
  std::vector<double> speedups(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double frac = (m == 1) ? 1.0 : static_cast<double>(m - 1 - j) / static_cast<double>(m - 1);
    speedups[j] = 1.0 + frac * (synth.max_speedup - 1.0);
  }
  const double d_ref = d_fast * synth.max_speedup;           // slowest duration
  const double i_ref = i_peak / std::pow(synth.max_speedup, 3.0);  // lowest current
  return dvs_points_speedup(i_ref, d_ref, speedups);
}

TaskGraph make_chain(std::size_t n, const DesignPointSynthesis& synth, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_chain: n must be >= 1");
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_task(Task(task_name(i), random_dvs_points(synth, rng)));
  for (std::size_t i = 1; i < n; ++i) g.add_edge(i - 1, i);
  return g;
}

TaskGraph make_independent(std::size_t n, const DesignPointSynthesis& synth, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_independent: n must be >= 1");
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_task(Task(task_name(i), random_dvs_points(synth, rng)));
  return g;
}

TaskGraph make_fork_join(std::size_t stages, std::size_t max_width,
                         const DesignPointSynthesis& synth, util::Rng& rng) {
  if (stages == 0) throw std::invalid_argument("make_fork_join: stages must be >= 1");
  if (max_width < 2) throw std::invalid_argument("make_fork_join: max_width must be >= 2");
  TaskGraph g;
  std::size_t counter = 0;
  auto fresh = [&] { return g.add_task(Task(task_name(counter++), random_dvs_points(synth, rng))); };

  TaskId tail = fresh();  // source
  for (std::size_t s = 0; s < stages; ++s) {
    const auto width = static_cast<std::size_t>(rng.uniform_int(2, static_cast<std::int64_t>(max_width)));
    std::vector<TaskId> branch(width);
    for (auto& b : branch) {
      b = fresh();
      g.add_edge(tail, b);
    }
    const TaskId join = fresh();
    for (TaskId b : branch) g.add_edge(b, join);
    tail = join;
  }
  return g;
}

TaskGraph make_layered_random(std::size_t layers, std::size_t max_width, double edge_prob,
                              const DesignPointSynthesis& synth, util::Rng& rng) {
  if (layers == 0) throw std::invalid_argument("make_layered_random: layers must be >= 1");
  if (max_width == 0) throw std::invalid_argument("make_layered_random: max_width must be >= 1");
  if (edge_prob < 0.0 || edge_prob > 1.0)
    throw std::invalid_argument("make_layered_random: edge_prob must be in [0, 1]");
  TaskGraph g;
  std::size_t counter = 0;
  std::vector<std::vector<TaskId>> layer_ids;
  for (std::size_t l = 0; l < layers; ++l) {
    const auto width =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_width)));
    std::vector<TaskId> ids(width);
    for (auto& id : ids)
      id = g.add_task(Task(task_name(counter++), random_dvs_points(synth, rng)));
    if (l > 0) {
      const auto& prev = layer_ids.back();
      for (TaskId v : ids) {
        // Guarantee connectivity to the previous layer, then sprinkle extras.
        g.add_edge(prev[rng.pick_index(prev.size())], v);
        for (TaskId p : prev)
          if (!g.has_edge(p, v) && rng.bernoulli(edge_prob)) g.add_edge(p, v);
      }
    }
    layer_ids.push_back(std::move(ids));
  }
  return g;
}

namespace {

/// Recursive series-parallel skeleton: fills `g` with `n` tasks and returns
/// the (entry, exit) pair of the built component.
std::pair<TaskId, TaskId> build_sp(TaskGraph& g, std::size_t n, std::size_t& counter,
                                   const DesignPointSynthesis& synth, util::Rng& rng) {
  auto fresh = [&] { return g.add_task(Task(task_name(counter++), random_dvs_points(synth, rng))); };
  if (n == 1) {
    const TaskId v = fresh();
    return {v, v};
  }
  if (n == 2) {
    const TaskId a = fresh();
    const TaskId b = fresh();
    g.add_edge(a, b);
    return {a, b};
  }
  // Split: series with probability 1/2, otherwise parallel between fresh
  // entry/exit nodes.
  if (rng.bernoulli(0.5)) {
    const std::size_t left = 1 + rng.pick_index(n - 1);
    auto [e1, x1] = build_sp(g, left, counter, synth, rng);
    auto [e2, x2] = build_sp(g, n - left, counter, synth, rng);
    g.add_edge(x1, e2);
    return {e1, x2};
  }
  const TaskId entry = fresh();
  const TaskId exit = fresh();
  std::size_t remaining = n - 2;
  while (remaining > 0) {
    const std::size_t part = 1 + rng.pick_index(remaining);
    auto [e, x] = build_sp(g, part, counter, synth, rng);
    g.add_edge(entry, e);
    g.add_edge(x, exit);
    remaining -= part;
  }
  return {entry, exit};
}

}  // namespace

TaskGraph make_series_parallel(std::size_t n, const DesignPointSynthesis& synth, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_series_parallel: n must be >= 1");
  TaskGraph g;
  std::size_t counter = 0;
  build_sp(g, n, counter, synth, rng);
  return g;
}

}  // namespace basched::graph
