#include "basched/graph/paper_graphs.hpp"

namespace basched::graph {

TaskGraph make_g3() {
  // Table 1 of the paper: I (mA) / D (min) for DP1..DP5, plus parents.
  struct Row {
    const char* name;
    double data[10];  // I1 D1 I2 D2 I3 D3 I4 D4 I5 D5
  };
  static constexpr Row rows[] = {
      {"T1", {917, 7.3, 563, 11.2, 288, 15.0, 122, 18.7, 33, 22.0}},
      {"T2", {519, 11.2, 319, 17.3, 163, 23.1, 69, 28.9, 19, 34.0}},
      {"T3", {611, 5.9, 375, 9.2, 192, 12.2, 81, 15.3, 22, 18.0}},
      {"T4", {938, 5.3, 576, 8.2, 295, 10.9, 124, 13.6, 34, 16.0}},
      {"T5", {781, 4.0, 480, 6.1, 246, 8.2, 104, 10.2, 28, 12.0}},
      {"T6", {800, 4.6, 491, 7.1, 252, 9.5, 106, 11.9, 29, 14.0}},
      {"T7", {720, 7.3, 442, 11.2, 226, 15.0, 96, 18.7, 26, 22.0}},
      {"T8", {600, 5.3, 368, 8.2, 189, 10.9, 80, 13.6, 22, 16.0}},
      {"T9", {650, 4.6, 399, 7.1, 204, 9.5, 86, 11.9, 23, 14.0}},
      {"T10", {710, 5.9, 436, 9.2, 223, 12.2, 94, 15.3, 26, 18.0}},
      {"T11", {500, 6.6, 307, 10.2, 157, 13.6, 66, 17.0, 18, 20.0}},
      {"T12", {510, 4.6, 313, 7.1, 160, 9.5, 68, 11.9, 18, 14.0}},
      {"T13", {700, 4.0, 430, 6.1, 220, 8.2, 93, 10.2, 25, 12.0}},
      {"T14", {400, 5.3, 246, 8.2, 126, 10.9, 53, 13.6, 14, 16.0}},
      {"T15", {380, 3.3, 233, 5.1, 119, 6.8, 50, 8.5, 14, 10.0}},
  };

  TaskGraph g;
  for (const Row& r : rows) {
    std::vector<DesignPoint> pts;
    for (int j = 0; j < 5; ++j) pts.push_back({r.data[2 * j], r.data[2 * j + 1], 0.0});
    g.add_task(Task(r.name, std::move(pts)));
  }

  // Parents column of Table 1 (0-based ids: T1 == 0).
  auto edge = [&g](TaskId parent, TaskId child) { g.add_edge(parent, child); };
  edge(0, 1);             // T2 <- T1
  edge(0, 2);             // T3 <- T1
  edge(0, 3);             // T4 <- T1
  edge(0, 4);             // T5 <- T1
  edge(1, 5);             // T6 <- T2, T3
  edge(2, 5);
  edge(3, 6);             // T7 <- T4, T5
  edge(4, 6);
  edge(5, 7);             // T8 <- T6, T7
  edge(6, 7);
  edge(7, 8);             // T9 <- T8
  edge(7, 9);             // T10 <- T8
  edge(8, 10);            // T11 <- T9
  edge(9, 11);            // T12 <- T10
  edge(8, 12);            // T13 <- T9
  edge(10, 13);           // T14 <- T11, T12, T13
  edge(11, 13);
  edge(12, 13);
  edge(13, 14);           // T15 <- T14
  return g;
}

TaskGraph make_g2() {
  // Figure 5 of the paper: I (mA) / D (min) for DP1..DP4.
  struct Row {
    const char* name;
    double data[8];  // I1 D1 I2 D2 I3 D3 I4 D4
  };
  static constexpr Row rows[] = {
      {"N1", {938, 8.8, 278, 13.2, 117, 17.6, 60, 22.0}},
      {"N2", {781, 1.2, 231, 1.9, 98, 2.5, 50, 3.1}},
      {"N3", {781, 8.1, 231, 12.1, 98, 16.2, 50, 20.2}},
      {"N4", {656, 3.6, 194, 5.4, 82, 7.2, 42, 9.0}},
      {"N5", {781, 6.5, 231, 9.8, 98, 13.0, 50, 16.3}},
      {"N6", {531, 3.5, 157, 5.3, 66, 7.0, 34, 8.8}},
      {"N7", {531, 3.5, 157, 5.3, 66, 7.0, 34, 8.8}},
      {"N8", {531, 3.5, 157, 5.3, 66, 7.0, 34, 8.8}},
      {"N9", {531, 3.5, 157, 5.3, 66, 7.0, 34, 8.8}},
  };

  TaskGraph g;
  for (const Row& r : rows) {
    std::vector<DesignPoint> pts;
    for (int j = 0; j < 4; ++j) pts.push_back({r.data[2 * j], r.data[2 * j + 1], 0.0});
    g.add_task(Task(r.name, std::move(pts)));
  }

  // Reconstructed edge set (DESIGN.md §5.1): the scanned figure's layers read
  // 2 | 3 4 | 5 | 6 | 1 | 7 | 9 8 between ENTER and EXIT. 0-based ids:
  // node k has id k-1.
  g.add_edge(1, 2);  // 2 -> 3
  g.add_edge(1, 3);  // 2 -> 4
  g.add_edge(2, 4);  // 3 -> 5
  g.add_edge(3, 4);  // 4 -> 5
  g.add_edge(4, 5);  // 5 -> 6
  g.add_edge(5, 0);  // 6 -> 1
  g.add_edge(0, 6);  // 1 -> 7
  g.add_edge(6, 7);  // 7 -> 8
  g.add_edge(6, 8);  // 7 -> 9
  return g;
}

}  // namespace basched::graph
