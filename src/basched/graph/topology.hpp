/// \file topology.hpp
/// \brief Topological algorithms on task graphs: orders, levels, reachability,
/// critical paths, and (bounded) enumeration of all topological orders.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "basched/graph/task_graph.hpp"

namespace basched::graph {

/// Kahn's algorithm. Returns a topological order (ties broken by smallest id,
/// so the result is deterministic), or std::nullopt if the graph is cyclic.
[[nodiscard]] std::optional<std::vector<TaskId>> topological_order_if_acyclic(
    const TaskGraph& graph);

/// As above but throws std::invalid_argument on a cyclic graph.
[[nodiscard]] std::vector<TaskId> topological_order(const TaskGraph& graph);

/// True iff `sequence` is a permutation of all task ids that respects every
/// edge of the graph.
[[nodiscard]] bool is_topological_order(const TaskGraph& graph,
                                        const std::vector<TaskId>& sequence);

/// ASAP level of each task: sources are level 0, every other task is
/// 1 + max(level of predecessors). Throws on cyclic graphs.
[[nodiscard]] std::vector<std::size_t> asap_levels(const TaskGraph& graph);

/// Set of tasks reachable from v following successor edges, *including v
/// itself* — the paper's "sub-graph rooted at node v" (G_v) used by the
/// weighted-sequence priorities (Eq. 4 and Eq. 5). Returned as a sorted id
/// vector.
[[nodiscard]] std::vector<TaskId> descendants_inclusive(const TaskGraph& graph, TaskId v);

/// Set of tasks from which v is reachable, including v itself.
[[nodiscard]] std::vector<TaskId> ancestors_inclusive(const TaskGraph& graph, TaskId v);

/// Length of the longest path (sum of per-task durations at design-point
/// column j) through the DAG. On a single processing element this is a lower
/// bound on any schedule's makespan only when tasks could overlap; here it
/// is mainly a graph statistic for generators/tests.
[[nodiscard]] double critical_path_duration(const TaskGraph& graph, std::size_t column);

/// Enumerates topological orders up to `limit`. Returns std::nullopt if the
/// graph has more than `limit` orders (enumeration aborted), otherwise all
/// orders. Materializes every order — prefer core::OrderTreeWalker for search
/// (it streams the same tree without the memory cliff); this stays as the
/// reference enumeration for tests and small analyses. Throws on cyclic
/// graphs.
[[nodiscard]] std::optional<std::vector<std::vector<TaskId>>> all_topological_orders(
    const TaskGraph& graph, std::size_t limit);

/// Incremental Kahn frontier: the ready set of a partially scheduled DAG,
/// maintained under schedule/unschedule so a backtracking walk over the tree
/// of topological orders costs O(out-degree) per step instead of a fresh
/// O(V + E) Kahn pass per node.
///
/// The discipline is strictly LIFO (schedule v, recurse, unschedule v) — the
/// inverse bookkeeping of `unschedule` assumes none of v's successors were
/// scheduled in between, exactly the shape of a DFS over order prefixes.
/// Every enumerative walker in basched (core::OrderTreeWalker,
/// all_topological_orders) sits on this class, so ready-set semantics live in
/// one place. The graph is held by reference and must outlive the frontier.
class KahnFrontier {
 public:
  explicit KahnFrontier(const TaskGraph& graph);

  /// Forgets all scheduling; every source task becomes ready again.
  void reset();

  /// Number of tasks scheduled so far.
  [[nodiscard]] std::size_t num_scheduled() const noexcept { return scheduled_; }

  /// True iff v is unscheduled with all predecessors scheduled.
  [[nodiscard]] bool is_ready(TaskId v) const noexcept { return indeg_[v] == 0; }

  /// Marks a ready task as scheduled and releases its successors.
  /// Asserts is_ready(v) in Debug.
  void schedule(TaskId v);

  /// Inverse of the most recent un-undone `schedule(v)` (LIFO discipline).
  void unschedule(TaskId v);

  /// Calls fn(v) for every currently ready task, ascending id — the
  /// deterministic child order of the order tree. fn may schedule/unschedule
  /// as long as it restores the frontier before returning (DFS shape).
  template <typename Fn>
  void for_each_ready(Fn&& fn) {
    for (TaskId v = 0; v < indeg_.size(); ++v)
      if (indeg_[v] == 0) fn(v);
  }

 private:
  static constexpr std::size_t kScheduled = static_cast<std::size_t>(-1);

  const TaskGraph* graph_;
  std::vector<std::size_t> indeg_;  ///< remaining predecessors; kScheduled sentinel
  std::size_t scheduled_ = 0;
};

/// Number of source (no predecessor) and sink (no successor) tasks.
[[nodiscard]] std::size_t num_sources(const TaskGraph& graph);
[[nodiscard]] std::size_t num_sinks(const TaskGraph& graph);

/// A vertex-induced subgraph together with the id mapping back to the
/// original graph.
struct Subgraph {
  TaskGraph graph;                      ///< the induced graph (fresh dense ids)
  std::vector<TaskId> original_ids;     ///< original id of each new id
};

/// Builds the subgraph induced by `keep` (edges between kept tasks are
/// preserved; task data is copied). `keep` must be non-empty, in-range, and
/// duplicate-free (throws std::invalid_argument otherwise). Used by the
/// online executor to re-plan the unexecuted remainder of an application.
[[nodiscard]] Subgraph induced_subgraph(const TaskGraph& graph, const std::vector<TaskId>& keep);

}  // namespace basched::graph
