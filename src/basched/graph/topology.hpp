/// \file topology.hpp
/// \brief Topological algorithms on task graphs: orders, levels, reachability,
/// critical paths, and (bounded) enumeration of all topological orders.
#pragma once

#include <optional>
#include <vector>

#include "basched/graph/task_graph.hpp"

namespace basched::graph {

/// Kahn's algorithm. Returns a topological order (ties broken by smallest id,
/// so the result is deterministic), or std::nullopt if the graph is cyclic.
[[nodiscard]] std::optional<std::vector<TaskId>> topological_order_if_acyclic(
    const TaskGraph& graph);

/// As above but throws std::invalid_argument on a cyclic graph.
[[nodiscard]] std::vector<TaskId> topological_order(const TaskGraph& graph);

/// True iff `sequence` is a permutation of all task ids that respects every
/// edge of the graph.
[[nodiscard]] bool is_topological_order(const TaskGraph& graph,
                                        const std::vector<TaskId>& sequence);

/// ASAP level of each task: sources are level 0, every other task is
/// 1 + max(level of predecessors). Throws on cyclic graphs.
[[nodiscard]] std::vector<std::size_t> asap_levels(const TaskGraph& graph);

/// Set of tasks reachable from v following successor edges, *including v
/// itself* — the paper's "sub-graph rooted at node v" (G_v) used by the
/// weighted-sequence priorities (Eq. 4 and Eq. 5). Returned as a sorted id
/// vector.
[[nodiscard]] std::vector<TaskId> descendants_inclusive(const TaskGraph& graph, TaskId v);

/// Set of tasks from which v is reachable, including v itself.
[[nodiscard]] std::vector<TaskId> ancestors_inclusive(const TaskGraph& graph, TaskId v);

/// Length of the longest path (sum of per-task durations at design-point
/// column j) through the DAG. On a single processing element this is a lower
/// bound on any schedule's makespan only when tasks could overlap; here it
/// is mainly a graph statistic for generators/tests.
[[nodiscard]] double critical_path_duration(const TaskGraph& graph, std::size_t column);

/// Enumerates topological orders up to `limit`. Returns std::nullopt if the
/// graph has more than `limit` orders (enumeration aborted), otherwise all
/// orders. Intended for the exhaustive baseline on small graphs. Throws on
/// cyclic graphs.
[[nodiscard]] std::optional<std::vector<std::vector<TaskId>>> all_topological_orders(
    const TaskGraph& graph, std::size_t limit);

/// Number of source (no predecessor) and sink (no successor) tasks.
[[nodiscard]] std::size_t num_sources(const TaskGraph& graph);
[[nodiscard]] std::size_t num_sinks(const TaskGraph& graph);

/// A vertex-induced subgraph together with the id mapping back to the
/// original graph.
struct Subgraph {
  TaskGraph graph;                      ///< the induced graph (fresh dense ids)
  std::vector<TaskId> original_ids;     ///< original id of each new id
};

/// Builds the subgraph induced by `keep` (edges between kept tasks are
/// preserved; task data is copied). `keep` must be non-empty, in-range, and
/// duplicate-free (throws std::invalid_argument otherwise). Used by the
/// online executor to re-plan the unexecuted remainder of an application.
[[nodiscard]] Subgraph induced_subgraph(const TaskGraph& graph, const std::vector<TaskId>& keep);

}  // namespace basched::graph
