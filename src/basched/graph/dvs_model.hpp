/// \file dvs_model.hpp
/// \brief Physical CMOS model for synthesizing DVS design-points from
/// voltage levels.
///
/// The paper's published data uses the shorthand "durations ∝ 1/s, currents
/// ∝ s³" for voltage-scaling factor s. That shorthand is the limiting case
/// of the standard alpha-power CMOS model with negligible threshold voltage:
/// f ∝ V and P_dyn = C_eff·V²·f ⇒ I_battery = P/V_batt ∝ V³. This module
/// provides the *full* model so users can generate design-points from real
/// operating voltages:
///
///   f(V)      = f_max · (V − V_t)^α / V  ÷  ((V_max − V_t)^α / V_max)
///   D(V)      = cycles / f(V)
///   I(V)      = (C_eff · V² · f(V) + V · I_leak) / V_batt + I_overhead
///
/// with α ∈ (1, 2] the velocity-saturation exponent (2 = classic long
/// channel), I_leak a crude leakage current at the core rail, and
/// I_overhead the constant platform draw (memory, display, radio) the paper
/// insists must be part of each task's current.
#pragma once

#include <span>
#include <vector>

#include "basched/graph/design_point.hpp"

namespace basched::graph {

/// Parameters of the CMOS DVS platform model.
struct CmosParams {
  double v_max = 1.8;          ///< maximum core voltage (V)
  double v_t = 0.4;            ///< threshold voltage (V); must be < every operating V
  double alpha = 2.0;          ///< velocity-saturation exponent, in (1, 2]
  double f_max = 600.0;        ///< clock at v_max, in Mcycles/min units of `cycles`
  double c_eff = 1.0;          ///< effective switched capacitance scale (mA·min·V⁻²·f⁻¹ units)
  double i_leak = 0.0;         ///< leakage current at the core rail (mA)
  double v_battery = 3.7;      ///< battery terminal voltage (V)
  double i_overhead = 0.0;     ///< constant platform current (mA)
};

/// Clock frequency at voltage v (same unit as f_max). Throws
/// std::invalid_argument if v <= v_t or v > v_max or parameters are invalid.
[[nodiscard]] double dvs_frequency(const CmosParams& params, double v);

/// One design-point for a task of `cycles` work at voltage v (current
/// referred to the battery rail, duration in minutes given f in
/// cycles/minute). Throws like dvs_frequency; cycles must be > 0.
[[nodiscard]] DesignPoint dvs_design_point(const CmosParams& params, double v, double cycles);

/// Design-points for a list of operating voltages, returned fastest-first
/// (i.e. sorted by descending voltage). Voltages may be given in any order;
/// duplicates are rejected. The result always satisfies the canonical Task
/// ordering (durations ascending, currents descending).
[[nodiscard]] std::vector<DesignPoint> dvs_design_points(const CmosParams& params,
                                                         std::span<const double> voltages,
                                                         double cycles);

}  // namespace basched::graph
