/// \file generators.hpp
/// \brief Synthetic task-graph and design-point generators.
///
/// The paper evaluates on a fork-join graph (G3) — "a class of task graphs
/// ... used in multiprocessor scheduling research to model the structure of
/// commonly encountered parallel algorithms" [9] — and a robotic-arm
/// controller (G2). For experiments beyond those two inputs we provide the
/// standard structural families (chains, independent sets, fork-join,
/// layered random, series-parallel) plus the paper's own design-point
/// synthesis recipes:
///
///  * speedup style (G2): given the slowest/lowest-power reference point
///    (I_ref, D_ref) and speedup factors s >= 1 relative to it,
///    I_j = I_ref · s_j³ and D_j = D_ref / s_j ("durations inversely
///    proportional to the scaling factor, currents proportional to its
///    cube").
///  * G3 style: given the peak current I_pk and slowest duration D_max and
///    *descending* voltage factors s_1 = 1 > s_2 > … > s_m, I_j = I_pk·s_j³
///    and D_j = D_max · s_{m+1-j} — the factor list applied in reverse for
///    durations, which is exactly how Table 1 of the paper was produced
///    (verified against its numbers; see tests/graph/paper_graphs_test).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "basched/graph/task_graph.hpp"
#include "basched/util/rng.hpp"

namespace basched::graph {

/// G2-style DVS synthesis: s >= 1 are speedups over the reference point.
/// Throws std::invalid_argument if any factor < 1 or inputs are non-positive.
[[nodiscard]] std::vector<DesignPoint> dvs_points_speedup(double i_ref, double d_ref,
                                                          std::span<const double> speedups);

/// G3-style DVS synthesis: descending factors in (0, 1], first == 1.
/// Throws std::invalid_argument on non-descending factors or non-positive
/// inputs.
[[nodiscard]] std::vector<DesignPoint> dvs_points_g3_style(double i_peak, double d_max,
                                                           std::span<const double> factors);

/// Parameters for randomized design-point synthesis.
struct DesignPointSynthesis {
  std::size_t num_points = 4;       ///< m
  double min_peak_current = 300.0;  ///< mA, peak current drawn uniformly in range
  double max_peak_current = 1000.0;
  double min_fast_duration = 1.0;  ///< minutes, fastest-DP duration range
  double max_fast_duration = 10.0;
  double max_speedup = 2.5;  ///< slowest point is max_speedup× slower than fastest
};

/// Draws one random design-point table per the DVS recipe: speedup factors
/// are evenly spaced in [1, max_speedup], durations/currents follow the
/// speedup-style rule with uniformly drawn (I_ref, D_ref).
[[nodiscard]] std::vector<DesignPoint> random_dvs_points(const DesignPointSynthesis& synth,
                                                         util::Rng& rng);

/// A chain T0 -> T1 -> … -> T(n-1).
[[nodiscard]] TaskGraph make_chain(std::size_t n, const DesignPointSynthesis& synth,
                                   util::Rng& rng);

/// n tasks with no edges (every sequence is legal — the setting of the
/// paper's §3 ordering bounds).
[[nodiscard]] TaskGraph make_independent(std::size_t n, const DesignPointSynthesis& synth,
                                         util::Rng& rng);

/// Fork-join ([9], the family G3 belongs to): a source task, `stages`
/// alternating fork/join stages where each fork spawns between 2 and
/// `max_width` parallel tasks that rejoin into a single task.
[[nodiscard]] TaskGraph make_fork_join(std::size_t stages, std::size_t max_width,
                                       const DesignPointSynthesis& synth, util::Rng& rng);

/// Layered random DAG: `layers` layers of 1..max_width tasks; every task gets
/// at least one predecessor in the previous layer, plus extra backward edges
/// with probability `edge_prob`.
[[nodiscard]] TaskGraph make_layered_random(std::size_t layers, std::size_t max_width,
                                            double edge_prob, const DesignPointSynthesis& synth,
                                            util::Rng& rng);

/// Series-parallel DAG built by random series/parallel compositions with
/// `n` tasks (n >= 1).
[[nodiscard]] TaskGraph make_series_parallel(std::size_t n, const DesignPointSynthesis& synth,
                                             util::Rng& rng);

}  // namespace basched::graph
