#include "basched/graph/task_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "basched/graph/topology.hpp"

namespace basched::graph {

TaskId TaskGraph::add_task(Task task) {
  if (num_points_ == 0) {
    num_points_ = task.num_points();
  } else if (task.num_points() != num_points_) {
    throw std::invalid_argument("TaskGraph: all tasks must have the same number of design-points (" +
                                std::to_string(num_points_) + "), task '" + task.name() + "' has " +
                                std::to_string(task.num_points()));
  }
  for (const auto& t : tasks_) {
    if (t.name() == task.name())
      throw std::invalid_argument("TaskGraph: duplicate task name '" + task.name() + "'");
  }
  tasks_.push_back(std::move(task));
  succ_.emplace_back();
  pred_.emplace_back();
  return tasks_.size() - 1;
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  if (from >= tasks_.size() || to >= tasks_.size())
    throw std::invalid_argument("TaskGraph::add_edge: task id out of range");
  if (from == to) throw std::invalid_argument("TaskGraph::add_edge: self-loop");
  if (has_edge(from, to)) throw std::invalid_argument("TaskGraph::add_edge: duplicate edge");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++num_edges_;
}

TaskId TaskGraph::task_by_name(const std::string& name) const {
  for (TaskId i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].name() == name) return i;
  throw std::invalid_argument("TaskGraph: no task named '" + name + "'");
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  if (from >= tasks_.size()) return false;
  const auto& s = succ_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

bool TaskGraph::is_acyclic() const {
  if (tasks_.empty()) return true;
  return topological_order_if_acyclic(*this).has_value();
}

void TaskGraph::validate() const {
  if (tasks_.empty()) throw std::invalid_argument("TaskGraph: graph is empty");
  if (!is_acyclic()) throw std::invalid_argument("TaskGraph: graph contains a cycle");
}

double TaskGraph::column_time(std::size_t j) const {
  double t = 0.0;
  for (const auto& task : tasks_) t += task.point(j).duration;
  return t;
}

double TaskGraph::max_current_overall() const noexcept {
  double v = 0.0;
  for (const auto& t : tasks_) v = std::max(v, t.max_current());
  return v;
}

double TaskGraph::min_current_overall() const noexcept {
  if (tasks_.empty()) return 0.0;
  double v = tasks_.front().min_current();
  for (const auto& t : tasks_) v = std::min(v, t.min_current());
  return v;
}

double TaskGraph::min_total_energy() const noexcept {
  double e = 0.0;
  for (const auto& t : tasks_) e += t.points().back().energy();
  return e;
}

double TaskGraph::max_total_energy() const noexcept {
  double e = 0.0;
  for (const auto& t : tasks_) e += t.points().front().energy();
  return e;
}

}  // namespace basched::graph
