/// \file paper_graphs.hpp
/// \brief The two task graphs the paper evaluates on, with their exact
/// published design-point data.
///
///  * **G3** — 15-task fork-join graph, 5 design-points per task. All data is
///    taken verbatim from Table 1 (currents in mA, durations in minutes,
///    parents column). Used for the illustrative example (Tables 2 and 3,
///    deadline 230 min, β = 0.273) and the right half of Table 4
///    (deadlines 100 / 150 / 230).
///  * **G2** — 9-task robotic-arm controller (Mooney & De Micheli via
///    Rakhmatov [1]), 4 design-points per task. Node data is verbatim from
///    Figure 5; the *edge set* is a reconstruction of the scanned figure's
///    layer structure (2 → {3,4} → 5 → 6 → 1 → 7 → {8,9}) — see DESIGN.md §5.1.
///    Used for the left half of Table 4 (deadlines 55 / 75 / 95).
#pragma once

#include <array>

#include "basched/graph/task_graph.hpp"

namespace basched::graph {

/// β used by the paper's experiments (min^-1/2).
inline constexpr double kPaperBeta = 0.273;

/// Deadline of the illustrative example (minutes).
inline constexpr double kG3ExampleDeadline = 230.0;

/// Deadlines of Table 4 for each graph (minutes).
inline constexpr std::array<double, 3> kG2Deadlines{55.0, 75.0, 95.0};
inline constexpr std::array<double, 3> kG3Deadlines{100.0, 150.0, 230.0};

/// Builds G3 exactly as published in Table 1. Task ids 0..14 correspond to
/// T1..T15; design-point columns 0..4 to DP1..DP5.
[[nodiscard]] TaskGraph make_g3();

/// Builds G2 with Figure 5's node data (ids 0..8 = nodes 1..9, columns 0..3 =
/// DP1..DP4) and the reconstructed edge set described above.
[[nodiscard]] TaskGraph make_g2();

}  // namespace basched::graph
