/// \file design_point.hpp
/// \brief A design-point: one concrete implementation choice for a task.
///
/// On a DVS processor a design-point is a (voltage, frequency) operating
/// point; on an FPGA platform it is one of several bitstreams implementing
/// the task with a different area/speed trade-off. Either way, the scheduler
/// only sees the two numbers the paper's model needs: execution time and the
/// average *total platform* current drawn while the task runs (CPU/FPGA plus
/// memory, display, and other peripherals — the battery sees the sum).
#pragma once

namespace basched::graph {

/// One implementation option for a task.
struct DesignPoint {
  double current = 0.0;   ///< average platform current I (mA) while running
  double duration = 0.0;  ///< execution time D (minutes)
  double voltage = 0.0;   ///< optional supply voltage (V); 0 = unspecified

  /// Energy proxy E = I · D (mA·min). The paper defines energy as I·V·D but
  /// publishes only I and D; since its current numbers already scale with
  /// the cube of the voltage-scaling factor (total platform current at a
  /// constant battery voltage), I·D is the consistent energy measure — see
  /// DESIGN.md §5.2.
  [[nodiscard]] double energy() const noexcept { return current * duration; }
};

}  // namespace basched::graph
