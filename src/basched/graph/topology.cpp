#include "basched/graph/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::graph {

std::optional<std::vector<TaskId>> topological_order_if_acyclic(const TaskGraph& graph) {
  const std::size_t n = graph.num_tasks();
  std::vector<std::size_t> indeg(n, 0);
  for (TaskId v = 0; v < n; ++v) indeg[v] = graph.predecessors(v).size();

  // Min-heap on id for deterministic tie-breaking.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(v);

  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (TaskId w : graph.successors(v))
      if (--indeg[w] == 0) ready.push(w);
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::vector<TaskId> topological_order(const TaskGraph& graph) {
  auto order = topological_order_if_acyclic(graph);
  if (!order) throw std::invalid_argument("topological_order: graph contains a cycle");
  return std::move(*order);
}

bool is_topological_order(const TaskGraph& graph, const std::vector<TaskId>& sequence) {
  const std::size_t n = graph.num_tasks();
  if (sequence.size() != n) return false;
  std::vector<std::size_t> pos(n, n);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (sequence[i] >= n || pos[sequence[i]] != n) return false;  // out of range or repeated
    pos[sequence[i]] = i;
  }
  for (TaskId v = 0; v < n; ++v)
    for (TaskId w : graph.successors(v))
      if (pos[v] >= pos[w]) return false;
  return true;
}

std::vector<std::size_t> asap_levels(const TaskGraph& graph) {
  const auto order = topological_order(graph);
  std::vector<std::size_t> level(graph.num_tasks(), 0);
  for (TaskId v : order)
    for (TaskId p : graph.predecessors(v)) level[v] = std::max(level[v], level[p] + 1);
  return level;
}

namespace {

std::vector<TaskId> closure(const TaskGraph& graph, TaskId v, bool forward) {
  if (v >= graph.num_tasks()) throw std::out_of_range("closure: task id out of range");
  std::vector<bool> seen(graph.num_tasks(), false);
  std::vector<TaskId> stack{v};
  seen[v] = true;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    const auto next = forward ? graph.successors(u) : graph.predecessors(u);
    for (TaskId w : next) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  std::vector<TaskId> out;
  for (TaskId u = 0; u < graph.num_tasks(); ++u)
    if (seen[u]) out.push_back(u);
  return out;
}

}  // namespace

std::vector<TaskId> descendants_inclusive(const TaskGraph& graph, TaskId v) {
  return closure(graph, v, /*forward=*/true);
}

std::vector<TaskId> ancestors_inclusive(const TaskGraph& graph, TaskId v) {
  return closure(graph, v, /*forward=*/false);
}

double critical_path_duration(const TaskGraph& graph, std::size_t column) {
  const auto order = topological_order(graph);
  std::vector<double> finish(graph.num_tasks(), 0.0);
  double best = 0.0;
  for (TaskId v : order) {
    double start = 0.0;
    for (TaskId p : graph.predecessors(v)) start = std::max(start, finish[p]);
    finish[v] = start + graph.task(v).point(column).duration;
    best = std::max(best, finish[v]);
  }
  return best;
}

KahnFrontier::KahnFrontier(const TaskGraph& graph) : graph_(&graph) {
  indeg_.resize(graph.num_tasks());
  reset();
}

void KahnFrontier::reset() {
  for (TaskId v = 0; v < indeg_.size(); ++v) indeg_[v] = graph_->predecessors(v).size();
  scheduled_ = 0;
}

void KahnFrontier::schedule(TaskId v) {
  BASCHED_ASSERT(v < indeg_.size() && indeg_[v] == 0);
  indeg_[v] = kScheduled;
  for (TaskId w : graph_->successors(v)) --indeg_[w];
  ++scheduled_;
}

void KahnFrontier::unschedule(TaskId v) {
  BASCHED_ASSERT(v < indeg_.size() && indeg_[v] == kScheduled && scheduled_ > 0);
  for (TaskId w : graph_->successors(v)) ++indeg_[w];
  indeg_[v] = 0;
  --scheduled_;
}

namespace {

bool enumerate_orders(KahnFrontier& frontier, std::size_t n, std::vector<TaskId>& current,
                      std::vector<std::vector<TaskId>>& out, std::size_t limit) {
  if (current.size() == n) {
    if (out.size() >= limit) return false;
    out.push_back(current);
    return true;
  }
  bool ok = true;
  frontier.for_each_ready([&](TaskId v) {
    if (!ok) return;
    frontier.schedule(v);
    current.push_back(v);
    ok = enumerate_orders(frontier, n, current, out, limit);
    current.pop_back();
    frontier.unschedule(v);
  });
  return ok;
}

}  // namespace

std::optional<std::vector<std::vector<TaskId>>> all_topological_orders(const TaskGraph& graph,
                                                                       std::size_t limit) {
  if (!graph.is_acyclic())
    throw std::invalid_argument("all_topological_orders: graph contains a cycle");
  KahnFrontier frontier(graph);
  std::vector<TaskId> current;
  std::vector<std::vector<TaskId>> out;
  if (!enumerate_orders(frontier, graph.num_tasks(), current, out, limit)) return std::nullopt;
  return out;
}

std::size_t num_sources(const TaskGraph& graph) {
  std::size_t k = 0;
  for (TaskId v = 0; v < graph.num_tasks(); ++v)
    if (graph.predecessors(v).empty()) ++k;
  return k;
}

std::size_t num_sinks(const TaskGraph& graph) {
  std::size_t k = 0;
  for (TaskId v = 0; v < graph.num_tasks(); ++v)
    if (graph.successors(v).empty()) ++k;
  return k;
}

Subgraph induced_subgraph(const TaskGraph& graph, const std::vector<TaskId>& keep) {
  if (keep.empty()) throw std::invalid_argument("induced_subgraph: keep set is empty");
  std::vector<std::size_t> new_id(graph.num_tasks(), static_cast<std::size_t>(-1));
  Subgraph out;
  out.original_ids.reserve(keep.size());
  for (TaskId v : keep) {
    if (v >= graph.num_tasks())
      throw std::invalid_argument("induced_subgraph: task id out of range");
    if (new_id[v] != static_cast<std::size_t>(-1))
      throw std::invalid_argument("induced_subgraph: duplicate task id in keep set");
    new_id[v] = out.original_ids.size();
    out.original_ids.push_back(v);
    out.graph.add_task(graph.task(v));
  }
  for (TaskId v : keep)
    for (TaskId w : graph.successors(v))
      if (new_id[w] != static_cast<std::size_t>(-1)) out.graph.add_edge(new_id[v], new_id[w]);
  return out;
}

}  // namespace basched::graph
