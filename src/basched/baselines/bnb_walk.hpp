/// \file bnb_walk.hpp
/// \brief Internal: the branch-and-bound policy on the shared order-tree
/// walker, used by both the sequential driver (branch_and_bound.cpp) and the
/// frontier-split parallel driver (parallel.cpp). Not part of the public
/// baselines API.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines::detail {

/// Order-tree visitor implementing the two admissible B&B bounds (deadline,
/// incumbent σ) plus the node budget. One instance per walker/worker; the
/// optional shared state connects workers of the parallel driver.
struct BnbWalkVisitor {
  double deadline = 0.0;
  std::uint64_t max_nodes = 0;
  /// Leaf fan opt-in (see order_tree.hpp): at depth n−1 all surviving
  /// children are block-priced in one peek_extend_block call. σ, pruning
  /// decisions and the incumbent are bit-identical to the sequential path
  /// (enter is pure here, so the enter/leaf interleaving is unobservable);
  /// only `evaluations` can drift by < num_design_points on runs truncated
  /// mid-fan by the node budget, because the block prices its lanes up
  /// front. Off switch for tests pinning the sequential path.
  bool leaf_fan = true;

  /// Anytime time budget / cancellation. Per-instance (workers each own
  /// one over copies of the same token), checked in count_node alongside the
  /// node budget. Inactive by default.
  util::RunBudget budget;

  BnbStats stats;
  double best_sigma = std::numeric_limits<double>::infinity();
  core::Schedule best;
  bool found = false;
  /// How this walk ended; `node_budget`/`deadline`/`cancelled` all mean the
  /// walk stopped early and the incumbent is best-found, not proven.
  util::StopReason stop_reason = util::StopReason::completed;

  [[nodiscard]] bool aborted() const noexcept {
    return stop_reason != util::StopReason::completed;
  }
  /// A leaf priced to NaN (degenerate battery model). NaN compares false
  /// against everything, so without this flag such a leaf would neither
  /// become the incumbent nor tighten SharedMinBound — the search would
  /// silently run unpruned and then claim its result optimal. Detected at
  /// publication and surfaced by the drivers as an explicit error result.
  bool nan_sigma = false;

  /// Cross-worker incumbent / node budget; null in the single-walker path.
  /// With sharing on, the σ prune switches from >= to a strict >, so an
  /// equal-σ optimum *survives in every subtree that contains one* no matter
  /// when another worker published the bound — each worker then records its
  /// subtree's DFS-first optimal leaf deterministically, and the
  /// index-ordered reduction in parallel.cpp picks a unique winner
  /// regardless of thread timing.
  analysis::SharedMinBound* shared_bound = nullptr;
  std::atomic<std::uint64_t>* shared_nodes = nullptr;

  [[nodiscard]] double bound() const noexcept {
    return shared_bound != nullptr ? std::min(best_sigma, shared_bound->load()) : best_sigma;
  }

  bool node(core::OrderTreeWalker& w) {
    if (!count_node(w)) return false;
    auto& eval = w.evaluator();
    if (eval.prefix_duration() + w.remaining_min_duration() > deadline * (1.0 + 1e-12)) {
      ++stats.pruned_deadline;
      return false;
    }
    const double lower = eval.prefix_energy() + w.remaining_min_energy();
    const double b = bound();
    if (shared_bound != nullptr ? lower > b : lower >= b) {
      ++stats.pruned_sigma;
      return false;
    }
    return true;
  }

  bool enter(core::OrderTreeWalker& w, graph::TaskId, std::size_t,
             const graph::DesignPoint& pt) {
    // This design-point alone breaks the deadline bound.
    return w.evaluator().prefix_duration() + pt.duration + w.remaining_min_duration() <=
           deadline * (1.0 + 1e-12);
  }

  void leaf(core::OrderTreeWalker& w) {
    if (!count_node(w)) return;
    const double sigma = w.evaluator().prefix_sigma();  // O(terms): prefix state is warm
    publish_leaf(w, sigma);
  }

  [[nodiscard]] bool use_leaf_fan() const noexcept { return leaf_fan; }

  /// Fan twin of `leaf`: σ arrives block-priced (bit-identical to
  /// prefix_sigma after the extension), the budget/NaN/incumbent logic is
  /// the same code in the same order.
  void leaf_priced(core::OrderTreeWalker& w, graph::TaskId, std::size_t,
                   const graph::DesignPoint&, double sigma) {
    if (!count_node(w)) return;
    publish_leaf(w, sigma);
  }

 private:
  void publish_leaf(core::OrderTreeWalker& w, double sigma) {
    if (std::isnan(sigma)) {
      nan_sigma = true;  // never publish NaN — see the flag's comment
      w.stop();          // the result is an error either way; don't walk on unpruned
      return;
    }
    if (sigma < best_sigma) {
      best_sigma = sigma;
      best = core::Schedule{w.sequence(), w.assignment()};
      found = true;
      if (shared_bound != nullptr) shared_bound->update_min(sigma);
    }
  }

  bool count_node(core::OrderTreeWalker& w) {
    ++stats.nodes_visited;
    const std::uint64_t total =
        shared_nodes != nullptr ? shared_nodes->fetch_add(1, std::memory_order_relaxed) + 1
                                : stats.nodes_visited;
    if (total > max_nodes) {
      stop_reason = util::merge_stop_reason(stop_reason, util::StopReason::node_budget);
      w.stop();
      return false;
    }
    if (budget.expired()) {
      stop_reason = util::merge_stop_reason(stop_reason, budget.reason());
      w.stop();
      return false;
    }
    return true;
  }
};

}  // namespace basched::baselines::detail
