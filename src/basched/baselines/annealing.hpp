/// \file annealing.hpp
/// \brief Simulated-annealing baseline over (sequence, assignment) pairs.
///
/// The paper's related-work section argues that SA (and LP formulations) are
/// impractical *on the embedded platform itself*; we include SA as an
/// offline quality reference: with enough moves it approaches the best
/// achievable battery cost, showing how much headroom the iterative
/// heuristic leaves on the table.
///
/// Moves: (a) bump one task's design-point one column up or down; (b) swap
/// two adjacent sequence positions when the swap keeps the order
/// topological; (c) — gated behind AnnealingOptions::segment_reversal —
/// reverse a short dependency-free segment, committed through the
/// evaluator's analytic adjacent-swap rescales (O(terms) exps total, zero on
/// a warm duration cache) with one σ read, and rolled back the same way when
/// rejected. Deadline violations are penalized proportionally to the
/// overrun, so the search can cross infeasible regions but settles feasible.
#pragma once

#include <cstddef>
#include <cstdint>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/util/stop.hpp"

namespace basched::util::fastmath {
class DecayRowCache;
}

namespace basched::baselines {

/// Annealer configuration.
struct AnnealingOptions {
  std::uint64_t seed = 1;        ///< RNG seed (runs are deterministic per seed)
  int iterations = 20000;        ///< total proposed moves
  double initial_temp = 0.0;     ///< 0 = auto (10% of the initial cost)
  double cooling = 0.999;        ///< geometric cooling factor per move
  double deadline_penalty = 50.0;  ///< cost per mA·min-equivalent minute of overrun

  /// Move (c): large-neighborhood segment reversal. Off by default so
  /// fixed-seed trajectories of existing configs are unchanged.
  bool segment_reversal = false;
  double reversal_prob = 0.2;    ///< chance an iteration proposes move (c)
  std::size_t max_segment = 6;   ///< longest segment (tasks) a reversal spans

  /// Cap on the number of proposals speculatively block-priced per kernel
  /// pass through the evaluator's SoA block peeks (1 = price one candidate
  /// at a time). The effective width adapts between 1 and this cap with the
  /// recent acceptance rate — halved after an acceptance, doubled after a
  /// fully-rejected block — so hot (high-acceptance) phases spend no more
  /// exp work than the scalar path while high-rejection tails fill whole
  /// blocks.
  /// Any value yields the *same trajectory bit for bit*: proposals are
  /// speculated from an RNG checkpoint, priced as a block, then replayed in
  /// exact sequential acceptance order — a mid-block acceptance discards the
  /// not-yet-consumed lanes (the schedule changed under them) and the next
  /// block re-speculates from the authoritative RNG state. Discarded lanes
  /// cost no transcendental work once the peek-row cache is warm, so
  /// misprediction is cheap.
  std::size_t block_proposals = 8;

  /// Cooperative cancellation: when the token fires, the run stops at the
  /// next iteration boundary and returns its best incumbent with
  /// `StopReason::cancelled`. A default token never fires.
  util::StopToken stop;

  /// Wall-clock budget (monotonic). Named `time_budget` — `deadline` is the
  /// schedule-makespan parameter throughout this codebase. On expiry the run
  /// returns its best incumbent with `StopReason::deadline`. Checked at
  /// iteration boundaries without consuming RNG draws, so an expiring budget
  /// truncates — never perturbs — the fixed-seed trajectory.
  util::Deadline time_budget;

  /// Optional pre-warmed per-Δt decay cache the annealer's evaluator adopts
  /// (a copy) — see ScheduleEvaluator's warm constructor. Null keeps the
  /// self-warming behaviour; the pointee must outlive the call. Trajectories
  /// are bit-identical either way.
  const util::fastmath::DecayRowCache* warm_cache = nullptr;
};

/// Runs simulated annealing. Throws std::invalid_argument on an empty/cyclic
/// graph or non-positive deadline. Returns the best *feasible* schedule
/// visited; feasible == false if none was (e.g. unmeetable deadline).
[[nodiscard]] ScheduleResult schedule_annealing(const graph::TaskGraph& graph, double deadline,
                                                const battery::BatteryModel& model,
                                                const AnnealingOptions& options = {});

}  // namespace basched::baselines
