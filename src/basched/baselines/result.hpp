/// \file result.hpp
/// \brief Common result type for all baseline schedulers.
#pragma once

#include <cstdint>
#include <string>

#include "basched/core/schedule.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

/// Outcome of a baseline scheduling run.
struct ScheduleResult {
  bool feasible = false;  ///< a deadline-respecting schedule was found
  core::Schedule schedule;
  double sigma = 0.0;     ///< battery cost σ at schedule end (mA·min)
  double duration = 0.0;  ///< makespan (minutes)
  double energy = 0.0;    ///< plain Σ I·D (mA·min)
  /// Search effort, for pruning-efficacy and evals/sec reporting. Semantics
  /// per baseline: B&B = tree nodes visited, exhaustive = enumeration steps,
  /// annealing = proposed moves, random search = drawn samples.
  std::uint64_t nodes_explored = 0;
  /// Candidate schedules priced (delta or full) via the ScheduleEvaluator.
  std::uint64_t evaluations = 0;
  /// How the run ended. `completed` means the full configured budget ran;
  /// anything else means the result is the best *found* so far, not a proven
  /// optimum (`node_budget` = old `truncated`, `deadline`/`cancelled` =
  /// anytime stop). Never silently set — searches are exact/exhaustive
  /// unless the caller configured a budget or armed a token.
  util::StopReason stop_reason = util::StopReason::completed;
  std::string error;      ///< non-empty when !feasible

  /// Legacy view of `stop_reason`: did the search stop short of its full
  /// configured work? (Kept as a method so every pre-StopReason call site
  /// reads unchanged modulo parentheses.)
  [[nodiscard]] bool truncated() const noexcept {
    return stop_reason != util::StopReason::completed;
  }
};

}  // namespace basched::baselines
