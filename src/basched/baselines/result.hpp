/// \file result.hpp
/// \brief Common result type for all baseline schedulers.
#pragma once

#include <string>

#include "basched/core/schedule.hpp"

namespace basched::baselines {

/// Outcome of a baseline scheduling run.
struct ScheduleResult {
  bool feasible = false;  ///< a deadline-respecting schedule was found
  core::Schedule schedule;
  double sigma = 0.0;     ///< battery cost σ at schedule end (mA·min)
  double duration = 0.0;  ///< makespan (minutes)
  double energy = 0.0;    ///< plain Σ I·D (mA·min)
  std::string error;      ///< non-empty when !feasible
};

}  // namespace basched::baselines
