/// \file result.hpp
/// \brief Common result type for all baseline schedulers.
#pragma once

#include <cstdint>
#include <string>

#include "basched/core/schedule.hpp"

namespace basched::baselines {

/// Outcome of a baseline scheduling run.
struct ScheduleResult {
  bool feasible = false;  ///< a deadline-respecting schedule was found
  core::Schedule schedule;
  double sigma = 0.0;     ///< battery cost σ at schedule end (mA·min)
  double duration = 0.0;  ///< makespan (minutes)
  double energy = 0.0;    ///< plain Σ I·D (mA·min)
  /// Search effort, for pruning-efficacy and evals/sec reporting. Semantics
  /// per baseline: B&B = tree nodes visited, exhaustive = enumeration steps,
  /// annealing = proposed moves, random search = drawn samples.
  std::uint64_t nodes_explored = 0;
  /// Candidate schedules priced (delta or full) via the ScheduleEvaluator.
  std::uint64_t evaluations = 0;
  /// True when an exact search stopped at its node budget before covering
  /// the whole tree: the result is the best *found*, not a proven optimum.
  /// Never silently set — exhaustive enumeration is exact unless the caller
  /// configured a budget.
  bool truncated = false;
  std::string error;      ///< non-empty when !feasible
};

}  // namespace basched::baselines
