#include "basched/baselines/chowdhury.hpp"

#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"

namespace basched::baselines {

ScheduleResult schedule_chowdhury(const graph::TaskGraph& graph, double deadline,
                                  const battery::BatteryModel& model) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_chowdhury: deadline must be > 0");

  ScheduleResult result;
  core::Schedule sched;
  sched.sequence = core::sequence_dec_energy(graph);
  sched.assignment = core::uniform_assignment(graph, 0);  // everyone fastest

  double duration = sched.duration(graph);
  if (duration > deadline * (1.0 + 1e-9)) {
    result.error = "deadline unmeetable even with all tasks at the fastest design-point";
    return result;
  }

  // Walk the sequence backwards; give each task the slowest design-point the
  // remaining slack allows.
  const std::size_t m = graph.num_design_points();
  for (std::size_t pos = sched.sequence.size(); pos-- > 0;) {
    const graph::TaskId v = sched.sequence[pos];
    const auto& task = graph.task(v);
    for (std::size_t j = m; j-- > sched.assignment[v] + 1;) {
      const double grown = duration - task.point(sched.assignment[v]).duration + task.point(j).duration;
      if (grown <= deadline * (1.0 + 1e-9)) {
        duration = grown;
        sched.assignment[v] = j;
        break;  // j scanned slowest-first, so the first fit is the best fit
      }
    }
  }

  const core::CostResult cost = core::calculate_battery_cost(graph, sched, model);
  result.feasible = true;
  result.schedule = std::move(sched);
  result.sigma = cost.sigma;
  result.duration = cost.duration;
  result.energy = cost.energy;
  return result;
}

}  // namespace basched::baselines
