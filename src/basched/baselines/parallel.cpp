#include "basched/baselines/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "basched/baselines/bnb_walk.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

namespace {

/// One subtree of the order tree, identified by its root prefix. Jobs are
/// recorded in DFS order, so the job index order *is* the sequential search
/// order — the tie-break of the reduction below.
struct FrontierJob {
  std::vector<graph::TaskId> seq;
  std::vector<std::size_t> cols;  ///< column of seq[i], in placement order
};

/// Enumeration visitor: applies the sequential B&B policy above the cut and
/// records every surviving node at `cut_depth` as a subtree job instead of
/// descending. Complete orders shallower than the cut are priced right here.
struct FrontierCollector {
  std::size_t cut_depth;
  detail::BnbWalkVisitor& bnb;
  std::vector<FrontierJob>& jobs;

  bool node(core::OrderTreeWalker& w) {
    if (w.depth() == cut_depth) {
      FrontierJob job;
      job.seq = w.sequence();
      job.cols.reserve(cut_depth);
      for (const graph::TaskId v : w.sequence()) job.cols.push_back(w.assignment()[v]);
      jobs.push_back(std::move(job));
      return false;  // the worker owning this subtree walks it
    }
    return bnb.node(w);
  }

  bool enter(core::OrderTreeWalker& w, graph::TaskId v, std::size_t col,
             const graph::DesignPoint& pt) {
    return bnb.enter(w, v, col, pt);
  }

  void leaf(core::OrderTreeWalker& w) { bnb.leaf(w); }

  // Forward the leaf-fan hooks (order_tree.hpp). The fan triggers only below
  // a node() that returned true, i.e. strictly above the cut — job recording
  // at the cut is unaffected; a deeper-than-n cut simply lets shallow
  // complete orders block-price here exactly as the workers do.
  [[nodiscard]] bool use_leaf_fan() const noexcept { return bnb.use_leaf_fan(); }

  void leaf_priced(core::OrderTreeWalker& w, graph::TaskId v, std::size_t col,
                   const graph::DesignPoint& pt, double sigma) {
    bnb.leaf_priced(w, v, col, pt, sigma);
  }
};

struct BnbJobResult {
  double sigma = 0.0;
  core::Schedule schedule;
  bool found = false;
  util::StopReason stop_reason = util::StopReason::completed;
  bool nan_sigma = false;
  BnbStats stats;
  std::uint64_t evaluations = 0;
};

void accumulate(BnbStats& into, const BnbStats& from) {
  into.nodes_visited += from.nodes_visited;
  into.pruned_deadline += from.pruned_deadline;
  into.pruned_sigma += from.pruned_sigma;
}

}  // namespace

ScheduleResult schedule_branch_and_bound_parallel(const graph::TaskGraph& graph, double deadline,
                                                  const battery::BatteryModel& model,
                                                  analysis::Executor& executor,
                                                  const ParallelBnbOptions& options,
                                                  BnbStats* stats) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_branch_and_bound_parallel: deadline must be > 0");

  const std::size_t n = graph.num_tasks();
  const std::uint64_t max_nodes = options.base.max_nodes;

  // Incumbent seed, exactly as the sequential driver. A NaN σ from a
  // degenerate model must not become the incumbent: NaN compares false
  // against everything, so it would never be replaced, never tighten
  // SharedMinBound, and the whole parallel search would run unpruned with no
  // signal. Detect it at publication and surface an explicit error instead.
  double incumbent_sigma = std::numeric_limits<double>::infinity();
  core::Schedule incumbent;
  bool incumbent_found = false;
  bool nan_sigma = false;
  if (options.base.seed_with_heuristic) {
    const auto seed = core::schedule_battery_aware(graph, deadline, model);
    if (seed.feasible) {
      if (std::isnan(seed.sigma)) {
        nan_sigma = true;
      } else {
        incumbent_sigma = seed.sigma;
        incumbent = seed.schedule;
        incumbent_found = true;
      }
    }
  }

  // Cut the tree. The auto depth grows until the frontier is wide enough for
  // any plausible worker count — growth consults only the tree shape, never
  // executor.jobs(), so the job list (and therefore the returned schedule)
  // is identical across --jobs. Each attempt restarts with fresh state; only
  // the final attempt's enumeration effort is reported.
  const std::size_t depth_cap = std::min(options.max_frontier_depth, n);
  std::size_t cut = options.frontier_depth != 0 ? std::min(options.frontier_depth, n) : 1;
  std::vector<FrontierJob> jobs;
  detail::BnbWalkVisitor enum_vis;
  std::uint64_t enum_evaluations = 0;
  while (!nan_sigma) {
    jobs.clear();
    enum_vis = detail::BnbWalkVisitor{};
    enum_vis.deadline = deadline;
    enum_vis.max_nodes = max_nodes;
    enum_vis.budget = util::RunBudget(options.base.stop, options.base.time_budget);
    if (incumbent_found) {
      enum_vis.best_sigma = incumbent_sigma;
      enum_vis.best = incumbent;
      enum_vis.found = true;
    }
    core::ScheduleEvaluator eval(graph, model, options.base.warm_cache);
    core::OrderTreeWalker walker(graph, eval);
    FrontierCollector collector{cut, enum_vis, jobs};
    walker.walk(collector);
    enum_evaluations = eval.evaluations();
    if (enum_vis.aborted() || enum_vis.nan_sigma) {
      jobs.clear();  // budget spent or result poisoned: skip the worker phase
      break;
    }
    if (options.frontier_depth != 0 || jobs.size() >= options.min_frontier_jobs ||
        cut >= depth_cap)
      break;
    ++cut;
  }

  // Enumeration may have improved the incumbent (shallow complete orders).
  incumbent_sigma = enum_vis.best_sigma;
  if (enum_vis.found) {
    incumbent = enum_vis.best;
    incumbent_found = true;
  }

  // Walk the subtrees. Each worker owns its evaluator + walker; the
  // incumbent σ is shared through a relaxed atomic purely as a prune
  // accelerator, and the node budget through a relaxed counter.
  analysis::SharedMinBound shared_bound(incumbent_sigma);
  std::atomic<std::uint64_t> shared_nodes{enum_vis.stats.nodes_visited};
  const double threshold = incumbent_sigma;
  std::vector<BnbJobResult> results = executor.map(jobs.size(), [&](std::size_t i) {
    core::ScheduleEvaluator eval(graph, model, options.base.warm_cache);
    core::OrderTreeWalker walker(graph, eval);
    walker.load_prefix(jobs[i].seq, jobs[i].cols);
    detail::BnbWalkVisitor vis;
    vis.deadline = deadline;
    vis.max_nodes = max_nodes;
    // Each worker owns a RunBudget over copies of the same token/deadline:
    // the stop flag is process-wide, the clock amortization per-worker.
    vis.budget = util::RunBudget(options.base.stop, options.base.time_budget);
    vis.best_sigma = threshold;  // a job result must strictly beat the incumbent
    vis.shared_bound = &shared_bound;
    vis.shared_nodes = &shared_nodes;
    walker.walk(vis);
    BnbJobResult r;
    r.sigma = vis.best_sigma;
    r.schedule = std::move(vis.best);
    r.found = vis.found;
    r.stop_reason = vis.stop_reason;
    r.nan_sigma = vis.nan_sigma;
    r.stats = vis.stats;
    r.evaluations = eval.evaluations();
    return r;
  });

  BnbStats total = enum_vis.stats;
  std::uint64_t evaluations = enum_evaluations;
  // Truncation is an any-worker property: the node budget is shared, so the
  // walk is incomplete as soon as *any* worker tripped it (not just worker 0
  // or the enumeration pass) — the merged result must say so. The merged
  // reason keeps the most severe member reason (cancelled > deadline >
  // node_budget), deterministic because severity merging is commutative.
  util::StopReason stop_reason = enum_vis.stop_reason;
  nan_sigma = nan_sigma || enum_vis.nan_sigma;
  for (const BnbJobResult& r : results) {
    accumulate(total, r.stats);
    evaluations += r.evaluations;
    stop_reason = util::merge_stop_reason(stop_reason, r.stop_reason);
    nan_sigma = nan_sigma || r.nan_sigma;
  }
  if (stats != nullptr) *stats = total;

  ScheduleResult result;
  result.nodes_explored = total.nodes_visited;
  result.evaluations = evaluations;
  result.stop_reason = stop_reason;
  if (nan_sigma) {
    result.error =
        "battery model produced NaN sigma: result withheld (degenerate model parameters?)";
    return result;
  }

  // Index-ordered reduction: strictly better σ wins, ties keep the earliest
  // job (== sequential DFS order), exact double comparison — byte-identical
  // for any job count or thread interleaving. Aborted workers still
  // contribute their partial incumbents: the result is "best found".
  double best_sigma = incumbent_sigma;
  const core::Schedule* best = incumbent_found ? &incumbent : nullptr;
  for (const BnbJobResult& r : results)
    if (r.found && (best == nullptr || r.sigma < best_sigma)) {
      best_sigma = r.sigma;
      best = &r.schedule;
    }

  if (best == nullptr) {
    result.error = stop_reason == util::StopReason::node_budget
                       ? "node budget exceeded before any feasible schedule was found"
                   : stop_reason != util::StopReason::completed
                       ? "search budget expired before any feasible schedule was found"
                       : "deadline unmeetable: every completion exceeds it";
    return result;
  }
  const core::CostResult cost = core::calculate_battery_cost(graph, *best, model);
  result.feasible = true;
  result.schedule = *best;
  result.sigma = cost.sigma;
  result.duration = cost.duration;
  result.energy = cost.energy;
  return result;
}

namespace {

/// Best-of reduction shared by the portfolios: strictly smaller σ wins, ties
/// keep the lowest restart index; effort counters are exact sums; truncation
/// is an any-member OR (a truncated member means the portfolio searched less
/// than configured, so the merged result must not claim full coverage).
/// A member publishing NaN σ is never allowed to become the best: the first
/// one would win the `!best.feasible` test and then stick forever (every
/// later `r.sigma < NaN` is false), silently poisoning the whole portfolio.
ScheduleResult reduce_portfolio(std::vector<ScheduleResult> results, const char* none_error) {
  ScheduleResult best;
  std::uint64_t nodes = 0;
  std::uint64_t evaluations = 0;
  util::StopReason stop_reason = util::StopReason::completed;
  bool nan_sigma = false;
  for (const ScheduleResult& r : results) {
    nodes += r.nodes_explored;
    evaluations += r.evaluations;
    stop_reason = util::merge_stop_reason(stop_reason, r.stop_reason);
    if (r.feasible && std::isnan(r.sigma)) {
      nan_sigma = true;
      continue;
    }
    if (r.feasible && (!best.feasible || r.sigma < best.sigma)) {
      best.feasible = true;
      best.error.clear();
      best.schedule = r.schedule;
      best.sigma = r.sigma;
      best.duration = r.duration;
      best.energy = r.energy;
    }
  }
  if (!best.feasible) {
    best.error = none_error;
    if (nan_sigma) {
      best.error =
          "battery model produced NaN sigma: result withheld (degenerate model parameters?)";
    } else {
      // Surface the members' own diagnosis (e.g. their NaN-σ error) instead
      // of the generic "nothing feasible" when every member failed itself.
      for (const ScheduleResult& r : results)
        if (!r.feasible && !r.error.empty()) {
          best.error = r.error;
          break;
        }
    }
  }
  best.nodes_explored = nodes;
  best.evaluations = evaluations;
  best.stop_reason = stop_reason;
  return best;
}

}  // namespace

ScheduleResult schedule_annealing_portfolio(const graph::TaskGraph& graph, double deadline,
                                            const battery::BatteryModel& model,
                                            analysis::Executor& executor,
                                            const AnnealingPortfolioOptions& options) {
  if (options.restarts < 1)
    throw std::invalid_argument("schedule_annealing_portfolio: restarts must be >= 1");
  // Per-restart validation (graph, deadline, iterations) happens inside
  // schedule_annealing; restart k runs the deterministic stream of seed
  // derive_seed(seed, k), independent of every other restart.
  std::vector<ScheduleResult> results =
      executor.map(options.restarts, [&](std::size_t k) {
        AnnealingOptions per = options.annealing;
        per.seed = util::derive_seed(options.annealing.seed, k);
        return schedule_annealing(graph, deadline, model, per);
      });
  return reduce_portfolio(std::move(results),
                          "annealing portfolio found no deadline-respecting schedule");
}

ScheduleResult schedule_random_search_portfolio(const graph::TaskGraph& graph, double deadline,
                                                const battery::BatteryModel& model,
                                                analysis::Executor& executor,
                                                const RandomPortfolioOptions& options) {
  if (options.restarts < 1)
    throw std::invalid_argument("schedule_random_search_portfolio: restarts must be >= 1");
  std::vector<ScheduleResult> results =
      executor.map(options.restarts, [&](std::size_t k) {
        RandomSearchOptions per = options.search;
        per.seed = util::derive_seed(options.search.seed, k);
        return schedule_random_search(graph, deadline, model, per);
      });
  return reduce_portfolio(std::move(results),
                          "random-search portfolio found no deadline-respecting schedule");
}

}  // namespace basched::baselines
