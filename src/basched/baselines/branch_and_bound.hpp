/// \file branch_and_bound.hpp
/// \brief Exact battery-optimal scheduling by branch-and-bound — extends the
/// reach of the exhaustive baseline by an order of magnitude.
///
/// The search tree is the shared order tree (core::OrderTreeWalker): nodes
/// fix a prefix of the sequence (chosen from the Kahn ready set, so every
/// leaf is a topological order) together with the design-point of each
/// placed task; this file contributes only the pruning policy
/// (bnb_walk.hpp), which uses two admissible bounds:
///
///  * **deadline bound** — prefix duration + Σ fastest durations of the
///    remaining tasks must fit the deadline;
///  * **σ bound** — final σ is at least the total charge *delivered* (σ ≥
///    Σ I·Δ for every battery model in this repo), so
///    prefix energy + Σ minimum design-point energies of the remaining tasks
///    is a lower bound on any completion's σ.
///
/// The incumbent is seeded with the paper heuristic's solution, so the
/// search starts with a strong upper bound. Exponential in the worst case;
/// intended for instances up to roughly a dozen tasks.
#pragma once

#include <cstdint>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/util/stop.hpp"

namespace basched::util::fastmath {
class DecayRowCache;
}

namespace basched::baselines {

/// Search limits and behaviour.
struct BnbOptions {
  std::uint64_t max_nodes = 5'000'000;  ///< abort when the tree exceeds this
  bool seed_with_heuristic = true;      ///< start from the paper algorithm's incumbent

  /// Cooperative cancellation / wall-clock budget (see AnnealingOptions):
  /// on stop the walk aborts and the best incumbent so far is returned with
  /// the matching StopReason. Checked alongside the node budget (clock reads
  /// amortized); defaults are inert.
  util::StopToken stop;
  util::Deadline time_budget;
  /// Optional pre-warmed per-Δt decay cache the search evaluators adopt (a
  /// copy each) — see ScheduleEvaluator's warm constructor. Null keeps the
  /// self-warming behaviour; the pointee must outlive the call.
  const util::fastmath::DecayRowCache* warm_cache = nullptr;
};

/// Statistics of a completed search (for studying pruning effectiveness).
struct BnbStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t pruned_deadline = 0;
  std::uint64_t pruned_sigma = 0;
};

/// Runs the search. Returns the optimal feasible schedule, or a
/// feasible == false result for unmeetable deadlines. When max_nodes trips
/// the result carries `truncated == true`: the schedule (if any) is the best
/// incumbent *found*, not a proven optimum — reported, never silent, exactly
/// as schedule_exhaustive does. A NaN σ published by a degenerate battery
/// model is surfaced as an explicit error result (never a silently unpruned
/// search). Throws std::invalid_argument on empty/cyclic graphs or
/// non-positive deadlines.
[[nodiscard]] ScheduleResult schedule_branch_and_bound(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    const BnbOptions& options = {}, BnbStats* stats = nullptr);

}  // namespace basched::baselines
