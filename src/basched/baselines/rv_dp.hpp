/// \file rv_dp.hpp
/// \brief The comparison baseline of the paper's Table 4: Rakhmatov &
/// Vrudhula's dynamic-programming energy manager [1].
///
/// Two phases, exactly as the paper describes the comparator:
///  1. **Design-point selection by dynamic programming**: choose one
///     design-point per task minimizing total energy Σ I·D subject to
///     Σ D <= deadline. Time is discretized at `time_resolution` minutes
///     (the published data uses 0.1-minute granularity); durations are
///     rounded *up*, so any discretized-feasible assignment is feasible in
///     real time.
///  2. **Greedy sequencing** (Eq. 5): list-schedule with weight
///     w(v) = max(I_v, meanI(G_v)) over the chosen currents, largest weight
///     first among ready tasks.
///
/// The battery cost of the resulting schedule is then evaluated with the
/// same battery model as the main algorithm — this head-to-head is Table 4.
#pragma once

#include <optional>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::baselines {

/// Options for the DP baseline.
struct RvDpOptions {
  double time_resolution = 0.1;  ///< DP time grid (minutes), > 0
};

/// Runs the [1] baseline. Throws std::invalid_argument on an empty/cyclic
/// graph, non-positive deadline, or non-positive resolution. An unmeetable
/// deadline yields feasible == false.
[[nodiscard]] ScheduleResult schedule_rv_dp(const graph::TaskGraph& graph, double deadline,
                                            const battery::BatteryModel& model,
                                            const RvDpOptions& options = {});

/// Phase 1 alone (exposed for testing): the minimum-energy assignment
/// subject to the discretized deadline, or std::nullopt when infeasible.
[[nodiscard]] std::optional<core::Assignment> min_energy_assignment(
    const graph::TaskGraph& graph, double deadline, const RvDpOptions& options = {});

}  // namespace basched::baselines
