#include "basched/baselines/exhaustive.hpp"

#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

namespace {

/// Exhaustive policy on the shared order-tree walker: no node-level pruning
/// (every subtree is visited), only the admissible deadline bound per child —
/// even the fastest completion of the remaining tasks cannot rescue a child
/// that already overruns. The walker shares sequence-prefix pricing state
/// across orders, so each enumeration step costs O(terms).
struct ExhaustiveVisitor {
  double tol;                 ///< deadline * (1 + 1e-9)
  std::uint64_t max_nodes;    ///< 0 = unbounded
  ScheduleResult& best;
  util::RunBudget& budget;    ///< anytime time budget / cancellation token
  std::uint64_t steps = 0;
  util::StopReason stop_reason = util::StopReason::completed;

  bool node(core::OrderTreeWalker&) { return true; }

  bool enter(core::OrderTreeWalker& w, graph::TaskId, std::size_t,
             const graph::DesignPoint& pt) {
    ++steps;
    if (max_nodes != 0 && steps > max_nodes) {
      stop_reason = util::StopReason::node_budget;
      w.stop();
      return false;
    }
    if (budget.expired()) {
      stop_reason = budget.reason();
      w.stop();
      return false;
    }
    return w.evaluator().prefix_duration() + pt.duration + w.remaining_min_duration() <= tol;
  }

  void leaf(core::OrderTreeWalker& w) {
    const double sigma = w.evaluator().prefix_sigma();
    if (!best.feasible || sigma < best.sigma) {
      best.feasible = true;
      best.error.clear();
      best.schedule = core::Schedule{w.sequence(), w.assignment()};
      best.sigma = sigma;
      best.duration = w.evaluator().prefix_duration();
      best.energy = w.evaluator().prefix_energy();
    }
  }

  // Leaf fan (order_tree.hpp): the node budget is counted in `enter`, which
  // the fan calls in the identical order, so even budget-truncated walks
  // visit, price and publish exactly the sequential leaf set. The evaluator
  // holds the depth n−1 prefix inside the hook; the final interval's
  // contribution to duration/energy is added with the same expressions
  // extend_interval would use, keeping the published bits identical.
  [[nodiscard]] bool use_leaf_fan() const noexcept { return true; }

  void leaf_priced(core::OrderTreeWalker& w, graph::TaskId, std::size_t,
                   const graph::DesignPoint& pt, double sigma) {
    if (!best.feasible || sigma < best.sigma) {
      best.feasible = true;
      best.error.clear();
      best.schedule = core::Schedule{w.sequence(), w.assignment()};
      best.sigma = sigma;
      best.duration = w.evaluator().prefix_duration() + pt.duration;
      best.energy = w.evaluator().prefix_energy() + pt.current * pt.duration;
    }
  }
};

}  // namespace

std::optional<ScheduleResult> schedule_exhaustive(const graph::TaskGraph& graph, double deadline,
                                                  const battery::BatteryModel& model,
                                                  const ExhaustiveOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_exhaustive: deadline must be > 0");

  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();

  // Bail out early if the assignment space alone is too large.
  double space = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    space *= static_cast<double>(m);
    if (space > static_cast<double>(options.max_assignments)) return std::nullopt;
  }

  ScheduleResult best;
  best.error = "deadline unmeetable: every assignment exceeds it";

  core::ScheduleEvaluator eval(graph, model);
  core::OrderTreeWalker walker(graph, eval);
  util::RunBudget run_budget(options.stop, options.time_budget);
  ExhaustiveVisitor visitor{deadline * (1.0 + 1e-9), options.max_nodes, best, run_budget};
  walker.walk(visitor);

  best.nodes_explored = visitor.steps;
  best.evaluations = eval.evaluations();
  best.stop_reason = visitor.stop_reason;
  if (!best.feasible && best.truncated()) {
    // The walk stopped before covering the tree, so "unmeetable" would be
    // an unproven claim — report the budget, not a verdict.
    best.error = visitor.stop_reason == util::StopReason::node_budget
                     ? "node budget exceeded before any feasible schedule was found"
                     : "search budget expired before any feasible schedule was found";
  }
  if (best.feasible) {
    // Report the winner at reference precision (outside the enumeration).
    const core::CostResult cost = core::calculate_battery_cost_unchecked(graph, best.schedule, model);
    best.sigma = cost.sigma;
    best.duration = cost.duration;
    best.energy = cost.energy;
  }
  return best;
}

}  // namespace basched::baselines
