#include "basched/baselines/exhaustive.hpp"

#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/topology.hpp"

namespace basched::baselines {

namespace {

/// Lexicographic depth-first enumeration of all design-point assignments for
/// one fixed order, through the shared evaluator: successive assignments
/// share maximal profile prefixes, so each enumeration step (extend one
/// task's interval) costs O(terms) and a complete assignment is priced in
/// O(terms) — not O(n · terms) as the old odometer's full re-evaluations.
struct Enumerator {
  const graph::TaskGraph& graph;
  const std::vector<graph::TaskId>& order;
  const std::vector<double>& suffix_min_duration;  ///< Σ fastest durations of order[i..]
  double tol;
  core::ScheduleEvaluator& eval;
  core::Assignment& assign;
  ScheduleResult& best;
  std::uint64_t nodes = 0;

  void dfs(std::size_t i) {
    const std::size_t n = order.size();
    if (i == n) {
      const double sigma = eval.prefix_sigma();
      if (!best.feasible || sigma < best.sigma) {
        best.feasible = true;
        best.error.clear();
        best.schedule = core::Schedule{order, assign};
        best.sigma = sigma;
        best.duration = eval.prefix_duration();
        best.energy = eval.prefix_energy();
      }
      return;
    }
    const graph::TaskId v = order[i];
    for (std::size_t j = 0; j < graph.num_design_points(); ++j) {
      ++nodes;
      const auto& pt = graph.task(v).point(j);
      // Admissible deadline bound: even the fastest completion of the
      // remaining tasks cannot rescue this subtree.
      if (eval.prefix_duration() + pt.duration + suffix_min_duration[i + 1] > tol) continue;
      eval.extend(v, j);
      assign[v] = j;
      dfs(i + 1);
      eval.pop();
    }
  }
};

}  // namespace

std::optional<ScheduleResult> schedule_exhaustive(const graph::TaskGraph& graph, double deadline,
                                                  const battery::BatteryModel& model,
                                                  const ExhaustiveOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_exhaustive: deadline must be > 0");

  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();

  // Bail out early if the assignment space alone is too large.
  double space = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    space *= static_cast<double>(m);
    if (space > static_cast<double>(options.max_assignments)) return std::nullopt;
  }

  const auto orders = graph::all_topological_orders(graph, options.max_orders);
  if (!orders) return std::nullopt;

  const double tol = deadline * (1.0 + 1e-9);
  ScheduleResult best;
  best.error = "deadline unmeetable: every assignment exceeds it";

  core::ScheduleEvaluator eval(graph, model);
  core::Assignment assign(n, 0);
  std::vector<double> suffix_min_duration(n + 1, 0.0);
  std::uint64_t nodes = 0;

  for (const auto& order : *orders) {
    for (std::size_t i = n; i-- > 0;)
      suffix_min_duration[i] = suffix_min_duration[i + 1] + graph.task(order[i]).min_duration();
    eval.reset();
    Enumerator enumerator{graph, order, suffix_min_duration, tol, eval, assign, best};
    enumerator.dfs(0);
    nodes += enumerator.nodes;
  }

  best.nodes_explored = nodes;
  best.evaluations = eval.evaluations();
  if (best.feasible) {
    // Report the winner at reference precision (outside the enumeration).
    const core::CostResult cost = core::calculate_battery_cost_unchecked(graph, best.schedule, model);
    best.sigma = cost.sigma;
    best.duration = cost.duration;
    best.energy = cost.energy;
  }
  return best;
}

}  // namespace basched::baselines
