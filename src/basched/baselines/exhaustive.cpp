#include "basched/baselines/exhaustive.hpp"

#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/graph/topology.hpp"

namespace basched::baselines {

std::optional<ScheduleResult> schedule_exhaustive(const graph::TaskGraph& graph, double deadline,
                                                  const battery::BatteryModel& model,
                                                  const ExhaustiveOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_exhaustive: deadline must be > 0");

  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();

  // Bail out early if the assignment space alone is too large.
  double space = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    space *= static_cast<double>(m);
    if (space > static_cast<double>(options.max_assignments)) return std::nullopt;
  }

  const auto orders = graph::all_topological_orders(graph, options.max_orders);
  if (!orders) return std::nullopt;

  const double tol = deadline * (1.0 + 1e-9);
  ScheduleResult best;
  best.error = "deadline unmeetable: every assignment exceeds it";

  core::Assignment assign(n, 0);
  // Odometer over assignments; for each assignment, the makespan is
  // order-independent, so check feasibility once and only then try orders.
  while (true) {
    core::Schedule probe{(*orders)[0], assign};
    if (probe.duration(graph) <= tol) {
      for (const auto& order : *orders) {
        const core::Schedule sched{order, assign};
        const core::CostResult cost = core::calculate_battery_cost_unchecked(graph, sched, model);
        if (!best.feasible || cost.sigma < best.sigma) {
          best.feasible = true;
          best.error.clear();
          best.schedule = sched;
          best.sigma = cost.sigma;
          best.duration = cost.duration;
          best.energy = cost.energy;
        }
      }
    }
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n && ++assign[i] == m) assign[i++] = 0;
    if (i == n) break;
  }
  return best;
}

}  // namespace basched::baselines
