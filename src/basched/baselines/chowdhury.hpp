/// \file chowdhury.hpp
/// \brief Chowdhury & Chakrabarti's simplified heuristic [7]: downscale
/// voltage levels as much as possible starting from the *last* task.
///
/// Rationale (proved in [7] and restated in the paper's §3): given a delay
/// slack and two identical tasks, spending the slack on the *later* task
/// always helps the battery more. The heuristic therefore fixes a sequence,
/// starts every task at its fastest design-point, and walks the sequence
/// backwards, moving each task to the slowest design-point the remaining
/// slack permits.
///
/// The sequence is produced by the same initial list scheduler as the main
/// algorithm (decreasing average energy), keeping the comparison about the
/// assignment strategy rather than the sequencing.
#pragma once

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::baselines {

/// Runs the last-task-first downscaling heuristic. Throws
/// std::invalid_argument on an empty/cyclic graph or non-positive deadline;
/// an unmeetable deadline yields feasible == false.
[[nodiscard]] ScheduleResult schedule_chowdhury(const graph::TaskGraph& graph, double deadline,
                                                const battery::BatteryModel& model);

}  // namespace basched::baselines
