#include "basched/baselines/annealing.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {

namespace {

double penalized_cost(const graph::TaskGraph& graph, const core::Schedule& sched,
                      const battery::BatteryModel& model, double deadline, double penalty,
                      core::CostResult& out) {
  out = core::calculate_battery_cost_unchecked(graph, sched, model);
  const double overrun = std::max(0.0, out.duration - deadline);
  return out.sigma + penalty * overrun * (1.0 + graph.max_current_overall());
}

}  // namespace

ScheduleResult schedule_annealing(const graph::TaskGraph& graph, double deadline,
                                  const battery::BatteryModel& model,
                                  const AnnealingOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_annealing: deadline must be > 0");
  if (options.iterations < 1)
    throw std::invalid_argument("schedule_annealing: iterations must be >= 1");

  util::Rng rng(options.seed);
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const double tol = deadline * (1.0 + 1e-9);

  // Start from a sensible feasible-ish point: fastest if the slowest
  // violates, otherwise slowest everywhere.
  core::Schedule current;
  current.sequence = core::sequence_dec_energy(graph);
  current.assignment = core::uniform_assignment(graph, m - 1);
  if (current.duration(graph) > tol) current.assignment = core::uniform_assignment(graph, 0);

  core::CostResult cr;
  double cur_cost = penalized_cost(graph, current, model, deadline, options.deadline_penalty, cr);

  ScheduleResult best;
  auto consider_best = [&](const core::Schedule& s, const core::CostResult& c) {
    if (c.duration <= tol && (!best.feasible || c.sigma < best.sigma)) {
      best.feasible = true;
      best.schedule = s;
      best.sigma = c.sigma;
      best.duration = c.duration;
      best.energy = c.energy;
    }
  };
  consider_best(current, cr);

  double temp = options.initial_temp > 0.0 ? options.initial_temp : 0.1 * (cur_cost + 1.0);

  // Position lookup for the adjacent-swap legality check.
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[current.sequence[i]] = i;

  for (int it = 0; it < options.iterations; ++it) {
    core::Schedule proposal = current;
    if (m >= 2 && rng.bernoulli(0.5)) {
      // Move (a): bump one task's column.
      const graph::TaskId v = rng.pick_index(n);
      const bool up = rng.bernoulli(0.5);
      auto& col = proposal.assignment[v];
      if (up && col + 1 < m)
        ++col;
      else if (!up && col > 0)
        --col;
      else
        continue;  // no-op move
    } else if (n >= 2) {
      // Move (b): swap adjacent sequence entries if legal.
      const std::size_t i = rng.pick_index(n - 1);
      const graph::TaskId a = proposal.sequence[i];
      const graph::TaskId b = proposal.sequence[i + 1];
      if (graph.has_edge(a, b)) continue;  // would violate the dependency
      std::swap(proposal.sequence[i], proposal.sequence[i + 1]);
    } else {
      continue;
    }

    core::CostResult pr;
    const double prop_cost =
        penalized_cost(graph, proposal, model, deadline, options.deadline_penalty, pr);
    const double delta = prop_cost - cur_cost;
    if (delta <= 0.0 || rng.next_double() < std::exp(-delta / std::max(temp, 1e-12))) {
      current = std::move(proposal);
      cur_cost = prop_cost;
      consider_best(current, pr);
    }
    temp *= options.cooling;
  }

  if (!best.feasible) best.error = "annealing found no deadline-respecting schedule";
  return best;
}

}  // namespace basched::baselines
