#include "basched/baselines/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/assert.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

ScheduleResult schedule_annealing(const graph::TaskGraph& graph, double deadline,
                                  const battery::BatteryModel& model,
                                  const AnnealingOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_annealing: deadline must be > 0");
  if (options.iterations < 1)
    throw std::invalid_argument("schedule_annealing: iterations must be >= 1");

  util::Rng rng(options.seed);
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const double tol = deadline * (1.0 + 1e-9);
  const double overrun_weight = options.deadline_penalty * (1.0 + graph.max_current_overall());
  const auto penalized = [&](double sigma, double duration) {
    return sigma + overrun_weight * std::max(0.0, duration - deadline);
  };

  // Start from a sensible feasible-ish point: fastest if the slowest
  // violates, otherwise slowest everywhere.
  core::Schedule current;
  current.sequence = core::sequence_dec_energy(graph);
  current.assignment = core::uniform_assignment(graph, m - 1);
  if (current.duration(graph) > tol) current.assignment = core::uniform_assignment(graph, 0);

  // Candidates are priced by O(terms) peeks against the evaluator's prefix
  // state; only *accepted* moves mutate `current` (in place) and commit the
  // move, which rescales the evaluator's suffix rows with O(terms) exps
  // instead of re-extending them. No per-candidate Schedule copy, no
  // DischargeProfile.
  core::ScheduleEvaluator eval(graph, model, options.warm_cache);
  core::CostResult cur = eval.full_eval(current);
  double cur_cost = penalized(cur.sigma, cur.duration);

  ScheduleResult best;
  bool nan_sigma = false;
  auto consider_best = [&](const core::CostResult& c) {
    // A NaN σ from a degenerate model would win the `!best.feasible` test
    // and then stick forever (NaN compares false against everything) —
    // detect it at publication instead of letting it poison the incumbent.
    if (std::isnan(c.sigma)) {
      nan_sigma = true;
      return;
    }
    if (c.duration <= tol && (!best.feasible || c.sigma < best.sigma)) {
      best.feasible = true;
      best.schedule = current;
      best.sigma = c.sigma;
      best.duration = c.duration;
      best.energy = c.energy;
    }
  };
  consider_best(cur);

  double temp = options.initial_temp > 0.0 ? options.initial_temp : 0.1 * (cur_cost + 1.0);

  // Position of each task in current.sequence, for pricing column bumps.
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[current.sequence[i]] = i;

  // One proposal, decoded from the RNG stream. Decoding consumes RNG draws
  // but never mutates search state, so a *copy* of the RNG can speculate
  // future proposals and the authoritative RNG replays them later with
  // identical draws (the schedule is unchanged until a move is accepted).
  struct Proposal {
    enum class Kind { Noop, Bump, Swap, Reversal } kind = Kind::Noop;
    std::size_t pos = 0;              ///< changed position (bump/swap)
    graph::TaskId task = 0;           ///< bump: task whose column moves
    std::size_t col = 0;              ///< bump: target column
    std::size_t first = 0, last = 0;  ///< reversal segment (inclusive)
  };
  const auto propose = [&](util::Rng& r) {
    Proposal p;
    if (options.segment_reversal && n >= 3 && r.bernoulli(options.reversal_prob)) {
      // Move (c): reverse a short dependency-free segment.
      const std::size_t i = r.pick_index(n - 2);
      const std::size_t cap = std::min(options.max_segment, n - i);
      if (cap < 3) return p;  // no-op move: still cools and counts
      const std::size_t len = 3 + r.pick_index(cap - 2);
      const std::size_t j = i + len - 1;
      for (std::size_t a = i; a < j; ++a)
        for (std::size_t b = a + 1; b <= j; ++b)
          if (graph.has_edge(current.sequence[a], current.sequence[b]))
            return p;  // reversing would violate a dependency: no-op
      p.kind = Proposal::Kind::Reversal;
      p.first = i;
      p.last = j;
      return p;
    }
    if (m >= 2 && r.bernoulli(0.5)) {
      // Move (a): bump one task's column.
      const graph::TaskId v = r.pick_index(n);
      const bool up = r.bernoulli(0.5);
      const std::size_t col = current.assignment[v];
      if (up ? col + 1 >= m : col == 0) return p;  // boundary: no-op
      p.kind = Proposal::Kind::Bump;
      p.task = v;
      p.col = up ? col + 1 : col - 1;
      p.pos = pos[v];
      return p;
    }
    if (n >= 2) {
      // Move (b): swap adjacent sequence entries if legal.
      const std::size_t i = r.pick_index(n - 1);
      if (graph.has_edge(current.sequence[i], current.sequence[i + 1]))
        return p;  // would violate the dependency: no-op
      p.kind = Proposal::Kind::Swap;
      p.pos = i;
    }
    return p;
  };

  // Speculative block pricing (AnnealingOptions::block_proposals): checkpoint
  // the RNG, decode up to `block` priceable proposals ahead — assuming the
  // common mid-search outcome, a rejected Metropolis draw, after each — and
  // price them through the SoA block peeks (one fused row gather per move
  // family). The replay then re-decodes each proposal from the authoritative
  // RNG (identical draws while the prediction holds) and applies the exact
  // legacy acceptance test with the block-priced σ. A rejection with a draw
  // matches the speculated stream, so the next lane stays valid; an
  // acceptance mutates the schedule, so the remaining lanes are discarded
  // and the next block re-speculates — which is exactly what pricing one
  // candidate at a time would have done. Trajectories are therefore
  // bit-identical for every block size; no-op proposals still cool and count
  // toward `iterations` as before. Reversals cut speculation (they price
  // through the commit machinery) and replay sequentially.
  // The *effective* block size adapts to the recent acceptance rate
  // (multiplicative increase on a fully-rejected block, decrease on an
  // acceptance): hot phases accept almost every proposal, so a fixed-width
  // block would discard most of its lanes — and churning schedules keep the
  // peek-row cache cold, making those discards cost real exps. Adapting
  // keeps the hot-phase exp budget at the scalar path's O(terms) per
  // iteration while the cold (high-rejection) tail still fills full-width
  // blocks. Trajectories don't depend on the block size (see above), so the
  // adaptation cannot perturb results.
  const std::size_t max_block = std::max<std::size_t>(std::size_t{1}, options.block_proposals);
  std::size_t block = 1;
  std::vector<Proposal> lanes;
  std::vector<std::size_t> swap_positions, swap_lane, bump_lane;
  std::vector<core::ScheduleEvaluator::ReplaceCandidate> bump_cands;
  std::vector<double> swap_sigmas, bump_sigmas, lane_sigma;
  std::uint64_t seq_evals = 1;  // the initial full_eval; see best.evaluations below

  // Anytime budget: checked at block boundaries (a block is at most
  // `max_block` proposals, so the check granularity is a handful of O(terms)
  // peeks). The check consumes no RNG draws and mutates no search state, so
  // an expiring budget truncates the fixed-seed trajectory without
  // perturbing it — and an inactive budget costs one predictable branch.
  util::RunBudget budget(options.stop, options.time_budget);

  int it = 0;
  while (it < options.iterations) {
    if (budget.expired()) {
      best.stop_reason = budget.reason();
      break;
    }
    // --- Speculate: decode ahead on a throwaway RNG copy. ---
    util::Rng spec = rng;
    lanes.clear();
    swap_positions.clear();
    swap_lane.clear();
    bump_cands.clear();
    bump_lane.clear();
    bool cut = false;
    for (int spec_it = it; spec_it < options.iterations && lanes.size() < block && !cut;
         ++spec_it) {
      const Proposal p = propose(spec);
      switch (p.kind) {
        case Proposal::Kind::Noop:
          break;
        case Proposal::Kind::Reversal:
          cut = true;
          break;
        case Proposal::Kind::Bump: {
          const auto& np = graph.task(p.task).point(p.col);
          bump_lane.push_back(lanes.size());
          bump_cands.push_back({p.pos, np.duration, np.current});
          lanes.push_back(p);
          (void)spec.next_double();  // presumed Metropolis draw (reject path)
          break;
        }
        case Proposal::Kind::Swap:
          swap_lane.push_back(lanes.size());
          swap_positions.push_back(p.pos);
          lanes.push_back(p);
          (void)spec.next_double();  // presumed Metropolis draw (reject path)
          break;
      }
    }
    // --- Price the block: one fused gather per move family. ---
    lane_sigma.resize(lanes.size());
    if (!swap_positions.empty()) {
      swap_sigmas.resize(swap_positions.size());
      eval.peek_swap_adjacent_block(swap_positions, swap_sigmas);
      for (std::size_t j = 0; j < swap_lane.size(); ++j) lane_sigma[swap_lane[j]] = swap_sigmas[j];
    }
    if (!bump_cands.empty()) {
      bump_sigmas.resize(bump_cands.size());
      eval.peek_replace_block(bump_cands, bump_sigmas);
      for (std::size_t j = 0; j < bump_lane.size(); ++j) lane_sigma[bump_lane[j]] = bump_sigmas[j];
    }
    // --- Replay: exact sequential acceptance order, authoritative RNG. ---
    std::size_t lane = 0;
    bool done = false;
    bool accepted_lane = false;
    while (!done && it < options.iterations) {
      const Proposal p = propose(rng);
      switch (p.kind) {
        case Proposal::Kind::Noop:
          break;
        case Proposal::Kind::Reversal: {
          // Committed first (σ is one read off the rescaled rows) and —
          // being its own inverse — rolled back by a second commit when
          // rejected.
          const core::CostResult prop = eval.commit_reverse_segment(p.first, p.last);
          ++seq_evals;
          const double prop_cost = penalized(prop.sigma, prop.duration);
          const double delta = prop_cost - cur_cost;
          if (delta <= 0.0 ||
              rng.next_double() < util::fastmath::exp_one(-delta / std::max(temp, 1e-12))) {
            std::reverse(current.sequence.begin() + static_cast<std::ptrdiff_t>(p.first),
                         current.sequence.begin() + static_cast<std::ptrdiff_t>(p.last) + 1);
            for (std::size_t k = p.first; k <= p.last; ++k) pos[current.sequence[k]] = k;
            cur = prop;
            cur_cost = prop_cost;
            consider_best(cur);
          } else {
            (void)eval.commit_reverse_segment(p.first, p.last);  // roll back
            ++seq_evals;
          }
          done = true;  // speculation was cut at this proposal
          break;
        }
        case Proposal::Kind::Bump:
        case Proposal::Kind::Swap: {
          BASCHED_ASSERT(lane < lanes.size());
          const double prop_sigma = lane_sigma[lane];
          ++seq_evals;  // the peek this lane replaced
          double prop_duration = cur.duration;
          if (p.kind == Proposal::Kind::Bump) {
            const auto& old_pt = graph.task(p.task).point(current.assignment[p.task]);
            const auto& new_pt = graph.task(p.task).point(p.col);
            prop_duration = cur.duration - old_pt.duration + new_pt.duration;
          }
          const double prop_cost = penalized(prop_sigma, prop_duration);
          const double delta = prop_cost - cur_cost;
          if (delta <= 0.0 ||
              rng.next_double() < util::fastmath::exp_one(-delta / std::max(temp, 1e-12))) {
            // Commit the accepted move: the evaluator rescales its suffix
            // rows analytically — O(suffix · terms) mult/adds, O(terms) exps
            // (zero on a warm duration cache) — instead of re-extending.
            if (p.kind == Proposal::Kind::Bump) {
              current.assignment[p.task] = p.col;
              const auto& new_pt = graph.task(p.task).point(p.col);
              cur = eval.commit_replace(p.pos, new_pt.duration, new_pt.current);
            } else {
              std::swap(current.sequence[p.pos], current.sequence[p.pos + 1]);
              pos[current.sequence[p.pos]] = p.pos;
              pos[current.sequence[p.pos + 1]] = p.pos + 1;
              cur = eval.commit_swap_adjacent(p.pos);
            }
            ++seq_evals;
            cur_cost = penalized(cur.sigma, cur.duration);
            consider_best(cur);
            accepted_lane = true;
            done = true;  // remaining lanes were priced against the old schedule
          } else {
            ++lane;
            if (lane == lanes.size()) done = true;
          }
          break;
        }
      }
      ++it;
      temp *= options.cooling;
    }
    if (accepted_lane) {
      block = std::max<std::size_t>(std::size_t{1}, block / 2);
    } else if (!lanes.empty() && lane == lanes.size()) {
      block = std::min(block * 2, max_block);  // whole block rejected: widen
    }
  }

  // `it` proposals actually ran — equals options.iterations unless the
  // anytime budget cut the run short.
  best.nodes_explored = static_cast<std::uint64_t>(it);
  // Sequential-equivalent evaluation count: the block path wastes lanes on
  // mispredicted (accepted) proposals, so the evaluator's own counter would
  // depend on block size; this one is invariant and equals the pre-block
  // scalar annealer's eval.evaluations() exactly.
  best.evaluations = seq_evals;
  if (!best.feasible) {
    best.error = nan_sigma ? "battery model produced NaN sigma: result withheld (degenerate "
                             "model parameters?)"
                           : "annealing found no deadline-respecting schedule";
    return best;
  }
  // Report the returned schedule at reference precision: one full evaluation,
  // outside the search loop.
  const core::CostResult final_cost =
      core::calculate_battery_cost_unchecked(graph, best.schedule, model);
  best.sigma = final_cost.sigma;
  best.duration = final_cost.duration;
  best.energy = final_cost.energy;
  return best;
}

}  // namespace basched::baselines
