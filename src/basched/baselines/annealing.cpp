#include "basched/baselines/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {

ScheduleResult schedule_annealing(const graph::TaskGraph& graph, double deadline,
                                  const battery::BatteryModel& model,
                                  const AnnealingOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("schedule_annealing: deadline must be > 0");
  if (options.iterations < 1)
    throw std::invalid_argument("schedule_annealing: iterations must be >= 1");

  util::Rng rng(options.seed);
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const double tol = deadline * (1.0 + 1e-9);
  const double overrun_weight = options.deadline_penalty * (1.0 + graph.max_current_overall());
  const auto penalized = [&](double sigma, double duration) {
    return sigma + overrun_weight * std::max(0.0, duration - deadline);
  };

  // Start from a sensible feasible-ish point: fastest if the slowest
  // violates, otherwise slowest everywhere.
  core::Schedule current;
  current.sequence = core::sequence_dec_energy(graph);
  current.assignment = core::uniform_assignment(graph, m - 1);
  if (current.duration(graph) > tol) current.assignment = core::uniform_assignment(graph, 0);

  // Candidates are priced by O(terms) peeks against the evaluator's prefix
  // state; only *accepted* moves mutate `current` (in place) and commit the
  // move, which rescales the evaluator's suffix rows with O(terms) exps
  // instead of re-extending them. No per-candidate Schedule copy, no
  // DischargeProfile.
  core::ScheduleEvaluator eval(graph, model, options.warm_cache);
  core::CostResult cur = eval.full_eval(current);
  double cur_cost = penalized(cur.sigma, cur.duration);

  ScheduleResult best;
  bool nan_sigma = false;
  auto consider_best = [&](const core::CostResult& c) {
    // A NaN σ from a degenerate model would win the `!best.feasible` test
    // and then stick forever (NaN compares false against everything) —
    // detect it at publication instead of letting it poison the incumbent.
    if (std::isnan(c.sigma)) {
      nan_sigma = true;
      return;
    }
    if (c.duration <= tol && (!best.feasible || c.sigma < best.sigma)) {
      best.feasible = true;
      best.schedule = current;
      best.sigma = c.sigma;
      best.duration = c.duration;
      best.energy = c.energy;
    }
  };
  consider_best(cur);

  double temp = options.initial_temp > 0.0 ? options.initial_temp : 0.1 * (cur_cost + 1.0);

  // Position of each task in current.sequence, for pricing column bumps.
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[current.sequence[i]] = i;

  // Cooling sits in the loop header so that no-op proposals (boundary column
  // bumps, dependency-violating swaps) still cool and count toward
  // `iterations`: runtime is bounded and fixed-seed runs are comparable.
  for (int it = 0; it < options.iterations; ++it, temp *= options.cooling) {
    if (options.segment_reversal && n >= 3 && rng.bernoulli(options.reversal_prob)) {
      // Move (c): reverse a short dependency-free segment. The reversal is
      // committed first (its σ is one read off the rescaled rows) and — being
      // its own inverse — rolled back by a second commit when rejected.
      const std::size_t i = rng.pick_index(n - 2);
      const std::size_t cap = std::min(options.max_segment, n - i);
      if (cap < 3) continue;  // no-op move: still cools and counts
      const std::size_t len = 3 + rng.pick_index(cap - 2);
      const std::size_t j = i + len - 1;
      bool legal = true;
      for (std::size_t a = i; legal && a < j; ++a)
        for (std::size_t b = a + 1; legal && b <= j; ++b)
          if (graph.has_edge(current.sequence[a], current.sequence[b])) legal = false;
      if (!legal) continue;  // reversing would violate a dependency
      const core::CostResult prop = eval.commit_reverse_segment(i, j);
      const double prop_cost = penalized(prop.sigma, prop.duration);
      const double delta = prop_cost - cur_cost;
      if (delta <= 0.0 || rng.next_double() < util::fastmath::exp_one(-delta / std::max(temp, 1e-12))) {
        std::reverse(current.sequence.begin() + static_cast<std::ptrdiff_t>(i),
                     current.sequence.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        for (std::size_t k = i; k <= j; ++k) pos[current.sequence[k]] = k;
        cur = prop;
        cur_cost = prop_cost;
        consider_best(cur);
      } else {
        (void)eval.commit_reverse_segment(i, j);  // roll back
      }
      continue;
    }
    enum class Move { Bump, Swap } kind = Move::Bump;
    std::size_t changed_pos = 0;
    graph::TaskId bump_task = 0;
    std::size_t bump_col = 0;
    double prop_sigma = 0.0;
    double prop_duration = 0.0;
    if (m >= 2 && rng.bernoulli(0.5)) {
      // Move (a): bump one task's column.
      const graph::TaskId v = rng.pick_index(n);
      const bool up = rng.bernoulli(0.5);
      const std::size_t col = current.assignment[v];
      if (up ? col + 1 >= m : col == 0) continue;  // no-op move
      bump_task = v;
      bump_col = up ? col + 1 : col - 1;
      changed_pos = pos[v];
      const auto& old_pt = graph.task(v).point(col);
      const auto& new_pt = graph.task(v).point(bump_col);
      prop_sigma = eval.peek_replace(changed_pos, new_pt.duration, new_pt.current);
      prop_duration = cur.duration - old_pt.duration + new_pt.duration;
    } else if (n >= 2) {
      // Move (b): swap adjacent sequence entries if legal.
      const std::size_t i = rng.pick_index(n - 1);
      if (graph.has_edge(current.sequence[i], current.sequence[i + 1]))
        continue;  // would violate the dependency
      kind = Move::Swap;
      changed_pos = i;
      prop_sigma = eval.peek_swap_adjacent(i);
      prop_duration = cur.duration;
    } else {
      continue;
    }

    const double prop_cost = penalized(prop_sigma, prop_duration);
    const double delta = prop_cost - cur_cost;
    if (delta <= 0.0 || rng.next_double() < util::fastmath::exp_one(-delta / std::max(temp, 1e-12))) {
      // Commit the accepted move: the evaluator rescales its suffix rows
      // analytically — O(suffix · terms) mult/adds, O(terms) exps (zero on a
      // warm duration cache) — instead of re-extending the suffix.
      if (kind == Move::Bump) {
        current.assignment[bump_task] = bump_col;
        const auto& new_pt = graph.task(bump_task).point(bump_col);
        cur = eval.commit_replace(changed_pos, new_pt.duration, new_pt.current);
      } else {
        std::swap(current.sequence[changed_pos], current.sequence[changed_pos + 1]);
        pos[current.sequence[changed_pos]] = changed_pos;
        pos[current.sequence[changed_pos + 1]] = changed_pos + 1;
        cur = eval.commit_swap_adjacent(changed_pos);
      }
      cur_cost = penalized(cur.sigma, cur.duration);
      consider_best(cur);
    }
  }

  best.nodes_explored = static_cast<std::uint64_t>(options.iterations);
  best.evaluations = eval.evaluations();
  if (!best.feasible) {
    best.error = nan_sigma ? "battery model produced NaN sigma: result withheld (degenerate "
                             "model parameters?)"
                           : "annealing found no deadline-respecting schedule";
    return best;
  }
  // Report the returned schedule at reference precision: one full evaluation,
  // outside the search loop.
  const core::CostResult final_cost =
      core::calculate_battery_cost_unchecked(graph, best.schedule, model);
  best.sigma = final_cost.sigma;
  best.duration = final_cost.duration;
  best.energy = final_cost.energy;
  return best;
}

}  // namespace basched::baselines
