#include "basched/baselines/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_evaluator.hpp"

namespace basched::baselines {

namespace {

struct SearchState {
  const graph::TaskGraph& graph;
  double deadline;
  const BnbOptions& options;
  BnbStats stats;

  std::vector<double> min_duration;  ///< per task, fastest design-point
  std::vector<double> min_energy;    ///< per task, cheapest design-point energy

  std::vector<std::size_t> indeg;    ///< remaining unscheduled predecessors
  std::vector<graph::TaskId> prefix_seq;
  core::Assignment assignment;
  /// Incremental prefix state: cumulative time/charge and the decayed RV
  /// partial sums live here, so extending a node is O(terms) and a complete
  /// leaf is priced in O(terms) — not O(depth · terms) as the old
  /// full-profile re-pricing cost.
  core::ScheduleEvaluator evaluator;
  double remaining_min_duration = 0.0;
  double remaining_min_energy = 0.0;

  double best_sigma = std::numeric_limits<double>::infinity();
  core::Schedule best;
  bool found = false;
  bool aborted = false;

  explicit SearchState(const graph::TaskGraph& g, double d, const battery::BatteryModel& m,
                       const BnbOptions& o)
      : graph(g), deadline(d), options(o), evaluator(g, m) {
    const std::size_t n = g.num_tasks();
    min_duration.resize(n);
    min_energy.resize(n);
    indeg.resize(n);
    assignment.assign(n, 0);
    for (graph::TaskId v = 0; v < n; ++v) {
      min_duration[v] = g.task(v).min_duration();
      double e = std::numeric_limits<double>::infinity();
      for (const auto& pt : g.task(v).points()) e = std::min(e, pt.energy());
      min_energy[v] = e;
      indeg[v] = g.predecessors(v).size();
      remaining_min_duration += min_duration[v];
      remaining_min_energy += e;
    }
  }

  void dfs() {
    if (aborted) return;
    if (++stats.nodes_visited > options.max_nodes) {
      aborted = true;
      return;
    }
    const std::size_t n = graph.num_tasks();
    if (prefix_seq.size() == n) {
      const double sigma = evaluator.prefix_sigma();  // O(terms): prefix state is warm
      if (sigma < best_sigma) {
        best_sigma = sigma;
        best = core::Schedule{prefix_seq, assignment};
        found = true;
      }
      return;
    }

    // Bound checks for the *current* partial node.
    if (evaluator.prefix_duration() + remaining_min_duration > deadline * (1.0 + 1e-12)) {
      ++stats.pruned_deadline;
      return;
    }
    if (evaluator.prefix_energy() + remaining_min_energy >= best_sigma) {
      ++stats.pruned_sigma;
      return;
    }

    for (graph::TaskId v = 0; v < n; ++v) {
      if (indeg[v] != 0 || indeg[v] == kScheduled) continue;
      // Place v next, trying higher-current design-points first (they tend
      // to belong early in good schedules, improving the incumbent sooner).
      indeg[v] = kScheduled;
      for (graph::TaskId w : graph.successors(v)) --indeg[w];
      prefix_seq.push_back(v);
      remaining_min_duration -= min_duration[v];
      remaining_min_energy -= min_energy[v];

      for (std::size_t j = 0; j < graph.num_design_points(); ++j) {
        const auto& pt = graph.task(v).point(j);
        if (evaluator.prefix_duration() + pt.duration + remaining_min_duration >
            deadline * (1.0 + 1e-12))
          continue;  // this design-point alone breaks the deadline bound
        assignment[v] = j;
        evaluator.extend(v, j);
        dfs();
        evaluator.pop();
        if (aborted) break;
      }

      remaining_min_duration += min_duration[v];
      remaining_min_energy += min_energy[v];
      prefix_seq.pop_back();
      for (graph::TaskId w : graph.successors(v)) ++indeg[w];
      indeg[v] = 0;
      if (aborted) return;
    }
  }

 private:
  static constexpr std::size_t kScheduled = static_cast<std::size_t>(-1);
};

}  // namespace

std::optional<ScheduleResult> schedule_branch_and_bound(const graph::TaskGraph& graph,
                                                        double deadline,
                                                        const battery::BatteryModel& model,
                                                        const BnbOptions& options,
                                                        BnbStats* stats) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_branch_and_bound: deadline must be > 0");

  SearchState state(graph, deadline, model, options);

  if (options.seed_with_heuristic) {
    const auto seed = core::schedule_battery_aware(graph, deadline, model);
    if (seed.feasible) {
      state.best_sigma = seed.sigma;
      state.best = seed.schedule;
      state.found = true;
    }
  }

  state.dfs();
  if (stats != nullptr) *stats = state.stats;
  if (state.aborted) return std::nullopt;

  ScheduleResult result;
  result.nodes_explored = state.stats.nodes_visited;
  result.evaluations = state.evaluator.evaluations();
  if (!state.found) {
    result.error = "deadline unmeetable: every completion exceeds it";
    return result;
  }
  const core::CostResult cost = core::calculate_battery_cost(graph, state.best, model);
  result.feasible = true;
  result.schedule = state.best;
  result.sigma = cost.sigma;
  result.duration = cost.duration;
  result.energy = cost.energy;
  return result;
}

}  // namespace basched::baselines
