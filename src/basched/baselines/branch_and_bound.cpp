#include "basched/baselines/branch_and_bound.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/baselines/bnb_walk.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

ScheduleResult schedule_branch_and_bound(const graph::TaskGraph& graph, double deadline,
                                         const battery::BatteryModel& model,
                                         const BnbOptions& options, BnbStats* stats) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_branch_and_bound: deadline must be > 0");

  // The search tree lives in the shared order-tree walker; this function only
  // supplies the B&B pruning policy and the incumbent seed.
  core::ScheduleEvaluator evaluator(graph, model, options.warm_cache);
  core::OrderTreeWalker walker(graph, evaluator);
  detail::BnbWalkVisitor visitor;
  visitor.deadline = deadline;
  visitor.max_nodes = options.max_nodes;
  visitor.budget = util::RunBudget(options.stop, options.time_budget);

  if (options.seed_with_heuristic) {
    const auto seed = core::schedule_battery_aware(graph, deadline, model);
    if (seed.feasible) {
      if (std::isnan(seed.sigma)) {
        visitor.nan_sigma = true;  // a NaN incumbent would disable σ pruning
      } else {
        visitor.best_sigma = seed.sigma;
        visitor.best = seed.schedule;
        visitor.found = true;
      }
    }
  }

  if (!visitor.nan_sigma) walker.walk(visitor);
  if (stats != nullptr) *stats = visitor.stats;

  ScheduleResult result;
  result.nodes_explored = visitor.stats.nodes_visited;
  result.evaluations = evaluator.evaluations();
  result.stop_reason = visitor.stop_reason;
  if (visitor.nan_sigma) {
    result.error =
        "battery model produced NaN sigma: result withheld (degenerate model parameters?)";
    return result;
  }
  if (!visitor.found) {
    // Reason-specific wording; the node_budget string predates StopReason
    // and stays byte-identical for budget-less configurations.
    result.error = visitor.stop_reason == util::StopReason::node_budget
                       ? "node budget exceeded before any feasible schedule was found"
                   : visitor.aborted()
                       ? "search budget expired before any feasible schedule was found"
                       : "deadline unmeetable: every completion exceeds it";
    return result;
  }
  const core::CostResult cost = core::calculate_battery_cost(graph, visitor.best, model);
  result.feasible = true;
  result.schedule = visitor.best;
  result.sigma = cost.sigma;
  result.duration = cost.duration;
  result.energy = cost.energy;
  return result;
}

}  // namespace basched::baselines
