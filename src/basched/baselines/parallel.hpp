/// \file parallel.hpp
/// \brief Parallel search on analysis::Executor: frontier-split
/// branch-and-bound and multi-seed restart portfolios for the stochastic
/// baselines.
///
/// Every entry point here is **byte-deterministic in everything but wall
/// time**: the returned schedule, σ, duration and energy are identical for
/// any executor job count (1, 2, 8, …), because
///
///  * work is split by *fixed rules* that never consult the job count — the
///    B&B order tree is cut at a frontier depth chosen from the tree shape
///    alone, portfolio seeds are derived per restart index;
///  * each unit of work is internally deterministic (one evaluator + walker
///    per worker, deterministic per-seed RNG streams);
///  * reduction is index-ordered: strictly better σ wins, ties go to the
///    lowest job/restart index, compared on exact double bits.
///
/// The only timing-dependent quantities are the effort counters of the
/// parallel B&B (`nodes_explored`, `evaluations`, BnbStats): the shared
/// incumbent bound (analysis::SharedMinBound, relaxed atomics) prunes more
/// or less depending on when workers publish, which changes how many nodes
/// are *visited* — never which result is *returned*. Portfolio counters are
/// plain sums of deterministic per-restart counters and are exactly
/// reproducible.
///
/// One caveat follows from the node counters being timing-dependent: the
/// *truncation* decision of the parallel B&B compares them against the
/// shared `max_nodes` budget, so an instance whose (pruned) tree size sits
/// near the budget can nondeterministically flip the node_budget stop. The
/// byte-determinism contract is for searches that complete; size the budget
/// with headroom (the default leaves plenty for paper-scale instances) when
/// reproducibility of the truncation flag itself matters.
///
/// Concurrency model: this layer is deliberately **lock-free** — the only
/// shared mutable state is analysis::SharedMinBound (a relaxed atomic CAS
/// loop) and relaxed effort counters, so there is nothing here for Clang's
/// Thread Safety Analysis to annotate (util/thread_annotations.hpp applies
/// to mutex-guarded state; the mutex-based machinery lives in
/// analysis::Executor, which this header builds on). Per-worker state is
/// confined by construction: each job owns its evaluator and walker, and
/// results rendezvous through the executor's index-ordered reduction.
#pragma once

#include <cstddef>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::baselines {

/// Frontier-split parallel branch-and-bound configuration.
struct ParallelBnbOptions {
  BnbOptions base;  ///< node budget (shared across workers) and incumbent seeding

  /// Depth at which the order tree is cut into independently walkable
  /// subtree jobs (each job replays its prefix into its own evaluator).
  /// 0 = auto: grow the frontier until it holds at least `min_frontier_jobs`
  /// subtrees or `max_frontier_depth` is reached. Deliberately independent
  /// of the executor's job count so results are identical across --jobs.
  std::size_t frontier_depth = 0;
  std::size_t min_frontier_jobs = 64;  ///< auto-depth growth target
  std::size_t max_frontier_depth = 8;  ///< auto-depth cap

  /// Work per job varies wildly (pruning), so jobs >> workers is the load
  /// balancing mechanism: workers drain the job queue dynamically.
};

/// Parallel B&B: same contract as schedule_branch_and_bound (stop_reason !=
/// completed when the shared node budget or the base options' time budget /
/// stop token ran out in the enumeration pass *or any worker* — the result
/// is then "best found so far", not proven optimal;
/// feasible == false for unmeetable deadlines; a NaN σ from a degenerate
/// model yields an explicit error result instead of a silently unpruned
/// search), identical optimum σ, and a byte-identical schedule for any
/// executor job count. `stats` aggregates enumeration + all workers.
[[nodiscard]] ScheduleResult schedule_branch_and_bound_parallel(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    analysis::Executor& executor, const ParallelBnbOptions& options = {},
    BnbStats* stats = nullptr);

/// Multi-seed annealing restart portfolio.
struct AnnealingPortfolioOptions {
  AnnealingOptions annealing;  ///< per-restart configuration (seed = stream root)
  std::size_t restarts = 8;    ///< independent restarts, seeds derived per index
};

/// Runs `restarts` independent annealing streams (seed of restart k is
/// util::derive_seed(annealing.seed, k)) on the executor and returns the
/// best feasible result, ties broken by lowest restart index. Deterministic
/// for any job count; effort counters are exact sums over restarts.
[[nodiscard]] ScheduleResult schedule_annealing_portfolio(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    analysis::Executor& executor, const AnnealingPortfolioOptions& options = {});

/// Multi-seed random-search portfolio (same reduction contract as the
/// annealing portfolio; each shard draws `search.samples` samples from its
/// own derived seed, so the portfolio covers restarts × samples candidates).
struct RandomPortfolioOptions {
  RandomSearchOptions search;
  std::size_t restarts = 8;
};

[[nodiscard]] ScheduleResult schedule_random_search_portfolio(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    analysis::Executor& executor, const RandomPortfolioOptions& options = {});

}  // namespace basched::baselines
