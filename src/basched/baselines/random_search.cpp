#include "basched/baselines/random_search.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/core/battery_cost.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

RandomOrderSampler::RandomOrderSampler(const graph::TaskGraph& graph) : graph_(&graph) {
  indeg_.reserve(graph.num_tasks());
  ready_.reserve(graph.num_tasks());
}

void RandomOrderSampler::sample(util::Rng& rng, std::vector<graph::TaskId>& out) {
  const std::size_t n = graph_->num_tasks();
  indeg_.resize(n);
  ready_.clear();
  for (graph::TaskId v = 0; v < n; ++v) indeg_[v] = graph_->predecessors(v).size();
  for (graph::TaskId v = 0; v < n; ++v)
    if (indeg_[v] == 0) ready_.push_back(v);

  out.clear();
  out.reserve(n);
  while (!ready_.empty()) {
    const std::size_t pick = rng.pick_index(ready_.size());
    const graph::TaskId v = ready_[pick];
    ready_[pick] = ready_.back();
    ready_.pop_back();
    out.push_back(v);
    for (graph::TaskId w : graph_->successors(v))
      if (--indeg_[w] == 0) ready_.push_back(w);
  }
  if (out.size() != n)
    throw std::invalid_argument("RandomOrderSampler: graph contains a cycle");
}

std::vector<graph::TaskId> random_topological_order(const graph::TaskGraph& graph,
                                                    util::Rng& rng) {
  RandomOrderSampler sampler(graph);
  std::vector<graph::TaskId> order;
  sampler.sample(rng, order);
  return order;
}

ScheduleResult schedule_random_search(const graph::TaskGraph& graph, double deadline,
                                      const battery::BatteryModel& model,
                                      const RandomSearchOptions& options) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_random_search: deadline must be > 0");
  if (options.samples < 1)
    throw std::invalid_argument("schedule_random_search: samples must be >= 1");

  util::Rng rng(options.seed);
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const double tol = deadline * (1.0 + 1e-9);

  ScheduleResult best;
  best.error = "no sampled schedule met the deadline";
  // One Schedule, one order sampler, one evaluator — every buffer is reused
  // across samples; the loop allocates only when a new best is copied out.
  RandomOrderSampler sampler(graph);
  core::ScheduleEvaluator eval(graph, model, options.warm_cache);
  core::Schedule sched;
  sched.assignment.resize(n);
  bool nan_sigma = false;
  // Anytime budget: one check per sample, before any RNG draw for that
  // sample, so an expiring budget is a clean prefix truncation of the
  // fixed-seed sample stream.
  util::RunBudget run_budget(options.stop, options.time_budget);
  int drawn = 0;
  for (int s = 0; s < options.samples; ++s) {
    if (run_budget.expired()) {
      best.stop_reason = run_budget.reason();
      break;
    }
    drawn = s + 1;
    sampler.sample(rng, sched.sequence);
    for (auto& col : sched.assignment) col = rng.pick_index(m);
    if (sched.duration(graph) > tol) continue;
    const core::CostResult cost = eval.full_eval(sched);
    // A NaN σ would win the `!best.feasible` test and then stick forever
    // (NaN compares false against everything); never publish it.
    if (std::isnan(cost.sigma)) {
      nan_sigma = true;
      continue;
    }
    if (!best.feasible || cost.sigma < best.sigma) {
      best.feasible = true;
      best.error.clear();
      best.schedule = sched;
      best.sigma = cost.sigma;
      best.duration = cost.duration;
      best.energy = cost.energy;
    }
  }
  best.nodes_explored = static_cast<std::uint64_t>(drawn);
  best.evaluations = eval.evaluations();
  if (!best.feasible && nan_sigma)
    best.error =
        "battery model produced NaN sigma: result withheld (degenerate model parameters?)";
  if (best.feasible) {
    const core::CostResult cost =
        core::calculate_battery_cost_unchecked(graph, best.schedule, model);
    best.sigma = cost.sigma;
    best.duration = cost.duration;
    best.energy = cost.energy;
  }
  return best;
}

}  // namespace basched::baselines
