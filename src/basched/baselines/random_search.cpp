#include "basched/baselines/random_search.hpp"

#include <stdexcept>

#include "basched/core/battery_cost.hpp"

namespace basched::baselines {

std::vector<graph::TaskId> random_topological_order(const graph::TaskGraph& graph,
                                                    util::Rng& rng) {
  const std::size_t n = graph.num_tasks();
  std::vector<std::size_t> indeg(n);
  for (graph::TaskId v = 0; v < n; ++v) indeg[v] = graph.predecessors(v).size();
  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);

  std::vector<graph::TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t pick = rng.pick_index(ready.size());
    const graph::TaskId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (graph::TaskId w : graph.successors(v))
      if (--indeg[w] == 0) ready.push_back(w);
  }
  if (order.size() != n)
    throw std::invalid_argument("random_topological_order: graph contains a cycle");
  return order;
}

ScheduleResult schedule_random_search(const graph::TaskGraph& graph, double deadline,
                                      const battery::BatteryModel& model,
                                      const RandomSearchOptions& options) {
  graph.validate();
  if (!(deadline > 0.0))
    throw std::invalid_argument("schedule_random_search: deadline must be > 0");
  if (options.samples < 1)
    throw std::invalid_argument("schedule_random_search: samples must be >= 1");

  util::Rng rng(options.seed);
  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const double tol = deadline * (1.0 + 1e-9);

  ScheduleResult best;
  best.error = "no sampled schedule met the deadline";
  for (int s = 0; s < options.samples; ++s) {
    core::Schedule sched;
    sched.sequence = random_topological_order(graph, rng);
    sched.assignment.resize(n);
    for (auto& col : sched.assignment) col = rng.pick_index(m);
    if (sched.duration(graph) > tol) continue;
    const core::CostResult cost = core::calculate_battery_cost_unchecked(graph, sched, model);
    if (!best.feasible || cost.sigma < best.sigma) {
      best.feasible = true;
      best.error.clear();
      best.schedule = std::move(sched);
      best.sigma = cost.sigma;
      best.duration = cost.duration;
      best.energy = cost.energy;
    }
  }
  return best;
}

}  // namespace basched::baselines
