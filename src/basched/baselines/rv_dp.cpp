#include "basched/baselines/rv_dp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "basched/core/battery_cost.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/util/assert.hpp"

namespace basched::baselines {

std::optional<core::Assignment> min_energy_assignment(const graph::TaskGraph& graph,
                                                      double deadline,
                                                      const RvDpOptions& options) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("min_energy_assignment: deadline must be > 0");
  if (!(options.time_resolution > 0.0))
    throw std::invalid_argument("min_energy_assignment: time_resolution must be > 0");

  const std::size_t n = graph.num_tasks();
  const std::size_t m = graph.num_design_points();
  const auto budget = static_cast<std::size_t>(std::floor(deadline / options.time_resolution));

  // ticks[v][j]: duration of (v, j) on the grid, rounded up (conservative).
  std::vector<std::vector<std::size_t>> ticks(n, std::vector<std::size_t>(m));
  for (graph::TaskId v = 0; v < n; ++v)
    for (std::size_t j = 0; j < m; ++j)
      ticks[v][j] = static_cast<std::size_t>(
          std::ceil(graph.task(v).point(j).duration / options.time_resolution - 1e-9));

  // f[t] = min energy of tasks 0..v placed in total time <= t; unreachable
  // states are +inf. Classic multiple-choice knapsack over one row at a time.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> f(budget + 1, 0.0);
  // choice[v][t]: column chosen for task v at time budget t (for traceback).
  std::vector<std::vector<std::uint8_t>> choice(n, std::vector<std::uint8_t>(budget + 1, 0));

  for (graph::TaskId v = 0; v < n; ++v) {
    std::vector<double> next(budget + 1, kInf);
    for (std::size_t t = 0; t <= budget; ++t) {
      for (std::size_t j = 0; j < m; ++j) {
        if (ticks[v][j] > t) continue;
        const double prev = f[t - ticks[v][j]];
        if (prev == kInf) continue;
        const double e = prev + graph.task(v).point(j).energy();
        if (e < next[t]) {
          next[t] = e;
          choice[v][t] = static_cast<std::uint8_t>(j);
        }
      }
      // Allow not using the full budget: next[t] should be min over <= t.
      if (t > 0 && next[t - 1] < next[t]) {
        next[t] = next[t - 1];
        choice[v][t] = choice[v][t - 1];
      }
    }
    f = std::move(next);
  }
  if (f[budget] == kInf) return std::nullopt;

  // Traceback. Because each row was prefix-minimized, choice[v][t] is the
  // column of task v in some optimal solution using at most t ticks.
  core::Assignment assign(n, 0);
  std::size_t t = budget;
  for (std::size_t vi = n; vi-- > 0;) {
    const std::size_t j = choice[vi][t];
    assign[vi] = j;
    BASCHED_ASSERT(ticks[vi][j] <= t);
    t -= ticks[vi][j];
  }
  return assign;
}

ScheduleResult schedule_rv_dp(const graph::TaskGraph& graph, double deadline,
                              const battery::BatteryModel& model, const RvDpOptions& options) {
  ScheduleResult result;
  auto assign = min_energy_assignment(graph, deadline, options);
  if (!assign) {
    result.error = "deadline unmeetable on the DP time grid";
    return result;
  }
  core::Schedule sched;
  sched.assignment = std::move(*assign);
  sched.sequence = core::greedy_max_current_sequence(graph, sched.assignment);

  const core::CostResult cost = core::calculate_battery_cost(graph, sched, model);
  result.feasible = cost.duration <= deadline * (1.0 + 1e-9);
  BASCHED_ASSERT(result.feasible);  // ceil-rounding guarantees real feasibility
  result.schedule = std::move(sched);
  result.sigma = cost.sigma;
  result.duration = cost.duration;
  result.energy = cost.energy;
  return result;
}

}  // namespace basched::baselines
