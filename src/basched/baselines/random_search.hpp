/// \file random_search.hpp
/// \brief Random-sampling baseline: the floor any heuristic must clear.
///
/// Draws `samples` random (topological order, assignment) pairs and keeps
/// the feasible one with the smallest battery cost. Random topological
/// orders come from a randomized Kahn's algorithm (uniform choice among
/// ready tasks); assignments are uniform per task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/stop.hpp"

namespace basched::util::fastmath {
class DecayRowCache;
}

namespace basched::baselines {

/// Random-search configuration.
struct RandomSearchOptions {
  std::uint64_t seed = 1;
  int samples = 2000;

  /// Cooperative cancellation / wall-clock budget (see AnnealingOptions for
  /// semantics): on stop the run returns its best sample so far with the
  /// matching StopReason. Checked once per sample; defaults are inert.
  util::StopToken stop;
  util::Deadline time_budget;

  /// Optional pre-warmed per-Δt decay cache the sampler's evaluator adopts
  /// (a copy) — see ScheduleEvaluator's warm constructor. Null keeps the
  /// self-warming behaviour; the pointee must outlive the call.
  const util::fastmath::DecayRowCache* warm_cache = nullptr;
};

/// Runs the sampler. Throws std::invalid_argument on empty/cyclic graphs or
/// non-positive deadlines; feasible == false when no sample met the deadline.
[[nodiscard]] ScheduleResult schedule_random_search(const graph::TaskGraph& graph, double deadline,
                                                    const battery::BatteryModel& model,
                                                    const RandomSearchOptions& options = {});

/// Allocation-free repeated sampling of uniformly random topological orders
/// (randomized Kahn): one sampler per sampling loop, scratch buffers reused
/// across samples. The graph is held by reference and must outlive the
/// sampler.
class RandomOrderSampler {
 public:
  explicit RandomOrderSampler(const graph::TaskGraph& graph);

  /// Fills `out` (resized to num_tasks) with a fresh random order. Throws
  /// std::invalid_argument if the graph contains a cycle.
  void sample(util::Rng& rng, std::vector<graph::TaskId>& out);

 private:
  const graph::TaskGraph* graph_;
  std::vector<std::size_t> indeg_;
  std::vector<graph::TaskId> ready_;
};

/// A uniformly randomized topological order (randomized Kahn), exposed for
/// reuse in tests and other baselines. Convenience wrapper over
/// RandomOrderSampler for one-shot use.
[[nodiscard]] std::vector<graph::TaskId> random_topological_order(const graph::TaskGraph& graph,
                                                                  util::Rng& rng);

}  // namespace basched::baselines
