/// \file exhaustive.hpp
/// \brief Exact optimal schedule by exhaustive enumeration — a ground-truth
/// reference for small instances.
///
/// Streams the order tree (core::OrderTreeWalker: backtracking Kahn over
/// topological orders × design-point assignments) and returns the feasible
/// leaf with the smallest battery cost. Sequence-prefix pricing state is
/// shared across orders as well as across assignments, and nothing is
/// materialized — the old `max_orders` order list (and its memory cliff) is
/// gone. Exact by default; exponential, so intended for tests and small
/// ablation studies (n up to ~8 with m up to ~4 is comfortable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {

/// Enumeration limits.
struct ExhaustiveOptions {
  /// A-priori bail: return std::nullopt without searching when the
  /// assignment space m^n alone exceeds this (the instance is hopeless).
  std::size_t max_assignments = 200000;
  /// Walk budget in enumeration steps (design-point attempts). When the
  /// budget trips mid-walk the best schedule found so far is returned with
  /// `StopReason::node_budget` — reported, never silent. 0 means unbounded
  /// (fully exact).
  std::uint64_t max_nodes = 2'000'000;

  /// Cooperative cancellation / wall-clock budget (see AnnealingOptions):
  /// on stop the walk aborts and returns the best leaf seen so far with the
  /// matching StopReason. Checked per enumeration step (clock reads
  /// amortized); defaults are inert.
  util::StopToken stop;
  util::Deadline time_budget;
};

/// Returns the optimal feasible schedule (stop_reason == completed), the
/// best found when a budget tripped (node_budget/deadline/cancelled), a
/// feasible == false result when the deadline is unmeetable, or std::nullopt
/// when m^n exceeds max_assignments. Throws std::invalid_argument on
/// empty/cyclic graphs or non-positive deadlines.
[[nodiscard]] std::optional<ScheduleResult> schedule_exhaustive(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    const ExhaustiveOptions& options = {});

}  // namespace basched::baselines
