/// \file exhaustive.hpp
/// \brief Exact optimal schedule by exhaustive enumeration — a ground-truth
/// reference for small instances.
///
/// Enumerates every topological order (bounded) × every design-point
/// assignment (bounded) and returns the feasible pair with the smallest
/// battery cost. Exponential; intended for tests and small ablation studies
/// (n up to ~8 with m up to ~4 is comfortable).
#pragma once

#include <optional>

#include "basched/baselines/result.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::baselines {

/// Enumeration limits.
struct ExhaustiveOptions {
  std::size_t max_orders = 50000;       ///< abort if more topological orders exist
  std::size_t max_assignments = 200000; ///< abort if m^n exceeds this
};

/// Returns the optimal feasible schedule, a feasible==false result when the
/// deadline is unmeetable, or std::nullopt when the instance exceeds the
/// enumeration limits. Throws std::invalid_argument on empty/cyclic graphs
/// or non-positive deadlines.
[[nodiscard]] std::optional<ScheduleResult> schedule_exhaustive(
    const graph::TaskGraph& graph, double deadline, const battery::BatteryModel& model,
    const ExhaustiveOptions& options = {});

}  // namespace basched::baselines
