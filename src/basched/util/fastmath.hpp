/// \file fastmath.hpp
/// \brief Vectorized math kernels for the Eq. 1 exponential series.
///
/// PR 3's profiling note (ROADMAP) put ~90 % of delta-pricing time in
/// `std::exp` over the m = 1..M series terms — the series itself, not the
/// search bookkeeping, is the hot path. This layer attacks it twice:
///
///  * **`batch_exp(span<double>)`** — in-place exponential over a buffer.
///    The batched kernel splits x = k·ln2 + r and evaluates a degree-12
///    Estrin-form polynomial for e^r; the loop is plain FP arithmetic plus
///    exponent-bit assembly (no libm calls), so the compiler auto-vectorizes
///    it, and on x86-64 an AVX2+FMA instantiation is selected at startup via
///    cpuid (one binary serves every ISA level). Arguments outside ±706 —
///    overflow and the denormal/underflow tail — take an element-wise
///    `std::exp` fixup pass, keeping tails correctly rounded. Relative error
///    vs `std::exp` is ~5e-16 worst case (the accuracy suite in
///    tests/util/fastmath_test.cpp pins 1e-13, well inside the repo-wide
///    1e-12 pricing tolerance).
///
///  * **`DecayRowCache`** — rows e^{-c_i·x} keyed on x for a fixed
///    coefficient vector (β²m², m = 1..M). The RV prefix recurrences consume
///    decay rows keyed almost exclusively on the catalog's distinct interval
///    durations Δt, so a warm cache answers `extend`, σ-at-end and committed
///    annealing moves with *zero* exp evaluations.
///
/// Dispatch switch, three layers:
///  * compile time: `-DBASCHED_FASTMATH_FORCE_SCALAR` removes the batched
///    kernel entirely (every batch_exp is a `std::exp` loop);
///  * environment: `BASCHED_EXP_KERNEL=scalar` (read once, first use) forces
///    the scalar kernel without rebuilding — the README documents this as
///    the way to cross-check any result against libm;
///  * runtime: `set_exp_kernel()` for tests and benches.
///
/// Below the kernel switch sits the ISA dispatch table of the batched
/// kernel: the same block body is instantiated per instruction set —
/// portable (baseline), AVX2+FMA and AVX-512 on x86-64, NEON on aarch64
/// (where ASIMD is the baseline) — and the best arm the CPU supports is
/// selected once at startup via cpuid. `BASCHED_EXP_ISA=<name>` (read once)
/// or `set_exp_isa()` force a specific arm for cross-checks; `exp_isa_name()`
/// reports the active one. Every arm evaluates the identical expression
/// graph under the same FP contraction rules, so arms that share FMA
/// (avx2/avx512) produce identical bits; the portable arm may differ from
/// them by ≤1 ulp where contraction decisions differ, and the scalar
/// *kernel* stays bit-identical to libm on every arch.
///
/// `exp_evaluations()` counts exp evaluations served per element (relaxed
/// atomic, both kernels). Probe tests use deltas of this counter to verify
/// that hot paths — e.g. the annealer's committed moves — stay O(terms)
/// exps; a `DecayRowCache` hit performs (and counts) none.
///
/// Everything here is deterministic: same inputs, same bits, regardless of
/// batch boundaries. The kernels are thread-safe; `DecayRowCache` instances
/// are not (use one per evaluator, as with ScheduleEvaluator itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace basched::util::fastmath {

/// Which exp kernel `batch_exp` runs.
enum class ExpKernel {
  Batched,  ///< vectorizable polynomial kernel with std::exp tail fixup
  Scalar,   ///< element-wise std::exp (bit-identical to libm)
};

/// Active kernel. Defaults to Batched unless overridden (see file comment).
[[nodiscard]] ExpKernel exp_kernel() noexcept;

/// Switches the active kernel at runtime (thread-safe, relaxed).
void set_exp_kernel(ExpKernel kernel) noexcept;

/// "batched" or "scalar" — for logs and bench JSON.
[[nodiscard]] const char* exp_kernel_name() noexcept;

/// In-place xs[i] := exp(xs[i]) under the active kernel. Finite and
/// non-finite inputs alike produce exactly what `std::exp` would for any
/// element outside [-706, 706]; elements inside differ from libm by ~1e-15
/// relative under the batched kernel. noexcept and allocation-free.
void batch_exp(std::span<double> xs) noexcept;

/// SoA block form of `batch_exp`: `block` holds K rows of `terms` exponent
/// lanes in contiguous K-major layout (row j at block + j·terms) and every
/// lane is exponentiated in one fused pass through the active kernel — same
/// dispatch, same fixup, same per-element bits as K separate `batch_exp`
/// calls (the kernel is batch-boundary invariant), but one kernel entry and
/// long vectors instead of K short ones. The block-pricing layer
/// (`DecayRowCache::rows_block`, ScheduleEvaluator's `peek_*_block`) funnels
/// through here.
void batch_exp_block(double* block, std::size_t k, std::size_t terms) noexcept;

/// Name of the batched kernel's active ISA arm: "avx512", "avx2", "neon" or
/// "portable". Independent of the kernel switch (the scalar kernel bypasses
/// the table entirely).
[[nodiscard]] const char* exp_isa_name() noexcept;

/// Forces the batched kernel onto the named ISA arm ("avx512", "avx2",
/// "neon", "portable", or "auto" to restore startup selection). Returns
/// false — leaving the dispatch unchanged — when the name is unknown or the
/// host CPU lacks the arm. Thread-safe (relaxed); for tests and benches.
[[nodiscard]] bool set_exp_isa(const char* name) noexcept;

/// Total exp evaluations served so far, counted per element across both
/// kernels and all threads (relaxed atomic). Monotone; probe via deltas.
[[nodiscard]] std::uint64_t exp_evaluations() noexcept;

/// Single e^x through libm — bit-identical to `std::exp`, never the batched
/// kernel — counted in `exp_evaluations()`. The scalar funnel for cold call
/// sites (the annealer's Metropolis draw, KiBaM's per-step decay): routing
/// them here keeps the repo invariant that *every* exponential flows through
/// util/fastmath (enforced by basched_lint's raw-exp rule) and makes them
/// observable to the probe counter, without perturbing trajectories that are
/// pinned bit-exact against libm.
[[nodiscard]] double exp_one(double x) noexcept;

/// Single std::pow through libm, counted like `exp_one` (a pow is an
/// exp·log; one tick keeps the counter an honest transcendental-work probe).
[[nodiscard]] double pow_one(double base, double exponent) noexcept;

/// Cache of decay rows r_i(x) = exp(-coeff[i] · x), keyed on x.
///
/// Built once per consumer with the fixed coefficient vector (the RV β²m²
/// ladder) and queried with the interval durations the schedule catalog
/// produces. Open-addressed on the key's bit pattern; insertion stops at
/// `max_entries` (further distinct keys are computed into the caller's
/// scratch, uncached) so adversarial key streams cannot grow it unboundedly.
class DecayRowCache {
 public:
  DecayRowCache() = default;

  /// \param coeffs      decay coefficients c_i (copied)
  /// \param max_entries insertion cap; beyond it lookups fall back to
  ///                    uncached computation
  explicit DecayRowCache(std::span<const double> coeffs, std::size_t max_entries = 4096);

  /// Number of coefficients (row length).
  [[nodiscard]] std::size_t terms() const noexcept { return coeffs_.size(); }

  /// The coefficient vector the cache was built with. Two caches with equal
  /// coefficients are interchangeable: rows are pure functions of
  /// (coeffs, key), so a consumer may adopt a copy of an already-warm cache
  /// (e.g. one pre-warmed from a catalog's durations) instead of recomputing
  /// every row — the basis of cross-request cache sharing in serve/.
  [[nodiscard]] std::span<const double> coeffs() const noexcept { return coeffs_; }

  /// Row of exp(-coeff[i]·key). Returns a pointer into the cache when the
  /// key is (or becomes) cached; otherwise computes into `scratch` (which
  /// must hold at least terms() doubles) and returns `scratch`. The returned
  /// pointer is invalidated by the next `row`/`index_of` call with a *new*
  /// key (cache growth may reallocate) — copy the row out before
  /// interleaving lookups.
  [[nodiscard]] const double* row(double key, double* scratch);

  /// Sentinel for keys the cache will not hold (bit-pattern-zero key, or
  /// capacity reached).
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  /// Index of the key's row (inserting it if possible), or kNoIndex. Row
  /// indices are stable for the cache's lifetime, so hot loops can store
  /// them per position and dereference with `row_at` — no hashing, no
  /// pointer-invalidation hazard.
  [[nodiscard]] std::uint32_t index_of(double key);

  /// Row pointer for an index returned by `index_of`. Valid until the next
  /// insertion (`row`/`index_of` with a new key) — do not hold across them.
  [[nodiscard]] const double* row_at(std::uint32_t index) const noexcept {
    return rows_.data() + static_cast<std::size_t>(index) * coeffs_.size();
  }

  /// Fills out[i] = exp(-coeff[i]·key) without touching the cache.
  void compute(double key, double* out) const noexcept;

  /// Gathers the decay rows of `keys` into `out` (contiguous K-major SoA:
  /// row j at out + j·terms()). Warm keys are copied from the cache with
  /// zero exp evaluations; all cold keys are deduplicated and evaluated in
  /// ONE fused `batch_exp_block` pass (then inserted, capacity permitting).
  /// Key bit-pattern 0 (+0.0) is filled with exact 1.0 rows directly —
  /// exp(-c·0) is 1.0 bit-exactly under both kernels — since the cache
  /// cannot hold it. Element bits equal what per-key `row()` calls would
  /// produce (the kernel is batch-boundary invariant). Returns the number
  /// of unique cold keys (== exp rows actually evaluated); a fully warm
  /// block returns 0. `out` must hold keys.size()·terms() doubles.
  std::size_t rows_block(std::span<const double> keys, double* out);

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  void grow();

  /// Probe-only lookup on a key's bit pattern; never inserts, never counts.
  [[nodiscard]] std::uint32_t find_index(std::uint64_t bits) const noexcept;

  /// Inserts an already-computed row (no exp evaluations). Returns the row's
  /// index, the existing index when the key is already present, or kNoIndex
  /// when the key is uncacheable or the cache is full.
  std::uint32_t insert_row(double key, const double* row);

  std::vector<double> coeffs_;
  std::vector<std::uint64_t> slot_keys_;  ///< key bit patterns; 0 == empty
  std::vector<std::uint32_t> slot_rows_;  ///< row index per slot
  std::vector<double> rows_;              ///< entries_ rows of terms() doubles
  std::vector<double> block_scratch_;     ///< rows_block: cold-key lane buffer
  std::vector<std::uint32_t> cold_;       ///< rows_block: cold key positions
  std::vector<std::uint32_t> cold_slot_;  ///< rows_block: cold → unique-key slot
  std::vector<std::uint32_t> cold_unique_;  ///< rows_block: first-occurrence keys
  std::size_t entries_ = 0;
  std::size_t max_entries_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace basched::util::fastmath
