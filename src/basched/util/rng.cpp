#include "basched/util/rng.hpp"

#include <cmath>

#include "basched/util/assert.hpp"

namespace basched::util {

std::uint64_t Rng::next_u64() noexcept {
  // SplitMix64 step.
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  BASCHED_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit span
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) noexcept {
  BASCHED_ASSERT(lo < hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t Rng::pick_index(std::size_t n) noexcept {
  BASCHED_ASSERT(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  Rng mixer(seed ^ (stream * 0xD6E8FEB86659FD93ULL + 0xA5A5A5A5A5A5A5A5ULL));
  return mixer.next_u64();
}

}  // namespace basched::util
