/// \file table.hpp
/// \brief Minimal ASCII table formatter used by benches and examples to print
/// paper-style result tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace basched::util {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// Accumulates rows of strings and renders them as an aligned ASCII table.
///
/// Usage:
/// \code
///   Table t({"Deadline", "sigma (ours)", "sigma [1]", "% diff"});
///   t.add_row({"55", "30913", "35739", "15.6"});
///   std::cout << t.str();
/// \endcode
class Table {
 public:
  /// Creates a table with the given header cells.
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  /// Sets the alignment for a column (default: Right for all columns).
  void set_align(std::size_t column, Align align);

  /// Number of data rows added so far (separators excluded).
  [[nodiscard]] std::size_t row_count() const noexcept;

  /// Renders the table, including header and rule lines.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a separator
  std::vector<Align> aligns_;
};

/// Formats a double with fixed precision, trimming to a compact form
/// (e.g. fmt_double(16353.04, 1) == "16353.0").
[[nodiscard]] std::string fmt_double(double v, int precision = 2);

}  // namespace basched::util
