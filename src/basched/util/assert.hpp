/// \file assert.hpp
/// \brief Internal invariant checking for basched.
///
/// `BASCHED_ASSERT` guards *internal* invariants: conditions that can only be
/// false if basched itself has a bug. Violations abort with a source
/// location. API-boundary precondition violations (caller errors) instead
/// throw `std::invalid_argument` — see the individual module headers.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace basched::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  // basched-lint: allow(stdout-write) process is about to abort(); stderr is the only channel left
  std::fprintf(stderr, "basched internal invariant violated: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace basched::detail

#define BASCHED_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) ::basched::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
