#include "basched/util/fastmath.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace basched::util::fastmath {

namespace {

std::atomic<std::uint64_t> g_exp_evaluations{0};

int initial_kernel() noexcept {
#ifdef BASCHED_FASTMATH_FORCE_SCALAR
  return static_cast<int>(ExpKernel::Scalar);
#else
  const char* env = std::getenv("BASCHED_EXP_KERNEL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0)
    return static_cast<int>(ExpKernel::Scalar);
  return static_cast<int>(ExpKernel::Batched);
#endif
}

std::atomic<int>& kernel_state() noexcept {
  static std::atomic<int> state{initial_kernel()};
  return state;
}

// x = k·ln2 + r split constants. kLn2Hi carries 32 significant bits, so
// kf·kLn2Hi is exact for |kf| < 2^20 — far beyond the |kf| <= 1020 this
// kernel ever produces.
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
// 1.5·2^52: adding it rounds to nearest and parks the integer in the low
// mantissa bits (two's complement in the low 32).
constexpr double kShift = 6755399441055744.0;
// Outside |x| <= 706 the 2^k exponent-bit assembly would hit denormals or
// infinity; those elements take the std::exp fixup instead. The bound is
// checked on the *bit pattern* (IEEE magnitude ordering), which also routes
// NaN/inf to the fixup and keeps the hot loop free of control flow.
constexpr std::uint64_t kMagLimit = std::bit_cast<std::uint64_t>(706.0);
constexpr std::uint64_t kMagMask = 0x7fffffffffffffffULL;

/// e^x for x in [-706, 706]: degree-12 polynomial in Estrin form (short
/// dependency chains vectorize and pipeline; truncation < 3e-16 relative at
/// |r| <= ln2/2), scaled by 2^k built from exponent bits. ~5e-16 relative
/// vs libm. Outside the range the result is garbage — callers overwrite it
/// from the fixup pass (finite-only arithmetic, so no traps either way).
inline double exp_core(double x) noexcept {
  const double kd = x * kLog2E + kShift;
  const double kf = kd - kShift;
  const double r = (x - kf * kLn2Hi) - kf * kLn2Lo;
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const double p01 = 1.0 + r;
  const double p23 = 0.5 + r * (1.0 / 6.0);
  const double p45 = 1.0 / 24.0 + r * (1.0 / 120.0);
  const double p67 = 1.0 / 720.0 + r * (1.0 / 5040.0);
  const double p89 = 1.0 / 40320.0 + r * (1.0 / 362880.0);
  const double pab = 1.0 / 3628800.0 + r * (1.0 / 39916800.0);
  const double pc = 1.0 / 479001600.0;
  const double q = (p01 + r2 * p23) + r4 * (p45 + r2 * p67) + r8 * ((p89 + r2 * pab) + r4 * pc);
  const auto ki =
      static_cast<std::int64_t>(static_cast<std::int32_t>(std::bit_cast<std::uint64_t>(kd)));
  const double scale = std::bit_cast<double>(static_cast<std::uint64_t>(ki + 1023) << 52);
  return q * scale;
}

// The block body is instantiated twice — baseline ISA and an AVX2+FMA
// version — and selected once at startup (see batch_exp_batched below).
// Structure matters for auto-vectorization: the snapshot/range-scan loop and
// the polynomial loop are separate because a fused reduction defeats GCC's
// if-conversion, and there is no clamp in the compute loop for the same
// reason (out-of-range lanes produce garbage that the fixup overwrites).
#define BASCHED_BATCH_EXP_BODY(p, remaining)                                          \
  do {                                                                                \
    constexpr std::size_t kBlock = 128;                                               \
    double saved[kBlock];                                                             \
    while ((remaining) > 0) {                                                         \
      const std::size_t cnt = std::min(kBlock, (remaining));                          \
      std::uint64_t out_of_range = 0;                                                 \
      for (std::size_t j = 0; j < cnt; ++j) {                                         \
        const double x = (p)[j];                                                      \
        saved[j] = x;                                                                 \
        out_of_range |= (std::bit_cast<std::uint64_t>(x) & kMagMask) > kMagLimit;     \
      }                                                                               \
      for (std::size_t j = 0; j < cnt; ++j) (p)[j] = exp_core(saved[j]);              \
      if (out_of_range != 0) {                                                        \
        for (std::size_t j = 0; j < cnt; ++j)                                         \
          if ((std::bit_cast<std::uint64_t>(saved[j]) & kMagMask) > kMagLimit)        \
            (p)[j] = std::exp(saved[j]);                                              \
      }                                                                               \
      (p) += cnt;                                                                     \
      (remaining) -= cnt;                                                             \
    }                                                                                 \
  } while (false)

void batch_exp_blocks(double* p, std::size_t remaining) noexcept {
  BASCHED_BATCH_EXP_BODY(p, remaining);
}

#if defined(__x86_64__) && defined(__GNUC__)
#define BASCHED_FASTMATH_MULTIARCH 1
// Same body compiled for AVX2+FMA: 4-wide fused Estrin, ~2-3x the baseline
// SSE2 code on capable hardware. Selected at startup via cpuid, so one
// binary serves every x86-64.
__attribute__((target("avx2,fma"))) void batch_exp_blocks_avx2(double* p,
                                                               std::size_t remaining) noexcept {
  BASCHED_BATCH_EXP_BODY(p, remaining);
}
// Same body again at 8-wide: avx512f covers the 512-bit FP lanes, avx512dq
// the int64↔double casts the exponent-bit assembly vectorizes through. Both
// wide arms contract through FMA, so avx2 and avx512 produce identical bits
// element for element (verified by tests/util/fastmath_test.cpp).
__attribute__((target("avx512f,avx512dq,fma"))) void batch_exp_blocks_avx512(
    double* p, std::size_t remaining) noexcept {
  BASCHED_BATCH_EXP_BODY(p, remaining);
}
#elif defined(__aarch64__)
#define BASCHED_FASTMATH_NEON 1
// On AArch64 ASIMD (NEON) is part of the baseline ABI, so the "neon" arm is
// the default-target body — named separately so the dispatch table, the
// `BASCHED_EXP_ISA` hook and the bench JSON report the arm explicitly
// instead of hiding it inside "portable".
void batch_exp_blocks_neon(double* p, std::size_t remaining) noexcept {
  BASCHED_BATCH_EXP_BODY(p, remaining);
}
#endif

using BatchFn = void (*)(double*, std::size_t) noexcept;

/// One ISA arm of the batched kernel: a name for logs/env/bench JSON, the
/// instantiation, and whether this host can execute it.
struct IsaArm {
  const char* name;
  BatchFn fn;
  bool supported;
};

/// Dispatch table, best arm first. Built once; `supported` is resolved via
/// cpuid on x86-64 and statically elsewhere.
std::span<const IsaArm> isa_table() noexcept {
  static const std::vector<IsaArm> table = [] {
    std::vector<IsaArm> t;
#ifdef BASCHED_FASTMATH_MULTIARCH
    __builtin_cpu_init();
    const bool fma = __builtin_cpu_supports("fma");
    t.push_back({"avx512", batch_exp_blocks_avx512,
                 bool(__builtin_cpu_supports("avx512f")) &&
                     bool(__builtin_cpu_supports("avx512dq")) && fma});
    t.push_back({"avx2", batch_exp_blocks_avx2, bool(__builtin_cpu_supports("avx2")) && fma});
#endif
#ifdef BASCHED_FASTMATH_NEON
    t.push_back({"neon", batch_exp_blocks_neon, true});
#endif
    t.push_back({"portable", batch_exp_blocks, true});
    return t;
  }();
  return table;
}

/// Best supported arm — the startup ("auto") selection.
int auto_isa() noexcept {
  const auto table = isa_table();
  for (std::size_t i = 0; i < table.size(); ++i)
    if (table[i].supported) return static_cast<int>(i);
  return static_cast<int>(table.size() - 1);  // portable is always last + supported
}

int initial_isa() noexcept {
  const char* env = std::getenv("BASCHED_EXP_ISA");
  if (env != nullptr) {
    const auto table = isa_table();
    for (std::size_t i = 0; i < table.size(); ++i)
      if (std::strcmp(env, table[i].name) == 0 && table[i].supported) return static_cast<int>(i);
    // Unknown or unsupported name: fall through to auto rather than crash a
    // run over an env typo; exp_isa_name() makes the outcome observable.
  }
  return auto_isa();
}

std::atomic<int>& isa_state() noexcept {
  static std::atomic<int> state{initial_isa()};
  return state;
}

void batch_exp_batched(std::span<double> xs) noexcept {
  isa_table()[static_cast<std::size_t>(isa_state().load(std::memory_order_relaxed))].fn(
      xs.data(), xs.size());
}

std::uint64_t mix_bits(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ExpKernel exp_kernel() noexcept {
  return static_cast<ExpKernel>(kernel_state().load(std::memory_order_relaxed));
}

void set_exp_kernel(ExpKernel kernel) noexcept {
#ifdef BASCHED_FASTMATH_FORCE_SCALAR
  (void)kernel;  // compile-time force wins; keep the switch a no-op
#else
  kernel_state().store(static_cast<int>(kernel), std::memory_order_relaxed);
#endif
}

const char* exp_kernel_name() noexcept {
  return exp_kernel() == ExpKernel::Batched ? "batched" : "scalar";
}

void batch_exp(std::span<double> xs) noexcept {
  if (xs.empty()) return;
  g_exp_evaluations.fetch_add(xs.size(), std::memory_order_relaxed);
  if (exp_kernel() == ExpKernel::Scalar) {
    for (double& x : xs) x = std::exp(x);
    return;
  }
  batch_exp_batched(xs);
}

void batch_exp_block(double* block, std::size_t k, std::size_t terms) noexcept {
  batch_exp(std::span<double>(block, k * terms));
}

const char* exp_isa_name() noexcept {
  return isa_table()[static_cast<std::size_t>(isa_state().load(std::memory_order_relaxed))].name;
}

bool set_exp_isa(const char* name) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "auto") == 0) {
    isa_state().store(auto_isa(), std::memory_order_relaxed);
    return true;
  }
  const auto table = isa_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (std::strcmp(name, table[i].name) != 0) continue;
    if (!table[i].supported) return false;
    isa_state().store(static_cast<int>(i), std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::uint64_t exp_evaluations() noexcept {
  return g_exp_evaluations.load(std::memory_order_relaxed);
}

double exp_one(double x) noexcept {
  g_exp_evaluations.fetch_add(1, std::memory_order_relaxed);
  return std::exp(x);
}

double pow_one(double base, double exponent) noexcept {
  g_exp_evaluations.fetch_add(1, std::memory_order_relaxed);
  return std::pow(base, exponent);
}

DecayRowCache::DecayRowCache(std::span<const double> coeffs, std::size_t max_entries)
    : coeffs_(coeffs.begin(), coeffs.end()), max_entries_(max_entries) {}

void DecayRowCache::compute(double key, double* out) const noexcept {
  const std::size_t n = coeffs_.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = -coeffs_[i] * key;
  batch_exp(std::span<double>(out, n));
}

void DecayRowCache::grow() {
  const std::size_t new_cap = slot_keys_.empty() ? 64 : slot_keys_.size() * 2;
  std::vector<std::uint64_t> old_keys = std::move(slot_keys_);
  std::vector<std::uint32_t> old_rows = std::move(slot_rows_);
  slot_keys_.assign(new_cap, 0);
  slot_rows_.assign(new_cap, 0);
  const std::uint64_t mask = new_cap - 1;
  for (std::size_t s = 0; s < old_keys.size(); ++s) {
    if (old_keys[s] == 0) continue;
    std::uint64_t pos = mix_bits(old_keys[s]) & mask;
    while (slot_keys_[pos] != 0) pos = (pos + 1) & mask;
    slot_keys_[pos] = old_keys[s];
    slot_rows_[pos] = old_rows[s];
  }
}

std::uint32_t DecayRowCache::index_of(double key) {
  const std::size_t n = coeffs_.size();
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(key);
  // Bit pattern 0 (key +0.0) doubles as the empty-slot sentinel; durations
  // are > 0 everywhere in basched, so just report it uncacheable.
  if (bits == 0 || n == 0 || max_entries_ == 0) return kNoIndex;
  if (entries_ * 4 >= slot_keys_.size() * 3) grow();  // load factor <= 0.75
  const std::uint64_t mask = slot_keys_.size() - 1;
  std::uint64_t pos = mix_bits(bits) & mask;
  while (slot_keys_[pos] != 0) {
    if (slot_keys_[pos] == bits) {
      ++hits_;
      return slot_rows_[pos];
    }
    pos = (pos + 1) & mask;
  }
  ++misses_;
  if (entries_ >= max_entries_) return kNoIndex;
  const std::uint32_t idx = static_cast<std::uint32_t>(entries_++);
  rows_.resize(rows_.size() + n);
  compute(key, rows_.data() + static_cast<std::size_t>(idx) * n);
  slot_keys_[pos] = bits;
  slot_rows_[pos] = idx;
  return idx;
}

const double* DecayRowCache::row(double key, double* scratch) {
  const std::uint32_t idx = index_of(key);
  if (idx == kNoIndex) {
    compute(key, scratch);
    return scratch;
  }
  return row_at(idx);
}

std::uint32_t DecayRowCache::find_index(std::uint64_t bits) const noexcept {
  if (bits == 0 || slot_keys_.empty()) return kNoIndex;
  const std::uint64_t mask = slot_keys_.size() - 1;
  std::uint64_t pos = mix_bits(bits) & mask;
  while (slot_keys_[pos] != 0) {
    if (slot_keys_[pos] == bits) return slot_rows_[pos];
    pos = (pos + 1) & mask;
  }
  return kNoIndex;
}

std::uint32_t DecayRowCache::insert_row(double key, const double* row) {
  const std::size_t n = coeffs_.size();
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(key);
  if (bits == 0 || n == 0 || max_entries_ == 0 || entries_ >= max_entries_) return kNoIndex;
  if (entries_ * 4 >= slot_keys_.size() * 3) grow();  // load factor <= 0.75
  const std::uint64_t mask = slot_keys_.size() - 1;
  std::uint64_t pos = mix_bits(bits) & mask;
  while (slot_keys_[pos] != 0) {
    if (slot_keys_[pos] == bits) return slot_rows_[pos];
    pos = (pos + 1) & mask;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(entries_++);
  rows_.resize(rows_.size() + n);
  std::copy_n(row, n, rows_.data() + static_cast<std::size_t>(idx) * n);
  slot_keys_[pos] = bits;
  slot_rows_[pos] = idx;
  return idx;
}

std::size_t DecayRowCache::rows_block(std::span<const double> keys, double* out) {
  const std::size_t t = coeffs_.size();
  cold_.clear();
  for (std::size_t j = 0; j < keys.size(); ++j) {
    double* dst = out + j * t;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(keys[j]);
    if (bits == 0) {
      // exp(-c·(+0.0)) is exactly 1.0 under libm and the batched kernel
      // alike, and bit pattern 0 doubles as the empty-slot sentinel — fill
      // the row directly instead of burning a lane on a constant.
      std::fill_n(dst, t, 1.0);
      continue;
    }
    const std::uint32_t idx = find_index(bits);
    if (idx != kNoIndex) {
      ++hits_;
      std::copy_n(row_at(idx), t, dst);
    } else {
      cold_.push_back(static_cast<std::uint32_t>(j));
    }
  }
  if (cold_.empty()) return 0;
  // Deduplicate cold keys on bit pattern (blocks are small — K ≲ 40 lanes —
  // so the quadratic scan beats hashing), fill their exponent lanes into one
  // compact SoA buffer, and evaluate every cold row in ONE fused pass.
  cold_unique_.clear();
  cold_slot_.clear();
  for (const std::uint32_t j : cold_) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(keys[j]);
    std::uint32_t slot = kNoIndex;
    for (std::size_t u = 0; u < cold_unique_.size(); ++u) {
      if (std::bit_cast<std::uint64_t>(keys[cold_unique_[u]]) == bits) {
        slot = static_cast<std::uint32_t>(u);
        break;
      }
    }
    if (slot == kNoIndex) {
      slot = static_cast<std::uint32_t>(cold_unique_.size());
      cold_unique_.push_back(j);
    }
    cold_slot_.push_back(slot);
  }
  block_scratch_.resize(cold_unique_.size() * t);
  for (std::size_t u = 0; u < cold_unique_.size(); ++u) {
    const double key = keys[cold_unique_[u]];
    double* lane = block_scratch_.data() + u * t;
    for (std::size_t i = 0; i < t; ++i) lane[i] = -coeffs_[i] * key;
  }
  batch_exp_block(block_scratch_.data(), cold_unique_.size(), t);
  for (std::size_t u = 0; u < cold_unique_.size(); ++u) {
    ++misses_;
    (void)insert_row(keys[cold_unique_[u]], block_scratch_.data() + u * t);
  }
  for (std::size_t c = 0; c < cold_.size(); ++c)
    std::copy_n(block_scratch_.data() + static_cast<std::size_t>(cold_slot_[c]) * t, t,
                out + static_cast<std::size_t>(cold_[c]) * t);
  return cold_unique_.size();
}

}  // namespace basched::util::fastmath
