/// \file args.hpp
/// \brief Minimal command-line option parser for the bundled tools.
///
/// Grammar: `prog <command> [--key value]... [--flag]...`. Values never start
/// with "--"; everything else is rejected so typos fail loudly instead of
/// being ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace basched::util {

/// Parsed command line.
class Args {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on
  /// malformed input (missing value, stray positional after the command).
  Args(int argc, const char* const* argv);

  /// The first positional token ("" if none).
  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters; the non-optional overloads throw std::invalid_argument
  /// when the key is absent (naming the key), the defaulted ones fall back.
  ///
  /// Numeric getters parse the *whole* token strictly: trailing garbage
  /// ("2x"), leading whitespace (" 2"), empty values and out-of-range
  /// magnitudes are all rejected with a message naming the option — a typo
  /// must fail loudly, never silently truncate or wrap. `get_uint` is for
  /// count-like options (--jobs, --samples): it additionally rejects
  /// negative values instead of letting "-1" wrap to 2^64-1.
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const;

  /// Keys that were supplied but never read — for unknown-option errors.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace basched::util
