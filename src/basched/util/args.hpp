/// \file args.hpp
/// \brief Minimal command-line option parser for the bundled tools.
///
/// Grammar: `prog <command> [--key value]... [--flag]...`. Values never start
/// with "--"; everything else is rejected so typos fail loudly instead of
/// being ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace basched::util {

/// Parsed command line.
class Args {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on
  /// malformed input (missing value, stray positional after the command).
  Args(int argc, const char* const* argv);

  /// The first positional token ("" if none).
  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters; the non-optional overloads throw std::invalid_argument
  /// when the key is absent (naming the key), the defaulted ones fall back.
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;

  /// Keys that were supplied but never read — for unknown-option errors.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace basched::util
