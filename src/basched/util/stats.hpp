/// \file stats.hpp
/// \brief Small descriptive-statistics helpers for experiment reporting.
#pragma once

#include <cstddef>
#include <span>

namespace basched::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator; 0 if n < 2)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes summary statistics over a sample. Empty input yields a
/// zero-initialized Summary with count == 0.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Percent difference of `b` relative to `a`: 100 * (b - a) / a.
/// Requires a != 0 (asserted).
[[nodiscard]] double percent_diff(double a, double b);

/// Geometric mean of strictly positive samples; 0 for an empty span.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

}  // namespace basched::util
