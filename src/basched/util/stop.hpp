/// \file stop.hpp
/// \brief Cooperative cancellation and time budgets for anytime search.
///
/// Three small primitives, composable and header-only:
///
///  - `StopSource` / `StopToken` — a shared sticky flag. The owner keeps the
///    source and calls `request_stop()`; workers carry copies of the token
///    and poll `stop_requested()` (one relaxed atomic load). A
///    default-constructed token never stops, so plumbing a token through an
///    options struct costs nothing on the no-cancellation path.
///  - `Deadline` — a point on the monotonic clock. `Deadline::never()` (the
///    default) never expires; `Deadline::after_ms(b)` expires `b`
///    milliseconds from now. Monotonic by construction: wall-clock steps
///    can't fire or starve a budget.
///  - `RunBudget` — the amortized checker the search loops actually call.
///    `expired()` reads the token every call but only touches the clock
///    every `stride` calls, so a tight evaluator loop pays one relaxed load
///    per iteration and a `steady_clock::now()` every ~64. Once it trips it
///    stays tripped (sticky), and `reason()` says why — `cancelled` when the
///    token fired, `deadline` when the clock ran out. An inactive budget
///    (no token armed, `Deadline::never()`) always returns false, keeping
///    no-deadline runs bit-identical to builds that predate this layer.
///
/// `StopReason` is the vocabulary search results use to say how they ended;
/// it subsumes the old `truncated` bool (`node_budget`) and adds the two
/// new anytime outcomes. `DeadlineExceeded` / `OperationCancelled` are for
/// the all-or-nothing paths (sweeps) where a half-finished result is not
/// meaningful and the work item aborts by throwing instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace basched::util {

/// How a search run ended. Ordered by "severity" so merge sites (portfolio
/// reduction) can keep the most significant member reason with a max().
enum class StopReason : std::uint8_t {
  completed = 0,    ///< ran its full configured budget
  node_budget = 1,  ///< tripped max_nodes / max_assignments (old `truncated`)
  deadline = 2,     ///< time budget expired; result is the best incumbent
  cancelled = 3,    ///< a StopToken fired (client vanished, drain, Ctrl-C)
};

[[nodiscard]] constexpr const char* stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::completed: return "completed";
    case StopReason::node_budget: return "node_budget";
    case StopReason::deadline: return "deadline";
    case StopReason::cancelled: return "cancelled";
  }
  return "unknown";
}

/// Keep the most severe of two reasons (portfolio/frontier merge rule).
[[nodiscard]] constexpr StopReason merge_stop_reason(StopReason a, StopReason b) noexcept {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

/// Read side of the stop flag. Copyable, cheap (shared_ptr copy); a
/// default-constructed token is "never stops" and polls without any atomic
/// (null state), so options structs can carry one unconditionally.
class StopToken {
 public:
  StopToken() = default;

  /// One relaxed load; sticky (stop never un-happens), so relaxed ordering
  /// is enough — the flag carries no data dependency, searches re-derive
  /// everything from their own state.
  [[nodiscard]] bool stop_requested() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token is connected to a source (can ever fire).
  [[nodiscard]] bool stop_possible() const noexcept { return flag_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const std::atomic<bool>> flag) noexcept
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side of the stop flag. The owner (watchdog, signal handler thread,
/// test) calls `request_stop()`; every token copied from this source sees it.
class StopSource {
 public:
  StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() noexcept { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] StopToken token() const noexcept { return StopToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A monotonic point in time a run must not pass. Value type, trivially
/// copyable; `never()` is the default and compares as "infinitely far".
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  constexpr Deadline() = default;

  [[nodiscard]] static constexpr Deadline never() noexcept { return Deadline(); }

  /// Expires `budget_ms` milliseconds from now. `budget_ms == 0` is treated
  /// as "no budget" (never), matching the CLI/serve convention where 0
  /// disables the timeout.
  [[nodiscard]] static Deadline after_ms(std::uint64_t budget_ms) {
    if (budget_ms == 0) return never();
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(budget_ms);
    return d;
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  [[nodiscard]] bool expired() const noexcept { return armed_ && Clock::now() >= at_; }

  /// Milliseconds until expiry, clamped at 0; a huge value when not armed.
  [[nodiscard]] std::uint64_t remaining_ms() const noexcept {
    if (!armed_) return UINT64_MAX;
    const auto left = at_ - Clock::now();
    if (left <= Clock::duration::zero()) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
  }

  [[nodiscard]] Clock::time_point time_point() const noexcept { return at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

/// Thrown by all-or-nothing work items (sweep points) when their budget
/// expires mid-item; the executor rethrows the lowest-index exception, so a
/// budgeted sweep aborts deterministically instead of returning a ragged
/// partial table.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

/// Same, for token-driven cancellation (client disconnect, drain).
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

/// The amortized check search loops call once per unit of work. Combines a
/// token (checked every call — one relaxed load) with a deadline (clock read
/// every `stride` calls). Sticky: after the first trip every later call
/// returns true without touching the clock, so "check then finish the
/// current block" patterns stay cheap.
class RunBudget {
 public:
  /// Default: inactive. Never expires, never reads the clock — byte-for-byte
  /// the pre-deadline behavior.
  RunBudget() = default;

  RunBudget(StopToken token, Deadline deadline, std::uint32_t stride = 64) noexcept
      : token_(std::move(token)), deadline_(deadline),
        stride_(stride == 0 ? 1 : stride) {
    active_ = token_.stop_possible() || deadline_.armed();
  }

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// One unit of work elapsed; true once the budget is gone (and forever
  /// after). Never consumes RNG draws or mutates search state, so calling it
  /// cannot perturb a trajectory.
  [[nodiscard]] bool expired() noexcept {
    if (stopped_) return true;
    if (!active_) return false;
    if (token_.stop_requested()) {
      stopped_ = true;
      reason_ = StopReason::cancelled;
      return true;
    }
    if (deadline_.armed() && ++calls_ >= stride_) {
      calls_ = 0;
      if (deadline_.expired()) {
        stopped_ = true;
        reason_ = StopReason::deadline;
        return true;
      }
    }
    return false;
  }

  /// Why `expired()` tripped; `completed` while still running.
  [[nodiscard]] StopReason reason() const noexcept { return reason_; }

  [[nodiscard]] const StopToken& token() const noexcept { return token_; }
  [[nodiscard]] const Deadline& deadline() const noexcept { return deadline_; }

 private:
  StopToken token_;
  Deadline deadline_;
  std::uint32_t stride_ = 64;
  std::uint32_t calls_ = 0;
  bool active_ = false;
  bool stopped_ = false;
  StopReason reason_ = StopReason::completed;
};

}  // namespace basched::util
