#include "basched/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace basched::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::Right);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.empty()) row.emplace_back("");  // never confuse a data row with a separator
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::set_align(std::size_t column, Align align) {
  if (aligns_.size() <= column) aligns_.resize(column + 1, Align::Right);
  aligns_[column] = align;
}

std::size_t Table::row_count() const noexcept {
  std::size_t n = 0;
  for (const auto& r : rows_)
    if (!r.empty()) ++n;
  return n;
}

std::string Table::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  measure(header_);
  for (const auto& r : rows_)
    if (!r.empty()) measure(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t i = 0; i < cols; ++i) {
      s.append(width[i] + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : std::string{};
      const Align a = i < aligns_.size() ? aligns_[i] : Align::Right;
      const std::size_t pad = width[i] - cell.size();
      s += ' ';
      if (a == Align::Right) s.append(pad, ' ');
      s += cell;
      if (a == Align::Left) s.append(pad, ' ');
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = rule();
  out += line(header_);
  out += rule();
  for (const auto& r : rows_) out += r.empty() ? rule() : line(r);
  out += rule();
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace basched::util
