/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of basched (task-graph generators, simulated
/// annealing, random search) consume a `Rng` so that every experiment is
/// exactly reproducible from a 64-bit seed, independent of the standard
/// library implementation. The engine is SplitMix64 (Steele et al.), which is
/// tiny, fast, passes BigCrush when used as a 64-bit stream, and is trivially
/// seedable from any 64-bit value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace basched::util {

/// Deterministic 64-bit PRNG (SplitMix64) with convenience distributions.
///
/// Not cryptographically secure; intended for reproducible experiments.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Two `Rng`s built from the
  /// same seed produce identical streams on every platform.
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal variate (Box–Muller, one value per call).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Picks a uniformly random element index of a container of size n (> 0).
  std::size_t pick_index(std::size_t n) noexcept;

 private:
  std::uint64_t state_;
};

/// Derives a child seed from (seed, stream) so that independent components of
/// one experiment get decorrelated streams without manual bookkeeping.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

}  // namespace basched::util
