/// \file thread_annotations.hpp
/// \brief Portable macros for Clang's Thread Safety Analysis.
///
/// The analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
/// checks locking discipline *statically*: every member annotated
/// `BASCHED_GUARDED_BY(mu)` may only be read or written while `mu` is held,
/// and every function annotated `BASCHED_REQUIRES(mu)` may only be called
/// with `mu` held — on every line of every build, not just the interleavings
/// a TSan run happens to provoke. CI compiles the tree with clang and
/// `-Wthread-safety -Werror=thread-safety`, so a violation is a build break.
///
/// Off-Clang (GCC, MSVC) every macro expands to nothing; the annotations are
/// zero-cost documentation there. libstdc++'s `std::mutex` carries no
/// capability attributes, so annotated code must guard state with the
/// annotated wrappers in util/sync.hpp (`util::Mutex`, `util::MutexLock`,
/// `util::CondVar`) — the analysis cannot follow `std::lock_guard` over a
/// plain `std::mutex`.
///
/// Only the macros the codebase uses are defined; add more from the Clang
/// reference as needed, keeping the `BASCHED_` prefix (a bare `REQUIRES`
/// would collide with the C++20 keyword context, and bare `CAPABILITY`-style
/// names collide with other libraries' annotation headers).
#pragma once

#if defined(__clang__)
#define BASCHED_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define BASCHED_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define BASCHED_CAPABILITY(x) BASCHED_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define BASCHED_SCOPED_CAPABILITY BASCHED_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define BASCHED_GUARDED_BY(x) BASCHED_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define BASCHED_PT_GUARDED_BY(x) BASCHED_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function callable only while holding the capability (it stays held).
#define BASCHED_REQUIRES(...) \
  BASCHED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and returns holding it.
#define BASCHED_ACQUIRE(...) \
  BASCHED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define BASCHED_RELEASE(...) \
  BASCHED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define BASCHED_TRY_ACQUIRE(...) \
  BASCHED_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (it acquires and
/// releases internally); catches self-deadlock at compile time.
#define BASCHED_EXCLUDES(...) BASCHED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define BASCHED_RETURN_CAPABILITY(x) BASCHED_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis. Every use needs a comment explaining why the discipline holds.
#define BASCHED_NO_THREAD_SAFETY_ANALYSIS \
  BASCHED_THREAD_ANNOTATION_(no_thread_safety_analysis)
