#include "basched/util/args.hpp"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace basched::util {

namespace {

/// Strict whole-token numeric parse: the value must be exactly one number —
/// no leading whitespace or '+' (std::from_chars accepts neither), no
/// trailing characters ("2x"), no out-of-range magnitude (strtoll-style
/// clamping silently turned typos into LLONG_MAX). Errors name the option.
template <typename T>
T parse_whole(const std::string& s, const std::string& key, const char* kind) {
  T v{};
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), last, v);
  if (ec == std::errc::result_out_of_range)
    throw std::invalid_argument("option --" + key + ": value '" + s + "' is out of range");
  if (ec != std::errc() || ptr != last)
    throw std::invalid_argument("option --" + key + " expects " + std::string(kind) + ", got '" +
                                s + "'");
  return v;
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  int i = 0;
  if (i < argc && std::string(argv[i]).rfind("--", 0) != 0) command_ = argv[i++];
  while (i < argc) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument '" + tok + "'");
    const std::string key = tok.substr(2);
    if (key.empty()) throw std::invalid_argument("empty option name '--'");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[i + 1];
      i += 2;
    } else {
      values_[key] = "";  // boolean flag
      ++i;
    }
  }
}

bool Args::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  used_[key] = true;
  return true;
}

std::string Args::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) throw std::invalid_argument("missing required option --" + key);
  used_[key] = true;
  return it->second;
}

std::string Args::get_string(const std::string& key, const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

double Args::get_double(const std::string& key) const {
  return parse_whole<double>(get_string(key), key, "a number");
}

double Args::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long Args::get_int(const std::string& key) const {
  return parse_whole<long long>(get_string(key), key, "an integer");
}

long long Args::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::uint64_t Args::get_uint(const std::string& key) const {
  const std::string s = get_string(key);
  // from_chars<unsigned> would reject "-1" too, but with a generic message;
  // a negative count deserves a pointed one (it used to wrap to 2^64-1).
  if (!s.empty() && s[0] == '-')
    throw std::invalid_argument("option --" + key + " must be non-negative, got '" + s + "'");
  return parse_whole<std::uint64_t>(s, key, "a non-negative integer");
}

std::uint64_t Args::get_uint(const std::string& key, std::uint64_t fallback) const {
  return has(key) ? get_uint(key) : fallback;
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    const auto it = used_.find(key);
    if (it == used_.end() || !it->second) out.push_back(key);
  }
  return out;
}

}  // namespace basched::util
