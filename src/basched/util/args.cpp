#include "basched/util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace basched::util {

Args::Args(int argc, const char* const* argv) {
  int i = 0;
  if (i < argc && std::string(argv[i]).rfind("--", 0) != 0) command_ = argv[i++];
  while (i < argc) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument '" + tok + "'");
    const std::string key = tok.substr(2);
    if (key.empty()) throw std::invalid_argument("empty option name '--'");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[i + 1];
      i += 2;
    } else {
      values_[key] = "";  // boolean flag
      ++i;
    }
  }
}

bool Args::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  used_[key] = true;
  return true;
}

std::string Args::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) throw std::invalid_argument("missing required option --" + key);
  used_[key] = true;
  return it->second;
}

std::string Args::get_string(const std::string& key, const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

double Args::get_double(const std::string& key) const {
  const std::string s = get_string(key);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("option --" + key + " expects a number, got '" + s + "'");
  return v;
}

double Args::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long Args::get_int(const std::string& key) const {
  const std::string s = get_string(key);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("option --" + key + " expects an integer, got '" + s + "'");
  return v;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    const auto it = used_.find(key);
    if (it == used_.end() || !it->second) out.push_back(key);
  }
  return out;
}

}  // namespace basched::util
