/// \file csv.hpp
/// \brief Tiny CSV writer for exporting experiment series (e.g. to plot the
/// paper's tables/figures offline).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace basched::util {

/// Streams rows of cells as RFC-4180-ish CSV (quotes fields containing
/// commas, quotes, or newlines; doubles embedded quotes).
class CsvWriter {
 public:
  /// Binds the writer to an output stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row. Cells are escaped as needed.
  void write_row(const std::vector<std::string>& cells);

  /// Escapes a single cell according to the quoting rules above.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream* out_;
};

}  // namespace basched::util
