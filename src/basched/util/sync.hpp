/// \file sync.hpp
/// \brief Annotated synchronization primitives: `Mutex`, `MutexLock`,
/// `CondVar`.
///
/// Thin wrappers over `std::mutex` / `std::unique_lock` /
/// `std::condition_variable` whose only addition is the capability
/// annotations from util/thread_annotations.hpp, so Clang's Thread Safety
/// Analysis can follow the locking. libstdc++ ships no annotations on the
/// std types, which makes a raw `std::lock_guard<std::mutex>` opaque to the
/// analysis — guarded members would warn on every access. The wrappers cost
/// nothing: every method is a forwarding inline, and `MutexLock` *is* a
/// `std::unique_lock` underneath (same fast native mutex, same
/// `std::condition_variable` wait path).
///
/// Usage pattern (see analysis::Executor for the full-size example):
///
///   util::Mutex mutex_;
///   int value_ BASCHED_GUARDED_BY(mutex_);
///   util::CondVar ready_;
///
///   util::MutexLock lock(mutex_);
///   while (value_ == 0) ready_.wait(lock);  // predicate visibly under lock
///
/// `CondVar` deliberately has no predicate-lambda overload: the analysis
/// treats a lambda body as a separate function that does not inherit the
/// caller's held capabilities, so `wait(lock, [&]{ return guarded_; })`
/// would either warn or — worse — silently escape checking. An explicit
/// `while` loop keeps every guarded read on a line where the analysis can
/// see the lock. (`wait` releases and reacquires internally; the capability
/// is held at every *source* read point, which is what the analysis checks.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "basched/util/thread_annotations.hpp"

namespace basched::util {

class CondVar;

/// A `std::mutex` the thread-safety analysis can see. Lock it through
/// `MutexLock`; the raw lock()/unlock() exist for completeness and for
/// `std::scoped_lock`-style generic code.
class BASCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BASCHED_ACQUIRE() { m_.lock(); }
  void unlock() BASCHED_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() BASCHED_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII lock over `Mutex` (the annotated `std::lock_guard`). Holds a
/// `std::unique_lock` internally so `CondVar::wait` gets the native
/// condition-variable fast path.
class BASCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BASCHED_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() BASCHED_RELEASE() {}  // unique_lock unlocks; body only anchors the annotation

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a `MutexLock`. See the file comment for why
/// there is intentionally no predicate overload.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, reacquires before returning. As
  /// always with condition variables: re-check the predicate in a loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait; returns false on timeout, true when notified (possibly
  /// spuriously — re-check the predicate either way). Same no-predicate
  /// policy as `wait`.
  template <class Rep, class Period>
  bool wait_for(MutexLock& lock, std::chrono::duration<Rep, Period> dur) {
    return cv_.wait_for(lock.lock_, dur) == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace basched::util
