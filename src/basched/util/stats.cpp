#include "basched/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "basched/util/assert.hpp"

namespace basched::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  if (xs.size() >= 2) {
    double acc = 0.0;
    for (double x : xs) acc += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(xs.size() - 1));
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return s;
}

double percent_diff(double a, double b) {
  BASCHED_ASSERT(a != 0.0);
  return 100.0 * (b - a) / a;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    BASCHED_ASSERT(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace basched::util
