#include "basched/serve/service.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "basched/analysis/executor.hpp"
#include "basched/analysis/suite.hpp"
#include "basched/analysis/sweeps.hpp"
#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/parallel.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/lifetime.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_io.hpp"
#include "basched/util/fastmath.hpp"

namespace basched::serve {

namespace {

// ---- param extraction -------------------------------------------------
// Every failure names the offending parameter; all of these throw
// ProtocolError("bad_request", ...) so handle_line maps them uniformly.

const json::Value* find_param(const json::Object& params, const std::string& key) {
  const auto it = params.find(key);
  return it == params.end() ? nullptr : &it->second;
}

void check_keys(const json::Object& params, std::initializer_list<const char*> allowed,
                const char* verb) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known)
      throw ProtocolError("bad_request",
                          std::string("unknown param '") + key + "' for verb '" + verb + "'");
  }
}

double as_number(const json::Value& v, const std::string& key) {
  if (!v.is_number())
    throw ProtocolError("bad_request", "param '" + key + "' must be a number");
  return v.as_number();
}

double require_number(const json::Object& params, const std::string& key) {
  const json::Value* v = find_param(params, key);
  if (v == nullptr) throw ProtocolError("bad_request", "missing required param '" + key + "'");
  return as_number(*v, key);
}

double number_or(const json::Object& params, const std::string& key, double fallback) {
  const json::Value* v = find_param(params, key);
  return v == nullptr ? fallback : as_number(*v, key);
}

std::uint64_t uint_or(const json::Object& params, const std::string& key,
                      std::uint64_t fallback) {
  const json::Value* v = find_param(params, key);
  if (v == nullptr) return fallback;
  const double d = as_number(*v, key);
  if (!(d >= 0) || std::nearbyint(d) != d)
    throw ProtocolError("bad_request", "param '" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::string require_string(const json::Object& params, const std::string& key) {
  const json::Value* v = find_param(params, key);
  if (v == nullptr) throw ProtocolError("bad_request", "missing required param '" + key + "'");
  if (!v->is_string())
    throw ProtocolError("bad_request", "param '" + key + "' must be a string");
  return v->as_string();
}

std::string string_or(const json::Object& params, const std::string& key,
                      const std::string& fallback) {
  const json::Value* v = find_param(params, key);
  if (v == nullptr) return fallback;
  if (!v->is_string())
    throw ProtocolError("bad_request", "param '" + key + "' must be a string");
  return v->as_string();
}

}  // namespace

Service::Service(std::size_t catalog_capacity) : registry_(catalog_capacity) {}

ServiceStats Service::stats() const {
  const util::MutexLock lock(stats_mutex_);
  return stats_;
}

// Mirrors cmd_schedule in tools/baschedule.cpp at --jobs 1, with the one
// serve-side difference that every evaluator adopts the catalog's warm
// cache. The cache holds exact rows (pure functions of coeffs and Δt), so
// the payload stays byte-identical to the CLI; only who computed the exps
// changes.
json::Object Service::run_schedule(const json::Object& params, const RequestContext& ctx) {
  check_keys(params, {"graph", "deadline", "beta", "algorithm", "seed", "restarts", "timeout_ms"},
             "schedule");
  const std::string graph_text = require_string(params, "graph");
  const double deadline = require_number(params, "deadline");
  const double beta = number_or(params, "beta", 0.273);
  const std::string algorithm = string_or(params, "algorithm", "ours");
  const auto seed = uint_or(params, "seed", 1);
  const auto restarts = static_cast<std::size_t>(uint_or(params, "restarts", 1));
  if (restarts < 1) throw ProtocolError("bad_request", "param 'restarts' must be >= 1");
  // The time budget starts here — graph parsing and catalog warm-up count
  // against it conceptually, but only the search loops poll it; an explicit
  // timeout_ms of 0 opts this request out of the server default.
  const std::uint64_t timeout_ms = uint_or(params, "timeout_ms", ctx.default_timeout_ms);
  const util::Deadline time_budget = util::Deadline::after_ms(timeout_ms);

  const std::uint64_t exp_before = util::fastmath::exp_evaluations();
  const auto entry = registry_.acquire(graph_text, beta);
  const graph::TaskGraph& g = entry->graph();
  const battery::RakhmatovVrudhulaModel& model = entry->model();
  const util::fastmath::DecayRowCache* warm = &entry->warm_cache();

  core::Schedule schedule;
  double sigma = 0.0;
  bool feasible = false;
  bool truncated = false;
  util::StopReason stop_reason = util::StopReason::completed;
  std::string error;
  if (algorithm == "ours") {
    core::IterativeOptions iopts;
    iopts.window.warm_cache = warm;
    const auto r = core::schedule_battery_aware(g, deadline, model, iopts);
    feasible = r.feasible;
    schedule = r.schedule;
    sigma = r.sigma;
    error = r.error;
  } else {
    baselines::ScheduleResult r;
    if (algorithm == "rvdp") {
      r = baselines::schedule_rv_dp(g, deadline, model);
    } else if (algorithm == "chowdhury") {
      r = baselines::schedule_chowdhury(g, deadline, model);
    } else if (algorithm == "annealing") {
      baselines::AnnealingOptions opts;
      opts.seed = seed;
      opts.warm_cache = warm;
      opts.stop = ctx.stop;
      opts.time_budget = time_budget;
      if (restarts > 1) {
        analysis::Executor executor(1);
        baselines::AnnealingPortfolioOptions popts;
        popts.annealing = opts;
        popts.restarts = restarts;
        r = baselines::schedule_annealing_portfolio(g, deadline, model, executor, popts);
      } else {
        r = baselines::schedule_annealing(g, deadline, model, opts);
      }
    } else if (algorithm == "random") {
      baselines::RandomSearchOptions opts;
      opts.seed = seed;
      opts.warm_cache = warm;
      opts.stop = ctx.stop;
      opts.time_budget = time_budget;
      if (restarts > 1) {
        analysis::Executor executor(1);
        baselines::RandomPortfolioOptions popts;
        popts.search = opts;
        popts.restarts = restarts;
        r = baselines::schedule_random_search_portfolio(g, deadline, model, executor, popts);
      } else {
        r = baselines::schedule_random_search(g, deadline, model, opts);
      }
    } else if (algorithm == "bnb") {
      baselines::BnbOptions opts;
      opts.warm_cache = warm;
      opts.stop = ctx.stop;
      opts.time_budget = time_budget;
      r = baselines::schedule_branch_and_bound(g, deadline, model, opts);
      truncated = r.truncated();
    } else {
      throw ProtocolError("bad_request", "unknown algorithm '" + algorithm + "'");
    }
    feasible = r.feasible;
    schedule = r.schedule;
    sigma = r.sigma;
    stop_reason = r.stop_reason;
    error = r.error;
  }

  json::Object result;
  result["algorithm"] = algorithm;
  result["feasible"] = feasible;
  if (feasible) {
    result["sigma"] = sigma;
    result["duration"] = schedule.duration(g);
    result["schedule"] = core::serialize_schedule(g, schedule);
  } else {
    result["error"] = error;
  }
  if (truncated) result["truncated"] = true;
  // Only deadline/cancelled stops are surfaced (and counted): a node-budget
  // stop predates this field and already shows up as `truncated`, so keeping
  // it silent preserves byte-identical payloads for pre-deadline requests.
  if (stop_reason == util::StopReason::deadline ||
      stop_reason == util::StopReason::cancelled) {
    result["stop_reason"] = util::stop_reason_name(stop_reason);
    const util::MutexLock lock(stats_mutex_);
    if (stop_reason == util::StopReason::deadline)
      ++stats_.deadline_stops;
    else
      ++stats_.cancelled_stops;
  }
  result["exp_evals"] = util::fastmath::exp_evaluations() - exp_before;
  return result;
}

json::Object Service::run_sweep(const json::Object& params, const RequestContext& ctx) {
  check_keys(params, {"graph", "from", "to", "steps", "beta", "timeout_ms"}, "sweep");
  const std::string graph_text = require_string(params, "graph");
  const double from = require_number(params, "from");
  const double to = require_number(params, "to");
  const auto steps = static_cast<int>(uint_or(params, "steps", 16));
  const double beta = number_or(params, "beta", 0.273);
  const std::uint64_t timeout_ms = uint_or(params, "timeout_ms", ctx.default_timeout_ms);

  const std::uint64_t exp_before = util::fastmath::exp_evaluations();
  const auto entry = registry_.acquire(graph_text, beta);
  analysis::Executor executor(1);
  // Sweeps are all-or-nothing: a tripped budget throws (DeadlineExceeded /
  // OperationCancelled) and handle_line maps it to the matching error code.
  const auto points =
      analysis::deadline_sweep(entry->graph(), from, to, steps, beta, executor, ctx.stop,
                               util::Deadline::after_ms(timeout_ms));

  json::Object result;
  result["points"] = points.size();
  result["csv"] = analysis::deadline_sweep_csv(points);
  result["exp_evals"] = util::fastmath::exp_evaluations() - exp_before;
  return result;
}

json::Object Service::run_suite(const json::Object& params) {
  check_keys(params, {"seed", "per_family", "tightness", "beta"}, "suite");
  const auto seed = uint_or(params, "seed", 1);
  const auto per_family = static_cast<int>(uint_or(params, "per_family", 3));
  const double tightness = number_or(params, "tightness", 0.6);
  const double beta = number_or(params, "beta", 0.273);

  const std::uint64_t exp_before = util::fastmath::exp_evaluations();
  analysis::Executor executor(1);
  const auto instances = analysis::standard_suite(seed, per_family, tightness);
  const auto summary = analysis::run_suite(instances, beta, executor);

  json::Object result;
  result["instances"] = instances.size();
  result["text"] = analysis::format_suite(summary);
  result["exp_evals"] = util::fastmath::exp_evaluations() - exp_before;
  return result;
}

json::Object Service::run_evaluate(const json::Object& params) {
  check_keys(params, {"graph", "schedule", "beta", "alpha"}, "evaluate");
  const std::string graph_text = require_string(params, "graph");
  const std::string schedule_text = require_string(params, "schedule");
  const double beta = number_or(params, "beta", 0.273);

  const std::uint64_t exp_before = util::fastmath::exp_evaluations();
  const auto entry = registry_.acquire(graph_text, beta);
  const auto schedule = core::parse_schedule(entry->graph(), schedule_text);
  const auto profile = schedule.to_profile(entry->graph());

  json::Object result;
  result["tasks"] = schedule.sequence.size();
  result["duration"] = profile.end_time();
  result["energy"] = profile.total_charge();
  result["sigma"] = entry->model().charge_lost(profile, profile.end_time());
  if (const json::Value* alpha_param = find_param(params, "alpha")) {
    const double alpha = as_number(*alpha_param, "alpha");
    const auto death = battery::find_lifetime(entry->model(), profile, alpha);
    result["death"] = death ? json::Value(*death) : json::Value(nullptr);
  }
  result["exp_evals"] = util::fastmath::exp_evaluations() - exp_before;
  return result;
}

json::Object Service::run_stats() {
  const ServiceStats s = stats();
  const CatalogRegistry::Stats c = registry_.stats();
  json::Object by_verb;
  by_verb["schedule"] = s.schedule;
  by_verb["sweep"] = s.sweep;
  by_verb["suite"] = s.suite;
  by_verb["evaluate"] = s.evaluate;
  by_verb["ping"] = s.ping;
  json::Object catalog;
  catalog["hits"] = c.hits;
  catalog["misses"] = c.misses;
  catalog["size"] = c.size;
  json::Object result;
  result["requests"] = s.requests;
  result["errors"] = s.errors;
  result["by_verb"] = json::Value(std::move(by_verb));
  result["catalog"] = json::Value(std::move(catalog));
  // Emitted only once a stop has actually happened, so stats payloads from
  // deployments that never set a timeout stay byte-identical to pre-deadline
  // builds.
  if (s.deadline_stops > 0) result["deadline_stops"] = s.deadline_stops;
  if (s.cancelled_stops > 0) result["cancelled_stops"] = s.cancelled_stops;
  result["exp_evals_total"] = util::fastmath::exp_evaluations();
  return result;
}

Service::Outcome Service::handle_line(const std::string& line) {
  return handle_line(line, RequestContext{});
}

Service::Outcome Service::handle_line(const std::string& line, const RequestContext& ctx) {
  json::Value id;  // null until the frame parses far enough to know better
  try {
    const Request req = parse_request(line);
    id = req.id;
    {
      const util::MutexLock lock(stats_mutex_);
      ++stats_.requests;
    }

    json::Object result;
    bool shutdown = false;
    const auto bump = [this](std::uint64_t ServiceStats::* counter) {
      const util::MutexLock lock(stats_mutex_);
      ++(stats_.*counter);
    };
    if (req.verb == "ping") {
      result["pong"] = true;
      bump(&ServiceStats::ping);
    } else if (req.verb == "schedule") {
      result = run_schedule(req.params, ctx);
      bump(&ServiceStats::schedule);
    } else if (req.verb == "sweep") {
      result = run_sweep(req.params, ctx);
      bump(&ServiceStats::sweep);
    } else if (req.verb == "suite") {
      result = run_suite(req.params);
      bump(&ServiceStats::suite);
    } else if (req.verb == "evaluate") {
      result = run_evaluate(req.params);
      bump(&ServiceStats::evaluate);
    } else if (req.verb == "stats") {
      result = run_stats();
    } else if (req.verb == "shutdown") {
      result["draining"] = true;
      shutdown = true;
    } else {
      throw ProtocolError("unknown_verb", "unknown verb '" + req.verb + "'");
    }
    return Outcome{ok_line(id, std::move(result)), shutdown};
  } catch (const ProtocolError& e) {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    return Outcome{error_line(id, e.code(), e.what()), false};
  } catch (const std::invalid_argument& e) {
    // graph::parse, parse_schedule, model validation — the request's fault.
    const util::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    return Outcome{error_line(id, "bad_request", e.what()), false};
  } catch (const util::DeadlineExceeded& e) {
    // All-or-nothing verbs (sweep) abort when the time budget expires.
    const util::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    ++stats_.deadline_stops;
    return Outcome{error_line(id, "deadline", e.what()), false};
  } catch (const util::OperationCancelled& e) {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    ++stats_.cancelled_stops;
    return Outcome{error_line(id, "cancelled", e.what()), false};
  } catch (const std::exception& e) {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.errors;
    return Outcome{error_line(id, "internal", e.what()), false};
  }
}

}  // namespace basched::serve
