#include "basched/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <future>
#include <stdexcept>
#include <utility>

#include "basched/serve/protocol.hpp"
#include "basched/serve/socket_io.hpp"

namespace basched::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_UNIX)");
  set_cloexec(fd);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("bind('" + path + "')");
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("listen('" + path + "')");
  }
  return fd;
}

int listen_tcp(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_INET)");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("getsockname");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service),
      opts_(std::move(options)),
      // Request execution must run off the connection threads (submit throws
      // with no workers), so clamp to >= 2.
      executor_(std::max(2u, opts_.jobs == 0 ? analysis::Executor::default_jobs() : opts_.jobs)) {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0)
    throw std::runtime_error("serve: need a unix socket path or a TCP port");
  if (opts_.max_line < 2) throw std::runtime_error("serve: max_line too small");

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) fail_errno("pipe");
  pipe_rd_ = pipe_fds[0];
  pipe_wr_ = pipe_fds[1];
  set_cloexec(pipe_rd_);
  set_cloexec(pipe_wr_);

  try {
    if (!opts_.unix_path.empty()) unix_fd_ = listen_unix(opts_.unix_path);
    if (opts_.tcp_port >= 0) tcp_fd_ = listen_tcp(opts_.tcp_port, port_);
  } catch (...) {
    if (unix_fd_ >= 0) ::close(unix_fd_);
    ::close(pipe_rd_);
    ::close(pipe_wr_);
    throw;
  }
}

Server::~Server() {
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (pipe_rd_ >= 0) ::close(pipe_rd_);
  if (pipe_wr_ >= 0) ::close(pipe_wr_);
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

void Server::request_drain() noexcept {
  const char byte = 'q';
  // A full pipe means a drain is already pending — nothing to do.
  [[maybe_unused]] const auto rc = ::write(pipe_wr_, &byte, 1);
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.disconnect_cancels = disconnect_cancels_.load(std::memory_order_relaxed);
  s.drain_cancels = drain_cancels_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  return s;
}

void Server::watch_request(int fd, const util::StopSource& source) {
  const util::MutexLock lock(watch_mutex_);
  watches_.push_back(Watch{fd, source, false});
  watch_cv_.notify_all();  // wake the watchdog out of its idle wait
}

void Server::unwatch_request(int fd) {
  const util::MutexLock lock(watch_mutex_);
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [fd](const Watch& w) { return w.fd == fd; }),
                 watches_.end());
}

// Polls in-flight requests for client disconnect and enforces the drain
// timeout. All probing is non-blocking (poll timeout 0 + MSG_PEEK), so
// holding watch_mutex_ across a scan is fine; the 15ms cadence bounds how
// stale a disconnect can go unnoticed while costing nothing measurable.
void Server::watchdog() {
  using namespace std::chrono_literals;
  util::MutexLock lock(watch_mutex_);
  for (;;) {
    if (watch_exit_) return;
    if (watches_.empty() && !drain_deadline_.armed()) {
      watch_cv_.wait(lock);  // idle: nothing to poll, sleep until woken
      continue;
    }
    watch_cv_.wait_for(lock, 15ms);
    if (watch_exit_) return;

    if (drain_deadline_.armed() && drain_deadline_.expired()) {
      for (Watch& w : watches_) {
        if (w.cancelled) continue;
        w.source.request_stop();
        w.cancelled = true;
        drain_cancels_.fetch_add(1, std::memory_order_relaxed);
      }
      drain_deadline_ = util::Deadline::never();  // one-shot
    }
    // Disconnect probing stops once a drain begins: run() SHUT_RDs every
    // connection at drain start, which reads as EOF here and would cancel
    // still-connected clients' requests immediately — stealing the grace
    // period the drain deadline exists to provide.
    if (draining_.load(std::memory_order_relaxed)) continue;
    for (Watch& w : watches_) {
      if (w.cancelled) continue;
      if (sock::peer_disconnected(w.fd)) {
        w.source.request_stop();
        w.cancelled = true;
        disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

bool Server::answer(int fd, const std::string& line) {
  if (draining_.load(std::memory_order_relaxed)) {
    return sock::send_all(fd, error_line(json::Value(), "draining",
                                         "server is shutting down") + "\n");
  }

  // Admission control: each connection has at most one outstanding request,
  // so this counter bounds the executor queue exactly.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >= opts_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    json::Object detail;
    detail["retry_after_ms"] = opts_.retry_after_ms;
    return sock::send_all(fd, error_line(json::Value(), "overloaded",
                                         "too many in-flight requests; retry later",
                                         std::move(detail)) + "\n");
  }

  // Watchdog supervision for the duration of the request: a disconnect or a
  // drain-timeout fires the token, and the search inside handle_line returns
  // early with its incumbent instead of running on for a dead client.
  util::StopSource source;
  watch_request(fd, source);
  const RequestContext ctx{source.token(), opts_.default_timeout_ms};

  std::promise<Service::Outcome> promise;
  auto future = promise.get_future();
  executor_.submit([this, &promise, &line, &ctx] {
    try {
      promise.set_value(service_.handle_line(line, ctx));
    } catch (...) {
      promise.set_exception(std::current_exception());  // defensive; handle_line never throws
    }
  });
  Service::Outcome outcome;
  try {
    outcome = future.get();
  } catch (const std::exception& e) {
    outcome.line = error_line(json::Value(), "internal", e.what());
  }
  unwatch_request(fd);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  if (!sock::send_all(fd, outcome.line + "\n")) return false;
  if (outcome.shutdown) {
    request_drain();
    return false;
  }
  return true;
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const auto n = sock::recv_some(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // read error (or SHUT_RD during drain): close
    }
    if (n == 0) break;  // clean EOF; a partial trailing line is dropped
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank keep-alive lines are fine
      if (!answer(fd, line)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);

    if (open && buffer.size() > opts_.max_line) {
      // The line can't be framed any more; answer and drop the connection.
      [[maybe_unused]] const bool sent =
          sock::send_all(fd, error_line(json::Value(), "line_too_long",
                                        "request line exceeds " +
                                            std::to_string(opts_.max_line) + " bytes") +
                                 "\n");
      break;
    }
  }

  {
    const util::MutexLock lock(conn_mutex_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd), conn_fds_.end());
  }
  ::close(fd);
}

void Server::run() {
  watchdog_thread_ = std::thread([this] { watchdog(); });
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = pollfd{pipe_rd_, POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = pollfd{tcp_fd_, POLLIN, 0};

    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // drain requested

    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;  // transient (ECONNABORTED etc.); keep serving
      set_cloexec(client);
      const util::MutexLock lock(conn_mutex_);
      conn_fds_.push_back(client);
      conn_threads_.emplace_back([this, client] { serve_connection(client); });
    }
  }

  // Graceful drain: stop accepting, wake blocked reads, answer what's
  // already parsed, then wait for everything to finish.
  draining_.store(true, std::memory_order_relaxed);
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  {
    const util::MutexLock lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  // Bound the drain: once drain_timeout_ms elapses the watchdog fires every
  // remaining request's token, so the joins below can't hang behind an
  // unbounded search (0 = wait forever, the legacy behavior).
  {
    const util::MutexLock lock(watch_mutex_);
    drain_deadline_ = util::Deadline::after_ms(opts_.drain_timeout_ms);
    watch_cv_.notify_all();
  }
  for (auto& t : conn_threads_) t.join();
  conn_threads_.clear();
  executor_.wait_idle();
  {
    const util::MutexLock lock(watch_mutex_);
    watch_exit_ = true;
    watch_cv_.notify_all();
  }
  watchdog_thread_.join();
}

}  // namespace basched::serve
