/// \file service.hpp
/// \brief Verb execution for `baschedule serve`, independent of any socket.
///
/// The Service owns the cross-request warm state (CatalogRegistry) and maps
/// request frames onto the library's analysis entry points:
///
///   verb       params                                     result
///   --------   ----------------------------------------   ------------------
///   ping       —                                          {"pong":true}
///   schedule   graph*, deadline*, beta, algorithm,        feasible/σ/duration,
///              seed, restarts, timeout_ms                 serialized schedule
///   sweep      graph*, from*, to*, steps, beta,           deadline-sweep CSV
///              timeout_ms
///   suite      seed, per_family, tightness, beta          suite summary text
///   evaluate   graph*, schedule*, beta, alpha             σ/duration/energy
///   stats      —                                          counters + catalog
///   shutdown   —                                          {"draining":true}
///
/// (* = required.) Per-request analysis always runs on an inline
/// Executor(1), so every payload is byte-identical to the equivalent CLI
/// invocation — serving changes *where* the work runs, never its result.
/// Each response carries `exp_evals`, the global exp-counter delta across
/// the request: with sequential requests it shows warm-catalog sharing
/// directly (the second request against a catalog skips the warm-up cost);
/// with concurrent requests the deltas overlap and are indicative only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "basched/serve/catalog.hpp"
#include "basched/serve/protocol.hpp"
#include "basched/util/stop.hpp"
#include "basched/util/sync.hpp"
#include "basched/util/thread_annotations.hpp"

namespace basched::serve {

/// Request counters, by verb plus totals.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t schedule = 0;
  std::uint64_t sweep = 0;
  std::uint64_t suite = 0;
  std::uint64_t evaluate = 0;
  std::uint64_t ping = 0;
  /// Requests whose time budget expired: anytime verbs that returned a
  /// best-so-far result plus all-or-nothing verbs that answered `deadline`.
  std::uint64_t deadline_stops = 0;
  /// Requests cancelled via the request context's StopToken (client
  /// disconnect, forced drain).
  std::uint64_t cancelled_stops = 0;
};

/// Per-request execution context, supplied by the transport (serve/server).
/// Default-constructed = no cancellation, no server-side default timeout —
/// exactly the pre-deadline behavior.
struct RequestContext {
  /// Fired by the server's watchdog when the client disconnects or a drain
  /// force-cancels stragglers; search verbs return best-so-far `cancelled`,
  /// sweeps abort with the `cancelled` error code.
  util::StopToken stop;
  /// Server default for the `timeout_ms` request param (0 = none). An
  /// explicit `timeout_ms` in the request wins, including an explicit 0
  /// (= this request runs unbounded).
  std::uint64_t default_timeout_ms = 0;
};

/// Thread-safe verb executor; one instance per daemon.
class Service {
 public:
  explicit Service(std::size_t catalog_capacity = 16);

  struct Outcome {
    std::string line;       ///< response frame, no trailing newline
    bool shutdown = false;  ///< the client asked the server to drain
  };

  /// Parses and executes one request line. Never throws: every failure
  /// becomes an error frame (bad_json/bad_request/unknown_verb/deadline/
  /// cancelled/internal). The context supplies the cancellation token and
  /// the server's default timeout; the one-argument form is the inert
  /// context (direct library use, tests, bench warm path).
  [[nodiscard]] Outcome handle_line(const std::string& line);
  [[nodiscard]] Outcome handle_line(const std::string& line, const RequestContext& ctx);

  [[nodiscard]] CatalogRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] ServiceStats stats() const;

 private:
  json::Object run_schedule(const json::Object& params, const RequestContext& ctx);
  json::Object run_sweep(const json::Object& params, const RequestContext& ctx);
  json::Object run_suite(const json::Object& params);
  json::Object run_evaluate(const json::Object& params);
  json::Object run_stats();

  CatalogRegistry registry_;
  mutable util::Mutex stats_mutex_;
  ServiceStats stats_ BASCHED_GUARDED_BY(stats_mutex_);
};

}  // namespace basched::serve
