#include "basched/serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <system_error>
#include <utility>

namespace basched::serve::json {

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  throw Error("expected a boolean");
}

double Value::as_number() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  throw Error("expected a number");
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  throw Error("expected a string");
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) return *a;
  throw Error("expected an array");
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) return *o;
  throw Error("expected an object");
}

namespace {

/// Recursive-descent parser over a bounded view. Depth is capped so a
/// hostile frame of 1 MB of '[' cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value run() {
    Value v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Value(string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return Value(number());
    }
  }

  Value object(int depth) {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a string key");
      std::string key = string();
      skip_ws();
      expect(':');
      out[std::move(key)] = value(depth + 1);
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or '}'");
    }
  }

  Value array(int depth) {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      out.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or ']'");
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      return pos_ > d0;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) fail("invalid number");
    }
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (ec == std::errc::result_out_of_range) fail("number out of double range");
    if (ec != std::errc() || ptr != s_.data() + pos_) fail("invalid number");
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& value, std::string& out);

void dump_number(double d, std::string& out) {
  // Integral doubles print without a fraction; everything else in shortest
  // round-trip form — both so responses are byte-stable across runs.
  if (d == 0.0) {  // covers -0.0 too: "0" is canonical
    out.push_back('0');
    return;
  }
  if (std::nearbyint(d) == d && std::fabs(d) < 9.007199254740992e15) {
    char buf[24];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<std::int64_t>(d));
    (void)ec;
    out.append(buf, ptr);
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;
  out.append(buf, ptr);
}

void dump_string(std::string_view s, std::string& out) {
  out.push_back('"');
  out += escape(s);
  out.push_back('"');
}

void dump_to(const Value& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Value& v : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_to(v, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(k, out);
      out.push_back(':');
      dump_to(v, out);
    }
    out.push_back('}');
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& value) {
  std::string out;
  dump_to(value, out);
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace basched::serve::json
