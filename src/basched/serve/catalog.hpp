/// \file catalog.hpp
/// \brief Per-catalog warm state shared across serve requests.
///
/// A "catalog" is what a request identifies by (graph text, β): the parsed
/// task graph, the RV battery model, and — the expensive part — the decay
/// rows e^{-β²m²·Δt} for every distinct duration in the graph's design-point
/// catalog. Building those rows is the per-request exp() cost a cold
/// evaluator pays in its constructor; the registry pays it once per catalog
/// and hands every subsequent request a *copy* of the warm master cache
/// (rows are pure functions of (coeffs, Δt), so a copy is bit-identical and
/// the copy itself computes zero exps — see DecayRowCache::coeffs()).
///
/// Split of responsibilities:
///  - CatalogEntry: immutable shared state (graph, model, master cache) plus
///    a small evaluator pool for pricing-only verbs. Entries are handed out
///    as shared_ptr-to-const so eviction never invalidates an in-flight
///    request.
///  - CatalogRegistry: the keyed LRU map, with hit/miss counters. Per
///    *request* state (evaluators for search verbs, executors, RNGs) is
///    never stored here — requests against the same catalog share caches,
///    nothing else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/task_graph.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/sync.hpp"
#include "basched/util/thread_annotations.hpp"

namespace basched::serve {

/// Immutable warm state for one (graph, β) catalog, plus an evaluator pool.
class CatalogEntry {
 public:
  /// Parses the graph and warms the master cache (throws what graph::parse
  /// or the model constructor throw on invalid input).
  CatalogEntry(const std::string& graph_text, double beta);

  [[nodiscard]] const graph::TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const battery::RakhmatovVrudhulaModel& model() const noexcept { return model_; }
  /// The pre-warmed master cache; pass as the evaluators' `warm` argument.
  [[nodiscard]] const util::fastmath::DecayRowCache& warm_cache() const noexcept { return warm_; }

  /// Borrows a ready evaluator (pooled, or freshly adopted from the master
  /// cache when the pool is empty) for pricing-only work; return it with
  /// give_back() so the next request can reuse it. The lease holds a
  /// shared_ptr-style contract: the entry must outlive the lease.
  [[nodiscard]] std::unique_ptr<core::ScheduleEvaluator> borrow() const;
  void give_back(std::unique_ptr<core::ScheduleEvaluator> evaluator) const;

 private:
  graph::TaskGraph graph_;
  battery::RakhmatovVrudhulaModel model_;
  util::fastmath::DecayRowCache warm_;

  static constexpr std::size_t kMaxPooled = 4;
  mutable util::Mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<core::ScheduleEvaluator>> pool_
      BASCHED_GUARDED_BY(pool_mutex_);
};

/// Thread-safe LRU registry of CatalogEntry keyed by (graph text, β).
class CatalogRegistry {
 public:
  /// \param capacity most-recently-used entries kept warm; beyond it the
  ///        least recently used entry is evicted (in-flight holders keep
  ///        their shared_ptr alive; only the registry's reference drops).
  explicit CatalogRegistry(std::size_t capacity = 16);

  /// Returns the entry for (graph_text, beta), building it on first use.
  /// Propagates parse/model exceptions without caching the failure.
  [[nodiscard]] std::shared_ptr<const CatalogEntry> acquire(const std::string& graph_text,
                                                            double beta);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t size = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const CatalogEntry> entry;
    std::uint64_t last_used = 0;
  };

  mutable util::Mutex mutex_;
  const std::size_t capacity_;  ///< immutable after construction
  std::uint64_t tick_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::map<std::pair<std::string, double>, Slot> entries_ BASCHED_GUARDED_BY(mutex_);
};

}  // namespace basched::serve
