/// \file server.hpp
/// \brief The `baschedule serve` daemon: accept loop, framing, admission
/// control, graceful drain.
///
/// Architecture (one Server per process):
///  - `run()` polls the listening sockets (unix and/or TCP) plus a self-pipe;
///    each accepted client gets a connection thread that reads newline-framed
///    requests and writes one response line per request.
///  - Request *execution* happens on the Server's analysis::Executor via
///    `submit` — connection threads only do socket I/O and block on the
///    response future, so a slow request never stalls the accept loop.
///  - Admission control is a bounded in-flight counter: since every
///    connection has at most one outstanding request, `max_inflight` bounds
///    the executor queue exactly; a request beyond the bound is refused with
///    an `overloaded` error instead of queueing without limit.
///  - Drain: writing one byte to `drain_notify_fd()` (async-signal-safe, so
///    a SIGTERM handler can do it) wakes the poll loop, which stops
///    accepting, closes the listeners, half-closes (SHUT_RD) every open
///    connection so blocked reads wake, answers already-parsed requests,
///    joins the connection threads, and waits for the executor to go idle.
///    Requests that arrive after the drain began get a `draining` error.
///  - Watchdog: a dedicated thread polls every in-flight request's socket
///    for client disconnect (sock::peer_disconnected) and fires that
///    request's StopToken, so an abandoned search stops burning CPU instead
///    of running to completion for nobody. The same thread bounds the drain:
///    once `drain_timeout_ms` elapses after a drain begins, every request
///    still in flight is force-cancelled through its token, which is what
///    keeps a SIGTERM from hanging behind an unbounded search.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "basched/analysis/executor.hpp"
#include "basched/serve/service.hpp"
#include "basched/util/stop.hpp"
#include "basched/util/sync.hpp"
#include "basched/util/thread_annotations.hpp"

namespace basched::serve {

struct ServerOptions {
  /// Unix-domain socket path to bind ("" = no unix listener). An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// TCP port to bind on 127.0.0.1 (-1 = no TCP listener; 0 = ephemeral,
  /// read the choice back with tcp_port()).
  int tcp_port = -1;
  /// Longest accepted request line in bytes; longer requests are answered
  /// with `line_too_long` and the connection is closed (the remainder of the
  /// oversized line cannot be re-framed reliably).
  std::size_t max_line = 1 << 20;
  /// Admission bound on concurrently executing requests.
  std::size_t max_inflight = 8;
  /// Executor worker threads (0 = default_jobs(); clamped to >= 2 because
  /// request execution must run off the connection threads).
  unsigned jobs = 0;
  /// Default `timeout_ms` applied to requests that don't set one (0 = no
  /// default; an explicit timeout_ms in the request always wins).
  std::uint64_t default_timeout_ms = 0;
  /// Bound on the graceful drain: requests still in flight this long after a
  /// drain begins are force-cancelled via their StopToken (0 = wait forever,
  /// the pre-watchdog behavior).
  std::uint64_t drain_timeout_ms = 5000;
  /// Backoff hint attached to `overloaded` rejections (retry_after_ms field
  /// in the error object; see serve/retry.hpp).
  std::uint64_t retry_after_ms = 25;
};

/// Counters for the hardening paths; snapshot via Server::stats().
struct ServerStats {
  /// In-flight requests cancelled because the client disconnected.
  std::uint64_t disconnect_cancels = 0;
  /// In-flight requests force-cancelled by the drain timeout.
  std::uint64_t drain_cancels = 0;
  /// Requests refused by admission control.
  std::uint64_t overloaded = 0;
};

/// Binds, listens, serves. Construction binds the listeners (throws
/// std::runtime_error on failure); `run()` blocks until drained.
class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (useful with tcp_port == 0), or -1 when TCP is off.
  [[nodiscard]] int tcp_port() const noexcept { return port_; }

  /// Write one byte to this fd to begin a graceful drain; safe from a signal
  /// handler. request_drain() is the same thing for ordinary callers.
  [[nodiscard]] int drain_notify_fd() const noexcept { return pipe_wr_; }
  void request_drain() noexcept;

  /// Accept/serve loop; returns after a graceful drain (every in-flight
  /// request answered, all connection threads joined).
  void run();

  /// Hardening counters (disconnect/drain cancellations, overload refusals).
  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  void serve_connection(int fd);
  /// Answers one parsed request line; returns false when the connection
  /// should close (send failure or shutdown verb).
  bool answer(int fd, const std::string& line);

  /// One in-flight request under watchdog supervision, keyed by its
  /// connection fd (each connection has at most one outstanding request).
  struct Watch {
    int fd = -1;
    util::StopSource source;
    bool cancelled = false;  ///< token already fired; don't count twice
  };
  void watch_request(int fd, const util::StopSource& source);
  void unwatch_request(int fd);
  void watchdog();

  Service& service_;
  ServerOptions opts_;
  analysis::Executor executor_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int pipe_rd_ = -1;
  int pipe_wr_ = -1;
  int port_ = -1;

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};

  util::Mutex conn_mutex_;
  /// Open connection fds (for SHUT_RD on drain). An fd is closed only after
  /// its serve_connection thread removed it from this list, so the drain's
  /// shutdown() can never race a close() of the same fd.
  std::vector<int> conn_fds_ BASCHED_GUARDED_BY(conn_mutex_);
  /// Touched only by the run() thread (accept loop + drain join) — the
  /// connection threads never see their own std::thread handle.
  std::vector<std::thread> conn_threads_;

  util::Mutex watch_mutex_;
  std::vector<Watch> watches_ BASCHED_GUARDED_BY(watch_mutex_);
  /// Armed once when the drain begins; the watchdog force-cancels every
  /// remaining watch when it expires, then disarms it (one-shot).
  util::Deadline drain_deadline_ BASCHED_GUARDED_BY(watch_mutex_);
  bool watch_exit_ BASCHED_GUARDED_BY(watch_mutex_) = false;
  util::CondVar watch_cv_;
  /// Started by run(), joined at the end of the drain.
  std::thread watchdog_thread_;

  std::atomic<std::uint64_t> disconnect_cancels_{0};
  std::atomic<std::uint64_t> drain_cancels_{0};
  std::atomic<std::uint64_t> overloaded_{0};
};

}  // namespace basched::serve
