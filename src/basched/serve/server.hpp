/// \file server.hpp
/// \brief The `baschedule serve` daemon: accept loop, framing, admission
/// control, graceful drain.
///
/// Architecture (one Server per process):
///  - `run()` polls the listening sockets (unix and/or TCP) plus a self-pipe;
///    each accepted client gets a connection thread that reads newline-framed
///    requests and writes one response line per request.
///  - Request *execution* happens on the Server's analysis::Executor via
///    `submit` — connection threads only do socket I/O and block on the
///    response future, so a slow request never stalls the accept loop.
///  - Admission control is a bounded in-flight counter: since every
///    connection has at most one outstanding request, `max_inflight` bounds
///    the executor queue exactly; a request beyond the bound is refused with
///    an `overloaded` error instead of queueing without limit.
///  - Drain: writing one byte to `drain_notify_fd()` (async-signal-safe, so
///    a SIGTERM handler can do it) wakes the poll loop, which stops
///    accepting, closes the listeners, half-closes (SHUT_RD) every open
///    connection so blocked reads wake, answers already-parsed requests,
///    joins the connection threads, and waits for the executor to go idle.
///    Requests that arrive after the drain began get a `draining` error.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "basched/analysis/executor.hpp"
#include "basched/serve/service.hpp"
#include "basched/util/sync.hpp"
#include "basched/util/thread_annotations.hpp"

namespace basched::serve {

struct ServerOptions {
  /// Unix-domain socket path to bind ("" = no unix listener). An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// TCP port to bind on 127.0.0.1 (-1 = no TCP listener; 0 = ephemeral,
  /// read the choice back with tcp_port()).
  int tcp_port = -1;
  /// Longest accepted request line in bytes; longer requests are answered
  /// with `line_too_long` and the connection is closed (the remainder of the
  /// oversized line cannot be re-framed reliably).
  std::size_t max_line = 1 << 20;
  /// Admission bound on concurrently executing requests.
  std::size_t max_inflight = 8;
  /// Executor worker threads (0 = default_jobs(); clamped to >= 2 because
  /// request execution must run off the connection threads).
  unsigned jobs = 0;
};

/// Binds, listens, serves. Construction binds the listeners (throws
/// std::runtime_error on failure); `run()` blocks until drained.
class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (useful with tcp_port == 0), or -1 when TCP is off.
  [[nodiscard]] int tcp_port() const noexcept { return port_; }

  /// Write one byte to this fd to begin a graceful drain; safe from a signal
  /// handler. request_drain() is the same thing for ordinary callers.
  [[nodiscard]] int drain_notify_fd() const noexcept { return pipe_wr_; }
  void request_drain() noexcept;

  /// Accept/serve loop; returns after a graceful drain (every in-flight
  /// request answered, all connection threads joined).
  void run();

 private:
  void serve_connection(int fd);
  /// Answers one parsed request line; returns false when the connection
  /// should close (send failure or shutdown verb).
  bool answer(int fd, const std::string& line);
  static bool send_all(int fd, const std::string& data);

  Service& service_;
  ServerOptions opts_;
  analysis::Executor executor_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int pipe_rd_ = -1;
  int pipe_wr_ = -1;
  int port_ = -1;

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};

  util::Mutex conn_mutex_;
  /// Open connection fds (for SHUT_RD on drain). An fd is closed only after
  /// its serve_connection thread removed it from this list, so the drain's
  /// shutdown() can never race a close() of the same fd.
  std::vector<int> conn_fds_ BASCHED_GUARDED_BY(conn_mutex_);
  /// Touched only by the run() thread (accept loop + drain join) — the
  /// connection threads never see their own std::thread handle.
  std::vector<std::thread> conn_threads_;
};

}  // namespace basched::serve
