#include "basched/serve/catalog.hpp"

#include <algorithm>
#include <stdexcept>

#include "basched/graph/io.hpp"

namespace basched::serve {

CatalogEntry::CatalogEntry(const std::string& graph_text, double beta)
    : graph_(graph::parse(graph_text)), model_(beta) {
  graph_.validate();
  // One throwaway evaluator warms the duration cache from the catalog (the
  // only exp() cost of this entry); its cache becomes the immutable master
  // every request-side evaluator adopts by copy.
  const core::ScheduleEvaluator seed(graph_, model_);
  warm_ = seed.decay_cache();
}

std::unique_ptr<core::ScheduleEvaluator> CatalogEntry::borrow() const {
  {
    const util::MutexLock lock(pool_mutex_);
    if (!pool_.empty()) {
      auto evaluator = std::move(pool_.back());
      pool_.pop_back();
      evaluator->reset();
      return evaluator;
    }
  }
  return std::make_unique<core::ScheduleEvaluator>(graph_, model_, &warm_);
}

void CatalogEntry::give_back(std::unique_ptr<core::ScheduleEvaluator> evaluator) const {
  if (evaluator == nullptr) return;
  const util::MutexLock lock(pool_mutex_);
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(evaluator));
}

CatalogRegistry::CatalogRegistry(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const CatalogEntry> CatalogRegistry::acquire(const std::string& graph_text,
                                                             double beta) {
  {
    const util::MutexLock lock(mutex_);
    const auto it = entries_.find({graph_text, beta});
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_used = ++tick_;
      return it->second.entry;
    }
  }

  // Build outside the lock: entry construction prices the whole catalog and
  // must not serialize unrelated requests behind it. Two racing builders of
  // the same key both succeed; the second insert wins and the first copy
  // simply expires with its request — wasted work, never wrong results.
  auto entry = std::make_shared<const CatalogEntry>(graph_text, beta);

  const util::MutexLock lock(mutex_);
  ++misses_;
  auto& slot = entries_[{graph_text, beta}];
  slot.entry = entry;
  slot.last_used = ++tick_;
  while (entries_.size() > capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.last_used < lru->second.last_used) lru = it;
    entries_.erase(lru);
  }
  return entry;
}

CatalogRegistry::Stats CatalogRegistry::stats() const {
  const util::MutexLock lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

}  // namespace basched::serve
