/// \file retry.hpp
/// \brief Exponential backoff with jitter for `overloaded` retries.
///
/// The daemon's admission control answers `overloaded` with a
/// `retry_after_ms` hint. Naive clients that retry immediately (or all on
/// the same fixed schedule) convert one burst into a synchronized retry
/// storm; the standard fix is exponential backoff with *full jitter*: sleep
/// a uniformly random duration in [base, current_cap] and double the cap per
/// attempt. This helper computes those delays deterministically from a
/// util::Rng (seeded, platform-stable — the repo-wide randomness contract),
/// so bench runs and tests that exercise the retry path stay reproducible.
///
/// Usage (bench/serve_latency.cpp, tests/serve/retry_test.cpp):
///
///   BackoffPolicy policy;                 // or tune fields
///   Backoff backoff(policy, util::Rng(seed));
///   while (response is overloaded) {
///     sleep_ms(backoff.next_delay_ms(server_retry_after_ms));
///   }
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "basched/util/rng.hpp"

namespace basched::serve {

/// Backoff shape. Defaults suit a local daemon: first retry a few ms out,
/// capped well under a second so tests stay fast.
struct BackoffPolicy {
  std::uint64_t base_ms = 2;    ///< floor of every delay (and the first cap)
  std::uint64_t max_ms = 250;   ///< hard ceiling on any single delay
  double multiplier = 2.0;      ///< cap growth per attempt
};

/// Stateful delay generator: one instance per retried operation. Not
/// thread-safe (owns an Rng) — give each client thread its own.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, util::Rng rng) noexcept
      : policy_(policy), rng_(rng), cap_ms_(std::max<std::uint64_t>(policy.base_ms, 1)) {}

  /// Delay before the next attempt, in ms: uniform in [floor, cap] (full
  /// jitter), where floor is the larger of the policy base and the server's
  /// `retry_after_ms` hint — the server knows its queue better than the
  /// client's schedule does, so the hint is honored as a lower bound, never
  /// ignored. The cap then grows by `multiplier`, saturating at `max_ms`.
  [[nodiscard]] std::uint64_t next_delay_ms(std::uint64_t server_hint_ms = 0) noexcept {
    ++attempts_;
    const std::uint64_t floor_ms =
        std::min(policy_.max_ms, std::max(policy_.base_ms, server_hint_ms));
    const std::uint64_t cap = std::max(cap_ms_, floor_ms);
    // pick_index(n) is uniform over [0, n); span is small (<= max_ms).
    const std::uint64_t span = cap - floor_ms + 1;
    const std::uint64_t delay =
        floor_ms + rng_.pick_index(static_cast<std::size_t>(span));
    const double grown = static_cast<double>(cap_ms_) * policy_.multiplier;
    cap_ms_ = grown >= static_cast<double>(policy_.max_ms)
                  ? policy_.max_ms
                  : static_cast<std::uint64_t>(grown);
    return delay;
  }

  /// Attempts generated so far (== calls to next_delay_ms).
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

  /// Back to the initial cap (e.g. after a success, for connection reuse).
  void reset() noexcept {
    cap_ms_ = std::max<std::uint64_t>(policy_.base_ms, 1);
    attempts_ = 0;
  }

 private:
  BackoffPolicy policy_;
  util::Rng rng_;
  std::uint64_t cap_ms_;
  std::uint64_t attempts_ = 0;
};

}  // namespace basched::serve
