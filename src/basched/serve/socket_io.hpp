/// \file socket_io.hpp
/// \brief The daemon's single socket I/O choke point, with fault injection.
///
/// Every byte the serve layer moves goes through these wrappers — the
/// `basched_lint` `raw-socket` rule bans `::recv`/`::send` anywhere else in
/// `src/` — which makes socket-level fault injection a property of the whole
/// daemon instead of whichever call site a test happens to reach:
///
///   BASCHED_FAULT=short_write:1,eintr:3 ./baschedule serve ...
///
///  - `short_write[:N]` caps every send at N bytes (default 1), forcing the
///    retry loop in `send_all` to reassemble each response from single-byte
///    writes.
///  - `eintr[:K]` synthesizes an `EINTR` failure on every Kth shim call
///    (default 3) *without* performing the syscall, exercising the
///    interrupted-syscall retry paths under conditions `kill -s` timing can
///    never reproduce deterministically.
///
/// The env spec is parsed once on first use; tests can override it at any
/// time through `set_fault_spec` (all state is atomic, so flipping faults
/// on/off mid-traffic is safe). Unknown clauses throw std::invalid_argument
/// from the parser — a typo'd fault spec must never silently test nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace basched::serve::sock {

/// Active fault-injection configuration. Default-constructed = no faults.
struct FaultSpec {
  std::size_t short_write_cap = 0;  ///< cap bytes per send; 0 = off
  std::uint32_t eintr_every = 0;    ///< inject EINTR every Kth call; 0 = off
};

/// Parses a `BASCHED_FAULT`-style spec string ("short_write:1,eintr:3"; ""
/// = no faults). Throws std::invalid_argument on unknown clauses or
/// malformed counts.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& spec);

/// Test hook: replaces the active spec (normally initialized once from the
/// BASCHED_FAULT environment variable). Thread-safe.
void set_fault_spec(const FaultSpec& spec);

/// The active spec (env-initialized on first call).
[[nodiscard]] FaultSpec fault_spec();

/// How many faults the shim has injected since process start — lets tests
/// assert a fault actually fired rather than silently passing on a path
/// that never reached the shim.
struct FaultCounters {
  std::uint64_t injected_eintr = 0;
  std::uint64_t short_writes = 0;
};
[[nodiscard]] FaultCounters fault_counters();

/// `::send(fd, ..., MSG_NOSIGNAL)` with injected faults. Returns the byte
/// count, or -1 with errno set (injected EINTR included).
[[nodiscard]] ssize_t send_some(int fd, const char* data, std::size_t len);

/// Sends the whole buffer, retrying short writes and EINTR. False when the
/// peer is gone (any other send failure).
[[nodiscard]] bool send_all(int fd, const std::string& data);

/// `::recv` with injected faults. Same contract as recv: 0 = orderly EOF,
/// -1 with errno set on failure (injected EINTR included).
[[nodiscard]] ssize_t recv_some(int fd, char* buf, std::size_t len);

/// Non-blocking liveness probe for a connection some *other* thread owns:
/// true when the peer has disconnected (orderly EOF or error/hangup),
/// false while it is alive — including when it merely has unread pipelined
/// data queued. Uses poll + MSG_PEEK, so it never consumes bytes; safe to
/// call from the watchdog while the owning thread is blocked on a response
/// future (the owner only reads the socket *between* requests).
[[nodiscard]] bool peer_disconnected(int fd);

}  // namespace basched::serve::sock
