/// \file protocol.hpp
/// \brief Wire protocol of `baschedule serve`: one JSON object per line.
///
/// Request frame:  {"verb":"schedule","id":7,"params":{...}}\n
///   - `verb` (string, required) selects the operation.
///   - `id` (any JSON value, optional) is echoed verbatim in the response so
///     clients can correlate; defaults to null.
///   - `params` (object, optional) carries verb-specific parameters.
///
/// Response frame (success):  {"id":7,"ok":true,"result":{...}}\n
/// Response frame (failure):  {"id":7,"ok":false,"error":{"code":"...","message":"..."}}\n
///
/// Error codes: `bad_json` (frame is not valid JSON), `bad_request` (valid
/// JSON, invalid shape/params), `unknown_verb`, `line_too_long`,
/// `overloaded` (admission control rejected the request; the error object
/// carries a `retry_after_ms` hint — back off at least that long, see
/// serve/retry.hpp), `draining` (server is shutting down), `deadline` (the
/// request's time budget expired on an all-or-nothing verb like `sweep`;
/// anytime verbs return ok with a `stop_reason` field instead), `cancelled`
/// (the server cancelled the request — client disconnect or forced drain),
/// `internal`.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "basched/serve/json.hpp"

namespace basched::serve {

/// A protocol-level failure carrying the wire error code; the message is
/// safe to send to the client.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// A parsed request frame.
struct Request {
  std::string verb;
  json::Value id;       ///< echoed in the response; null when absent
  json::Object params;  ///< verb-specific parameters; empty when absent
};

/// Parses one request line. Throws ProtocolError with code `bad_json` or
/// `bad_request`; never returns a Request with an empty verb.
[[nodiscard]] Request parse_request(const std::string& line);

/// Builds a success response line (no trailing newline).
[[nodiscard]] std::string ok_line(const json::Value& id, json::Object result);

/// Builds a failure response line (no trailing newline).
[[nodiscard]] std::string error_line(const json::Value& id, const std::string& code,
                                     const std::string& message);

/// Same, with extra machine-readable fields merged into the error object
/// (e.g. {"retry_after_ms": 25} on `overloaded`). `code`/`message` win on a
/// key collision.
[[nodiscard]] std::string error_line(const json::Value& id, const std::string& code,
                                     const std::string& message, json::Object detail);

}  // namespace basched::serve
