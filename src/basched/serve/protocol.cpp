#include "basched/serve/protocol.hpp"

#include <utility>

namespace basched::serve {

Request parse_request(const std::string& line) {
  json::Value frame;
  try {
    frame = json::parse(line);
  } catch (const json::Error& e) {
    throw ProtocolError("bad_json", e.what());
  }
  if (!frame.is_object()) throw ProtocolError("bad_request", "request frame must be an object");
  const json::Object& obj = frame.as_object();

  Request req;
  const auto verb = obj.find("verb");
  if (verb == obj.end() || !verb->second.is_string() || verb->second.as_string().empty())
    throw ProtocolError("bad_request", "request needs a non-empty string 'verb'");
  req.verb = verb->second.as_string();

  if (const auto id = obj.find("id"); id != obj.end()) req.id = id->second;

  if (const auto params = obj.find("params"); params != obj.end()) {
    if (!params->second.is_object())
      throw ProtocolError("bad_request", "'params' must be an object");
    req.params = params->second.as_object();
  }

  for (const auto& [key, value] : obj) {
    (void)value;
    if (key != "verb" && key != "id" && key != "params")
      throw ProtocolError("bad_request", "unknown request field '" + key + "'");
  }
  return req;
}

std::string ok_line(const json::Value& id, json::Object result) {
  json::Object frame;
  frame["id"] = id;
  frame["ok"] = true;
  frame["result"] = json::Value(std::move(result));
  return json::dump(json::Value(std::move(frame)));
}

std::string error_line(const json::Value& id, const std::string& code,
                       const std::string& message) {
  return error_line(id, code, message, json::Object{});
}

std::string error_line(const json::Value& id, const std::string& code,
                       const std::string& message, json::Object detail) {
  json::Object err = std::move(detail);
  err["code"] = code;
  err["message"] = message;
  json::Object frame;
  frame["id"] = id;
  frame["ok"] = false;
  frame["error"] = json::Value(std::move(err));
  return json::dump(json::Value(std::move(frame)));
}

}  // namespace basched::serve
