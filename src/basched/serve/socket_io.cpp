#include "basched/serve/socket_io.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace basched::serve::sock {

namespace {

// The active spec, as independent atomics: tests flip faults on and off
// while connection threads are mid-transfer, and a torn read of two
// *independently valid* knobs is harmless (each call reads each knob once).
std::atomic<std::size_t> g_short_write_cap{0};
std::atomic<std::uint32_t> g_eintr_every{0};
std::atomic<std::uint64_t> g_calls{0};
std::atomic<std::uint64_t> g_injected_eintr{0};
std::atomic<std::uint64_t> g_short_writes{0};
std::once_flag g_env_once;

void apply(const FaultSpec& spec) {
  g_short_write_cap.store(spec.short_write_cap, std::memory_order_relaxed);
  g_eintr_every.store(spec.eintr_every, std::memory_order_relaxed);
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("BASCHED_FAULT");
    if (env != nullptr && *env != '\0') apply(parse_fault_spec(env));
  });
}

/// One shim call elapsed; true when this call should fail with EINTR.
bool inject_eintr() {
  const std::uint32_t every = g_eintr_every.load(std::memory_order_relaxed);
  if (every == 0) return false;
  const std::uint64_t call = g_calls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call % every != 0) return false;
  g_injected_eintr.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;

    std::string name = clause;
    std::uint64_t count = 0;
    bool has_count = false;
    if (const std::size_t colon = clause.find(':'); colon != std::string::npos) {
      name = clause.substr(0, colon);
      const std::string digits = clause.substr(colon + 1);
      if (digits.empty()) throw std::invalid_argument("fault spec: empty count in '" + clause + "'");
      for (const char c : digits) {
        if (c < '0' || c > '9')
          throw std::invalid_argument("fault spec: bad count in '" + clause + "'");
        count = count * 10 + static_cast<std::uint64_t>(c - '0');
        if (count > 1'000'000'000) throw std::invalid_argument("fault spec: count too large");
      }
      has_count = true;
    }

    if (name == "short_write") {
      out.short_write_cap = has_count ? static_cast<std::size_t>(count) : 1;
      if (out.short_write_cap == 0)
        throw std::invalid_argument("fault spec: short_write cap must be >= 1");
    } else if (name == "eintr") {
      out.eintr_every = has_count ? static_cast<std::uint32_t>(count) : 3;
      if (out.eintr_every == 0)
        throw std::invalid_argument("fault spec: eintr period must be >= 1");
    } else {
      throw std::invalid_argument("fault spec: unknown fault '" + name + "'");
    }
  }
  return out;
}

void set_fault_spec(const FaultSpec& spec) {
  init_from_env();  // settle the env init so it can't overwrite this later
  apply(spec);
}

FaultSpec fault_spec() {
  init_from_env();
  FaultSpec spec;
  spec.short_write_cap = g_short_write_cap.load(std::memory_order_relaxed);
  spec.eintr_every = g_eintr_every.load(std::memory_order_relaxed);
  return spec;
}

FaultCounters fault_counters() {
  FaultCounters c;
  c.injected_eintr = g_injected_eintr.load(std::memory_order_relaxed);
  c.short_writes = g_short_writes.load(std::memory_order_relaxed);
  return c;
}

ssize_t send_some(int fd, const char* data, std::size_t len) {
  init_from_env();
  if (inject_eintr()) {
    errno = EINTR;
    return -1;
  }
  std::size_t n = len;
  const std::size_t cap = g_short_write_cap.load(std::memory_order_relaxed);
  if (cap != 0 && n > cap) {
    n = cap;
    g_short_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return ::send(fd, data, n, MSG_NOSIGNAL);
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send_some(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone; the caller closes the fd
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t recv_some(int fd, char* buf, std::size_t len) {
  init_from_env();
  if (inject_eintr()) {
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, 0);
}

bool peer_disconnected(int fd) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int rc = ::poll(&p, 1, 0);
  if (rc <= 0) return false;  // quiet socket (or transient poll failure): alive
  if ((p.revents & (POLLERR | POLLNVAL)) != 0) return true;
  if ((p.revents & (POLLIN | POLLHUP)) == 0) return false;
  // POLLIN can mean pipelined request bytes from a live client; only an
  // orderly EOF (peek returns 0) or a hard error marks the peer gone.
  // MSG_PEEK consumes nothing, so the owning connection thread still sees
  // every byte when it resumes reading. Raw ::recv on purpose: the probe
  // must see the real socket state, never an injected fault.
  char b = 0;
  const ssize_t n = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  return false;
}

}  // namespace basched::serve::sock
