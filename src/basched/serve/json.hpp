/// \file json.hpp
/// \brief Minimal JSON value/parser/writer for the serve wire protocol.
///
/// Deliberately small: objects are ordered maps (so dumps are deterministic
/// and responses byte-stable), numbers are doubles printed in shortest
/// round-trip form (integral values without a fraction), and the parser
/// rejects anything outside RFC 8259 — a malformed frame from a client must
/// become a clean protocol error, never UB. No external dependency.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace basched::serve::json {

/// Thrown by parse() on malformed input and by the as_*() accessors on a
/// type mismatch; the message is safe to echo back to the client.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value: null, bool, number, string, array, or object.
class Value {
 public:
  Value() noexcept : v_(nullptr) {}
  Value(std::nullptr_t) noexcept : v_(nullptr) {}
  Value(bool b) noexcept : v_(b) {}
  Value(double d) noexcept : v_(d) {}
  Value(int i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned u) noexcept : v_(static_cast<double>(u)) {}
  Value(long i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned long u) noexcept : v_(static_cast<double>(u)) {}
  Value(long long i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned long long u) noexcept : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(v_); }

  /// Checked accessors; throw json::Error naming the expected type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed, trailing garbage is an error). Throws json::Error.
[[nodiscard]] Value parse(std::string_view text);

/// Serializes compactly (no whitespace), object keys in map order.
[[nodiscard]] std::string dump(const Value& value);

/// JSON string escaping of `s`, without the surrounding quotes.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace basched::serve::json
