/// \file sweeps.hpp
/// \brief Parameter sweeps that turn the paper's point tables into curves:
/// σ vs. deadline (a fine-grained Table 4) and σ vs. β (battery-nonlinearity
/// sensitivity of the *whole algorithm*, not just the cost function).
///
/// Every sweep point is an independent work item; the overloads taking an
/// Executor fan the points out across its thread pool. Results are collected
/// in point order, so the output is byte-identical for any job count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "basched/graph/task_graph.hpp"
#include "basched/util/stop.hpp"

namespace basched::analysis {

class Executor;

/// One point of a deadline sweep.
struct DeadlinePoint {
  double deadline = 0.0;
  bool ours_feasible = false;
  double ours_sigma = 0.0;
  double ours_energy = 0.0;
  bool rvdp_feasible = false;
  double rvdp_sigma = 0.0;
  bool chowdhury_feasible = false;
  double chowdhury_sigma = 0.0;
};

/// Runs our algorithm, the RV-DP baseline [1] and the Chowdhury heuristic
/// [7] at `steps` evenly spaced deadlines in [from, to], one work item per
/// deadline on `executor`. Throws std::invalid_argument on an empty/cyclic
/// graph, from <= 0, to < from, or steps < 2.
[[nodiscard]] std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph,
                                                        double from, double to, int steps,
                                                        double beta, Executor& executor);

/// Budgeted variant. A sweep table is all-or-nothing — a ragged partial
/// table would silently misrepresent the curve — so instead of anytime
/// semantics the run *aborts* when the budget expires: work items check the
/// token/deadline between algorithm runs and throw util::DeadlineExceeded /
/// util::OperationCancelled, which the executor rethrows from the
/// lowest-index item after the batch drains (deterministic abort, no ragged
/// output). Inert token + Deadline::never() make this identical to the
/// unbudgeted overload.
[[nodiscard]] std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph,
                                                        double from, double to, int steps,
                                                        double beta, Executor& executor,
                                                        const util::StopToken& stop,
                                                        const util::Deadline& time_budget);

/// Serial convenience overload (equivalent to an Executor with jobs == 1).
[[nodiscard]] std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph,
                                                        double from, double to, int steps,
                                                        double beta);

/// CSV rendering of a deadline sweep (`deadline,ours,rvdp,chowdhury` with
/// empty cells for infeasible points).
[[nodiscard]] std::string deadline_sweep_csv(const std::vector<DeadlinePoint>& points);

/// One point of a β sweep.
struct BetaPoint {
  double beta = 0.0;
  bool feasible = false;
  double sigma = 0.0;      ///< σ of the chosen schedule under *this* β
  double energy = 0.0;     ///< plain energy of the chosen schedule
  std::size_t fast_tasks = 0;  ///< tasks assigned to a fast column (index < fast_column_boundary)
};

/// The first column index that no longer counts as "fast" when classifying
/// an assignment over m design-point columns (column 0 is the fastest, m-1
/// the slowest). Columns [0, boundary) are fast; for odd m the middle
/// column — the median — is classified fast, so e.g. m = 3 -> 2, m = 4 -> 2,
/// m = 5 -> 3.
[[nodiscard]] constexpr std::size_t fast_column_boundary(std::size_t m) noexcept {
  return (m + 1) / 2;
}

/// Re-runs the whole algorithm for each β (one work item per β on
/// `executor`): shows how battery nonlinearity changes the *decisions* (not
/// just the cost of a fixed schedule). Throws std::invalid_argument on
/// invalid graph/deadline or empty/non-positive betas.
[[nodiscard]] std::vector<BetaPoint> beta_sweep(const graph::TaskGraph& graph, double deadline,
                                                const std::vector<double>& betas,
                                                Executor& executor);

/// Serial convenience overload (equivalent to an Executor with jobs == 1).
[[nodiscard]] std::vector<BetaPoint> beta_sweep(const graph::TaskGraph& graph, double deadline,
                                                const std::vector<double>& betas);

}  // namespace basched::analysis
