#include "basched/analysis/report.hpp"

#include <sstream>

#include "basched/util/table.hpp"

namespace basched::analysis {

using util::fmt_double;

std::string format_sequence(const graph::TaskGraph& graph,
                            const std::vector<graph::TaskId>& sequence) {
  std::string out;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i) out += ',';
    out += graph.task(sequence[i]).name();
  }
  return out;
}

std::string format_assignment(const std::vector<graph::TaskId>& sequence,
                              const core::Assignment& assignment) {
  std::string out;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i) out += ',';
    out += 'P';
    out += std::to_string(assignment.at(sequence[i]) + 1);
  }
  return out;
}

std::string format_table2(const graph::TaskGraph& graph, const core::IterativeResult& result) {
  util::Table t({"Iter", "Seq", "Content"});
  t.set_align(1, util::Align::Left);
  t.set_align(2, util::Align::Left);
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const auto& rec = result.iterations[i];
    const std::string iter = std::to_string(i + 1);
    t.add_row({iter, "S" + iter, format_sequence(graph, rec.sequence)});
    if (rec.windows.feasible()) {
      t.add_row({"", "DP", format_assignment(rec.sequence, rec.windows.best_window().assignment)});
    } else {
      t.add_row({"", "DP", "(no feasible window)"});
    }
    if (!rec.weighted_sequence.empty())
      t.add_row({"", "S" + iter + "w", format_sequence(graph, rec.weighted_sequence)});
    t.add_separator();
  }
  return t.str();
}

std::string format_table3(const core::IterativeResult& result, std::size_t num_design_points) {
  // Column layout mirrors the paper: one (sigma, delta) pair per window
  // "w:m", then the per-iteration minimum.
  const std::size_t m = num_design_points;
  std::vector<std::string> header{"Seq"};
  for (std::size_t ws = (m >= 2 ? m - 1 : 1); ws-- > 0;) {
    const std::string tag = std::to_string(ws + 1) + ":" + std::to_string(m);
    header.push_back("sigma " + tag);
    header.push_back("delta " + tag);
  }
  header.emplace_back("min sigma");
  header.emplace_back("delta");
  util::Table t(std::move(header));

  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const auto& rec = result.iterations[i];
    std::string label("S");
    label += std::to_string(i + 1);
    std::vector<std::string> row{std::move(label)};
    // The trace stores windows narrow → wide; the paper prints wide → narrow
    // (Win 1:m first). Build a lookup by window_start.
    for (std::size_t ws = (m >= 2 ? m - 1 : 1); ws-- > 0;) {
      bool found = false;
      for (const auto& w : rec.windows.windows) {
        if (w.window_start == ws) {
          row.push_back(w.feasible ? fmt_double(w.sigma, 0) : "infeas");
          row.push_back(fmt_double(w.duration, 1));
          found = true;
          break;
        }
      }
      if (!found) {
        row.emplace_back("-");
        row.emplace_back("-");
      }
    }
    if (rec.windows.feasible()) {
      row.push_back(fmt_double(rec.windows.best_window().sigma, 0));
      row.push_back(fmt_double(rec.windows.best_window().duration, 1));
    } else {
      row.emplace_back("-");
      row.emplace_back("-");
    }
    t.add_row(std::move(row));

    // The weighted-sequence row ("S1w"), min column only, like the paper.
    if (!rec.weighted_sequence.empty()) {
      std::string wlabel("S");
      wlabel += std::to_string(i + 1);
      wlabel += 'w';
      std::vector<std::string> wrow{std::move(wlabel)};
      for (std::size_t k = 0; k + 1 < (m >= 2 ? m - 1 : 1) * 2 + 1; ++k) wrow.emplace_back("-");
      wrow.push_back(fmt_double(std::min(rec.weighted_sigma, rec.best_sigma), 0));
      wrow.push_back("");
      t.add_row(std::move(wrow));
    }
  }
  return t.str();
}

std::string format_table4(const std::vector<ComparisonRow>& rows) {
  // "% vs [1]" = 100 · (ours − baseline) / baseline; negative = ours uses
  // less charge than the baseline.
  util::Table t({"Graph", "Deadline (min)", "Ours sigma (mAmin)", "Algo [1] sigma (mAmin)",
                 "% vs [1]"});
  t.set_align(0, util::Align::Left);
  for (const auto& r : rows) {
    t.add_row({r.name, fmt_double(r.deadline, 0),
               r.ours_feasible ? fmt_double(r.ours_sigma, 0) : "infeas",
               r.baseline_feasible ? fmt_double(r.baseline_sigma, 0) : "infeas",
               r.percent_diff ? fmt_double(*r.percent_diff, 1) : "-"});
  }
  return t.str();
}

}  // namespace basched::analysis
