/// \file executor.hpp
/// \brief A small thread pool for the experiment engine: indexed work items,
/// deterministic index-ordered result collection.
///
/// Every sweep in analysis/ is a loop over independent (deadline, β, graph)
/// work items; the Executor fans such loops out over a fixed set of worker
/// threads. Results are always collected by item index, so the output of a
/// sweep is byte-identical for any job count — parallelism changes wall
/// time, never content. An Executor with `jobs() == 1` runs items inline on
/// the calling thread with no synchronization at all, making the serial path
/// exactly the pre-executor code.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <thread>
#include <type_traits>
#include <vector>

#include "basched/util/sync.hpp"
#include "basched/util/thread_annotations.hpp"

namespace basched::analysis {

/// A monotonically decreasing bound shared between search workers (the
/// parallel branch-and-bound incumbent σ). Readers use it only to prune —
/// a stale read costs extra work, never correctness — so all accesses are
/// relaxed; the bound itself only ever tightens.
class SharedMinBound {
 public:
  explicit SharedMinBound(double initial = std::numeric_limits<double>::infinity()) noexcept
      : value_(initial) {}

  [[nodiscard]] double load() const noexcept { return value_.load(std::memory_order_relaxed); }

  /// Lowers the bound to `v` when that improves it (CAS loop); returns true
  /// iff `v` became the new minimum.
  bool update_min(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v < cur)
      if (value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) return true;
    return false;
  }

 private:
  std::atomic<double> value_;
};

/// Fixed-size thread pool with batch (fork-join) semantics, plus a
/// fire-and-forget task mode (`submit`) for long-lived callers such as the
/// serve daemon that dispatch independent units of work without joining.
///
/// Thread-safety: `for_each`/`map` may be called repeatedly, but only from
/// one thread at a time (the pool runs one batch at a time). `submit` and
/// `wait_idle` are safe from any thread and coexist with batches: a worker
/// busy with a task simply skips that batch (the batch caller participates,
/// so batches always drain). Work items must not touch shared mutable state
/// unless they synchronize it themselves.
class Executor {
 public:
  /// Creates a pool of `jobs` workers; `jobs == 0` picks `default_jobs()`.
  /// `jobs == 1` spawns no threads.
  explicit Executor(unsigned jobs = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of threads that execute work items (including the caller).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Hardware concurrency, clamped to at least 1.
  [[nodiscard]] static unsigned default_jobs() noexcept;

  /// Calls `fn(i)` for every i in [0, n), distributing items across the
  /// pool; the calling thread participates. Blocks until all items finished.
  /// If any item throws, the exception thrown by the lowest index is
  /// rethrown here after the batch has drained (remaining items still run).
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    if (jobs_ == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    run_batch(n, std::function<void(std::size_t)>(std::ref(fn)));
  }

  /// Like `for_each` but collects `fn(i)` into a vector indexed by i —
  /// deterministic regardless of execution order. The result type must be
  /// default-constructible and move-assignable.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> out(n);
    for_each(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Enqueues one independent task for a worker thread; returns immediately.
  /// Tasks must deliver their results/errors through their own channel (e.g.
  /// a promise) — an exception escaping a task is swallowed. Throws
  /// std::logic_error when jobs() < 2: with no worker threads there is
  /// nobody to run the task, and running it inline would defeat the point.
  /// The destructor drops tasks that have not started; call `wait_idle`
  /// first when they must finish.
  void submit(std::function<void()> task) BASCHED_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle() BASCHED_EXCLUDES(mutex_);

 private:
  void worker_loop() BASCHED_EXCLUDES(mutex_);
  void run_batch(std::size_t n, std::function<void(std::size_t)> item) BASCHED_EXCLUDES(mutex_);
  /// Claims the next unclaimed index of batch `generation`; returns false
  /// once that batch is exhausted or superseded (so a late-waking worker can
  /// never touch a newer batch's state). On success `item` points at the
  /// batch's work function; the pointee stays valid until the claimed index
  /// is complete()d, because run_batch resets item_ only after *every*
  /// claimed item has completed (completed_ == batch_n_) — the one sanctioned
  /// way to run a guarded function outside the lock.
  bool claim(std::uint64_t generation, std::size_t& index,
             const std::function<void(std::size_t)>*& item) BASCHED_EXCLUDES(mutex_);
  void complete(std::size_t index, std::exception_ptr error) BASCHED_EXCLUDES(mutex_);
  /// Pulls and runs items of batch `generation` until it is drained.
  void drain(std::uint64_t generation) BASCHED_EXCLUDES(mutex_);

  unsigned jobs_;
  std::vector<std::thread> workers_;

  util::Mutex mutex_;
  util::CondVar batch_ready_;
  util::CondVar batch_done_;
  bool stop_ BASCHED_GUARDED_BY(mutex_) = false;

  // State of the batch in flight. Work items run outside the lock through
  // the pointer claim() hands out (see claim's contract above).
  std::uint64_t generation_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::size_t batch_n_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::size_t next_index_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::size_t completed_ BASCHED_GUARDED_BY(mutex_) = 0;
  std::function<void(std::size_t)> item_ BASCHED_GUARDED_BY(mutex_);
  std::exception_ptr first_error_ BASCHED_GUARDED_BY(mutex_);
  std::size_t first_error_index_ BASCHED_GUARDED_BY(mutex_) = 0;

  // Fire-and-forget task mode (submit/wait_idle).
  std::deque<std::function<void()>> tasks_ BASCHED_GUARDED_BY(mutex_);
  std::size_t tasks_running_ BASCHED_GUARDED_BY(mutex_) = 0;
  util::CondVar tasks_idle_;
};

}  // namespace basched::analysis
