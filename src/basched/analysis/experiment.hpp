/// \file experiment.hpp
/// \brief Experiment descriptors and runners shared by the bench binaries.
///
/// An experiment is (graph, deadline, β). Runners execute the paper's
/// algorithm and/or the baselines and collect everything the reporting layer
/// needs to print paper-style tables.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "basched/baselines/result.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::analysis {

class Executor;

/// One experimental configuration.
struct RunSpec {
  std::string name;              ///< label used in reports (e.g. "G3 d=230")
  const graph::TaskGraph* graph = nullptr;  ///< non-owning; must outlive the spec
  double deadline = 0.0;         ///< minutes
  double beta = 0.273;           ///< RV model β
  core::IterativeOptions options{};
};

/// Head-to-head row: our algorithm vs. one baseline (the shape of Table 4).
struct ComparisonRow {
  std::string name;
  double deadline = 0.0;
  double ours_sigma = 0.0;
  double baseline_sigma = 0.0;
  /// σ change of ours relative to the baseline,
  /// `util::percent_diff(baseline_sigma, ours_sigma)` =
  /// 100 · (ours − baseline) / baseline — negative when ours uses less
  /// charge. std::nullopt when either side is infeasible (no meaningful
  /// comparison exists). Note the paper's Table 4 normalizes by *ours*
  /// instead; we report relative to the baseline, the reference being
  /// compared against.
  std::optional<double> percent_diff;
  bool ours_feasible = false;
  bool baseline_feasible = false;
};

/// Runs the paper's algorithm for a spec. Throws on malformed specs
/// (null graph, non-positive deadline).
[[nodiscard]] core::IterativeResult run_ours(const RunSpec& spec);

/// Runs our algorithm and the [1] DP baseline and assembles a Table 4 row.
[[nodiscard]] ComparisonRow run_comparison(const RunSpec& spec);

/// All deadlines of a spec family at once (e.g. Table 4's three deadlines
/// per graph), one work item per deadline on `executor`. Rows come back in
/// deadline order regardless of the job count.
[[nodiscard]] std::vector<ComparisonRow> run_comparisons(const graph::TaskGraph& graph,
                                                         const std::string& graph_name,
                                                         const std::vector<double>& deadlines,
                                                         double beta, Executor& executor);

/// Serial convenience overload (equivalent to an Executor with jobs == 1).
[[nodiscard]] std::vector<ComparisonRow> run_comparisons(const graph::TaskGraph& graph,
                                                         const std::string& graph_name,
                                                         const std::vector<double>& deadlines,
                                                         double beta);

}  // namespace basched::analysis
