#include "basched/analysis/suite.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/table.hpp"

namespace basched::analysis {

std::vector<SuiteInstance> standard_suite(std::uint64_t seed, int per_family, double tightness) {
  if (per_family < 1) throw std::invalid_argument("standard_suite: per_family must be >= 1");
  if (!(tightness > 0.0 && tightness <= 1.0))
    throw std::invalid_argument("standard_suite: tightness must be in (0, 1]");

  std::vector<SuiteInstance> suite;
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;

  for (int k = 0; k < per_family; ++k) {
    const auto stream = static_cast<std::uint64_t>(k);
    auto add = [&](const std::string& name, graph::TaskGraph g) {
      SuiteInstance inst;
      inst.name = name + "#" + std::to_string(k);
      const double fast = g.column_time(0);
      const double slow = g.column_time(g.num_design_points() - 1);
      inst.deadline = fast + tightness * (slow - fast);
      inst.graph = std::move(g);
      suite.push_back(std::move(inst));
    };
    {
      util::Rng rng(util::derive_seed(seed, stream * 8 + 0));
      add("chain8", graph::make_chain(8, synth, rng));
    }
    {
      util::Rng rng(util::derive_seed(seed, stream * 8 + 1));
      add("forkjoin3x3", graph::make_fork_join(3, 3, synth, rng));
    }
    {
      util::Rng rng(util::derive_seed(seed, stream * 8 + 2));
      add("layered5x3", graph::make_layered_random(5, 3, 0.3, synth, rng));
    }
    {
      util::Rng rng(util::derive_seed(seed, stream * 8 + 3));
      add("sp10", graph::make_series_parallel(10, synth, rng));
    }
    {
      util::Rng rng(util::derive_seed(seed, stream * 8 + 4));
      add("indep6", graph::make_independent(6, synth, rng));
    }
  }
  return suite;
}

SuiteSummary run_suite(const std::vector<SuiteInstance>& instances, double beta,
                       Executor& executor) {
  constexpr int kAlgos = 4;
  const char* names[kAlgos] = {"ours", "RV-DP [1]", "Chowdhury [7]", "random-2k"};

  SuiteSummary summary;
  summary.instances = static_cast<int>(instances.size());
  summary.algorithms.resize(kAlgos);
  for (int a = 0; a < kAlgos; ++a) summary.algorithms[a].name = names[a];

  // Gather σ per (instance, algorithm); NaN = infeasible. One work item per
  // instance; all aggregation stays serial below, so the summary is
  // independent of the job count.
  const std::vector<std::array<double, kAlgos>> sigma =
      executor.map(instances.size(), [&](std::size_t i) {
        const battery::RakhmatovVrudhulaModel model(beta);
        const auto& inst = instances[i];
        const auto ours = core::schedule_battery_aware(inst.graph, inst.deadline, model);
        const auto dp = baselines::schedule_rv_dp(inst.graph, inst.deadline, model);
        const auto ch = baselines::schedule_chowdhury(inst.graph, inst.deadline, model);
        baselines::RandomSearchOptions ropts;
        ropts.samples = 2000;
        const auto rnd =
            baselines::schedule_random_search(inst.graph, inst.deadline, model, ropts);
        const double nan = std::nan("");
        return std::array<double, kAlgos>{ours.feasible ? ours.sigma : nan,
                                          dp.feasible ? dp.sigma : nan,
                                          ch.feasible ? ch.sigma : nan,
                                          rnd.feasible ? rnd.sigma : nan};
      });
  for (std::size_t i = 0; i < instances.size(); ++i)
    for (int a = 0; a < kAlgos; ++a)
      if (!std::isnan(sigma[i][a])) ++summary.algorithms[a].feasible;

  // Aggregate over commonly-feasible instances.
  std::vector<double> log_ratio_sum(kAlgos, 0.0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    bool all = true;
    for (int a = 0; a < kAlgos; ++a) all = all && !std::isnan(sigma[i][a]);
    if (!all) continue;
    ++summary.commonly_feasible;
    double best = sigma[i][0];
    for (int a = 1; a < kAlgos; ++a) best = std::min(best, sigma[i][a]);
    for (int a = 0; a < kAlgos; ++a) {
      summary.algorithms[a].total_sigma += sigma[i][a];
      log_ratio_sum[a] += std::log(sigma[i][a] / best);
      if (sigma[i][a] <= best * (1.0 + 1e-12)) ++summary.algorithms[a].wins;
    }
  }
  for (int a = 0; a < kAlgos; ++a) {
    summary.algorithms[a].geomean_ratio =
        summary.commonly_feasible > 0
            ? std::exp(log_ratio_sum[a] / summary.commonly_feasible)
            : 0.0;
  }
  return summary;
}

SuiteSummary run_suite(const std::vector<SuiteInstance>& instances, double beta) {
  Executor serial(1);
  return run_suite(instances, beta, serial);
}

std::string format_suite(const SuiteSummary& summary) {
  util::Table table({"algorithm", "feasible", "wins", "geomean sigma/best", "total sigma"});
  table.set_align(0, util::Align::Left);
  for (const auto& a : summary.algorithms) {
    table.add_row({a.name, std::to_string(a.feasible) + "/" + std::to_string(summary.instances),
                   std::to_string(a.wins) + "/" + std::to_string(summary.commonly_feasible),
                   util::fmt_double(a.geomean_ratio, 3), util::fmt_double(a.total_sigma, 0)});
  }
  return table.str();
}

}  // namespace basched::analysis
