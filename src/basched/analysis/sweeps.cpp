#include "basched/analysis/sweeps.hpp"

#include <sstream>
#include <stdexcept>

#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/util/csv.hpp"
#include "basched/util/table.hpp"

namespace basched::analysis {

std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph, double from, double to,
                                          int steps, double beta) {
  graph.validate();
  if (!(from > 0.0) || to < from) throw std::invalid_argument("deadline_sweep: bad range");
  if (steps < 2) throw std::invalid_argument("deadline_sweep: steps must be >= 2");
  const battery::RakhmatovVrudhulaModel model(beta);

  std::vector<DeadlinePoint> points;
  points.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    DeadlinePoint p;
    p.deadline = from + (to - from) * i / (steps - 1);
    const auto ours = core::schedule_battery_aware(graph, p.deadline, model);
    p.ours_feasible = ours.feasible;
    p.ours_sigma = ours.sigma;
    p.ours_energy = ours.energy;
    const auto dp = baselines::schedule_rv_dp(graph, p.deadline, model);
    p.rvdp_feasible = dp.feasible;
    p.rvdp_sigma = dp.sigma;
    const auto ch = baselines::schedule_chowdhury(graph, p.deadline, model);
    p.chowdhury_feasible = ch.feasible;
    p.chowdhury_sigma = ch.sigma;
    points.push_back(p);
  }
  return points;
}

std::string deadline_sweep_csv(const std::vector<DeadlinePoint>& points) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.write_row({"deadline", "ours", "rvdp", "chowdhury"});
  for (const auto& p : points) {
    csv.write_row({util::fmt_double(p.deadline, 4),
                   p.ours_feasible ? util::fmt_double(p.ours_sigma, 2) : "",
                   p.rvdp_feasible ? util::fmt_double(p.rvdp_sigma, 2) : "",
                   p.chowdhury_feasible ? util::fmt_double(p.chowdhury_sigma, 2) : ""});
  }
  return os.str();
}

std::vector<BetaPoint> beta_sweep(const graph::TaskGraph& graph, double deadline,
                                  const std::vector<double>& betas) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("beta_sweep: deadline must be > 0");
  if (betas.empty()) throw std::invalid_argument("beta_sweep: no betas given");

  std::vector<BetaPoint> points;
  points.reserve(betas.size());
  const std::size_t m = graph.num_design_points();
  for (double beta : betas) {
    if (!(beta > 0.0)) throw std::invalid_argument("beta_sweep: betas must be > 0");
    const battery::RakhmatovVrudhulaModel model(beta);
    const auto r = core::schedule_battery_aware(graph, deadline, model);
    BetaPoint p;
    p.beta = beta;
    p.feasible = r.feasible;
    if (r.feasible) {
      p.sigma = r.sigma;
      p.energy = r.energy;
      for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
        if (r.schedule.assignment[v] < m / 2) ++p.fast_tasks;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace basched::analysis
