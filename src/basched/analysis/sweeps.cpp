#include "basched/analysis/sweeps.hpp"

#include <sstream>
#include <stdexcept>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/util/csv.hpp"
#include "basched/util/stop.hpp"
#include "basched/util/table.hpp"

namespace basched::analysis {

std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph, double from, double to,
                                          int steps, double beta, Executor& executor,
                                          const util::StopToken& stop,
                                          const util::Deadline& time_budget) {
  graph.validate();
  if (!(from > 0.0) || to < from) throw std::invalid_argument("deadline_sweep: bad range");
  if (steps < 2) throw std::invalid_argument("deadline_sweep: steps must be >= 2");

  return executor.map(static_cast<std::size_t>(steps), [&](std::size_t i) {
    // Sweep points are all-or-nothing (see the header): check the budget
    // between algorithm runs and abort by throwing; the executor rethrows
    // the lowest-index failure after the batch drains. Stride 1: a handful
    // of checks per item, each worth a clock read.
    util::RunBudget budget(stop, time_budget, 1);
    const auto check = [&budget] {
      if (budget.expired()) {
        if (budget.reason() == util::StopReason::cancelled) throw util::OperationCancelled();
        throw util::DeadlineExceeded();
      }
    };
    // Each work item owns its model: construction is trivial and the
    // instances stay independent across threads.
    const battery::RakhmatovVrudhulaModel model(beta);
    DeadlinePoint p;
    p.deadline = from + (to - from) * static_cast<double>(i) / (steps - 1);
    check();
    const auto ours = core::schedule_battery_aware(graph, p.deadline, model);
    p.ours_feasible = ours.feasible;
    p.ours_sigma = ours.sigma;
    p.ours_energy = ours.energy;
    check();
    const auto dp = baselines::schedule_rv_dp(graph, p.deadline, model);
    p.rvdp_feasible = dp.feasible;
    p.rvdp_sigma = dp.sigma;
    check();
    const auto ch = baselines::schedule_chowdhury(graph, p.deadline, model);
    p.chowdhury_feasible = ch.feasible;
    p.chowdhury_sigma = ch.sigma;
    return p;
  });
}

std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph, double from, double to,
                                          int steps, double beta, Executor& executor) {
  return deadline_sweep(graph, from, to, steps, beta, executor, util::StopToken(),
                        util::Deadline::never());
}

std::vector<DeadlinePoint> deadline_sweep(const graph::TaskGraph& graph, double from, double to,
                                          int steps, double beta) {
  Executor serial(1);
  return deadline_sweep(graph, from, to, steps, beta, serial);
}

std::string deadline_sweep_csv(const std::vector<DeadlinePoint>& points) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.write_row({"deadline", "ours", "rvdp", "chowdhury"});
  for (const auto& p : points) {
    csv.write_row({util::fmt_double(p.deadline, 4),
                   p.ours_feasible ? util::fmt_double(p.ours_sigma, 2) : "",
                   p.rvdp_feasible ? util::fmt_double(p.rvdp_sigma, 2) : "",
                   p.chowdhury_feasible ? util::fmt_double(p.chowdhury_sigma, 2) : ""});
  }
  return os.str();
}

std::vector<BetaPoint> beta_sweep(const graph::TaskGraph& graph, double deadline,
                                  const std::vector<double>& betas, Executor& executor) {
  graph.validate();
  if (!(deadline > 0.0)) throw std::invalid_argument("beta_sweep: deadline must be > 0");
  if (betas.empty()) throw std::invalid_argument("beta_sweep: no betas given");
  for (double beta : betas)
    if (!(beta > 0.0)) throw std::invalid_argument("beta_sweep: betas must be > 0");

  const std::size_t m = graph.num_design_points();
  return executor.map(betas.size(), [&](std::size_t i) {
    const battery::RakhmatovVrudhulaModel model(betas[i]);
    const auto r = core::schedule_battery_aware(graph, deadline, model);
    BetaPoint p;
    p.beta = betas[i];
    p.feasible = r.feasible;
    if (r.feasible) {
      p.sigma = r.sigma;
      p.energy = r.energy;
      for (graph::TaskId v = 0; v < graph.num_tasks(); ++v)
        if (r.schedule.assignment[v] < fast_column_boundary(m)) ++p.fast_tasks;
    }
    return p;
  });
}

std::vector<BetaPoint> beta_sweep(const graph::TaskGraph& graph, double deadline,
                                  const std::vector<double>& betas) {
  Executor serial(1);
  return beta_sweep(graph, deadline, betas, serial);
}

}  // namespace basched::analysis
