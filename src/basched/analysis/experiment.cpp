#include "basched/analysis/experiment.hpp"

#include <stdexcept>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/util/stats.hpp"

namespace basched::analysis {

namespace {

void check_spec(const RunSpec& spec) {
  if (spec.graph == nullptr) throw std::invalid_argument("RunSpec: graph is null");
  if (!(spec.deadline > 0.0)) throw std::invalid_argument("RunSpec: deadline must be > 0");
  if (!(spec.beta > 0.0)) throw std::invalid_argument("RunSpec: beta must be > 0");
}

}  // namespace

core::IterativeResult run_ours(const RunSpec& spec) {
  check_spec(spec);
  const battery::RakhmatovVrudhulaModel model(spec.beta);
  return core::schedule_battery_aware(*spec.graph, spec.deadline, model, spec.options);
}

ComparisonRow run_comparison(const RunSpec& spec) {
  check_spec(spec);
  const battery::RakhmatovVrudhulaModel model(spec.beta);

  ComparisonRow row;
  row.name = spec.name;
  row.deadline = spec.deadline;

  const core::IterativeResult ours =
      core::schedule_battery_aware(*spec.graph, spec.deadline, model, spec.options);
  row.ours_feasible = ours.feasible;
  row.ours_sigma = ours.sigma;

  const baselines::ScheduleResult base = baselines::schedule_rv_dp(*spec.graph, spec.deadline, model);
  row.baseline_feasible = base.feasible;
  row.baseline_sigma = base.sigma;

  // Improvement is reported relative to the baseline (the reference), not to
  // our own σ; an infeasible side leaves no meaningful comparison → nullopt.
  if (row.ours_feasible && row.baseline_feasible && row.baseline_sigma > 0.0)
    row.percent_diff = util::percent_diff(row.baseline_sigma, row.ours_sigma);
  return row;
}

std::vector<ComparisonRow> run_comparisons(const graph::TaskGraph& graph,
                                           const std::string& graph_name,
                                           const std::vector<double>& deadlines, double beta,
                                           Executor& executor) {
  return executor.map(deadlines.size(), [&](std::size_t i) {
    RunSpec spec;
    spec.name = graph_name;
    spec.graph = &graph;
    spec.deadline = deadlines[i];
    spec.beta = beta;
    return run_comparison(spec);
  });
}

std::vector<ComparisonRow> run_comparisons(const graph::TaskGraph& graph,
                                           const std::string& graph_name,
                                           const std::vector<double>& deadlines, double beta) {
  Executor serial(1);
  return run_comparisons(graph, graph_name, deadlines, beta, serial);
}

}  // namespace basched::analysis
