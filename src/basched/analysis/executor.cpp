#include "basched/analysis/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace basched::analysis {

unsigned Executor::default_jobs() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

Executor::Executor(unsigned jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  workers_.reserve(jobs_ - 1);
  for (unsigned w = 0; w + 1 < jobs_; ++w) workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool Executor::claim(std::uint64_t generation, std::size_t& index,
                     const std::function<void(std::size_t)>*& item) {
  const util::MutexLock lock(mutex_);
  if (generation != generation_ || next_index_ >= batch_n_) return false;
  index = next_index_++;
  // Handing out &item_ is safe outside the lock: run_batch resets item_ only
  // after completed_ == batch_n_, and this claim's complete() is part of that
  // count — the pointee cannot change before the claimed item finishes.
  item = &item_;
  return true;
}

void Executor::complete(std::size_t index, std::exception_ptr error) {
  bool done;
  {
    const util::MutexLock lock(mutex_);
    ++completed_;
    if (error && (!first_error_ || index < first_error_index_)) {
      first_error_ = std::move(error);
      first_error_index_ = index;
    }
    done = completed_ == batch_n_;
  }
  if (done) batch_done_.notify_one();
}

void Executor::drain(std::uint64_t generation) {
  std::size_t i = 0;
  const std::function<void(std::size_t)>* item = nullptr;
  while (claim(generation, i, item)) {
    std::exception_ptr error;
    try {
      (*item)(i);
    } catch (...) {
      error = std::current_exception();
    }
    complete(i, std::move(error));
  }
}

void Executor::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::uint64_t generation = 0;
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen_generation && tasks_.empty()) batch_ready_.wait(lock);
      if (stop_) return;
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++tasks_running_;
      } else {
        seen_generation = generation = generation_;
      }
    }
    if (task) {
      try {
        task();
      } catch (...) {
        // Tasks own their error channel (see submit's contract); an escaped
        // exception must not kill the worker thread.
      }
      bool idle;
      {
        const util::MutexLock lock(mutex_);
        --tasks_running_;
        idle = tasks_.empty() && tasks_running_ == 0;
      }
      if (idle) tasks_idle_.notify_all();
      continue;
    }
    drain(generation);
  }
}

void Executor::submit(std::function<void()> task) {
  if (jobs_ < 2)
    throw std::logic_error("Executor::submit: requires jobs() >= 2 (no worker threads)");
  {
    const util::MutexLock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  batch_ready_.notify_one();
}

void Executor::wait_idle() {
  util::MutexLock lock(mutex_);
  while (!tasks_.empty() || tasks_running_ != 0) tasks_idle_.wait(lock);
}

void Executor::run_batch(std::size_t n, std::function<void(std::size_t)> item) {
  std::uint64_t generation;
  {
    const util::MutexLock lock(mutex_);
    batch_n_ = n;
    next_index_ = 0;
    completed_ = 0;
    item_ = std::move(item);
    first_error_ = nullptr;
    first_error_index_ = 0;
    generation = ++generation_;
  }
  batch_ready_.notify_all();

  drain(generation);  // the calling thread works too

  std::exception_ptr error;
  {
    util::MutexLock lock(mutex_);
    while (completed_ != batch_n_) batch_done_.wait(lock);
    error = first_error_;
    item_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace basched::analysis
