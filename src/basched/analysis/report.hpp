/// \file report.hpp
/// \brief Formatters that turn traces/rows into the paper's tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "basched/analysis/experiment.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/task_graph.hpp"

namespace basched::analysis {

/// Renders an iteration trace as the paper's Table 2: one row per iteration
/// with the task sequence, the chosen design-points, and the weighted
/// sequence ("Sw") computed from it.
[[nodiscard]] std::string format_table2(const graph::TaskGraph& graph,
                                        const core::IterativeResult& result);

/// Renders an iteration trace as the paper's Table 3: per-iteration rows of
/// σ (mA·min) and Δ (min) for every window evaluated, plus the per-iteration
/// minimum.
[[nodiscard]] std::string format_table3(const core::IterativeResult& result,
                                        std::size_t num_design_points);

/// Renders comparison rows as the paper's Table 4 (ours vs. the [1] DP
/// baseline across deadlines, with the % difference).
[[nodiscard]] std::string format_table4(const std::vector<ComparisonRow>& rows);

/// Compact "T1,T4,T5,…" rendering of a sequence using task names.
[[nodiscard]] std::string format_sequence(const graph::TaskGraph& graph,
                                          const std::vector<graph::TaskId>& sequence);

/// Compact "P5,P4,…" rendering of the design-points of `sequence` under
/// `assignment` (1-based column labels, matching the paper's DP/P notation).
[[nodiscard]] std::string format_assignment(const std::vector<graph::TaskId>& sequence,
                                            const core::Assignment& assignment);

}  // namespace basched::analysis
