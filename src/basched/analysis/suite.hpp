/// \file suite.hpp
/// \brief A standard synthetic benchmark suite and an aggregate scheduler
/// shoot-out over it — the breadth evaluation the paper's two graphs lack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "basched/graph/task_graph.hpp"

namespace basched::analysis {

class Executor;

/// One suite instance: a graph plus a deadline at a fixed tightness.
struct SuiteInstance {
  std::string name;
  graph::TaskGraph graph;
  double deadline = 0.0;
};

/// Builds the standard suite: `per_family` instances from each structural
/// family (chain, fork-join, layered, series-parallel, independent) with
/// deterministic seeds derived from `seed`, deadlines at
/// `tightness` ∈ (0, 1] of the way from all-fastest to all-slowest time.
/// Throws std::invalid_argument on per_family < 1 or tightness out of range.
[[nodiscard]] std::vector<SuiteInstance> standard_suite(std::uint64_t seed, int per_family,
                                                        double tightness = 0.6);

/// Aggregate results of one algorithm over the suite.
struct AlgorithmSummary {
  std::string name;
  int feasible = 0;        ///< instances solved within the deadline
  int wins = 0;            ///< instances where it achieved the best σ (ties count)
  double geomean_ratio = 0.0;  ///< geometric mean of σ / best-σ over commonly-feasible instances
  double total_sigma = 0.0;    ///< Σ σ over commonly-feasible instances
};

/// Shoot-out outcome.
struct SuiteSummary {
  std::vector<AlgorithmSummary> algorithms;
  int instances = 0;
  int commonly_feasible = 0;  ///< instances every algorithm solved
};

/// Runs our algorithm, RV-DP [1], Chowdhury [7], and random search over the
/// suite and aggregates, one work item per instance on `executor`.
/// Ratios/wins are computed over the commonly-feasible instances so no
/// algorithm is judged on instances another could not solve. The aggregate
/// is identical for any job count.
[[nodiscard]] SuiteSummary run_suite(const std::vector<SuiteInstance>& instances, double beta,
                                     Executor& executor);

/// Serial convenience overload (equivalent to an Executor with jobs == 1).
[[nodiscard]] SuiteSummary run_suite(const std::vector<SuiteInstance>& instances, double beta);

/// ASCII table rendering of a summary.
[[nodiscard]] std::string format_suite(const SuiteSummary& summary);

}  // namespace basched::analysis
