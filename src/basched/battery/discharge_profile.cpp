#include "basched/battery/discharge_profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::battery {

namespace {
constexpr double kOverlapTol = 1e-9;  // tolerate FP rounding when abutting intervals
}

DischargeProfile::DischargeProfile(std::vector<DischargeInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const DischargeInterval& a, const DischargeInterval& b) { return a.start < b.start; });
  for (auto& iv : intervals) validate_and_push(iv);
}

void DischargeProfile::validate_and_push(DischargeInterval iv) {
  if (!(iv.duration > 0.0) || !std::isfinite(iv.duration))
    throw std::invalid_argument("DischargeProfile: interval duration must be finite and > 0");
  if (iv.current < 0.0 || !std::isfinite(iv.current))
    throw std::invalid_argument("DischargeProfile: interval current must be finite and >= 0");
  if (iv.start < 0.0 || !std::isfinite(iv.start))
    throw std::invalid_argument("DischargeProfile: interval start must be finite and >= 0");
  if (!intervals_.empty() && iv.start < intervals_.back().end() - kOverlapTol)
    throw std::invalid_argument("DischargeProfile: intervals overlap");
  // Clamp tiny negative gaps introduced by floating point accumulation.
  if (!intervals_.empty()) iv.start = std::max(iv.start, intervals_.back().end());
  intervals_.push_back(iv);
}

void DischargeProfile::append(double duration, double current) {
  validate_and_push({end_time(), duration, current});
}

void DischargeProfile::append_at(double start, double duration, double current) {
  validate_and_push({start, duration, current});
}

void DischargeProfile::append_rest(double duration) { append(duration, 0.0); }

double DischargeProfile::end_time() const noexcept {
  return intervals_.empty() ? 0.0 : intervals_.back().end();
}

double DischargeProfile::total_charge() const noexcept {
  double q = 0.0;
  for (const auto& iv : intervals_) q += iv.charge();
  return q;
}

double DischargeProfile::current_at(double t) const noexcept {
  for (const auto& iv : intervals_) {
    if (t < iv.start) return 0.0;
    if (t < iv.end()) return iv.current;
  }
  return 0.0;
}

double DischargeProfile::average_current() const noexcept {
  const double T = end_time();
  return T > 0.0 ? total_charge() / T : 0.0;
}

double DischargeProfile::peak_current() const noexcept {
  double peak = 0.0;
  for (const auto& iv : intervals_) peak = std::max(peak, iv.current);
  return peak;
}

DischargeProfile DischargeProfile::simplified() const {
  DischargeProfile out;
  for (const auto& iv : intervals_) {
    if (iv.current == 0.0) continue;
    if (!out.intervals_.empty()) {
      auto& last = out.intervals_.back();
      if (last.current == iv.current && std::abs(last.end() - iv.start) <= kOverlapTol) {
        last.duration = iv.end() - last.start;
        continue;
      }
    }
    out.intervals_.push_back(iv);
  }
  return out;
}

DischargeProfile DischargeProfile::shifted(double dt) const {
  if (!std::isfinite(dt))
    throw std::invalid_argument("DischargeProfile::shifted: dt must be finite");
  if (!intervals_.empty() && intervals_.front().start + dt < 0.0)
    throw std::invalid_argument(
        "DischargeProfile::shifted: dt would move the first interval before t = 0 (dt must be "
        ">= -start of the first interval)");
  DischargeProfile out;
  for (auto iv : intervals_) {
    iv.start += dt;
    out.validate_and_push(iv);
  }
  return out;
}

DischargeProfile DischargeProfile::concatenated(const DischargeProfile& other) const {
  // Re-base other's whole timeline (including any idle time before its first
  // interval) onto this profile's end: an `other` that begins with rest keeps
  // that rest as a gap after `base`.
  DischargeProfile out = *this;
  const double base = out.end_time();
  for (auto iv : other.intervals_) {
    iv.start += base;
    out.validate_and_push(iv);
  }
  return out;
}

std::string DischargeProfile::to_string() const {
  std::ostringstream os;
  for (const auto& iv : intervals_) {
    os << "[" << iv.start << ", " << iv.end() << ") " << iv.current << " mA\n";
  }
  return os.str();
}

DischargeProfile constant_load(double current, double duration) {
  DischargeProfile p;
  p.append(duration, current);
  return p;
}

}  // namespace basched::battery
