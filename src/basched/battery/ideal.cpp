#include "basched/battery/ideal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace basched::battery {

double IdealModel::charge_lost(std::span<const DischargeInterval> intervals, double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("IdealModel::charge_lost: t must be finite and >= 0");
  double q = 0.0;
  for (const auto& iv : intervals) {
    if (iv.start >= t) break;
    q += iv.current * std::min(iv.duration, t - iv.start);
  }
  return q;
}

}  // namespace basched::battery
