/// \file discharge_profile.hpp
/// \brief Piecewise-constant battery discharge profiles.
///
/// A discharge profile is the load the portable platform presents to its
/// battery over time: an ordered list of non-overlapping intervals, each
/// drawing a constant current. This is exactly the input to the
/// Rakhmatov–Vrudhula model (Eq. 1 of the paper) and to every other battery
/// model in basched.
///
/// Units follow the paper: time in **minutes**, current in **mA**, so charge
/// is in **mA·min** (1 mAh = 60 mA·min).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace basched::battery {

/// One constant-current discharge interval.
struct DischargeInterval {
  double start = 0.0;     ///< start time t_k (minutes)
  double duration = 0.0;  ///< length Δ_k (minutes), > 0
  double current = 0.0;   ///< current I_k (mA), >= 0

  /// End time t_k + Δ_k.
  [[nodiscard]] double end() const noexcept { return start + duration; }

  /// Charge delivered over the interval, I_k · Δ_k (mA·min).
  [[nodiscard]] double charge() const noexcept { return current * duration; }
};

/// An ordered sequence of non-overlapping constant-current intervals.
///
/// Invariants (enforced at mutation time):
///  * intervals are sorted by start time;
///  * consecutive intervals do not overlap (gaps — rest periods — are fine);
///  * every duration is > 0 and every current is >= 0.
///
/// Zero-current rest periods may be represented either implicitly (a gap
/// between intervals) or explicitly (an interval with current == 0); both
/// yield identical model results.
class DischargeProfile {
 public:
  DischargeProfile() = default;

  /// Builds a profile from arbitrary intervals. Throws std::invalid_argument
  /// if intervals overlap or have non-positive duration / negative current.
  explicit DischargeProfile(std::vector<DischargeInterval> intervals);

  /// Appends an interval starting exactly at the current end of the profile
  /// (or at time 0 for an empty profile). Throws std::invalid_argument on
  /// non-positive duration or negative current.
  void append(double duration, double current);

  /// Appends an interval at an explicit start time. Throws
  /// std::invalid_argument if it would overlap the last interval or is
  /// otherwise malformed.
  void append_at(double start, double duration, double current);

  /// Appends a zero-current rest period of the given duration.
  void append_rest(double duration);

  [[nodiscard]] const std::vector<DischargeInterval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }
  [[nodiscard]] bool empty() const noexcept { return intervals_.empty(); }

  /// End time of the last interval; 0 for an empty profile.
  [[nodiscard]] double end_time() const noexcept;

  /// Total charge delivered Σ I_k·Δ_k (mA·min). This is what an *ideal*
  /// battery would lose; nonlinear models report more until recovery
  /// completes.
  [[nodiscard]] double total_charge() const noexcept;

  /// Instantaneous current drawn at time t (0 inside gaps / outside profile).
  [[nodiscard]] double current_at(double t) const noexcept;

  /// Mean current over [0, end_time()); 0 for an empty profile.
  [[nodiscard]] double average_current() const noexcept;

  /// Peak interval current; 0 for an empty profile.
  [[nodiscard]] double peak_current() const noexcept;

  /// Returns a profile with adjacent intervals of equal current merged and
  /// explicit zero-current intervals removed. Model-equivalent to *this.
  [[nodiscard]] DischargeProfile simplified() const;

  /// Returns a copy with every interval shifted by dt. Throws
  /// std::invalid_argument when dt is non-finite or < -start of the first
  /// interval (the result must still begin at a non-negative time).
  [[nodiscard]] DischargeProfile shifted(double dt) const;

  /// Returns the concatenation: `other`'s timeline re-based so that its
  /// t = 0 lands on this profile's end time. Idle time before `other`'s
  /// first interval is preserved as a gap (rest), not discarded.
  [[nodiscard]] DischargeProfile concatenated(const DischargeProfile& other) const;

  /// Human-readable dump (one interval per line), for debugging and examples.
  [[nodiscard]] std::string to_string() const;

 private:
  void validate_and_push(DischargeInterval iv);

  std::vector<DischargeInterval> intervals_;
};

/// Convenience: a single constant load of `current` mA for `duration` minutes.
[[nodiscard]] DischargeProfile constant_load(double current, double duration);

}  // namespace basched::battery
