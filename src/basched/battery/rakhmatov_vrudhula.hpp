/// \file rakhmatov_vrudhula.hpp
/// \brief The Rakhmatov–Vrudhula analytical high-level battery model
/// (ICCAD 2001), i.e. Equation 1 of Khan & Vemuri (DATE 2005).
///
/// For a piecewise-constant discharge profile with intervals (t_k, Δ_k, I_k)
/// the apparent charge lost by time T is
///
///   σ(T) = Σ_k I_k · [ δ_k + 2 · Σ_{m=1}^{M} ( e^{-β²m²(T - t_k - δ_k)}
///                                            - e^{-β²m²(T - t_k)} ) / (β²m²) ]
///
/// where δ_k = min(Δ_k, max(0, T - t_k)) is the part of interval k elapsed by
/// T. The first term is the charge actually delivered; the exponential sum is
/// the charge made temporarily *unavailable* by diffusion limits (rate
/// capacity effect), which decays back to zero after the load is removed
/// (recovery effect). β (min^-1/2) captures the battery's nonlinearity:
/// β → ∞ approaches an ideal battery, small β means strong rate dependence.
/// The paper truncates the series at M = 10 terms and uses β = 0.273 for its
/// experiments; both are defaults here.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "basched/battery/model.hpp"

namespace basched::battery {

/// Rakhmatov–Vrudhula diffusion-based analytical battery model.
class RakhmatovVrudhulaModel final : public BatteryModel {
 public:
  /// Number of exponential series terms used by the paper.
  static constexpr int kPaperTerms = 10;
  /// β value used in the paper's G3 illustrative example (min^-1/2).
  static constexpr double kPaperBeta = 0.273;

  /// \param beta  nonlinearity parameter β > 0 (min^-1/2)
  /// \param terms series truncation M >= 1
  /// Throws std::invalid_argument on out-of-range parameters.
  explicit RakhmatovVrudhulaModel(double beta = kPaperBeta, int terms = kPaperTerms);

  [[nodiscard]] std::string name() const override { return "rakhmatov-vrudhula"; }

  /// σ(T) as defined above. O(intervals · terms).
  using BatteryModel::charge_lost;
  [[nodiscard]] double charge_lost(std::span<const DischargeInterval> intervals,
                                   double t) const override;

  /// The unavailable-charge component only: σ(T) minus the charge delivered
  /// by time T. Non-negative; tends to 0 as T → ∞ after the last interval.
  [[nodiscard]] double unavailable_charge(const DischargeProfile& profile, double t) const;

  /// O(terms)-per-query prefix cache (see incremental_sigma.hpp).
  [[nodiscard]] std::unique_ptr<IncrementalSigma> incremental_sigma() const override;

  /// Evaluation-count probe: how many full-profile `charge_lost` calls this
  /// model instance has answered. Incremental evaluators never show up here,
  /// so tests can assert a hot path stopped re-evaluating whole profiles.
  /// Thread-safe (relaxed atomic).
  [[nodiscard]] std::uint64_t full_evaluations() const noexcept {
    return full_evaluations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] int terms() const noexcept { return terms_; }

  /// Σ_{m=1..M} (e^{-β²m²·a} - e^{-β²m²·b}) / (β²m²) for 0 <= a <= b (inputs
  /// clamped). The single source of truth for Eq. 1's series, shared with the
  /// incremental evaluator of incremental_sigma.hpp.
  [[nodiscard]] static double series_sum(double beta_sq, int terms, double a,
                                         double b) noexcept;

  /// One interval's full Eq. 1 term at time t: I·(δ + 2·series), with
  /// δ = min(duration, t - start); 0 when t <= start or current == 0.
  [[nodiscard]] static double interval_term(double beta_sq, int terms, double start,
                                            double duration, double current, double t) noexcept;

  /// Advances a per-term decayed partial-sum row — the A_m(k) prefix cache
  /// shared by battery/incremental_sigma.hpp and core/schedule_evaluator.hpp
  /// — from the checkpoint at `prev_start` to `new_start`, folding in the
  /// now fully elapsed interval (prev_start .. prev_end, prev_current).
  /// `out_row` may alias `prev_row`. All exponents are <= 0 for
  /// new_start >= prev_end >= prev_start, keeping the recurrence stable.
  static void advance_decay_row(double beta_sq, int terms, const double* prev_row,
                                double prev_start, double prev_end, double prev_current,
                                double new_start, double* out_row) noexcept;

  /// σ contribution of all intervals summarized in `row`, queried `since`
  /// minutes (clamped at 0) past the row's checkpoint:
  /// delivered + Σ_m 2·row[m−1]·e^{-β²m²·since}, accumulated in series
  /// order so both row consumers stay bit-identical.
  [[nodiscard]] static double decayed_prefix_sigma(double beta_sq, int terms, const double* row,
                                                   double delivered, double since) noexcept;

  /// Same accumulation with the e^{-β²m²·since} factors already computed
  /// into `decay` — e.g. a util::fastmath::DecayRowCache row keyed on
  /// `since`, which lets σ-at-end queries run with zero exp evaluations.
  [[nodiscard]] static double decayed_prefix_sigma_row(int terms, const double* row,
                                                       double delivered,
                                                       const double* decay) noexcept;

 private:
  /// Member shorthand for series_sum with this model's β²/terms.
  [[nodiscard]] double series(double a, double b) const noexcept;

  double beta_;
  double beta_sq_;
  int terms_;
  mutable std::atomic<std::uint64_t> full_evaluations_{0};
};

}  // namespace basched::battery
