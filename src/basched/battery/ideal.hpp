/// \file ideal.hpp
/// \brief Ideal (linear) battery model: σ(T) is exactly the charge delivered.
///
/// This is the model implicitly assumed by plain energy-minimizing DVS work;
/// the paper's point is that real batteries deviate from it. Including it
/// lets benches show how much battery capacity a schedule "looks like" it
/// uses under the linear assumption vs. the nonlinear truth.
#pragma once

#include <span>
#include <string>

#include "basched/battery/model.hpp"

namespace basched::battery {

/// Linear charge integrator: σ(T) = ∫₀ᵀ I(t) dt.
class IdealModel final : public BatteryModel {
 public:
  [[nodiscard]] std::string name() const override { return "ideal"; }

  using BatteryModel::charge_lost;
  [[nodiscard]] double charge_lost(std::span<const DischargeInterval> intervals,
                                   double t) const override;
};

}  // namespace basched::battery
