/// \file peukert.hpp
/// \brief Peukert's-law battery model.
///
/// Peukert's empirical law says a battery delivering constant current I lasts
/// L = C / I^p for an exponent p >= 1 (p ≈ 1.1–1.3 for lead-acid, closer to
/// 1.05 for Li-ion). Luo & Jha's battery-aware scheduler [5] built on a
/// Peukert-style model, so it is the natural "previous generation"
/// comparator for the Rakhmatov–Vrudhula model.
///
/// We use the standard piecewise generalization: each interval at current I
/// consumes apparent charge at rate I_ref · (I / I_ref)^p, where I_ref is the
/// rated (nominal) discharge current at which the battery achieves its rated
/// capacity. At I == I_ref this reduces to the ideal model; higher currents
/// are penalized superlinearly (rate-capacity effect). Peukert's law has *no*
/// recovery effect — apparent charge never comes back during rest — which is
/// exactly the qualitative gap the RV model fills.
#pragma once

#include <span>
#include <string>

#include "basched/battery/model.hpp"

namespace basched::battery {

/// Peukert's-law model with exponent `p` and rated current `i_ref` (mA).
class PeukertModel final : public BatteryModel {
 public:
  /// Throws std::invalid_argument unless p >= 1 and i_ref > 0.
  explicit PeukertModel(double p = 1.2, double i_ref = 100.0);

  [[nodiscard]] std::string name() const override { return "peukert"; }

  using BatteryModel::charge_lost;
  [[nodiscard]] double charge_lost(std::span<const DischargeInterval> intervals,
                                   double t) const override;

  [[nodiscard]] double exponent() const noexcept { return p_; }
  [[nodiscard]] double rated_current() const noexcept { return i_ref_; }

  /// Apparent charge-consumption rate at constant `current`:
  /// I_ref·(I/I_ref)^p, 0 at rest. The per-interval kernel of `charge_lost`,
  /// exposed so prefix-sum evaluators (core::ScheduleEvaluator) share one
  /// formula with the full sweep.
  [[nodiscard]] double apparent_rate(double current) const noexcept;

 private:
  double p_;
  double i_ref_;
};

}  // namespace basched::battery
