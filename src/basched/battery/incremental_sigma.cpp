#include "basched/battery/incremental_sigma.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::battery {

std::unique_ptr<IncrementalSigma> BatteryModel::incremental_sigma() const {
  return std::make_unique<GenericIncrementalSigma>(*this);
}

std::unique_ptr<IncrementalSigma> RakhmatovVrudhulaModel::incremental_sigma() const {
  return std::make_unique<RvIncrementalSigma>(*this);
}

double GenericIncrementalSigma::sigma_with_tail(double rest, double duration, double current,
                                                double t) const {
  // Enforce the same contract as the RV evaluator so callers cannot come to
  // depend on looser behavior of the fallback (the appends below validate
  // duration/current themselves).
  if (rest < 0.0 || !std::isfinite(rest))
    throw std::invalid_argument("GenericIncrementalSigma: rest must be finite and >= 0");
  if (!(t >= profile_.end_time()) || !std::isfinite(t))
    throw std::invalid_argument(
        "GenericIncrementalSigma::sigma_with_tail: t must be >= end_time()");
  DischargeProfile extended = profile_;
  if (rest > 0.0) extended.append_rest(rest);
  extended.append(duration, current);
  return model_.charge_lost(extended, t);
}

RvIncrementalSigma::RvIncrementalSigma(const RakhmatovVrudhulaModel& model)
    : beta_sq_(model.beta() * model.beta()), terms_(model.terms()) {
  bm_.resize(static_cast<std::size_t>(terms_));
  for (int m = 1; m <= terms_; ++m)
    bm_[m - 1] = beta_sq_ * static_cast<double>(m) * static_cast<double>(m);
  decay_cache_ = util::fastmath::DecayRowCache(bm_);
  cache_scratch_.resize(static_cast<std::size_t>(terms_));
}

void RvIncrementalSigma::append(double duration, double current) {
  if (!(duration > 0.0) || !std::isfinite(duration))
    throw std::invalid_argument("RvIncrementalSigma: interval duration must be finite and > 0");
  if (current < 0.0 || !std::isfinite(current))
    throw std::invalid_argument("RvIncrementalSigma: interval current must be finite and >= 0");

  const double start = end_time();
  Interval iv{start, duration, current, 0.0};
  decay_.resize(decay_.size() + static_cast<std::size_t>(terms_), 0.0);
  double* row = decay_.data() + (intervals_.size() * static_cast<std::size_t>(terms_));
  if (!intervals_.empty()) {
    const Interval& prev = intervals_.back();
    iv.delivered_before = prev.delivered_before + prev.current * prev.duration;
    const double* prev_row =
        decay_.data() + ((intervals_.size() - 1) * static_cast<std::size_t>(terms_));
    // Advance the checkpoint from prev.start to start: decay the inherited
    // sums and fold in prev's own (now fully elapsed) interval. Appends are
    // back-to-back (start == prev.end()), so the decay factors are keyed on
    // prev.duration alone and come from the per-Δt cache — zero exp
    // evaluations for a duration seen before, same bits as the uncached
    // advance_decay_row recurrence otherwise.
    const double* c = decay_cache_.row(prev.duration, cache_scratch_.data());
    for (int i = 0; i < terms_; ++i)
      row[i] = prev_row[i] * c[i] + prev.current * (1.0 - c[i]) / bm_[i];
  }
  intervals_.push_back(iv);
}

double RvIncrementalSigma::end_time() const noexcept {
  return intervals_.empty() ? 0.0 : intervals_.back().end();
}

double RvIncrementalSigma::sigma_from_checkpoint(std::size_t k, double t) const noexcept {
  const Interval& iv = intervals_[k];
  BASCHED_ASSERT(t >= iv.start - 1e-12);
  const double* row = decay_.data() + (k * static_cast<std::size_t>(terms_));
  const double sigma = RakhmatovVrudhulaModel::decayed_prefix_sigma(
      beta_sq_, terms_, row, iv.delivered_before, t - iv.start);
  return sigma + RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, iv.start, iv.duration,
                                                       iv.current, t);
}

double RvIncrementalSigma::sigma(double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("RvIncrementalSigma::sigma: t must be finite and >= 0");
  if (intervals_.empty()) return 0.0;
  // Last interval whose start is <= t; intervals past it start after t and
  // contribute nothing (exactly charge_lost's early break).
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](double value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.begin()) return 0.0;
  return sigma_from_checkpoint(static_cast<std::size_t>(it - intervals_.begin()) - 1, t);
}

double RvIncrementalSigma::sigma_with_tail(double rest, double duration, double current,
                                           double t) const {
  if (rest < 0.0 || !std::isfinite(rest))
    throw std::invalid_argument("RvIncrementalSigma: rest must be finite and >= 0");
  if (!(duration > 0.0) || !std::isfinite(duration) || current < 0.0 || !std::isfinite(current))
    throw std::invalid_argument("RvIncrementalSigma: malformed tail interval");
  const double end = end_time();
  if (!(t >= end) || !std::isfinite(t))
    throw std::invalid_argument("RvIncrementalSigma::sigma_with_tail: t must be >= end_time()");
  const double prefix =
      intervals_.empty() ? 0.0 : sigma_from_checkpoint(intervals_.size() - 1, t);
  return prefix + RakhmatovVrudhulaModel::interval_term(beta_sq_, terms_, end + rest, duration,
                                                        current, t);
}

}  // namespace basched::battery
