#include "basched/battery/kibam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/fastmath.hpp"

namespace basched::battery {

KibamModel::KibamModel(double c, double kprime, double alpha)
    : c_(c), kprime_(kprime), alpha_(alpha) {
  if (!(c > 0.0 && c < 1.0)) throw std::invalid_argument("KibamModel: c must be in (0, 1)");
  if (!(kprime > 0.0) || !std::isfinite(kprime))
    throw std::invalid_argument("KibamModel: kprime must be finite and > 0");
  if (!(alpha > 0.0) || !std::isfinite(alpha))
    throw std::invalid_argument("KibamModel: alpha must be finite and > 0");
}

KibamModel::State KibamModel::step(State s, double i, double dt) const noexcept {
  // Manwell–McGowan closed form for constant current i over dt:
  //   y1(t) = y1_0 e^{-k't} + (y0 k' c − i)(1 − e^{-k't})/k' − i c (k' t − 1 + e^{-k't})/k'
  //   y2(t) = y2_0 e^{-k't} + y0 (1−c)(1 − e^{-k't}) − i (1−c)(k' t − 1 + e^{-k't})/k'
  const double y0 = s.y1 + s.y2;
  const double ek = util::fastmath::exp_one(-kprime_ * dt);
  const double a = (1.0 - ek) / kprime_;
  const double b = (kprime_ * dt - 1.0 + ek) / kprime_;
  State out;
  out.y1 = s.y1 * ek + (y0 * kprime_ * c_ - i) * a - i * c_ * b;
  out.y2 = s.y2 * ek + y0 * (1.0 - c_) * (1.0 - ek) - i * (1.0 - c_) * b;
  return out;
}

KibamModel::State KibamModel::advance(State s, bool& dead, double current,
                                      double duration) const noexcept {
  if (duration <= 0.0) return s;
  if (dead) {
    // After death we freeze y1 at 0; bound charge equalizes toward y1 only
    // conceptually — for σ purposes the battery stays dead.
    return s;
  }
  // Detect y1 hitting zero inside the step: y1 is monotone within a
  // constant-current step whenever current > 0 exceeds the recharge flow, so
  // a simple bisection on the step suffices.
  const State next = step(s, current, duration);
  if (next.y1 < 0.0) {
    double lo = 0.0, hi = duration;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (step(s, current, mid).y1 < 0.0)
        hi = mid;
      else
        lo = mid;
    }
    s = step(s, current, lo);
    s.y1 = 0.0;
    dead = true;
    return s;
  }
  return next;
}

KibamModel::State KibamModel::state_at(std::span<const DischargeInterval> intervals,
                                       double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("KibamModel::state_at: t must be finite and >= 0");
  State s = full_state();
  double now = 0.0;
  bool dead = false;

  auto advance_by = [&](double i, double dt) {
    if (dt <= 0.0) return;
    s = advance(s, dead, i, dt);
    now += dt;
  };

  for (const auto& iv : intervals) {
    if (now >= t) break;
    if (iv.start > now) advance_by(0.0, std::min(iv.start, t) - now);  // rest gap
    if (now >= t) break;
    const double run = std::min(iv.end(), t) - now;
    advance_by(iv.current, run);
  }
  if (now < t) advance_by(0.0, t - now);  // trailing rest
  return s;
}

double KibamModel::charge_lost(std::span<const DischargeInterval> intervals, double t) const {
  // sigma_of: alpha minus the available well's head h1 = y1/c (== alpha when
  // full), the same formula incremental consumers apply to checkpoint states.
  return sigma_of(state_at(intervals, t));
}

}  // namespace basched::battery
