#include "basched/battery/pack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "basched/battery/lifetime.hpp"
#include "basched/util/assert.hpp"

namespace basched::battery {

BatteryPack::BatteryPack(const BatteryModel& model, std::vector<double> capacities)
    : model_(&model), capacities_(std::move(capacities)) {
  if (capacities_.empty()) throw std::invalid_argument("BatteryPack: at least one cell required");
  for (double a : capacities_)
    if (!(a > 0.0) || !std::isfinite(a))
      throw std::invalid_argument("BatteryPack: cell capacities must be finite and > 0");
}

namespace {

/// Would appending `iv` to `cell` keep its σ below `alpha` throughout the
/// interval? If not, returns the death instant via `death`.
bool cell_survives(const BatteryModel& model, const DischargeProfile& cell,
                   const DischargeInterval& iv, double alpha, double* death) {
  DischargeProfile probe = cell;
  probe.append_at(iv.start, iv.duration, iv.current);
  const auto crossing = find_lifetime(model, probe, alpha);
  if (!crossing) return true;
  // Earlier intervals were validated when they were appended, so any
  // crossing lies inside the new interval.
  BASCHED_ASSERT(*crossing >= iv.start - 1e-9);
  if (death != nullptr) *death = *crossing;
  return false;
}

}  // namespace

PackResult BatteryPack::serve(const DischargeProfile& load, PackPolicy policy) const {
  const std::size_t n = num_cells();
  std::vector<DischargeProfile> cell_profiles(n);

  PackResult result;
  result.cell_sigma.assign(n, 0.0);
  result.cell_intervals.assign(n, 0);

  std::size_t rr_next = 0;
  for (const auto& iv : load.intervals()) {
    if (iv.current == 0.0) continue;  // rest benefits every cell implicitly

    if (policy == PackPolicy::SplitEvenly) {
      // Parallel wiring: each cell carries current/N; the pack fails the
      // moment any cell dies.
      DischargeInterval share = iv;
      share.current = iv.current / static_cast<double>(n);
      double first_death = iv.end();
      bool any_dead = false;
      for (std::size_t c = 0; c < n; ++c) {
        double death = 0.0;
        if (!cell_survives(*model_, cell_profiles[c], share, capacities_[c], &death)) {
          any_dead = true;
          first_death = std::min(first_death, death);
        }
      }
      if (any_dead) {
        result.failure_time = first_death;
        for (std::size_t c = 0; c < n; ++c) {
          // Include the fatal interval's prefix in the final accounting.
          DischargeProfile upto = cell_profiles[c];
          if (first_death > iv.start + 1e-12)
            upto.append_at(iv.start, first_death - iv.start, share.current);
          result.cell_sigma[c] = model_->charge_lost(upto, first_death);
        }
        return result;
      }
      for (std::size_t c = 0; c < n; ++c) {
        cell_profiles[c].append_at(iv.start, iv.duration, share.current);
        ++result.cell_intervals[c];
      }
      ++result.intervals_served;
      continue;
    }

    std::vector<std::size_t> candidates;
    if (policy == PackPolicy::RoundRobin) {
      candidates.push_back(rr_next);
      rr_next = (rr_next + 1) % n;
    } else {
      // All cells, least current σ first (σ evaluated at the interval start).
      candidates.resize(n);
      std::iota(candidates.begin(), candidates.end(), std::size_t{0});
      std::vector<double> sigma_now(n);
      for (std::size_t c = 0; c < n; ++c)
        sigma_now[c] = model_->charge_lost(cell_profiles[c], iv.start);
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](std::size_t a, std::size_t b) { return sigma_now[a] < sigma_now[b]; });
    }

    bool served = false;
    double earliest_death = iv.end();
    for (std::size_t c : candidates) {
      double death = 0.0;
      if (cell_survives(*model_, cell_profiles[c], iv, capacities_[c], &death)) {
        cell_profiles[c].append_at(iv.start, iv.duration, iv.current);
        ++result.cell_intervals[c];
        ++result.intervals_served;
        served = true;
        break;
      }
      earliest_death = std::min(earliest_death, death);
    }
    if (!served) {
      result.failure_time = earliest_death;
      for (std::size_t c = 0; c < n; ++c)
        result.cell_sigma[c] = model_->charge_lost(cell_profiles[c], earliest_death);
      return result;
    }
  }

  result.survived = true;
  const double end = load.end_time();
  for (std::size_t c = 0; c < n; ++c)
    result.cell_sigma[c] = model_->charge_lost(cell_profiles[c], end);
  return result;
}

PackResult BatteryPack::serve_monolithic(const DischargeProfile& load) const {
  const double total = std::accumulate(capacities_.begin(), capacities_.end(), 0.0);
  const BatteryPack mono(*model_, {total});
  return mono.serve(load, PackPolicy::RoundRobin);
}

}  // namespace basched::battery
