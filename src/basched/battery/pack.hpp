/// \file pack.hpp
/// \brief Multi-cell battery packs: time-switched or parallel current
/// sharing, evaluated under any battery model.
///
/// Two distinct physical effects, both representable here and both tested:
///
///  * **Parallel splitting** (`SplitEvenly`): every interval's current is
///    divided across the cells. Under a *rate-nonlinear* model (Peukert,
///    exponent p > 1) each cell's apparent drain is superlinear in its
///    current, so halving the per-cell rate more than halves the per-cell
///    drain — a pack of N cells with total capacity C outlives a monolithic
///    C battery by a factor up to N^(p-1). This is the classic
///    multi-battery result (Benini et al.).
///
///  * **Time switching** (`RoundRobin` / `LeastLoaded`): each interval goes
///    to one cell while the others rest and recover. Important honesty note:
///    under models whose σ is *linear in current* (Rakhmatov–Vrudhula,
///    KiBaM) switching redistributes apparent charge but cannot reduce its
///    sum, so a switched pack of total capacity C never outlives the
///    monolithic C battery (each cell carries at least its share of the
///    delivered charge *plus* its own burst transients). Switching still
///    matters for heterogeneous packs and per-cell current limits, and the
///    `SwitchingCannotBeatMonolith` test pins the theory down.
///
/// Every cell sees its own discharge profile (its share of the intervals at
/// their true global times, rest elsewhere) and dies when its own σ reaches
/// its capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "basched/battery/discharge_profile.hpp"
#include "basched/battery/model.hpp"

namespace basched::battery {

/// How the pack serves each interval.
enum class PackPolicy {
  RoundRobin,   ///< interval k goes to cell k mod N (the others rest)
  LeastLoaded,  ///< the cell with the smallest σ at the interval's start
  SplitEvenly,  ///< parallel wiring: every cell carries current/N
};

/// Outcome of serving a load profile from a pack.
struct PackResult {
  bool survived = false;              ///< every interval was served
  double failure_time = 0.0;          ///< instant the serving cell died (if !survived)
  std::size_t intervals_served = 0;   ///< fully served intervals
  std::vector<double> cell_sigma;     ///< per-cell σ at the end (or failure)
  std::vector<std::size_t> cell_intervals;  ///< per-cell served-interval counts
};

/// A pack of identical-chemistry cells evaluated under a shared model.
///
/// The model is held by reference and must outlive the pack. Cell capacities
/// are individual (heterogeneous packs allowed).
class BatteryPack {
 public:
  /// \param model       battery model shared by all cells
  /// \param capacities  per-cell capacity α (mA·min), all > 0, at least one
  /// Throws std::invalid_argument on an empty or non-positive capacity list.
  BatteryPack(const BatteryModel& model, std::vector<double> capacities);

  [[nodiscard]] std::size_t num_cells() const noexcept { return capacities_.size(); }

  /// Serves `load`'s intervals in order per `policy`. An interval is
  /// *unserviceable* when the serving cell would die during it; LeastLoaded
  /// then tries the remaining cells in ascending-σ order before giving up,
  /// RoundRobin fails immediately (a fixed wiring cannot reroute), and
  /// SplitEvenly fails when *any* cell dies (parallel cells share the bus).
  /// Rest gaps apply to every cell (they all recover). Under SplitEvenly
  /// each served interval counts once toward every cell's tally.
  [[nodiscard]] PackResult serve(const DischargeProfile& load, PackPolicy policy) const;

  /// Convenience: the lifetime of a *single* cell of capacity Σ capacities
  /// under the same load (the monolithic-battery baseline). Returns the
  /// PackResult of that one-cell pack.
  [[nodiscard]] PackResult serve_monolithic(const DischargeProfile& load) const;

 private:
  const BatteryModel* model_;
  std::vector<double> capacities_;
};

}  // namespace basched::battery
