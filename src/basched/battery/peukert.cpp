#include "basched/battery/peukert.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/fastmath.hpp"

namespace basched::battery {

PeukertModel::PeukertModel(double p, double i_ref) : p_(p), i_ref_(i_ref) {
  if (!(p >= 1.0) || !std::isfinite(p))
    throw std::invalid_argument("PeukertModel: exponent must be finite and >= 1");
  if (!(i_ref > 0.0) || !std::isfinite(i_ref))
    throw std::invalid_argument("PeukertModel: rated current must be finite and > 0");
}

double PeukertModel::apparent_rate(double current) const noexcept {
  return current == 0.0 ? 0.0 : i_ref_ * util::fastmath::pow_one(current / i_ref_, p_);
}

double PeukertModel::charge_lost(std::span<const DischargeInterval> intervals, double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("PeukertModel::charge_lost: t must be finite and >= 0");
  double q = 0.0;
  for (const auto& iv : intervals) {
    if (iv.start >= t) break;
    if (iv.current == 0.0) continue;
    const double elapsed = std::min(iv.duration, t - iv.start);
    q += apparent_rate(iv.current) * elapsed;
  }
  return q;
}

}  // namespace basched::battery
