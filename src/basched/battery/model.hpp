/// \file model.hpp
/// \brief Abstract battery-model interface.
///
/// Every model maps a discharge profile to an *apparent charge lost* function
/// σ(T) (mA·min). For an ideal battery σ equals the charge actually
/// delivered; nonlinear models additionally count charge that is
/// *temporarily unavailable* because of the rate-capacity effect, and let it
/// come back during rest (recovery effect). A battery of capacity α is dead
/// at the earliest T with σ(T) = α.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "basched/battery/discharge_profile.hpp"

namespace basched::battery {

/// Incremental σ evaluation over a profile built one interval at a time.
///
/// Semantically an IncrementalSigma is equivalent to keeping a
/// DischargeProfile and calling `charge_lost` on it; models that can do
/// better (see incremental_sigma.hpp) answer queries in O(terms) instead of
/// O(intervals · terms). Obtain instances via
/// `BatteryModel::incremental_sigma()`.
class IncrementalSigma {
 public:
  virtual ~IncrementalSigma() = default;

  /// Appends one interval at the current end of the profile. Throws
  /// std::invalid_argument on malformed intervals (DischargeProfile rules).
  virtual void append(double duration, double current) = 0;

  /// Appends a zero-current rest period.
  void append_rest(double duration) { append(duration, 0.0); }

  /// End time of the profile appended so far (0 when empty).
  [[nodiscard]] virtual double end_time() const noexcept = 0;

  /// σ(t) of the profile appended so far, for any finite t >= 0.
  [[nodiscard]] virtual double sigma(double t) const = 0;

  /// σ(t) of the profile appended so far, extended by `rest` idle minutes
  /// plus one interval (duration, current) — without mutating the
  /// evaluator. This is the rest-insertion bisection query: the prefix stays
  /// fixed while (rest, tail) vary. Requires t >= end_time().
  [[nodiscard]] virtual double sigma_with_tail(double rest, double duration, double current,
                                               double t) const = 0;
};

/// Interface shared by all battery models in basched.
class BatteryModel {
 public:
  virtual ~BatteryModel() = default;

  /// Short human-readable model name (e.g. "rakhmatov-vrudhula").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Apparent charge lost σ(T) in mA·min, for T >= 0. Intervals beyond T
  /// (or the parts of them past T) do not contribute.
  ///
  /// The span form is the primary entry point so that hot paths can price a
  /// reused flat interval buffer without materializing a DischargeProfile
  /// (see core/schedule_evaluator.hpp). The intervals must satisfy the
  /// DischargeProfile invariants (sorted by start, non-overlapping,
  /// duration > 0, current >= 0); callers either pass a validated profile's
  /// intervals or a buffer they maintain under the same rules.
  [[nodiscard]] virtual double charge_lost(std::span<const DischargeInterval> intervals,
                                           double t) const = 0;

  /// Convenience overload over a validated profile.
  [[nodiscard]] double charge_lost(const DischargeProfile& profile, double t) const {
    return charge_lost(std::span<const DischargeInterval>(profile.intervals()), t);
  }

  /// Earliest time at which σ(t) >= alpha (battery death), or std::nullopt if
  /// the battery survives the entire profile. The default implementation
  /// scans discharge intervals and refines the crossing by bisection, which
  /// is correct for any model whose σ is non-decreasing while current flows.
  [[nodiscard]] virtual std::optional<double> lifetime(const DischargeProfile& profile,
                                                       double alpha) const;

  /// Convenience: σ evaluated at the profile's end time.
  [[nodiscard]] double charge_lost_at_end(const DischargeProfile& profile) const {
    return charge_lost(profile, profile.end_time());
  }

  /// Returns an empty incremental evaluator for this model. The default
  /// replays `charge_lost` on an internally grown profile (no speedup, and
  /// the model must outlive the evaluator); models with cheap incremental
  /// forms override it.
  [[nodiscard]] virtual std::unique_ptr<IncrementalSigma> incremental_sigma() const;
};

}  // namespace basched::battery
