/// \file model.hpp
/// \brief Abstract battery-model interface.
///
/// Every model maps a discharge profile to an *apparent charge lost* function
/// σ(T) (mA·min). For an ideal battery σ equals the charge actually
/// delivered; nonlinear models additionally count charge that is
/// *temporarily unavailable* because of the rate-capacity effect, and let it
/// come back during rest (recovery effect). A battery of capacity α is dead
/// at the earliest T with σ(T) = α.
#pragma once

#include <optional>
#include <string>

#include "basched/battery/discharge_profile.hpp"

namespace basched::battery {

/// Interface shared by all battery models in basched.
class BatteryModel {
 public:
  virtual ~BatteryModel() = default;

  /// Short human-readable model name (e.g. "rakhmatov-vrudhula").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Apparent charge lost σ(T) in mA·min, for T >= 0. Intervals beyond T
  /// (or the parts of them past T) do not contribute.
  [[nodiscard]] virtual double charge_lost(const DischargeProfile& profile, double t) const = 0;

  /// Earliest time at which σ(t) >= alpha (battery death), or std::nullopt if
  /// the battery survives the entire profile. The default implementation
  /// scans discharge intervals and refines the crossing by bisection, which
  /// is correct for any model whose σ is non-decreasing while current flows.
  [[nodiscard]] virtual std::optional<double> lifetime(const DischargeProfile& profile,
                                                       double alpha) const;

  /// Convenience: σ evaluated at the profile's end time.
  [[nodiscard]] double charge_lost_at_end(const DischargeProfile& profile) const {
    return charge_lost(profile, profile.end_time());
  }
};

}  // namespace basched::battery
