/// \file kibam.hpp
/// \brief Kinetic Battery Model (KiBaM, Manwell & McGowan 1993).
///
/// KiBaM splits the battery charge into an *available* well y1 (fraction c of
/// total capacity) that feeds the load directly, and a *bound* well y2
/// (fraction 1-c) that replenishes y1 at a rate proportional to the head
/// difference h2 - h1 (h1 = y1/c, h2 = y2/(1-c)). The battery is dead when y1
/// hits zero even though charge remains bound in y2 — that is the
/// rate-capacity effect — and y1 refills from y2 during rest — the recovery
/// effect. KiBaM is the classic *physical* two-well model and is known to be
/// a first-order approximation of the Rakhmatov–Vrudhula diffusion model, so
/// we include it as an independent cross-check of the paper's cost function.
///
/// We use the closed-form per-interval solution, so evaluation is exact for
/// piecewise-constant profiles (no ODE stepping error).
///
/// σ-semantics: to expose KiBaM through the common BatteryModel interface we
/// define apparent charge lost as σ(T) = α − h1(T) · α / α = α − h1(T), where
/// h1 is the available-well *head* (h1 == α when full, 0 when dead). This
/// matches RV semantics: σ = delivered charge at equilibrium, σ = α exactly
/// at death, σ > delivered while discharging hard. Unlike RV, σ depends on
/// the configured capacity α (the model is stateful in charge level), so the
/// capacity is a constructor parameter.
#pragma once

#include <span>
#include <string>

#include "basched/battery/model.hpp"

namespace basched::battery {

/// Two-well kinetic battery model with capacity ratio c, rate constant k'
/// (1/min) and total capacity alpha (mA·min).
class KibamModel final : public BatteryModel {
 public:
  /// \param c      available-charge fraction, in (0, 1)
  /// \param kprime well-equalization rate constant k' (1/min), > 0
  /// \param alpha  total battery capacity (mA·min), > 0
  /// Throws std::invalid_argument on out-of-range parameters.
  KibamModel(double c, double kprime, double alpha);

  [[nodiscard]] std::string name() const override { return "kibam"; }

  /// σ(T) = α − h1(T); see the file comment for the rationale. If y1 is
  /// exhausted mid-profile the simulation clamps y1 at 0 from the moment of
  /// death (σ stays >= α afterwards), which is sufficient for lifetime
  /// queries via the common interface.
  using BatteryModel::charge_lost;
  [[nodiscard]] double charge_lost(std::span<const DischargeInterval> intervals,
                                   double t) const override;

  /// Raw two-well state at time t.
  struct State {
    double y1 = 0.0;  ///< available charge (mA·min)
    double y2 = 0.0;  ///< bound charge (mA·min)
  };

  /// Simulates the profile up to time t from a full battery and returns the
  /// well contents. y1 is clamped at 0 once exhausted.
  [[nodiscard]] State state_at(const DischargeProfile& profile, double t) const {
    return state_at(std::span<const DischargeInterval>(profile.intervals()), t);
  }
  [[nodiscard]] State state_at(std::span<const DischargeInterval> intervals, double t) const;

  /// Advances the two-well state across `duration` minutes at constant
  /// `current`, applying the death clamp (y1 pinned at 0 once exhausted;
  /// `dead` is sticky and skips further drain). Exactly the per-interval
  /// step of `state_at`, exposed so prefix caches — core::ScheduleEvaluator's
  /// per-position checkpoint stack — can extend and re-price schedules in
  /// O(1) per interval instead of re-simulating from t = 0.
  [[nodiscard]] State advance(State s, bool& dead, double current, double duration) const noexcept;

  /// Fully charged state: y1 = c·α, y2 = (1−c)·α.
  [[nodiscard]] State full_state() const noexcept { return {c_ * alpha_, (1.0 - c_) * alpha_}; }

  /// σ corresponding to a well state under the file-comment semantics:
  /// α − h1 = α − y1/c.
  [[nodiscard]] double sigma_of(State s) const noexcept { return alpha_ - s.y1 / c_; }

  [[nodiscard]] double c() const noexcept { return c_; }
  [[nodiscard]] double kprime() const noexcept { return kprime_; }
  [[nodiscard]] double capacity() const noexcept { return alpha_; }

 private:
  /// Advances the closed-form solution by `dt` minutes under constant
  /// current `i` from state s.
  [[nodiscard]] State step(State s, double i, double dt) const noexcept;

  double c_;
  double kprime_;
  double alpha_;
};

}  // namespace basched::battery
