/// \file lifetime.hpp
/// \brief Battery-lifetime estimation utilities.
///
/// The paper estimates lifetime by "evaluating Equation 1 for increasing
/// values of T and stopping where σ ≅ α". We implement that idea robustly:
/// scan each discharge interval (σ can only grow while current flows) and
/// refine the first crossing with bisection.
#pragma once

#include <optional>

#include "basched/battery/discharge_profile.hpp"

namespace basched::battery {

class BatteryModel;

/// Options for the crossing search.
struct LifetimeOptions {
  int samples_per_interval = 64;  ///< coarse scan resolution inside each interval
  double tolerance = 1e-9;        ///< absolute bisection tolerance (minutes)
};

/// Finds the earliest t with model.charge_lost(profile, t) >= alpha, or
/// std::nullopt if no such t exists within the profile (battery survives).
/// Correct for any model whose σ is non-decreasing during discharge and
/// non-increasing during rest. Throws std::invalid_argument if alpha <= 0.
[[nodiscard]] std::optional<double> find_lifetime(const BatteryModel& model,
                                                  const DischargeProfile& profile, double alpha,
                                                  const LifetimeOptions& opts = {});

/// Lifetime under a constant load `current` (mA) starting at t = 0, i.e. the
/// earliest t with σ(t) >= alpha where the profile is a single unbounded
/// constant-current interval. Returns std::nullopt if the battery survives
/// `max_time` minutes. Throws std::invalid_argument if current <= 0 or
/// alpha <= 0.
[[nodiscard]] std::optional<double> constant_load_lifetime(const BatteryModel& model,
                                                           double current, double alpha,
                                                           double max_time = 1e7);

}  // namespace basched::battery
