#include "basched/battery/lifetime.hpp"

#include <cmath>
#include <stdexcept>

#include "basched/battery/model.hpp"
#include "basched/util/assert.hpp"

namespace basched::battery {

namespace {

/// Bisects for the σ = alpha crossing inside [lo, hi] where σ(lo) < alpha and
/// σ(hi) >= alpha.
double bisect_crossing(const BatteryModel& model, const DischargeProfile& profile, double alpha,
                       double lo, double hi, double tol) {
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (model.charge_lost(profile, mid) >= alpha)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace

std::optional<double> find_lifetime(const BatteryModel& model, const DischargeProfile& profile,
                                    double alpha, const LifetimeOptions& opts) {
  if (alpha <= 0.0) throw std::invalid_argument("find_lifetime: alpha must be > 0");
  BASCHED_ASSERT(opts.samples_per_interval >= 1);

  // σ only grows while current flows, so the first crossing (if any) lies in
  // a discharge interval. σ need not be monotone *within* an interval — a
  // light load following a heavy burst can let recovery outpace consumption,
  // producing an interior peak — so every interval is scanned at
  // samples_per_interval resolution (an interior crossing narrower than one
  // sample step is below the method's resolution, as in the paper's own
  // "evaluate Eq. 1 for increasing T" procedure).
  for (const auto& iv : profile.intervals()) {
    if (iv.current <= 0.0) continue;
    double lo = iv.start;
    if (model.charge_lost(profile, lo) >= alpha) return lo;
    const double step = iv.duration / opts.samples_per_interval;
    for (int j = 1; j <= opts.samples_per_interval; ++j) {
      const double t = (j == opts.samples_per_interval) ? iv.end() : iv.start + j * step;
      if (model.charge_lost(profile, t) >= alpha)
        return bisect_crossing(model, profile, alpha, lo, t, opts.tolerance);
      lo = t;
    }
  }
  return std::nullopt;
}

std::optional<double> constant_load_lifetime(const BatteryModel& model, double current,
                                             double alpha, double max_time) {
  if (current <= 0.0) throw std::invalid_argument("constant_load_lifetime: current must be > 0");
  if (alpha <= 0.0) throw std::invalid_argument("constant_load_lifetime: alpha must be > 0");

  // Grow the horizon geometrically until σ(end) >= alpha, then search within.
  double horizon = alpha / current;  // ideal-battery lifetime as a starting guess
  if (!(horizon > 0.0) || !std::isfinite(horizon)) horizon = 1.0;
  while (horizon <= max_time) {
    const DischargeProfile p = constant_load(current, horizon);
    if (model.charge_lost(p, horizon) >= alpha) {
      LifetimeOptions opts;
      opts.samples_per_interval = 256;
      return find_lifetime(model, p, alpha, opts);
    }
    horizon *= 2.0;
  }
  return std::nullopt;
}

std::optional<double> BatteryModel::lifetime(const DischargeProfile& profile, double alpha) const {
  return find_lifetime(*this, profile, alpha);
}

}  // namespace basched::battery
