#include "basched/battery/rakhmatov_vrudhula.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "basched/util/assert.hpp"
#include "basched/util/fastmath.hpp"

namespace basched::battery {

namespace {

/// Stack-chunk width for batching the m = 1..M exponentials through
/// util::fastmath::batch_exp without heap allocation (the statics are
/// noexcept). M is 10 in the paper, so one chunk covers every real config;
/// larger term counts just take more chunks, same bits.
constexpr int kChunk = 32;

}  // namespace

RakhmatovVrudhulaModel::RakhmatovVrudhulaModel(double beta, int terms)
    : beta_(beta), beta_sq_(beta * beta), terms_(terms) {
  if (!(beta > 0.0) || !std::isfinite(beta))
    throw std::invalid_argument("RakhmatovVrudhulaModel: beta must be finite and > 0");
  if (terms < 1) throw std::invalid_argument("RakhmatovVrudhulaModel: terms must be >= 1");
}

double RakhmatovVrudhulaModel::series_sum(double beta_sq, int terms, double a,
                                          double b) noexcept {
  BASCHED_ASSERT(a >= -1e-12 && b >= a - 1e-12);
  a = std::max(a, 0.0);
  b = std::max(b, a);
  double ea[kChunk];
  double eb[kChunk];
  double sum = 0.0;
  for (int base = 0; base < terms; base += kChunk) {
    const int cnt = std::min(kChunk, terms - base);
    for (int i = 0; i < cnt; ++i) {
      const double m = static_cast<double>(base + i + 1);
      const double bm = beta_sq * m * m;
      ea[i] = -bm * a;
      eb[i] = -bm * b;
    }
    util::fastmath::batch_exp(std::span<double>(ea, static_cast<std::size_t>(cnt)));
    util::fastmath::batch_exp(std::span<double>(eb, static_cast<std::size_t>(cnt)));
    for (int i = 0; i < cnt; ++i) {
      const double m = static_cast<double>(base + i + 1);
      const double bm = beta_sq * m * m;
      sum += (ea[i] - eb[i]) / bm;
    }
  }
  return sum;
}

double RakhmatovVrudhulaModel::interval_term(double beta_sq, int terms, double start,
                                             double duration, double current,
                                             double t) noexcept {
  if (start >= t || current == 0.0) return 0.0;
  const double elapsed = std::min(duration, t - start);
  return current * (elapsed + 2.0 * series_sum(beta_sq, terms, t - start - elapsed, t - start));
}

void RakhmatovVrudhulaModel::advance_decay_row(double beta_sq, int terms, const double* prev_row,
                                               double prev_start, double prev_end,
                                               double prev_current, double new_start,
                                               double* out_row) noexcept {
  BASCHED_ASSERT(prev_start <= prev_end && prev_end <= new_start + 1e-12);
  const bool back_to_back = new_start == prev_end;  // e^{-β²m²·0} == 1 exactly
  double es[kChunk];
  double ee[kChunk];
  for (int base = 0; base < terms; base += kChunk) {
    const int cnt = std::min(kChunk, terms - base);
    for (int i = 0; i < cnt; ++i) {
      const double m = static_cast<double>(base + i + 1);
      const double bm = beta_sq * m * m;
      es[i] = -bm * (new_start - prev_start);
      if (!back_to_back) ee[i] = -bm * (new_start - prev_end);
    }
    util::fastmath::batch_exp(std::span<double>(es, static_cast<std::size_t>(cnt)));
    if (!back_to_back)
      util::fastmath::batch_exp(std::span<double>(ee, static_cast<std::size_t>(cnt)));
    for (int i = 0; i < cnt; ++i) {
      const double m = static_cast<double>(base + i + 1);
      const double bm = beta_sq * m * m;
      const double decay_end = back_to_back ? 1.0 : ee[i];
      out_row[base + i] = prev_row[base + i] * es[i] + prev_current * (decay_end - es[i]) / bm;
    }
  }
}

double RakhmatovVrudhulaModel::decayed_prefix_sigma(double beta_sq, int terms, const double* row,
                                                    double delivered, double since) noexcept {
  BASCHED_ASSERT(since >= -1e-12);
  since = std::max(since, 0.0);
  double ed[kChunk];
  double sigma = delivered;
  for (int base = 0; base < terms; base += kChunk) {
    const int cnt = std::min(kChunk, terms - base);
    for (int i = 0; i < cnt; ++i) {
      const double m = static_cast<double>(base + i + 1);
      const double bm = beta_sq * m * m;
      ed[i] = -bm * since;
    }
    util::fastmath::batch_exp(std::span<double>(ed, static_cast<std::size_t>(cnt)));
    for (int i = 0; i < cnt; ++i) sigma += 2.0 * row[base + i] * ed[i];
  }
  return sigma;
}

double RakhmatovVrudhulaModel::decayed_prefix_sigma_row(int terms, const double* row,
                                                        double delivered,
                                                        const double* decay) noexcept {
  double sigma = delivered;
  for (int i = 0; i < terms; ++i) sigma += 2.0 * row[i] * decay[i];
  return sigma;
}

double RakhmatovVrudhulaModel::series(double a, double b) const noexcept {
  return series_sum(beta_sq_, terms_, a, b);
}

double RakhmatovVrudhulaModel::charge_lost(std::span<const DischargeInterval> intervals,
                                           double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("RakhmatovVrudhulaModel::charge_lost: t must be finite and >= 0");
  full_evaluations_.fetch_add(1, std::memory_order_relaxed);
  double sigma = 0.0;
  for (const auto& iv : intervals) {
    if (iv.start >= t) break;  // intervals are sorted; nothing after t contributes
    // delivered charge + 2 * unavailable-charge series, per Eq. 1. For an
    // interval still active at t, (t - start - elapsed) == 0 and the series'
    // first exponential is exp(0) = 1, which is exactly the model's
    // "discharge in progress" form.
    sigma += interval_term(beta_sq_, terms_, iv.start, iv.duration, iv.current, t);
  }
  return sigma;
}

double RakhmatovVrudhulaModel::unavailable_charge(const DischargeProfile& profile, double t) const {
  double delivered = 0.0;
  for (const auto& iv : profile.intervals()) {
    if (iv.start >= t) break;
    delivered += iv.current * std::min(iv.duration, t - iv.start);
  }
  return charge_lost(profile, t) - delivered;
}

}  // namespace basched::battery
