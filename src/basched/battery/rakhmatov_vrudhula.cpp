#include "basched/battery/rakhmatov_vrudhula.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::battery {

RakhmatovVrudhulaModel::RakhmatovVrudhulaModel(double beta, int terms)
    : beta_(beta), beta_sq_(beta * beta), terms_(terms) {
  if (!(beta > 0.0) || !std::isfinite(beta))
    throw std::invalid_argument("RakhmatovVrudhulaModel: beta must be finite and > 0");
  if (terms < 1) throw std::invalid_argument("RakhmatovVrudhulaModel: terms must be >= 1");
}

double RakhmatovVrudhulaModel::series_sum(double beta_sq, int terms, double a,
                                          double b) noexcept {
  BASCHED_ASSERT(a >= -1e-12 && b >= a - 1e-12);
  a = std::max(a, 0.0);
  b = std::max(b, a);
  double sum = 0.0;
  for (int m = 1; m <= terms; ++m) {
    const double bm = beta_sq * static_cast<double>(m) * static_cast<double>(m);
    sum += (std::exp(-bm * a) - std::exp(-bm * b)) / bm;
  }
  return sum;
}

double RakhmatovVrudhulaModel::interval_term(double beta_sq, int terms, double start,
                                             double duration, double current,
                                             double t) noexcept {
  if (start >= t || current == 0.0) return 0.0;
  const double elapsed = std::min(duration, t - start);
  return current * (elapsed + 2.0 * series_sum(beta_sq, terms, t - start - elapsed, t - start));
}

double RakhmatovVrudhulaModel::series(double a, double b) const noexcept {
  return series_sum(beta_sq_, terms_, a, b);
}

double RakhmatovVrudhulaModel::charge_lost(const DischargeProfile& profile, double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("RakhmatovVrudhulaModel::charge_lost: t must be finite and >= 0");
  full_evaluations_.fetch_add(1, std::memory_order_relaxed);
  double sigma = 0.0;
  for (const auto& iv : profile.intervals()) {
    if (iv.start >= t) break;  // intervals are sorted; nothing after t contributes
    // delivered charge + 2 * unavailable-charge series, per Eq. 1. For an
    // interval still active at t, (t - start - elapsed) == 0 and the series'
    // first exponential is exp(0) = 1, which is exactly the model's
    // "discharge in progress" form.
    sigma += interval_term(beta_sq_, terms_, iv.start, iv.duration, iv.current, t);
  }
  return sigma;
}

double RakhmatovVrudhulaModel::unavailable_charge(const DischargeProfile& profile, double t) const {
  double delivered = 0.0;
  for (const auto& iv : profile.intervals()) {
    if (iv.start >= t) break;
    delivered += iv.current * std::min(iv.duration, t - iv.start);
  }
  return charge_lost(profile, t) - delivered;
}

}  // namespace basched::battery
