#include "basched/battery/rakhmatov_vrudhula.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "basched/util/assert.hpp"

namespace basched::battery {

RakhmatovVrudhulaModel::RakhmatovVrudhulaModel(double beta, int terms)
    : beta_(beta), beta_sq_(beta * beta), terms_(terms) {
  if (!(beta > 0.0) || !std::isfinite(beta))
    throw std::invalid_argument("RakhmatovVrudhulaModel: beta must be finite and > 0");
  if (terms < 1) throw std::invalid_argument("RakhmatovVrudhulaModel: terms must be >= 1");
}

double RakhmatovVrudhulaModel::series_sum(double beta_sq, int terms, double a,
                                          double b) noexcept {
  BASCHED_ASSERT(a >= -1e-12 && b >= a - 1e-12);
  a = std::max(a, 0.0);
  b = std::max(b, a);
  double sum = 0.0;
  for (int m = 1; m <= terms; ++m) {
    const double bm = beta_sq * static_cast<double>(m) * static_cast<double>(m);
    sum += (std::exp(-bm * a) - std::exp(-bm * b)) / bm;
  }
  return sum;
}

double RakhmatovVrudhulaModel::interval_term(double beta_sq, int terms, double start,
                                             double duration, double current,
                                             double t) noexcept {
  if (start >= t || current == 0.0) return 0.0;
  const double elapsed = std::min(duration, t - start);
  return current * (elapsed + 2.0 * series_sum(beta_sq, terms, t - start - elapsed, t - start));
}

void RakhmatovVrudhulaModel::advance_decay_row(double beta_sq, int terms, const double* prev_row,
                                               double prev_start, double prev_end,
                                               double prev_current, double new_start,
                                               double* out_row) noexcept {
  BASCHED_ASSERT(prev_start <= prev_end && prev_end <= new_start + 1e-12);
  const bool back_to_back = new_start == prev_end;  // e^{-β²m²·0} == 1 exactly
  for (int m = 1; m <= terms; ++m) {
    const double bm = beta_sq * static_cast<double>(m) * static_cast<double>(m);
    const double decay_start = std::exp(-bm * (new_start - prev_start));
    const double decay_end = back_to_back ? 1.0 : std::exp(-bm * (new_start - prev_end));
    out_row[m - 1] =
        prev_row[m - 1] * decay_start + prev_current * (decay_end - decay_start) / bm;
  }
}

double RakhmatovVrudhulaModel::decayed_prefix_sigma(double beta_sq, int terms, const double* row,
                                                    double delivered, double since) noexcept {
  BASCHED_ASSERT(since >= -1e-12);
  since = std::max(since, 0.0);
  double sigma = delivered;
  for (int m = 1; m <= terms; ++m) {
    const double bm = beta_sq * static_cast<double>(m) * static_cast<double>(m);
    sigma += 2.0 * row[m - 1] * std::exp(-bm * since);
  }
  return sigma;
}

double RakhmatovVrudhulaModel::series(double a, double b) const noexcept {
  return series_sum(beta_sq_, terms_, a, b);
}

double RakhmatovVrudhulaModel::charge_lost(std::span<const DischargeInterval> intervals,
                                           double t) const {
  if (t < 0.0 || !std::isfinite(t))
    throw std::invalid_argument("RakhmatovVrudhulaModel::charge_lost: t must be finite and >= 0");
  full_evaluations_.fetch_add(1, std::memory_order_relaxed);
  double sigma = 0.0;
  for (const auto& iv : intervals) {
    if (iv.start >= t) break;  // intervals are sorted; nothing after t contributes
    // delivered charge + 2 * unavailable-charge series, per Eq. 1. For an
    // interval still active at t, (t - start - elapsed) == 0 and the series'
    // first exponential is exp(0) = 1, which is exactly the model's
    // "discharge in progress" form.
    sigma += interval_term(beta_sq_, terms_, iv.start, iv.duration, iv.current, t);
  }
  return sigma;
}

double RakhmatovVrudhulaModel::unavailable_charge(const DischargeProfile& profile, double t) const {
  double delivered = 0.0;
  for (const auto& iv : profile.intervals()) {
    if (iv.start >= t) break;
    delivered += iv.current * std::min(iv.duration, t - iv.start);
  }
  return charge_lost(profile, t) - delivered;
}

}  // namespace basched::battery
