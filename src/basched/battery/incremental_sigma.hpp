/// \file incremental_sigma.hpp
/// \brief Incremental σ evaluation over a *growing* discharge profile.
///
/// The hot loops of the scheduler extend a verified profile prefix by one
/// interval and re-evaluate σ: the rest-insertion bisection appends
/// (rest, task) candidates to a fixed prefix, and the window evaluator walks
/// a schedule task by task. Recomputing Eq. 1 from scratch costs
/// O(intervals · terms) per query; an IncrementalSigma amortizes the prefix
/// so each extension/query is cheap.
///
/// `BatteryModel::incremental_sigma()` returns the best evaluator the model
/// supports. The generic fallback just replays `charge_lost` (identical
/// semantics, no speedup); `RakhmatovVrudhulaModel` provides an O(terms)
/// prefix cache: for every interval boundary it stores the delivered charge
/// and the per-term decayed partial sums
///
///   A_m(k) = Σ_{j<k} I_j · (e^{-β²m²(t_k - end_j)} - e^{-β²m²(t_k - t_j)}) / (β²m²)
///
/// keyed on the profile prefix, so that
///
///   σ(T) = D(k) + 2·Σ_m A_m(k)·e^{-β²m²(T - t_k)} + (interval k's own term)
///
/// for any T with t_k <= T < t_{k+1}. All stored exponents are non-positive,
/// which keeps the recurrence numerically stable; agreement with the full
/// recomputation is ~1e-14 relative (tested to 1e-12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "basched/battery/model.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/util/fastmath.hpp"

namespace basched::battery {

/// Generic fallback evaluator: keeps a DischargeProfile and recomputes σ with
/// the model's full `charge_lost` on every query. The model must outlive the
/// evaluator.
class GenericIncrementalSigma final : public IncrementalSigma {
 public:
  explicit GenericIncrementalSigma(const BatteryModel& model) : model_(model) {}

  void append(double duration, double current) override { profile_.append(duration, current); }
  [[nodiscard]] double end_time() const noexcept override { return profile_.end_time(); }
  [[nodiscard]] double sigma(double t) const override { return model_.charge_lost(profile_, t); }
  [[nodiscard]] double sigma_with_tail(double rest, double duration, double current,
                                       double t) const override;

 private:
  const BatteryModel& model_;
  DischargeProfile profile_;
};

/// O(terms) incremental evaluator for the Rakhmatov–Vrudhula model (the
/// prefix-cache form of `RakhmatovVrudhulaModel::charge_lost`).
///
/// Copies β/terms out of the model at construction, so it remains valid even
/// if the model is destroyed. `append` is O(terms); `sigma` is
/// O(log intervals + terms) for arbitrary t and `sigma_with_tail` is
/// O(terms) — independent of how many intervals the prefix holds.
///
/// Appends are always back-to-back (rest is a zero-current interval), so the
/// decay factors the checkpoint recurrence consumes are keyed purely on the
/// previous interval's duration — they come from a per-Δt
/// util::fastmath::DecayRowCache, making a repeated-duration append (the
/// window evaluator's walk, the rest-insertion loop's task intervals)
/// exp-free. Rest durations vary per bisection probe, so expect a partial
/// hit rate there; cold keys batch through fastmath::batch_exp exactly as
/// before, same bits.
class RvIncrementalSigma final : public IncrementalSigma {
 public:
  explicit RvIncrementalSigma(const RakhmatovVrudhulaModel& model);

  /// Appends one interval at end_time(). Throws std::invalid_argument on
  /// non-positive/non-finite duration or negative/non-finite current —
  /// the same contract as DischargeProfile::append.
  void append(double duration, double current) override;

  [[nodiscard]] double end_time() const noexcept override;

  /// σ(t) of the appended profile, for any finite t >= 0.
  [[nodiscard]] double sigma(double t) const override;

  /// σ(t) of the appended profile extended by `rest` idle minutes plus one
  /// interval (duration, current) — without mutating the evaluator.
  /// Requires t >= end_time() (the tail region); throws otherwise.
  [[nodiscard]] double sigma_with_tail(double rest, double duration, double current,
                                       double t) const override;

  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }

 private:
  struct Interval {
    double start;
    double duration;
    double current;
    double delivered_before;  ///< Σ I·Δ of all earlier intervals

    [[nodiscard]] double end() const noexcept { return start + duration; }
  };

  /// σ(t) given the checkpoint of interval index k (requires t >= start_k).
  /// The per-interval Eq. 1 terms come from
  /// RakhmatovVrudhulaModel::interval_term / series_sum, so the evaluator and
  /// the full model share one formula.
  [[nodiscard]] double sigma_from_checkpoint(std::size_t k, double t) const noexcept;

  double beta_sq_;
  int terms_;
  std::vector<Interval> intervals_;
  /// decay_[k * terms_ + (m-1)] = A_m at intervals_[k].start (see file
  /// comment); one row per interval, covering all *earlier* intervals.
  std::vector<double> decay_;

  std::vector<double> bm_;  ///< β²m², m = 1..terms
  util::fastmath::DecayRowCache decay_cache_;  ///< rows e^{-β²m²·Δt} keyed on Δt
  std::vector<double> cache_scratch_;  ///< landing zone for uncacheable keys
};

}  // namespace basched::battery
