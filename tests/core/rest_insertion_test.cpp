#include "basched/core/rest_insertion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "basched/battery/lifetime.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {
namespace {

// Strong nonlinearity so recovery matters over minutes.
const battery::RakhmatovVrudhulaModel kModel(0.15);

graph::TaskGraph burst_chain() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{900.0, 3.0}, {300.0, 6.0}}));
  g.add_task(graph::Task("B", {{900.0, 3.0}, {300.0, 6.0}}));
  g.add_task(graph::Task("C", {{900.0, 3.0}, {300.0, 6.0}}));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

Schedule all_fast(const graph::TaskGraph& g) {
  return {graph::topological_order(g), uniform_assignment(g, 0)};
}

TEST(RestInsertion, SurvivesWithoutRestOnBigBattery) {
  const auto g = burst_chain();
  EXPECT_TRUE(survives_without_rest(g, all_fast(g), kModel, 1e7));
}

TEST(RestInsertion, NoRestNeededMeansEmptyPlan) {
  const auto g = burst_chain();
  const auto plan = insert_rest_for_survival(g, all_fast(g), 100.0, kModel, 1e7);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->total_rest(), 0.0);
  EXPECT_NEAR(plan->completion_time, 9.0, 1e-9);
}

TEST(RestInsertion, RestRescuesATightBattery) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  // Size the battery so the back-to-back run dies but a rested one survives:
  // slightly above the burst's peak need after recovery.
  const double sigma_all = kModel.charge_lost_at_end(s.to_profile(g));
  const double alpha = sigma_all * 0.98;
  ASSERT_FALSE(survives_without_rest(g, s, kModel, alpha));
  const auto plan = insert_rest_for_survival(g, s, 1000.0, kModel, alpha);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->total_rest(), 0.0);
  // The realized profile must actually survive.
  EXPECT_FALSE(battery::find_lifetime(kModel, plan->profile, alpha).has_value());
}

TEST(RestInsertion, RespectsDeadline) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  const double sigma_all = kModel.charge_lost_at_end(s.to_profile(g));
  const double alpha = sigma_all * 0.98;
  // A deadline barely above the work leaves almost no room for rest.
  const auto plan = insert_rest_for_survival(g, s, 9.05, kModel, alpha);
  if (plan) {
    EXPECT_LE(plan->completion_time, 9.05 + 1e-6);
    EXPECT_FALSE(battery::find_lifetime(kModel, plan->profile, alpha).has_value());
  }
  // With a generous deadline it must succeed.
  EXPECT_TRUE(insert_rest_for_survival(g, s, 1000.0, kModel, alpha).has_value());
}

TEST(RestInsertion, HopelessBatteryFails) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  // Even one task's delivered charge exceeds this capacity; no rest helps.
  const auto plan = insert_rest_for_survival(g, s, 1000.0, kModel, 100.0);
  EXPECT_FALSE(plan.has_value());
}

TEST(RestInsertion, TasksAloneMissDeadline) {
  const auto g = burst_chain();
  EXPECT_FALSE(insert_rest_for_survival(g, all_fast(g), 8.0, kModel, 1e7).has_value());
}

TEST(RestInsertion, SafetyMarginTightensTheCap) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  const double sigma_all = kModel.charge_lost_at_end(s.to_profile(g));
  const double alpha = sigma_all * 1.01;  // survives barely without margin
  RestOptions strict;
  strict.safety_margin = 0.10;
  const auto loose = insert_rest_for_survival(g, s, 1000.0, kModel, alpha);
  const auto tight = insert_rest_for_survival(g, s, 1000.0, kModel, alpha, strict);
  ASSERT_TRUE(loose.has_value());
  if (tight) { EXPECT_GE(tight->total_rest(), loose->total_rest()); }
}

TEST(RestInsertion, PlanProfileMatchesRests) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  const double alpha = kModel.charge_lost_at_end(s.to_profile(g)) * 0.98;
  const auto plan = insert_rest_for_survival(g, s, 1000.0, kModel, alpha);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->completion_time, 9.0 + plan->total_rest(), 1e-6);
  EXPECT_EQ(plan->rest_before.size(), 3u);
}

TEST(RestInsertion, Validation) {
  const auto g = burst_chain();
  const auto s = all_fast(g);
  EXPECT_THROW((void)insert_rest_for_survival(g, s, 0.0, kModel, 100.0), std::invalid_argument);
  EXPECT_THROW((void)insert_rest_for_survival(g, s, 10.0, kModel, 0.0), std::invalid_argument);
  RestOptions bad;
  bad.safety_margin = 1.0;
  EXPECT_THROW((void)insert_rest_for_survival(g, s, 10.0, kModel, 100.0, bad),
               std::invalid_argument);
  Schedule broken{{2, 1, 0}, {0, 0, 0}};
  EXPECT_THROW((void)insert_rest_for_survival(g, broken, 10.0, kModel, 100.0),
               std::invalid_argument);
  EXPECT_THROW((void)survives_without_rest(g, s, kModel, 0.0), std::invalid_argument);
}

TEST(RestInsertion, BisectionNeverReevaluatesTheFullProfile) {
  // The evaluation-count probe: with the incremental evaluator, the whole
  // greedy walk — including every bisection step — must answer its σ queries
  // from the prefix cache, never by re-evaluating the full profile through
  // RakhmatovVrudhulaModel::charge_lost.
  const auto g = burst_chain();
  const auto s = all_fast(g);
  const battery::RakhmatovVrudhulaModel model(0.15);
  const double alpha = model.charge_lost_at_end(s.to_profile(g)) * 0.98;
  const std::uint64_t before = model.full_evaluations();
  const auto plan = insert_rest_for_survival(g, s, 1000.0, model, alpha);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->total_rest(), 0.0);  // bisection actually ran
  EXPECT_EQ(model.full_evaluations(), before);
}

TEST(RestInsertion, IncrementalPlanMatchesFullModelEvaluation) {
  // The plan's peak σ, computed incrementally, must agree with a full Eq. 1
  // evaluation of the realized profile at every task boundary.
  const auto g = burst_chain();
  const auto s = all_fast(g);
  const double alpha = kModel.charge_lost_at_end(s.to_profile(g)) * 0.98;
  const auto plan = insert_rest_for_survival(g, s, 1000.0, kModel, alpha);
  ASSERT_TRUE(plan.has_value());
  double peak = 0.0;
  for (const auto& iv : plan->profile.intervals())
    if (iv.current > 0.0) peak = std::max(peak, kModel.charge_lost(plan->profile, iv.end()));
  EXPECT_NEAR(plan->peak_sigma, peak, 1e-9 * std::max(1.0, peak));
}

TEST(RestInsertion, G3WorksOnPaperGraph) {
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const Schedule s{graph::topological_order(g), uniform_assignment(g, 0)};
  const double sigma = model.charge_lost_at_end(s.to_profile(g));
  const auto plan = insert_rest_for_survival(g, s, 400.0, model, sigma * 0.97);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->total_rest(), 0.0);
  EXPECT_LE(plan->completion_time, 400.0 + 1e-6);
}

}  // namespace
}  // namespace basched::core
