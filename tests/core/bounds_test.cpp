#include "basched/core/bounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(Bounds, OrderingsBracketArbitraryOrder) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Load> loads;
    const int n = static_cast<int>(rng.uniform_int(2, 7));
    for (int i = 0; i < n; ++i) loads.push_back({rng.uniform(10, 900), rng.uniform(0.5, 8)});
    const double lower = sigma_noninc_current(loads, kModel);
    const double upper = sigma_nondec_current(loads, kModel);
    EXPECT_LE(lower, upper + 1e-9);
    rng.shuffle(loads);
    const double any = sigma_in_order(loads, kModel);
    EXPECT_GE(any, lower - 1e-9);
    EXPECT_LE(any, upper + 1e-9);
  }
}

TEST(Bounds, EqualCurrentsCollapseBounds) {
  const std::vector<Load> loads{{100, 1}, {100, 3}, {100, 2}};
  EXPECT_NEAR(sigma_noninc_current(loads, kModel), sigma_nondec_current(loads, kModel), 1e-9);
}

TEST(Bounds, SingleLoadTrivial) {
  const std::vector<Load> loads{{250, 4}};
  const double s = sigma_in_order(loads, kModel);
  EXPECT_DOUBLE_EQ(sigma_noninc_current(loads, kModel), s);
  EXPECT_DOUBLE_EQ(sigma_nondec_current(loads, kModel), s);
}

TEST(Bounds, LoadsOfExtractsChosenPoints) {
  const auto g = graph::make_g2();
  const Assignment a(g.num_tasks(), 1);
  const auto loads = loads_of(g, a);
  ASSERT_EQ(loads.size(), g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(loads[v].current, g.task(v).point(1).current);
    EXPECT_DOUBLE_EQ(loads[v].duration, g.task(v).point(1).duration);
  }
}

TEST(Bounds, SigmaBoundsOnG3) {
  const auto g = graph::make_g3();
  const Assignment a(g.num_tasks(), 3);
  const SigmaBounds b = sigma_bounds(g, a, kModel);
  EXPECT_GT(b.lower, 0.0);
  EXPECT_LE(b.lower, b.upper);
}

TEST(Bounds, StableSortKeepsDeterminism) {
  const std::vector<Load> loads{{100, 1}, {100, 2}, {50, 3}};
  EXPECT_DOUBLE_EQ(sigma_noninc_current(loads, kModel), sigma_noninc_current(loads, kModel));
}

}  // namespace
}  // namespace basched::core
