#include "basched/core/design_point_chooser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/core/list_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {
namespace {

graph::TaskGraph small_chain() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 1.0}, {400.0, 2.0}, {100.0, 4.0}}));
  g.add_task(graph::Task("B", {{600.0, 2.0}, {300.0, 4.0}, {75.0, 8.0}}));
  g.add_task(graph::Task("C", {{400.0, 1.0}, {200.0, 2.0}, {50.0, 4.0}}));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Chooser, GenerousDeadlineChoosesLowestPowerEverywhere) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  const auto a = choose_design_points(g, seq, 0, 1000.0, stats);
  EXPECT_EQ(a, (Assignment{2, 2, 2}));
}

TEST(Chooser, LastTaskPinnedToLowestPower) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  // Deadline forces upgrades, but the last task of the sequence stays at the
  // lowest-power column (paper: S(n,m) = 1).
  const auto a = choose_design_points(g, seq, 0, 10.0, stats);
  EXPECT_EQ(a[seq.back()], 2u);
}

TEST(Chooser, PinningCanBeDisabled) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  ChooserOptions opts;
  opts.pin_last_task = false;
  // Deadline of 5 requires nearly everything fast; with pinning the last
  // task alone eats 4 minutes.
  const auto pinned = choose_design_points(g, seq, 0, 5.0, stats);
  const auto free = choose_design_points(g, seq, 0, 5.0, stats, opts);
  double d_pinned = 0.0, d_free = 0.0;
  for (graph::TaskId v = 0; v < 3; ++v) {
    d_pinned += g.task(v).point(pinned[v]).duration;
    d_free += g.task(v).point(free[v]).duration;
  }
  EXPECT_GT(d_pinned, 5.0);  // pinning makes this deadline unmeetable
  EXPECT_LE(d_free, 5.0);
}

TEST(Chooser, RespectsWindow) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  for (std::size_t ws = 0; ws < 3; ++ws) {
    const auto a = choose_design_points(g, seq, ws, 1000.0, stats);
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_GE(a[v], ws);
  }
}

TEST(Chooser, MeetsTightButFeasibleDeadline) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  // Slowest = 16; last pinned at 4. Deadline 10 needs A+B <= 6 (e.g. 2+4).
  const auto a = choose_design_points(g, seq, 0, 10.0, stats);
  double d = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) d += g.task(v).point(a[v]).duration;
  EXPECT_LE(d, 10.0 + 1e-9);
}

TEST(Chooser, InvalidInputsThrow) {
  const auto g = small_chain();
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  EXPECT_THROW((void)choose_design_points(g, seq, 3, 10.0, stats), std::invalid_argument);
  EXPECT_THROW((void)choose_design_points(g, seq, 0, 0.0, stats), std::invalid_argument);
  EXPECT_THROW((void)choose_design_points(g, {2, 1, 0}, 0, 10.0, stats), std::invalid_argument);
}

TEST(Chooser, SingleTaskGraph) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.0}, {25.0, 2.0}}));
  const GraphStats stats(g);
  const auto a = choose_design_points(g, {0}, 0, 10.0, stats);
  EXPECT_EQ(a, (Assignment{1}));  // pinned to lowest power
  ChooserOptions opts;
  opts.pin_last_task = false;
  const auto b = choose_design_points(g, {0}, 0, 1.5, stats, opts);
  EXPECT_EQ(b, (Assignment{0}));  // must run fast to meet d = 1.5
}

TEST(Chooser, WiderWindowNeverForcedWorseOnG3) {
  // On G3 with the paper's deadline every window must yield a feasible
  // assignment (Table 3 shows all four windows feasible).
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  for (std::size_t ws = 0; ws <= 3; ++ws) {
    const auto a = choose_design_points(g, seq, ws, graph::kG3ExampleDeadline, stats);
    double d = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) d += g.task(v).point(a[v]).duration;
    EXPECT_LE(d, graph::kG3ExampleDeadline + 1e-9) << "window start " << ws;
  }
}

TEST(Chooser, AblationWeightsChangeSelection) {
  // With only the CR term active and a generous deadline, the lowest-current
  // points win; with only SR active, slower points are still preferred (they
  // consume more slack). The two ablations must agree here — but a CR-only
  // chooser must ignore energy entirely, which we verify by constructing a
  // task whose mid column has the lowest current but higher energy.
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{500.0, 1.0}, {100.0, 2.0}, {90.0, 10.0}}));
  g.add_task(graph::Task("B", {{500.0, 1.0}, {100.0, 2.0}, {90.0, 10.0}}));
  g.add_edge(0, 1);
  const GraphStats stats(g);
  ChooserOptions cr_only;
  cr_only.weights = {0.0, 1.0, 0.0, 0.0, 0.0};
  cr_only.pin_last_task = false;
  const auto a = choose_design_points(g, {0, 1}, 0, 1000.0, stats, cr_only);
  EXPECT_EQ(a, (Assignment{2, 2}));  // 90 mA is the smallest current
}

TEST(Chooser, AssignmentDeterministic) {
  const auto g = graph::make_g2();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const auto a = choose_design_points(g, seq, 0, 75.0, stats);
  const auto b = choose_design_points(g, seq, 0, 75.0, stats);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace basched::core
