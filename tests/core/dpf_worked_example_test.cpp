/// Reproduces the paper's Figure 4 worked example of the DPF calculation:
/// five tasks, four design-points, E = [3,4,5,1,2], T5 fixed at DP4, T4 fixed
/// at DP1, T3 tagged at DP2, T1/T2 free at DP4. The deadline forces T1 up to
/// DP2 (two upgrade moves), after which DPF = 1/3.
#include <gtest/gtest.h>

#include <cmath>

#include "basched/core/design_point_chooser.hpp"
#include "basched/core/list_scheduler.hpp"

namespace basched::core {
namespace {

/// All tasks share durations {1,2,3,4} for DP1..DP4; per-task current scale
/// orders the average energies as T3 < T4 < T5 < T1 < T2, i.e. the paper's
/// Energy Vector E = [3,4,5,1,2].
graph::TaskGraph fig4_graph() {
  graph::TaskGraph g;
  const double scale[5] = {0.8, 0.9, 0.5, 0.6, 0.7};  // T1..T5
  for (int i = 0; i < 5; ++i) {
    const double s = scale[i];
    std::string name("T");
    name += std::to_string(i + 1);
    g.add_task(graph::Task(name,
                           {{800.0 * s, 1.0}, {400.0 * s, 2.0}, {200.0 * s, 3.0},
                            {100.0 * s, 4.0}}));
  }
  return g;
}

struct Fig4State {
  graph::TaskGraph g = fig4_graph();
  std::vector<graph::TaskId> sequence{0, 1, 2, 3, 4};
  std::vector<graph::TaskId> energy_order;
  Assignment assignment{3, 3, 1, 0, 3};  // T1@DP4, T2@DP4, T3@DP2(tagged), T4@DP1, T5@DP4
  std::vector<bool> fixed_or_tagged{false, false, true, true, true};
  GraphStats stats{g};

  Fig4State() { energy_order = energy_vector(g); }
};

TEST(Fig4, EnergyVectorMatchesPaper) {
  const Fig4State s;
  // E = [3,4,5,1,2] in the paper's 1-based task labels.
  EXPECT_EQ(s.energy_order, (std::vector<graph::TaskId>{2, 3, 4, 0, 1}));
}

TEST(Fig4, DpfIsOneThirdAfterTwoUpgrades) {
  const Fig4State s;
  // Te with the tagged assignment: 4 + 4 + 2 + 1 + 4 = 15. A deadline of
  // 13.5 forces two upgrade moves of T1 (DP4 → DP3 → DP2), exactly the
  // paper's Figure 4(a)→(c) walk, leaving T1@DP2 and T2@DP4.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, /*window_start=*/0,
                                     /*deadline=*/13.5, s.stats);
  EXPECT_NEAR(f.dpf, 1.0 / 3.0, 1e-12);
}

TEST(Fig4, NoUpgradesWhenDeadlineAlreadyMet) {
  const Fig4State s;
  // d = 20 > 15: free tasks stay at DP4, whose DPF weight is 0.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 20.0, s.stats);
  EXPECT_DOUBLE_EQ(f.dpf, 0.0);
}

TEST(Fig4, SingleUpgradeYieldsDp3Histogram) {
  const Fig4State s;
  // d = 14: one move (T1 → DP3). Histogram: {0,0,1,1}/2 → 1/3·1/2 = 1/6.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 14.0, s.stats);
  EXPECT_NEAR(f.dpf, 1.0 / 6.0, 1e-12);
}

TEST(Fig4, InfeasibleDeadlineGivesInfiniteDpf) {
  const Fig4State s;
  // Even T1@DP1 and T2@DP1 leaves Te = 1+1+2+1+4 = 9 > 8.5.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 8.5, s.stats);
  EXPECT_TRUE(std::isinf(f.dpf));
}

TEST(Fig4, WindowLimitsUpgrades) {
  const Fig4State s;
  // window_start = 2 (only DP3/DP4 usable): best Te = 3+3+2+1+4 = 13 > 12.5,
  // so the tag is infeasible under this window even though DP1/DP2 exist.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 2, 12.5, s.stats);
  EXPECT_TRUE(std::isinf(f.dpf));
}

TEST(Fig4, UpgradePriorityFollowsEnergyVector) {
  const Fig4State s;
  // d = 11: moves go T1: 4→3→2→1 (fixed at window_start=0), Te = 12; then
  // T2: 4→3, Te = 11 → met. Histogram: T1@DP1, T2@DP3 → 1·1/2 + 1/3·1/2 = 2/3.
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 11.0, s.stats);
  EXPECT_NEAR(f.dpf, 2.0 / 3.0, 1e-12);
}

TEST(Fig4, LastFreeTaskUsesSlackRatio) {
  Fig4State s;
  // Make every task fixed/tagged: DPF degenerates to (d - Te)/d.
  s.fixed_or_tagged = {true, true, true, true, true};
  const double te = 4 + 4 + 2 + 1 + 4;
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 20.0, s.stats);
  EXPECT_NEAR(f.dpf, (20.0 - te) / 20.0, 1e-12);
}

TEST(Fig4, EnrAndCifComputedOnUpgradedAssignment) {
  const Fig4State s;
  const DpfFactors f = calculate_dpf(s.g, s.sequence, s.energy_order, s.assignment,
                                     s.fixed_or_tagged, 0, 13.5, s.stats);
  // After upgrades: T1@DP2(320), T2@DP4(90), T3@DP2(200), T4@DP1(480), T5@DP4(70).
  // Energy = 320·2 + 90·4 + 200·2 + 480·1 + 70·4 = 2160.
  const GraphStats st(s.g);
  EXPECT_NEAR(f.enr, (2160.0 - st.e_min) / (st.e_max - st.e_min), 1e-12);
  // Current sequence 320, 90, 200, 480, 70: increases at positions 3 and 4
  // (90→200, 200→480) → CIF = 2/4.
  EXPECT_NEAR(f.cif, 0.5, 1e-12);
}

}  // namespace
}  // namespace basched::core
