#include "basched/core/schedule_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::core {
namespace {

Schedule g2_schedule() {
  const auto g = graph::make_g2();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const auto r = schedule_battery_aware(g, 75.0, model);
  return r.schedule;
}

TEST(ScheduleIo, RoundTrip) {
  const auto g = graph::make_g2();
  const Schedule s = g2_schedule();
  const Schedule parsed = parse_schedule(g, serialize_schedule(g, s));
  EXPECT_EQ(parsed.sequence, s.sequence);
  EXPECT_EQ(parsed.assignment, s.assignment);
}

TEST(ScheduleIo, SerializeUsesOneBasedColumns) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.0}, {25.0, 2.0}}));
  const Schedule s{{0}, {1}};
  const std::string text = serialize_schedule(g, s);
  EXPECT_NE(text.find("run A 2"), std::string::npos);
}

TEST(ScheduleIo, SerializeValidates) {
  const auto g = graph::make_g2();
  Schedule bad = g2_schedule();
  std::swap(bad.sequence.front(), bad.sequence.back());
  EXPECT_THROW((void)serialize_schedule(g, bad), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsMissingHeader) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)parse_schedule(g, "run N2 1\n"), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsUnknownTask) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)parse_schedule(g, "schedule\nrun NOPE 1\n"), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsColumnOutOfRange) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)parse_schedule(g, "schedule\nrun N2 5\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_schedule(g, "schedule\nrun N2 0\n"), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsDuplicateTask) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)parse_schedule(g, "schedule\nrun N2 1\nrun N2 1\n"), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsIncompleteSchedule) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)parse_schedule(g, "schedule\nrun N2 1\n"), std::invalid_argument);
}

TEST(ScheduleIo, ParseRejectsNonTopologicalOrder) {
  const auto g = graph::make_g2();
  const Schedule s = g2_schedule();
  std::string text = "schedule\n";
  for (auto it = s.sequence.rbegin(); it != s.sequence.rend(); ++it)
    text += "run " + g.task(*it).name() + " 1\n";
  EXPECT_THROW((void)parse_schedule(g, text), std::invalid_argument);
}

TEST(ScheduleIo, ParseAllowsCommentsAndBlankLines) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.0}}));
  const Schedule parsed = parse_schedule(g, "# header comment\nschedule\n\nrun A 1 # tail\n");
  EXPECT_EQ(parsed.sequence, (std::vector<graph::TaskId>{0}));
}

TEST(ScheduleIo, ErrorsCarryLineNumbers) {
  const auto g = graph::make_g2();
  try {
    (void)parse_schedule(g, "schedule\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScheduleIo, ProfileCsvHasHeaderAndRows) {
  const auto g = graph::make_g2();
  const Schedule s = g2_schedule();
  const std::string csv = profile_csv(g, s);
  EXPECT_NE(csv.find("task,start_min,duration_min,current_mA,energy_mAmin"), std::string::npos);
  // One header + one row per task.
  std::size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + g.num_tasks());
}

TEST(ScheduleIo, ProfileCsvStartsAccumulate) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.5}}));
  g.add_task(graph::Task("B", {{50.0, 2.0}}));
  g.add_edge(0, 1);
  const Schedule s{{0, 1}, {0, 0}};
  const std::string csv = profile_csv(g, s);
  EXPECT_NE(csv.find("B,1.500000"), std::string::npos);
}

}  // namespace
}  // namespace basched::core
