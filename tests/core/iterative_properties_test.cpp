/// Property sweeps of the full algorithm over randomized task graphs.
#include <gtest/gtest.h>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/core/bounds.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph random_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  switch (seed % 4) {
    case 0:
      return graph::make_chain(6, synth, rng);
    case 1:
      return graph::make_fork_join(2, 3, synth, rng);
    case 2:
      return graph::make_layered_random(4, 3, 0.3, synth, rng);
    default:
      return graph::make_series_parallel(8, synth, rng);
  }
}

/// A deadline between all-fastest and all-slowest so the instance is tight
/// but feasible.
double mid_deadline(const graph::TaskGraph& g) {
  const double fast = g.column_time(0);
  const double slow = g.column_time(g.num_design_points() - 1);
  return fast + 0.6 * (slow - fast);
}

class IterativeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IterativeProperty, ScheduleValidAndDeadlineRespected) {
  const auto g = random_graph(GetParam());
  const double d = mid_deadline(g);
  const auto r = schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, d + 1e-6);
}

TEST_P(IterativeProperty, SigmaWithinPermutationBounds) {
  // For the final assignment, σ must lie between the non-increasing and
  // non-decreasing current orderings of the same loads ([1]'s property,
  // dependencies ignored).
  const auto g = random_graph(GetParam());
  const double d = mid_deadline(g);
  const auto r = schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(r.feasible);
  const SigmaBounds b = sigma_bounds(g, r.schedule.assignment, kModel);
  EXPECT_GE(r.sigma, b.lower - 1e-6);
  EXPECT_LE(r.sigma, b.upper + 1e-6);
}

TEST_P(IterativeProperty, NeverWorseThanAllFastestSchedule) {
  // All-fastest is always feasible at mid_deadline; the heuristic must not
  // lose to the crudest deadline-meeting answer.
  const auto g = random_graph(GetParam());
  const double d = mid_deadline(g);
  const auto r = schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(r.feasible);
  const Schedule all_fast{graph::topological_order(g), uniform_assignment(g, 0)};
  const CostResult fast_cost = calculate_battery_cost_unchecked(g, all_fast, kModel);
  EXPECT_LE(r.sigma, fast_cost.sigma + 1e-9);
}

TEST_P(IterativeProperty, GenerousDeadlineUsesLowestPowerWithoutCif) {
  // With 10× the all-slowest time and the CIF term ablated, every remaining
  // B factor (SR strictly, CR/ENR weakly, DPF = 0 since no upgrades are
  // needed) favors the lowest-power column, so the chooser must assign all
  // tasks to it. (With CIF active the full heuristic may legitimately keep
  // a task fast to avoid an increasing-current transition — the paper's own
  // Table 2 shows T3 at P1 in iteration 2 despite ample slack.)
  const auto g = random_graph(GetParam());
  const double d = 10.0 * g.column_time(g.num_design_points() - 1);
  IterativeOptions opts;
  opts.window.chooser.weights.cif = 0.0;
  const auto r = schedule_battery_aware(g, d, kModel, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment, uniform_assignment(g, g.num_design_points() - 1));
}

TEST_P(IterativeProperty, AblationsNeverBreakFeasibility) {
  const auto g = random_graph(GetParam());
  const double d = mid_deadline(g);
  for (int mask = 0; mask < 4; ++mask) {
    IterativeOptions opts;
    opts.resequence = (mask & 1) != 0;
    opts.window.sweep = (mask & 2) != 0;
    const auto r = schedule_battery_aware(g, d, kModel, opts);
    ASSERT_TRUE(r.feasible) << "mask " << mask << ": " << r.error;
    EXPECT_LE(r.duration, d + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterativeProperty, ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace basched::core
