/// Block-peek equivalence suite: the SoA block entry points
/// (peek_swap_adjacent_block, peek_replace_block, peek_extend_block) must
/// produce the *same bits* as their scalar twins on every battery model —
/// the RV path by construction (same reduction expressions over rows from
/// the same kernel, which is batch-boundary invariant), every other model by
/// per-candidate fallback. Duplicate and overlapping positions inside one
/// block are legal (lanes price independently against the unchanged prefix)
/// and covered explicitly. Probe tests pin warm blocks to O(terms) exps.
#include "basched/core/schedule_evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "basched/baselines/random_search.hpp"
#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

graph::TaskGraph random_graph(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  switch (seed % 3) {
    case 0:
      return graph::make_chain(n, synth, rng);
    case 1:
      return graph::make_series_parallel(n, synth, rng);
    default:
      return graph::make_layered_random(3, (n + 2) / 3, 0.4, synth, rng);
  }
}

Schedule random_schedule(const graph::TaskGraph& g, util::Rng& rng) {
  Schedule s;
  s.sequence = baselines::random_topological_order(g, rng);
  s.assignment.resize(g.num_tasks());
  for (auto& col : s.assignment) col = rng.pick_index(g.num_design_points());
  return s;
}

std::vector<std::unique_ptr<battery::BatteryModel>> all_models() {
  std::vector<std::unique_ptr<battery::BatteryModel>> models;
  models.push_back(std::make_unique<battery::RakhmatovVrudhulaModel>(0.273));
  models.push_back(std::make_unique<battery::RakhmatovVrudhulaModel>(0.6, 5));
  models.push_back(std::make_unique<battery::KibamModel>(0.5, 0.1, 5.0e6));
  models.push_back(std::make_unique<battery::PeukertModel>(1.2, 500.0));
  models.push_back(std::make_unique<battery::IdealModel>());
  return models;
}

/// Blocks with deliberate duplicates and overlaps: every position appears,
/// position 0 three times, and (for swaps) adjacent pairs overlap — lane
/// independence means repeats must price to the identical bits.
std::vector<std::size_t> overlapping_positions(std::size_t n_positions, util::Rng& rng) {
  std::vector<std::size_t> pos;
  for (std::size_t p = 0; p < n_positions; ++p) pos.push_back(p);
  pos.push_back(0);
  pos.push_back(0);
  for (int i = 0; i < 5; ++i) pos.push_back(rng.pick_index(n_positions));
  return pos;
}

TEST(ScheduleEvaluatorBlock, SwapBlockMatchesScalarPeeksAllModels) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 7 + seed % 4);
    util::Rng rng(seed * 11 + 3);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      const Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      const std::vector<std::size_t> pos = overlapping_positions(g.num_tasks() - 1, rng);
      std::vector<double> sigmas(pos.size());
      eval.peek_swap_adjacent_block(pos, sigmas);
      for (std::size_t j = 0; j < pos.size(); ++j) {
        EXPECT_EQ(sigmas[j], eval.peek_swap_adjacent(pos[j]))
            << model->name() << " seed=" << seed << " lane=" << j << " pos=" << pos[j];
      }
    }
  }
}

TEST(ScheduleEvaluatorBlock, ReplaceBlockMatchesScalarPeeksAllModels) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 7 + seed % 4);
    util::Rng rng(seed * 17 + 5);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      const Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      std::vector<ScheduleEvaluator::ReplaceCandidate> cands;
      for (const std::size_t p : overlapping_positions(g.num_tasks(), rng)) {
        const std::size_t col = rng.pick_index(g.num_design_points());
        const auto& pt = g.task(s.sequence[p]).point(col);
        cands.push_back({p, pt.duration, pt.current});
        // Same position, non-catalog interval: replace accepts arbitrary
        // (duration, current) pairs, blocks must too.
        cands.push_back({p, pt.duration * 1.25 + 0.5, pt.current * 0.75 + 0.1});
      }
      std::vector<double> sigmas(cands.size());
      eval.peek_replace_block(cands, sigmas);
      for (std::size_t j = 0; j < cands.size(); ++j) {
        EXPECT_EQ(sigmas[j],
                  eval.peek_replace(cands[j].pos, cands[j].duration, cands[j].current))
            << model->name() << " seed=" << seed << " lane=" << j;
      }
    }
  }
}

TEST(ScheduleEvaluatorBlock, ExtendBlockMatchesExtendSigmaPopAllModels) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 8);
    util::Rng rng(seed * 23 + 7);
    const Schedule s = random_schedule(g, rng);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      // Price the leaf fan at every prefix depth, including the empty prefix:
      // all catalog columns of the next task, plus a duplicate lane of col 0.
      for (std::size_t depth = 0; depth < g.num_tasks(); ++depth) {
        const graph::TaskId next = s.sequence[depth];
        std::vector<ScheduleEvaluator::ExtendCandidate> cands;
        for (std::size_t col = 0; col < g.num_design_points(); ++col) {
          const auto& pt = g.task(next).point(col);
          cands.push_back({pt.duration, pt.current});
        }
        cands.push_back(cands.front());  // duplicate lane
        std::vector<double> sigmas(cands.size());
        eval.peek_extend_block(cands, sigmas);
        // Reference: actually extend with the lane's column, read σ, pop.
        for (std::size_t j = 0; j < cands.size(); ++j) {
          const std::size_t col = j < g.num_design_points() ? j : 0;
          eval.extend(next, col);
          EXPECT_EQ(sigmas[j], eval.prefix_sigma())
              << model->name() << " seed=" << seed << " depth=" << depth << " lane=" << j;
          eval.pop();
        }
        eval.extend(next, s.assignment[next]);
      }
    }
  }
}

TEST(ScheduleEvaluatorBlock, WarmSwapBlockStaysUnderTwoTermsExps) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(2, 12);
  util::Rng rng(99);
  const Schedule s = random_schedule(g, rng);
  ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(s);

  std::vector<std::size_t> pos;
  for (std::size_t p = 0; p + 1 < g.num_tasks(); ++p) pos.push_back(p);
  std::vector<double> sigmas(pos.size());
  eval.peek_swap_adjacent_block(pos, sigmas);  // warms the peek-row cache

  const std::uint64_t before = util::fastmath::exp_evaluations();
  eval.peek_swap_adjacent_block(pos, sigmas);
  const std::uint64_t spent = util::fastmath::exp_evaluations() - before;
  EXPECT_LE(spent, 2u * static_cast<std::uint64_t>(model.terms()));
}

TEST(ScheduleEvaluatorBlock, WarmReplaceBlockStaysUnderTwoTermsExps) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(4, 12);
  util::Rng rng(7);
  const Schedule s = random_schedule(g, rng);
  ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(s);

  std::vector<ScheduleEvaluator::ReplaceCandidate> cands;
  for (std::size_t p = 0; p < g.num_tasks(); ++p) {
    const auto& pt = g.task(s.sequence[p]).point(0);
    cands.push_back({p, pt.duration, pt.current});
  }
  std::vector<double> sigmas(cands.size());
  eval.peek_replace_block(cands, sigmas);  // warm

  const std::uint64_t before = util::fastmath::exp_evaluations();
  eval.peek_replace_block(cands, sigmas);
  const std::uint64_t spent = util::fastmath::exp_evaluations() - before;
  EXPECT_LE(spent, 2u * static_cast<std::uint64_t>(model.terms()));
}

TEST(ScheduleEvaluatorBlock, BlockPeeksValidatePositionsBeforePricing) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(1, 6);
  util::Rng rng(3);
  const Schedule s = random_schedule(g, rng);
  ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(s);

  const std::size_t n = g.num_tasks();
  {
    const std::vector<std::size_t> bad = {0, n - 1};  // n-1 has no right neighbour
    std::vector<double> sigmas(bad.size());
    EXPECT_THROW(eval.peek_swap_adjacent_block(bad, sigmas), std::out_of_range);
  }
  {
    const std::vector<ScheduleEvaluator::ReplaceCandidate> bad = {{n, 1.0, 1.0}};
    std::vector<double> sigmas(bad.size());
    EXPECT_THROW(eval.peek_replace_block(bad, sigmas), std::out_of_range);
  }
}

TEST(ScheduleEvaluatorBlock, BlockPeeksCountOneEvaluationPerLane) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(5, 9);
  util::Rng rng(21);
  const Schedule s = random_schedule(g, rng);
  ScheduleEvaluator eval(g, model);
  (void)eval.full_eval(s);

  const std::uint64_t before = eval.evaluations();
  const std::vector<std::size_t> pos = {0, 1, 2, 0};
  std::vector<double> sigmas(pos.size());
  eval.peek_swap_adjacent_block(pos, sigmas);
  EXPECT_EQ(eval.evaluations() - before, pos.size());
}

}  // namespace
}  // namespace basched::core
