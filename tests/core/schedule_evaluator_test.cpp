/// Randomized equivalence suite for core::ScheduleEvaluator: every pricing
/// path (full_eval, extend/pop prefixes, peek_swap_adjacent, peek_replace,
/// reprice_suffix, commit_swap_adjacent, commit_replace) must agree with the
/// from-scratch full evaluation (calculate_battery_cost_unchecked) to 1e-12
/// relative, on random DAGs and random move sequences, under all four
/// built-in battery models plus an opaque custom model that exercises the
/// generic span-sweep fallback. Probe tests additionally pin the committed
/// moves to O(terms) exp evaluations via util::fastmath::exp_evaluations().
#include "basched/core/schedule_evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "basched/baselines/random_search.hpp"
#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

constexpr double kRelTol = 1e-12;

double tol_for(double a, double b) { return kRelTol * std::max({1.0, std::abs(a), std::abs(b)}); }

/// A model the evaluator has never heard of (Peukert semantics behind an
/// opaque type): forces the generic reused-buffer fallback through
/// BatteryModel::charge_lost in every suite below.
class OpaqueModel final : public battery::BatteryModel {
 public:
  [[nodiscard]] std::string name() const override { return "opaque-test-model"; }
  using battery::BatteryModel::charge_lost;
  [[nodiscard]] double charge_lost(std::span<const battery::DischargeInterval> intervals,
                                   double t) const override {
    return inner_.charge_lost(intervals, t);
  }

 private:
  battery::PeukertModel inner_{1.15, 300.0};
};

graph::TaskGraph random_graph(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  switch (seed % 4) {
    case 0:
      return graph::make_chain(n, synth, rng);
    case 1:
      return graph::make_independent(n, synth, rng);
    case 2:
      return graph::make_series_parallel(n, synth, rng);
    default:
      return graph::make_layered_random(3, (n + 2) / 3, 0.4, synth, rng);
  }
}

Schedule random_schedule(const graph::TaskGraph& g, util::Rng& rng) {
  Schedule s;
  s.sequence = baselines::random_topological_order(g, rng);
  s.assignment.resize(g.num_tasks());
  for (auto& col : s.assignment) col = rng.pick_index(g.num_design_points());
  return s;
}

/// The four built-in models plus the opaque generic-fallback model, freshly
/// constructed per test. KiBaM appears twice: a large-capacity instance
/// whose well never empties, and a small-capacity one that *dies*
/// mid-profile on many of the random schedules — exercising the sticky
/// death clamp through the checkpoint stack, peeks and commits.
std::vector<std::unique_ptr<battery::BatteryModel>> all_models() {
  std::vector<std::unique_ptr<battery::BatteryModel>> models;
  models.push_back(std::make_unique<battery::RakhmatovVrudhulaModel>(0.273));
  models.push_back(std::make_unique<battery::RakhmatovVrudhulaModel>(0.6, 5));
  models.push_back(std::make_unique<battery::KibamModel>(0.5, 0.1, 5.0e6));
  models.push_back(std::make_unique<battery::KibamModel>(0.4, 0.08, 1.5e4));
  models.push_back(std::make_unique<battery::PeukertModel>(1.2, 500.0));
  models.push_back(std::make_unique<battery::IdealModel>());
  models.push_back(std::make_unique<OpaqueModel>());
  return models;
}

TEST(ScheduleEvaluator, FullEvalMatchesFullEvaluationAllModels) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = random_graph(seed, 6 + seed % 5);
    util::Rng rng(seed * 7 + 1);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      for (int rep = 0; rep < 4; ++rep) {
        const Schedule s = random_schedule(g, rng);
        const CostResult fast = eval.full_eval(s);
        const CostResult full = calculate_battery_cost_unchecked(g, s, *model);
        EXPECT_NEAR(fast.sigma, full.sigma, tol_for(fast.sigma, full.sigma)) << model->name();
        EXPECT_NEAR(fast.duration, full.duration, tol_for(fast.duration, full.duration));
        EXPECT_NEAR(fast.energy, full.energy, tol_for(fast.energy, full.energy));
      }
    }
  }
}

TEST(ScheduleEvaluator, ExtendPopRandomWalkMatchesPrefixEvaluation) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 8);
    util::Rng rng(seed * 13 + 5);
    const Schedule s = random_schedule(g, rng);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      Schedule prefix;  // the first depth() entries of s
      prefix.assignment = s.assignment;
      // Random walk: extend with probability 0.6 (until full), else pop.
      for (int step = 0; step < 60; ++step) {
        const bool can_extend = prefix.sequence.size() < s.sequence.size();
        const bool can_pop = !prefix.sequence.empty();
        if ((rng.bernoulli(0.6) && can_extend) || !can_pop) {
          const graph::TaskId v = s.sequence[prefix.sequence.size()];
          prefix.sequence.push_back(v);
          eval.extend(v, s.assignment[v]);
        } else {
          prefix.sequence.pop_back();
          eval.pop();
        }
        ASSERT_EQ(eval.depth(), prefix.sequence.size());
        if (prefix.sequence.empty()) {
          EXPECT_EQ(eval.prefix_sigma(), 0.0);
          continue;
        }
        const CostResult full = calculate_battery_cost_unchecked(g, prefix, *model);
        const double sigma = eval.prefix_sigma();
        EXPECT_NEAR(sigma, full.sigma, tol_for(sigma, full.sigma)) << model->name();
        EXPECT_NEAR(eval.prefix_duration(), full.duration, 1e-12);
        EXPECT_NEAR(eval.prefix_energy(), full.energy, tol_for(0.0, full.energy));
      }
    }
  }
}

TEST(ScheduleEvaluator, PeekSwapAdjacentMatchesFullEvaluation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = random_graph(seed, 9);
    const std::size_t n = g.num_tasks();
    if (n < 2) continue;
    util::Rng rng(seed * 3 + 2);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      const Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      for (int rep = 0; rep < 10; ++rep) {
        const std::size_t pos = rng.pick_index(n - 1);
        // The peek prices the swapped *profile*; topological legality is the
        // caller's concern, so no has_edge filter is needed here.
        Schedule swapped = s;
        std::swap(swapped.sequence[pos], swapped.sequence[pos + 1]);
        const double peek = eval.peek_swap_adjacent(pos);
        const CostResult full = calculate_battery_cost_unchecked(g, swapped, *model);
        EXPECT_NEAR(peek, full.sigma, tol_for(peek, full.sigma))
            << model->name() << " seed=" << seed << " pos=" << pos;
      }
      // Peeks must not have mutated the loaded schedule.
      const CostResult base = calculate_battery_cost_unchecked(g, s, *model);
      const double sigma = eval.prefix_sigma();
      EXPECT_NEAR(sigma, base.sigma, tol_for(sigma, base.sigma));
    }
  }
}

TEST(ScheduleEvaluator, PeekReplaceMatchesFullEvaluation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = random_graph(seed, 9);
    const std::size_t n = g.num_tasks();
    const std::size_t m = g.num_design_points();
    util::Rng rng(seed * 11 + 4);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      const Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      for (int rep = 0; rep < 10; ++rep) {
        const std::size_t pos = rng.pick_index(n);
        const std::size_t col = rng.pick_index(m);
        const graph::TaskId v = s.sequence[pos];
        const auto& pt = g.task(v).point(col);
        Schedule bumped = s;
        bumped.assignment[v] = col;
        const double peek = eval.peek_replace(pos, pt.duration, pt.current);
        const CostResult full = calculate_battery_cost_unchecked(g, bumped, *model);
        EXPECT_NEAR(peek, full.sigma, tol_for(peek, full.sigma))
            << model->name() << " seed=" << seed << " pos=" << pos << " col=" << col;
      }
    }
  }
}

TEST(ScheduleEvaluator, RepriceSuffixOverRandomMoveSequences) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 10);
    const std::size_t n = g.num_tasks();
    const std::size_t m = g.num_design_points();
    if (n < 2) continue;
    util::Rng rng(seed * 17 + 3);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      for (int move = 0; move < 30; ++move) {
        std::size_t changed;
        if (rng.bernoulli(0.5)) {  // adjacent swap in the sequence
          changed = rng.pick_index(n - 1);
          std::swap(s.sequence[changed], s.sequence[changed + 1]);
        } else {  // design-point bump at a position
          changed = rng.pick_index(n);
          s.assignment[s.sequence[changed]] = rng.pick_index(m);
        }
        const CostResult fast = eval.reprice_suffix(s, changed);
        const CostResult full = calculate_battery_cost_unchecked(g, s, *model);
        EXPECT_NEAR(fast.sigma, full.sigma, tol_for(fast.sigma, full.sigma))
            << model->name() << " seed=" << seed << " move=" << move;
        EXPECT_NEAR(fast.duration, full.duration, 1e-12 * std::max(1.0, full.duration));
        EXPECT_NEAR(fast.energy, full.energy, tol_for(0.0, full.energy));
      }
    }
  }
}

TEST(ScheduleEvaluator, RvFastPathNeverRunsFullEvaluations) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(2, 10);
  util::Rng rng(5);
  ScheduleEvaluator eval(g, model);
  ASSERT_TRUE(eval.has_fast_path());
  const std::uint64_t before = model.full_evaluations();
  Schedule s = random_schedule(g, rng);
  (void)eval.full_eval(s);
  (void)eval.peek_swap_adjacent(0);
  (void)eval.peek_replace(1, 2.0, 400.0);
  std::swap(s.sequence[3], s.sequence[4]);
  (void)eval.reprice_suffix(s, 3);
  eval.pop();
  (void)eval.prefix_sigma();
  EXPECT_EQ(model.full_evaluations(), before);
  EXPECT_EQ(eval.evaluations(), 5u);  // full_eval + 2 peeks + reprice + prefix_sigma
}

TEST(ScheduleEvaluator, CommitMovesMatchFullEvaluationOverRandomSequences) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 10);
    const std::size_t n = g.num_tasks();
    const std::size_t m = g.num_design_points();
    if (n < 2) continue;
    util::Rng rng(seed * 23 + 9);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      // A long committed-move trajectory exercises drift: each commit
      // *rescales* the RV suffix rows instead of rebuilding them, so errors
      // could in principle accumulate — they must stay within 1e-12 of the
      // from-scratch evaluation after hundreds of commits.
      for (int move = 0; move < 200; ++move) {
        CostResult fast;
        if (rng.bernoulli(0.5)) {  // adjacent swap in the sequence
          const std::size_t pos = rng.pick_index(n - 1);
          std::swap(s.sequence[pos], s.sequence[pos + 1]);
          fast = eval.commit_swap_adjacent(pos);
        } else {  // design-point bump at a position
          const std::size_t pos = rng.pick_index(n);
          const std::size_t col = rng.pick_index(m);
          s.assignment[s.sequence[pos]] = col;
          const auto& pt = g.task(s.sequence[pos]).point(col);
          fast = eval.commit_replace(pos, pt.duration, pt.current);
        }
        const CostResult full = calculate_battery_cost_unchecked(g, s, *model);
        ASSERT_NEAR(fast.sigma, full.sigma, tol_for(fast.sigma, full.sigma))
            << model->name() << " seed=" << seed << " move=" << move;
        ASSERT_NEAR(fast.duration, full.duration, 1e-12 * std::max(1.0, full.duration));
        ASSERT_NEAR(fast.energy, full.energy, tol_for(0.0, full.energy));
      }
      // The evaluator state must still support every other path afterwards.
      const std::size_t pos = rng.pick_index(n - 1);
      Schedule swapped = s;
      std::swap(swapped.sequence[pos], swapped.sequence[pos + 1]);
      const double peek = eval.peek_swap_adjacent(pos);
      const CostResult full = calculate_battery_cost_unchecked(g, swapped, *model);
      EXPECT_NEAR(peek, full.sigma, tol_for(peek, full.sigma)) << model->name();
    }
  }
}

TEST(ScheduleEvaluator, CommitReverseSegmentMatchesFullEvaluation) {
  // Randomized trajectories of segment reversals — including immediate
  // rollbacks, the annealer's reject path — against from-scratch pricing of
  // the mutated schedule, for all models (RV's analytic bubble of
  // adjacent-swap rescales, the others' reverse + checkpoint rebuild).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 9 + seed % 4);
    const std::size_t n = g.num_tasks();
    for (const auto& model : all_models()) {
      util::Rng rng(seed * 31 + 5);
      Schedule s = random_schedule(g, rng);
      ScheduleEvaluator eval(g, *model);
      (void)eval.full_eval(s);
      for (int step = 0; step < 40; ++step) {
        const std::size_t first = rng.pick_index(n - 2);
        const std::size_t len = 3 + rng.pick_index(std::min<std::size_t>(5, n - first) - 2);
        const std::size_t last = first + len - 1;
        const CostResult committed = eval.commit_reverse_segment(first, last);
        std::reverse(s.sequence.begin() + static_cast<std::ptrdiff_t>(first),
                     s.sequence.begin() + static_cast<std::ptrdiff_t>(last) + 1);
        const CostResult full = calculate_battery_cost_unchecked(g, s, *model);
        EXPECT_NEAR(committed.sigma, full.sigma, tol_for(committed.sigma, full.sigma))
            << model->name() << " seed " << seed << " step " << step;
        EXPECT_NEAR(committed.duration, full.duration,
                    tol_for(committed.duration, full.duration));
        if (rng.bernoulli(0.4)) {
          // Roll back (reversal is its own inverse) and re-verify.
          const CostResult rolled = eval.commit_reverse_segment(first, last);
          std::reverse(s.sequence.begin() + static_cast<std::ptrdiff_t>(first),
                       s.sequence.begin() + static_cast<std::ptrdiff_t>(last) + 1);
          const CostResult full2 = calculate_battery_cost_unchecked(g, s, *model);
          EXPECT_NEAR(rolled.sigma, full2.sigma, tol_for(rolled.sigma, full2.sigma))
              << model->name() << " rollback at seed " << seed << " step " << step;
        }
      }
    }
  }
}

TEST(ScheduleEvaluator, CommitReverseSegmentValidation) {
  const auto g = random_graph(2, 6);
  const battery::RakhmatovVrudhulaModel model(0.273);
  ScheduleEvaluator eval(g, model);
  util::Rng rng(3);
  (void)eval.full_eval(random_schedule(g, rng));
  EXPECT_THROW((void)eval.commit_reverse_segment(2, 2), std::out_of_range);
  EXPECT_THROW((void)eval.commit_reverse_segment(3, 1), std::out_of_range);
  EXPECT_THROW((void)eval.commit_reverse_segment(0, eval.depth()), std::out_of_range);
}

TEST(ScheduleEvaluator, CommitsInterleaveWithExtendPopAndReprice) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = random_graph(seed, 9);
    const std::size_t n = g.num_tasks();
    const std::size_t m = g.num_design_points();
    if (n < 3) continue;
    util::Rng rng(seed * 31 + 7);
    for (const auto& model : all_models()) {
      ScheduleEvaluator eval(g, *model);
      Schedule s = random_schedule(g, rng);
      (void)eval.full_eval(s);
      for (int round = 0; round < 12; ++round) {
        // commit, then pop a few positions and re-extend from the schedule —
        // the commit must leave a prefix stack that pops cleanly.
        const std::size_t pos = rng.pick_index(n - 1);
        std::swap(s.sequence[pos], s.sequence[pos + 1]);
        (void)eval.commit_swap_adjacent(pos);
        const std::size_t keep = rng.pick_index(n);
        const CostResult fast = eval.reprice_suffix(s, keep);
        const CostResult full = calculate_battery_cost_unchecked(g, s, *model);
        ASSERT_NEAR(fast.sigma, full.sigma, tol_for(fast.sigma, full.sigma))
            << model->name() << " seed=" << seed << " round=" << round;
        const std::size_t bump = rng.pick_index(n);
        const std::size_t col = rng.pick_index(m);
        s.assignment[s.sequence[bump]] = col;
        const auto& pt = g.task(s.sequence[bump]).point(col);
        const CostResult fast2 = eval.commit_replace(bump, pt.duration, pt.current);
        const CostResult full2 = calculate_battery_cost_unchecked(g, s, *model);
        ASSERT_NEAR(fast2.sigma, full2.sigma, tol_for(fast2.sigma, full2.sigma))
            << model->name() << " seed=" << seed << " round=" << round;
      }
    }
  }
}

TEST(ScheduleEvaluator, CommittedMovesPerformOTermsExps) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const int terms = model.terms();
  const auto g = random_graph(2, 12);
  const std::size_t n = g.num_tasks();
  const std::size_t m = g.num_design_points();
  util::Rng rng(17);
  ScheduleEvaluator eval(g, model);  // ctor pre-warms the per-Δt decay cache
  Schedule s = random_schedule(g, rng);
  (void)eval.full_eval(s);
  (void)eval.prefix_sigma();  // settle the σ cache before counting

  const std::uint64_t before = util::fastmath::exp_evaluations();
  constexpr int kMoves = 50;
  for (int move = 0; move < kMoves; ++move) {
    if (move % 2 == 0) {
      const std::size_t pos = rng.pick_index(n - 1);
      std::swap(s.sequence[pos], s.sequence[pos + 1]);
      (void)eval.commit_swap_adjacent(pos);
    } else {
      const std::size_t pos = rng.pick_index(n);
      const std::size_t col = rng.pick_index(m);
      s.assignment[s.sequence[pos]] = col;
      const auto& pt = g.task(s.sequence[pos]).point(col);
      (void)eval.commit_replace(pos, pt.duration, pt.current);
    }
  }
  const std::uint64_t spent = util::fastmath::exp_evaluations() - before;
  // O(terms) exps per accepted move is the contract; with the catalog cache
  // warm the commits run exp-free, so even 2·terms per move is generous.
  // (The old reprice_suffix commit path costs ~depth/2 · terms exps per move
  // — 60·terms here — so this bound cleanly discriminates.)
  EXPECT_LE(spent, static_cast<std::uint64_t>(kMoves) * 2u * static_cast<std::uint64_t>(terms));
}

TEST(ScheduleEvaluator, OnlyOpaqueModelsReportNoFastPath) {
  const auto g = random_graph(1, 5);
  const battery::RakhmatovVrudhulaModel rv(0.273);
  const battery::KibamModel kibam(0.5, 0.1, 5.0e6);
  const battery::PeukertModel peukert(1.2, 500.0);
  const battery::IdealModel ideal;
  EXPECT_TRUE(ScheduleEvaluator(g, rv).has_fast_path());
  EXPECT_TRUE(ScheduleEvaluator(g, kibam).has_fast_path());
  EXPECT_TRUE(ScheduleEvaluator(g, peukert).has_fast_path());
  EXPECT_TRUE(ScheduleEvaluator(g, ideal).has_fast_path());
  const OpaqueModel opaque;
  EXPECT_FALSE(ScheduleEvaluator(g, opaque).has_fast_path());
}

TEST(ScheduleEvaluator, ErrorHandling) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = random_graph(3, 5);
  util::Rng rng(9);
  ScheduleEvaluator eval(g, model);
  EXPECT_THROW(eval.pop(), std::logic_error);
  EXPECT_THROW((void)eval.peek_swap_adjacent(0), std::out_of_range);
  EXPECT_THROW((void)eval.peek_replace(0, 1.0, 1.0), std::out_of_range);
  const Schedule s = random_schedule(g, rng);
  (void)eval.full_eval(s);
  EXPECT_THROW((void)eval.peek_swap_adjacent(g.num_tasks() - 1), std::out_of_range);
  EXPECT_THROW((void)eval.peek_replace(0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)eval.reprice_suffix(s, g.num_tasks() + 1), std::invalid_argument);
  EXPECT_THROW((void)eval.commit_swap_adjacent(g.num_tasks() - 1), std::out_of_range);
  EXPECT_THROW((void)eval.commit_replace(g.num_tasks(), 1.0, 1.0), std::out_of_range);
  EXPECT_THROW((void)eval.commit_replace(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)eval.commit_replace(0, 1.0, -2.0), std::invalid_argument);
}

}  // namespace
}  // namespace basched::core
