/// The shared order-tree walker: leaf enumeration must match the materialized
/// reference (graph::all_topological_orders), prefix replay must be exact
/// (the parallel frontier-split contract), and the rewired exact baselines
/// must price identically to a brute-force reference — the walker-vs-legacy
/// equivalence the refactor is gated on.
#include "basched/core/order_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/exhaustive.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph random_graph(std::uint64_t seed, std::size_t n, std::size_t m) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = m;
  switch (seed % 3) {
    case 0:
      return graph::make_series_parallel(n, synth, rng);
    case 1:
      return graph::make_fork_join(std::max<std::size_t>(1, n / 3), 2, synth, rng);
    default:
      return graph::make_independent(n, synth, rng);
  }
}

/// Collects every complete order the walker visits, pinned to column 0.
struct OrderCollector {
  std::vector<std::vector<graph::TaskId>> orders;

  bool node(OrderTreeWalker&) { return true; }
  bool enter(OrderTreeWalker&, graph::TaskId, std::size_t col, const graph::DesignPoint&) {
    return col == 0;  // one leaf per order
  }
  void leaf(OrderTreeWalker& w) { orders.push_back(w.sequence()); }
};

TEST(OrderTreeWalker, EnumeratesExactlyAllTopologicalOrdersInOrder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 6, 2);
    ScheduleEvaluator eval(g, kModel);
    OrderTreeWalker walker(g, eval);
    OrderCollector collector;
    EXPECT_TRUE(walker.walk(collector));
    const auto reference = graph::all_topological_orders(g, 100000);
    ASSERT_TRUE(reference.has_value());
    // Same orders, same (lexicographic ready-id DFS) sequence.
    EXPECT_EQ(collector.orders, *reference) << "seed " << seed;
    EXPECT_EQ(eval.depth(), 0u);  // the walk restored the evaluator
  }
}

TEST(OrderTreeWalker, SharesPrefixStateAcrossOrders) {
  // The whole point of streaming the tree: pricing every order of a fork
  // must cost far fewer extends than a per-order reset walk. Count extends
  // via the evaluator's evaluations() proxy... extends are not counted, so
  // instead verify leaf sigmas agree with per-order full pricing.
  const auto g = random_graph(3, 7, 2);
  ScheduleEvaluator eval(g, kModel);
  OrderTreeWalker walker(g, eval);
  struct PricingCollector {
    const graph::TaskGraph& g;
    std::vector<double> sigmas;
    bool node(OrderTreeWalker&) { return true; }
    bool enter(OrderTreeWalker&, graph::TaskId, std::size_t col, const graph::DesignPoint&) {
      return col == 0;
    }
    void leaf(OrderTreeWalker& w) { sigmas.push_back(w.evaluator().prefix_sigma()); }
  } collector{g, {}};
  ASSERT_TRUE(walker.walk(collector));

  const auto reference = graph::all_topological_orders(g, 100000);
  ASSERT_TRUE(reference.has_value());
  ASSERT_EQ(collector.sigmas.size(), reference->size());
  Assignment zeros(g.num_tasks(), 0);
  for (std::size_t i = 0; i < reference->size(); ++i) {
    const Schedule s{(*reference)[i], zeros};
    const double full = calculate_battery_cost_unchecked(g, s, kModel).sigma;
    EXPECT_NEAR(collector.sigmas[i], full, 1e-12 * std::max(1.0, full)) << "order " << i;
  }
}

TEST(OrderTreeWalker, StopAbortsTheWalk) {
  const auto g = random_graph(2, 6, 2);  // independent: 720 orders
  ScheduleEvaluator eval(g, kModel);
  OrderTreeWalker walker(g, eval);
  struct Stopper {
    int leaves = 0;
    bool node(OrderTreeWalker&) { return true; }
    bool enter(OrderTreeWalker&, graph::TaskId, std::size_t col, const graph::DesignPoint&) {
      return col == 0;
    }
    void leaf(OrderTreeWalker& w) {
      if (++leaves == 5) w.stop();
    }
  } stopper;
  EXPECT_FALSE(walker.walk(stopper));
  EXPECT_EQ(stopper.leaves, 5);
}

TEST(OrderTreeWalker, LoadPrefixCoversTheTreeExactlyOnce) {
  // Frontier-split contract: walking every depth-2 subtree (plus the
  // complete orders shallower than the cut — none here) visits exactly the
  // full walk's leaf set, in the same order per subtree.
  const auto g = random_graph(4, 6, 2);
  ScheduleEvaluator eval(g, kModel);
  OrderTreeWalker walker(g, eval);
  OrderCollector full;
  ASSERT_TRUE(walker.walk(full));

  // Enumerate depth-2 prefixes.
  struct PrefixCollector {
    std::vector<std::vector<graph::TaskId>> prefixes;
    bool node(OrderTreeWalker& w) {
      if (w.depth() == 2) {
        prefixes.push_back(w.sequence());
        return false;
      }
      return true;
    }
    bool enter(OrderTreeWalker&, graph::TaskId, std::size_t col, const graph::DesignPoint&) {
      return col == 0;
    }
    void leaf(OrderTreeWalker&) { FAIL() << "no complete order above depth 2 here"; }
  } prefixes;
  ASSERT_TRUE(walker.walk(prefixes));
  ASSERT_FALSE(prefixes.prefixes.empty());

  std::vector<std::vector<graph::TaskId>> stitched;
  const std::vector<std::size_t> cols(2, 0);
  for (const auto& prefix : prefixes.prefixes) {
    ScheduleEvaluator sub_eval(g, kModel);
    OrderTreeWalker sub(g, sub_eval);
    sub.load_prefix(prefix, cols);
    OrderCollector leaves;
    ASSERT_TRUE(sub.walk(leaves));
    stitched.insert(stitched.end(), leaves.orders.begin(), leaves.orders.end());
  }
  EXPECT_EQ(stitched, full.orders);
}

TEST(OrderTreeWalker, LoadPrefixValidation) {
  const auto g = graph::make_g2();
  ScheduleEvaluator eval(g, kModel);
  OrderTreeWalker walker(g, eval);
  const std::vector<std::size_t> one_col{0};
  const std::vector<std::size_t> two_cols{0, 0};
  // Not a source task.
  const graph::TaskId non_source = [&] {
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      if (!g.predecessors(v).empty()) return v;
    return graph::TaskId{0};
  }();
  EXPECT_THROW(walker.load_prefix(std::vector<graph::TaskId>{non_source}, one_col),
               std::invalid_argument);
  // Length mismatch.
  EXPECT_THROW(walker.load_prefix(std::vector<graph::TaskId>{0}, two_cols),
               std::invalid_argument);
  // Column out of range.
  EXPECT_THROW(
      walker.load_prefix(std::vector<graph::TaskId>{0},
                         std::vector<std::size_t>{g.num_design_points()}),
      std::invalid_argument);
  // A failed load leaves the walker usable.
  OrderCollector collector;
  EXPECT_TRUE(walker.walk(collector));
  EXPECT_FALSE(collector.orders.empty());
}

// ---- Walker-vs-legacy equivalence --------------------------------------
//
// The legacy exhaustive baseline materialized every topological order and
// enumerated assignments per order. Reproduce that literally (orders ×
// assignment odometer, priced from scratch) and require the rewired
// streaming baselines to find the same optimum to 1e-12.

struct BruteForceBest {
  bool feasible = false;
  double sigma = 0.0;
};

BruteForceBest brute_force(const graph::TaskGraph& g, double deadline,
                           const battery::BatteryModel& model) {
  const auto orders = graph::all_topological_orders(g, 100000);
  EXPECT_TRUE(orders.has_value());
  const std::size_t n = g.num_tasks();
  const std::size_t m = g.num_design_points();
  BruteForceBest best;
  Assignment assign(n, 0);
  for (const auto& order : *orders) {
    std::fill(assign.begin(), assign.end(), 0);
    for (;;) {
      const Schedule s{order, assign};
      if (s.duration(g) <= deadline * (1.0 + 1e-9)) {
        const double sigma = calculate_battery_cost_unchecked(g, s, model).sigma;
        if (!best.feasible || sigma < best.sigma) {
          best.feasible = true;
          best.sigma = sigma;
        }
      }
      // Odometer step over assignments.
      std::size_t i = 0;
      while (i < n && ++assign[i] == m) assign[i++] = 0;
      if (i == n) break;
    }
  }
  return best;
}

TEST(WalkerVsLegacy, ExhaustiveAndBnbMatchBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = random_graph(seed, 5, 3);
    const double d =
        g.column_time(0) + 0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
    const auto reference = brute_force(g, d, kModel);
    const auto exhaustive = baselines::schedule_exhaustive(g, d, kModel);
    const auto bnb = baselines::schedule_branch_and_bound(g, d, kModel);
    ASSERT_TRUE(exhaustive.has_value()) << "seed " << seed;
    ASSERT_EQ(exhaustive->feasible, reference.feasible) << "seed " << seed;
    ASSERT_EQ(bnb.feasible, reference.feasible) << "seed " << seed;
    if (reference.feasible) {
      const double tol = 1e-12 * std::max(1.0, reference.sigma);
      EXPECT_NEAR(exhaustive->sigma, reference.sigma, tol) << "seed " << seed;
      EXPECT_NEAR(bnb.sigma, reference.sigma, tol) << "seed " << seed;
    }
  }
}

TEST(WalkerVsLegacy, PaperGraphLifetimeAndSigmaMatchBruteForce) {
  // G3's 7-task prefix subgraph at 3 design points: small enough for the
  // literal orders × odometer reference, real paper numbers.
  const auto g3 = graph::make_g3();
  std::vector<graph::TaskId> keep;
  for (graph::TaskId v = 0; v < 7; ++v) keep.push_back(v);
  auto sub = graph::induced_subgraph(g3, keep);
  // Thin the catalog to columns {0, 2, 4} to keep m^n tractable.
  graph::TaskGraph g;
  for (graph::TaskId v = 0; v < sub.graph.num_tasks(); ++v) {
    const auto& t = sub.graph.task(v);
    g.add_task(graph::Task(t.name(), {t.point(0), t.point(2), t.point(4)}));
  }
  for (graph::TaskId v = 0; v < sub.graph.num_tasks(); ++v)
    for (graph::TaskId w : sub.graph.successors(v)) g.add_edge(v, w);

  const double d =
      g.column_time(0) + 0.5 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
  const auto reference = brute_force(g, d, kModel);
  const auto exhaustive = baselines::schedule_exhaustive(g, d, kModel);
  const auto bnb = baselines::schedule_branch_and_bound(g, d, kModel);
  ASSERT_TRUE(exhaustive.has_value());
  ASSERT_TRUE(reference.feasible);
  ASSERT_TRUE(exhaustive->feasible && bnb.feasible);
  EXPECT_FALSE(exhaustive->truncated());
  EXPECT_FALSE(bnb.truncated());
  const double tol = 1e-12 * std::max(1.0, reference.sigma);
  EXPECT_NEAR(exhaustive->sigma, reference.sigma, tol);
  EXPECT_NEAR(bnb.sigma, reference.sigma, tol);
  // Identical best-σ schedules imply identical lifetime under any capacity:
  // spot-check the σ trajectory at the deadline too.
  EXPECT_NEAR(exhaustive->duration, bnb.duration, 1e-9 * std::max(1.0, bnb.duration));
}

}  // namespace
}  // namespace basched::core
