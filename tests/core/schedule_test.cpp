#include "basched/core/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace basched::core {
namespace {

graph::TaskGraph two_task_chain() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 1.0}, {100.0, 2.0}}));
  g.add_task(graph::Task("B", {{600.0, 3.0}, {150.0, 6.0}}));
  g.add_edge(0, 1);
  return g;
}

TEST(Schedule, DurationIsOrderIndependentSum) {
  const auto g = two_task_chain();
  const Schedule s{{0, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(s.duration(g), 1.0 + 6.0);
}

TEST(Schedule, EnergySumsChosenPoints) {
  const auto g = two_task_chain();
  const Schedule s{{0, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(s.energy(g), 100.0 * 2.0 + 600.0 * 3.0);
}

TEST(Schedule, ToProfileFollowsSequenceOrder) {
  const auto g = two_task_chain();
  const Schedule s{{0, 1}, {0, 0}};
  const auto p = s.to_profile(g);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.intervals()[0].current, 400.0);
  EXPECT_DOUBLE_EQ(p.intervals()[0].duration, 1.0);
  EXPECT_DOUBLE_EQ(p.intervals()[1].current, 600.0);
  EXPECT_DOUBLE_EQ(p.end_time(), 4.0);
}

TEST(Schedule, ValidAcceptsTopologicalOrder) {
  const auto g = two_task_chain();
  EXPECT_TRUE((Schedule{{0, 1}, {0, 0}}).is_valid(g));
}

TEST(Schedule, InvalidOnDependencyViolation) {
  const auto g = two_task_chain();
  EXPECT_FALSE((Schedule{{1, 0}, {0, 0}}).is_valid(g));
  EXPECT_THROW((Schedule{{1, 0}, {0, 0}}).validate(g), std::invalid_argument);
}

TEST(Schedule, InvalidOnBadAssignmentSize) {
  const auto g = two_task_chain();
  EXPECT_FALSE((Schedule{{0, 1}, {0}}).is_valid(g));
  EXPECT_THROW((Schedule{{0, 1}, {0}}).validate(g), std::invalid_argument);
}

TEST(Schedule, InvalidOnColumnOutOfRange) {
  const auto g = two_task_chain();
  EXPECT_FALSE((Schedule{{0, 1}, {0, 2}}).is_valid(g));
  EXPECT_THROW((Schedule{{0, 1}, {0, 2}}).validate(g), std::invalid_argument);
}

TEST(Schedule, InvalidOnIncompleteSequence) {
  const auto g = two_task_chain();
  EXPECT_FALSE((Schedule{{0}, {0, 0}}).is_valid(g));
}

TEST(UniformAssignment, FillsColumn) {
  const auto g = two_task_chain();
  EXPECT_EQ(uniform_assignment(g, 1), (Assignment{1, 1}));
  EXPECT_THROW((void)uniform_assignment(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace basched::core
