#include "basched/core/battery_cost.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/ideal.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/schedule_evaluator.hpp"

namespace basched::core {
namespace {

graph::TaskGraph chain() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 2.0}, {100.0, 4.0}}));
  g.add_task(graph::Task("B", {{300.0, 1.0}, {75.0, 2.0}}));
  g.add_edge(0, 1);
  return g;
}

TEST(BatteryCost, IdealModelGivesPlainEnergy) {
  const auto g = chain();
  const battery::IdealModel m;
  const CostResult r = calculate_battery_cost(g, Schedule{{0, 1}, {0, 0}}, m);
  EXPECT_DOUBLE_EQ(r.sigma, 400.0 * 2.0 + 300.0 * 1.0);
  EXPECT_DOUBLE_EQ(r.energy, r.sigma);
  EXPECT_DOUBLE_EQ(r.duration, 3.0);
}

TEST(BatteryCost, RvSigmaExceedsEnergy) {
  const auto g = chain();
  const battery::RakhmatovVrudhulaModel m(0.273);
  const CostResult r = calculate_battery_cost(g, Schedule{{0, 1}, {0, 0}}, m);
  EXPECT_GT(r.sigma, r.energy);
}

TEST(BatteryCost, SequenceOrderMatters) {
  graph::TaskGraph g;  // independent tasks: both orders legal
  g.add_task(graph::Task("A", {{800.0, 2.0}, {100.0, 4.0}}));
  g.add_task(graph::Task("B", {{300.0, 2.0}, {60.0, 4.0}}));
  const battery::RakhmatovVrudhulaModel m(0.273);
  const CostResult high_first = calculate_battery_cost(g, Schedule{{0, 1}, {0, 0}}, m);
  const CostResult low_first = calculate_battery_cost(g, Schedule{{1, 0}, {0, 0}}, m);
  EXPECT_LT(high_first.sigma, low_first.sigma);  // the paper's §3 property
  EXPECT_DOUBLE_EQ(high_first.duration, low_first.duration);
  EXPECT_DOUBLE_EQ(high_first.energy, low_first.energy);
}

TEST(BatteryCost, ValidatesSchedule) {
  const auto g = chain();
  const battery::IdealModel m;
  EXPECT_THROW((void)calculate_battery_cost(g, Schedule{{1, 0}, {0, 0}}, m),
               std::invalid_argument);
  EXPECT_THROW((void)calculate_battery_cost(g, Schedule{{0, 1}, {0, 5}}, m),
               std::invalid_argument);
}

TEST(BatteryCost, EvaluatorMatchesFullRecomputation) {
  const auto g = chain();
  for (double beta : {0.1, 0.273, 1.0}) {
    const battery::RakhmatovVrudhulaModel m(beta);
    const Schedule s{{0, 1}, {1, 0}};
    const CostResult full = calculate_battery_cost_unchecked(g, s, m);
    ScheduleEvaluator eval(g, m);
    const CostResult inc = eval.full_eval(s);
    EXPECT_NEAR(inc.sigma, full.sigma, 1e-12 * full.sigma);
    EXPECT_DOUBLE_EQ(inc.duration, full.duration);
    EXPECT_DOUBLE_EQ(inc.energy, full.energy);
  }
}

TEST(BatteryCost, UncheckedMatchesChecked) {
  const auto g = chain();
  const battery::RakhmatovVrudhulaModel m(0.4);
  const Schedule s{{0, 1}, {1, 0}};
  const CostResult a = calculate_battery_cost(g, s, m);
  const CostResult b = calculate_battery_cost_unchecked(g, s, m);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

}  // namespace
}  // namespace basched::core
