#include "basched/core/iterative_scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(graph::kPaperBeta);

TEST(Iterative, G3ExampleProducesFeasibleSchedule) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, graph::kG3ExampleDeadline + 1e-6);
  EXPECT_GT(r.sigma, 0.0);
  EXPECT_GE(r.sigma, r.energy);  // σ includes unavailable charge
}

TEST(Iterative, TraceRecordsEveryIteration) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  ASSERT_TRUE(r.feasible);
  ASSERT_GE(r.iterations.size(), 2u);  // at least one improvement + the stop iteration
  for (const auto& rec : r.iterations) {
    EXPECT_EQ(rec.sequence.size(), g.num_tasks());
    EXPECT_TRUE(graph::is_topological_order(g, rec.sequence));
    EXPECT_FALSE(rec.windows.windows.empty());
  }
}

TEST(Iterative, PerIterationBestNeverIncreases) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  ASSERT_TRUE(r.feasible);
  // The loop only continues while improving, so the recorded best costs are
  // strictly decreasing except for the final (terminating) iteration.
  for (std::size_t i = 1; i + 1 < r.iterations.size(); ++i)
    EXPECT_LT(r.iterations[i].best_sigma, r.iterations[i - 1].best_sigma);
  if (r.iterations.size() >= 2) {
    const auto& last = r.iterations.back();
    const auto& prev = r.iterations[r.iterations.size() - 2];
    EXPECT_GE(last.best_sigma, prev.best_sigma);  // the stop condition
  }
}

TEST(Iterative, ResultIsBestOverTrace) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  ASSERT_TRUE(r.feasible);
  for (const auto& rec : r.iterations)
    if (rec.windows.feasible()) { EXPECT_LE(r.sigma, rec.best_sigma + 1e-9); }
}

TEST(Iterative, ReportedCostMatchesSchedule) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  ASSERT_TRUE(r.feasible);
  const CostResult c = calculate_battery_cost(g, r.schedule, kModel);
  EXPECT_NEAR(c.sigma, r.sigma, 1e-9);
  EXPECT_NEAR(c.duration, r.duration, 1e-9);
  EXPECT_NEAR(c.energy, r.energy, 1e-9);
}

TEST(Iterative, UnmeetableDeadlineReportsError) {
  const auto g = graph::make_g3();
  const auto r = schedule_battery_aware(g, 50.0, kModel);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(Iterative, InvalidArgumentsThrow) {
  const auto g = graph::make_g3();
  EXPECT_THROW((void)schedule_battery_aware(g, 0.0, kModel), std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_battery_aware(empty, 10.0, kModel), std::invalid_argument);
}

TEST(Iterative, G2AllPaperDeadlines) {
  const auto g = graph::make_g2();
  double prev_sigma = 0.0;
  for (double d : graph::kG2Deadlines) {
    const auto r = schedule_battery_aware(g, d, kModel);
    ASSERT_TRUE(r.feasible) << "deadline " << d << ": " << r.error;
    EXPECT_LE(r.duration, d + 1e-6);
    // Looser deadlines can only help (Table 4's monotone trend).
    if (prev_sigma > 0.0) { EXPECT_LT(r.sigma, prev_sigma); }
    prev_sigma = r.sigma;
  }
}

TEST(Iterative, G3DeadlineMonotonicity) {
  const auto g = graph::make_g3();
  double prev_sigma = 0.0;
  for (double d : graph::kG3Deadlines) {
    const auto r = schedule_battery_aware(g, d, kModel);
    ASSERT_TRUE(r.feasible) << "deadline " << d;
    if (prev_sigma > 0.0) { EXPECT_LT(r.sigma, prev_sigma); }
    prev_sigma = r.sigma;
  }
}

TEST(Iterative, ResequencingAblationStillFeasible) {
  const auto g = graph::make_g3();
  IterativeOptions opts;
  opts.resequence = false;
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.iterations.size(), 1u);  // single pass without re-sequencing
  // Full algorithm can only be at least as good.
  const auto full = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  EXPECT_LE(full.sigma, r.sigma + 1e-9);
}

TEST(Iterative, WindowAblationStillFeasible) {
  const auto g = graph::make_g3();
  IterativeOptions opts;
  opts.window.sweep = false;
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel, opts);
  ASSERT_TRUE(r.feasible);
  for (const auto& rec : r.iterations) EXPECT_EQ(rec.windows.windows.size(), 1u);
}

TEST(Iterative, MaxIterationsRespected) {
  const auto g = graph::make_g3();
  IterativeOptions opts;
  opts.max_iterations = 1;
  const auto r = schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel, opts);
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_TRUE(r.feasible);
}

TEST(Iterative, DeterministicAcrossRuns) {
  const auto g = graph::make_g2();
  const auto a = schedule_battery_aware(g, 75.0, kModel);
  const auto b = schedule_battery_aware(g, 75.0, kModel);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
}

}  // namespace
}  // namespace basched::core
