#include "basched/core/list_scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {
namespace {

graph::TaskGraph diamond(double ia = 100, double ib = 200, double ic = 300, double id = 50) {
  graph::TaskGraph g;
  auto mk = [](const std::string& n, double i) {
    return graph::Task(n, {{i, 1.0}, {i / 4.0, 2.0}});
  };
  g.add_task(mk("A", ia));
  g.add_task(mk("B", ib));
  g.add_task(mk("C", ic));
  g.add_task(mk("D", id));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(ListSchedule, PicksHighestWeightAmongReady) {
  const auto g = diamond();
  const std::vector<double> w{0.0, 1.0, 9.0, 0.0};
  const auto seq = list_schedule(g, w);
  EXPECT_EQ(seq, (std::vector<graph::TaskId>{0, 2, 1, 3}));
}

TEST(ListSchedule, TieBreaksBySmallerId) {
  const auto g = diamond();
  const std::vector<double> w{0.0, 5.0, 5.0, 0.0};
  const auto seq = list_schedule(g, w);
  EXPECT_EQ(seq[1], 1u);
}

TEST(ListSchedule, SizeMismatchThrows) {
  const auto g = diamond();
  EXPECT_THROW((void)list_schedule(g, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(ListSchedule, CycleThrows) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{1.0, 1.0}}));
  g.add_task(graph::Task("B", {{1.0, 1.0}}));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)list_schedule(g, std::vector<double>{1.0, 1.0}), std::invalid_argument);
}

TEST(SequenceDecEnergy, OrdersByAverageEnergy) {
  // C has the highest average energy among ready {B, C}.
  const auto g = diamond(100, 200, 300, 50);
  const auto seq = sequence_dec_energy(g);
  EXPECT_EQ(seq, (std::vector<graph::TaskId>{0, 2, 1, 3}));
  EXPECT_TRUE(graph::is_topological_order(g, seq));
}

TEST(SequenceDecEnergy, G3FirstTaskIsT1) {
  const auto g = graph::make_g3();
  const auto seq = sequence_dec_energy(g);
  EXPECT_EQ(g.task(seq.front()).name(), "T1");  // unique source
  EXPECT_EQ(g.task(seq.back()).name(), "T15");  // unique sink
  EXPECT_TRUE(graph::is_topological_order(g, seq));
}

TEST(WeightedSequence, UsesSubtreeCurrentSums) {
  // With everyone at column 0, w(B) = I_B + I_D, w(C) = I_C + I_D. Make B's
  // subtree heavier even though C's own current is larger.
  const auto g = diamond(100, 290, 300, 50);
  const Assignment a{0, 0, 0, 0};
  // w(B) = 290 + 50 = 340, w(C) = 300 + 50 = 350 -> C first.
  EXPECT_EQ(weighted_sequence(g, a)[1], 2u);
  // Downscale C only: w(C) = 75 + 50 = 125 < w(B) -> B first.
  const Assignment b{0, 0, 1, 0};
  EXPECT_EQ(weighted_sequence(g, b)[1], 1u);
}

TEST(WeightedSequence, AssignmentSizeChecked) {
  const auto g = diamond();
  EXPECT_THROW((void)weighted_sequence(g, Assignment{0}), std::invalid_argument);
}

TEST(GreedyMaxCurrent, UsesMaxOfOwnAndSubtreeMean) {
  // Eq. 5: w(v) = max(I_v, mean over subtree). Give B a low own current but a
  // high-current descendant-mean via D.
  const auto g = diamond(100, 120, 130, 900);
  const Assignment a{0, 0, 0, 0};
  // w(B) = max(120, (120+900)/2 = 510) = 510; w(C) = max(130, 515) = 515.
  const auto seq = greedy_max_current_sequence(g, a);
  EXPECT_EQ(seq[1], 2u);
}

TEST(GreedyMaxCurrent, SingleTask) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{10.0, 1.0}}));
  const auto seq = greedy_max_current_sequence(g, Assignment{0});
  EXPECT_EQ(seq, (std::vector<graph::TaskId>{0}));
}

TEST(EnergyVector, IncreasingAverageEnergy) {
  const auto g = diamond(100, 200, 300, 50);
  const auto ev = energy_vector(g);
  ASSERT_EQ(ev.size(), 4u);
  for (std::size_t i = 1; i < ev.size(); ++i)
    EXPECT_LE(g.task(ev[i - 1]).average_energy(), g.task(ev[i]).average_energy());
  EXPECT_EQ(ev.front(), 3u);  // D has the smallest average energy
  EXPECT_EQ(ev.back(), 2u);   // C the largest
}

TEST(MaxCurrentSequence, OrdersByOwnChosenCurrent) {
  const auto g = diamond(100, 200, 300, 50);
  // All fast: B=200, C=300 → C first among ready.
  EXPECT_EQ(max_current_sequence(g, Assignment{0, 0, 0, 0})[1], 2u);
  // Downscale C (300/4 = 75 < 200): B first.
  EXPECT_EQ(max_current_sequence(g, Assignment{0, 0, 1, 0})[1], 1u);
}

TEST(MaxCurrentSequence, AssignmentSizeChecked) {
  const auto g = diamond();
  EXPECT_THROW((void)max_current_sequence(g, Assignment{0}), std::invalid_argument);
}

TEST(CriticalPathSequence, PrefersLongerRemainingChain) {
  // A → B → D and A → C, with D long: B's chain is longer than C's even
  // though C's own duration is larger.
  graph::TaskGraph g;
  auto mk = [](const std::string& n, double d) {
    return graph::Task(n, {{100.0, d}, {25.0, 2.0 * d}});
  };
  g.add_task(mk("A", 1.0));
  g.add_task(mk("B", 1.0));
  g.add_task(mk("C", 3.0));
  g.add_task(mk("D", 5.0));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  const auto seq = critical_path_sequence(g, Assignment{0, 0, 0, 0});
  // w(B) = 1 + 5 = 6 > w(C) = 3.
  EXPECT_EQ(seq[1], 1u);
}

TEST(CriticalPathSequence, UsesChosenDurations) {
  graph::TaskGraph g;
  auto mk = [](const std::string& n, double d) {
    return graph::Task(n, {{100.0, d}, {25.0, 10.0 * d}});
  };
  g.add_task(mk("A", 1.0));
  g.add_task(mk("B", 2.0));
  g.add_task(mk("C", 3.0));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  // Fast columns: w(B) = 2 < w(C) = 3 → C first. Slow B only: w(B) = 20 → B first.
  EXPECT_EQ(critical_path_sequence(g, Assignment{0, 0, 0})[1], 2u);
  EXPECT_EQ(critical_path_sequence(g, Assignment{0, 1, 0})[1], 1u);
}

TEST(CriticalPathSequence, AssignmentSizeChecked) {
  const auto g = diamond();
  EXPECT_THROW((void)critical_path_sequence(g, Assignment{0}), std::invalid_argument);
}

TEST(EnergyVector, StableOnTies) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.0}}));
  g.add_task(graph::Task("B", {{100.0, 1.0}}));
  const auto ev = energy_vector(g);
  EXPECT_EQ(ev, (std::vector<graph::TaskId>{0, 1}));
}

}  // namespace
}  // namespace basched::core
