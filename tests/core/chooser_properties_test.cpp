/// Property sweeps of ChooseDesignPoints / EvaluateWindows over randomized
/// graphs, windows, deadlines, and factor weights.
#include <gtest/gtest.h>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/design_point_chooser.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/core/window_evaluator.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph random_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3 + seed % 3;  // m in {3, 4, 5}
  switch (seed % 3) {
    case 0:
      return graph::make_fork_join(2, 3, synth, rng);
    case 1:
      return graph::make_layered_random(4, 3, 0.3, synth, rng);
    default:
      return graph::make_series_parallel(9, synth, rng);
  }
}

class ChooserProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChooserProperty, AssignmentAlwaysInWindow) {
  const auto g = random_graph(GetParam());
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const std::size_t m = g.num_design_points();
  const double d = g.column_time(0) + 0.5 * (g.column_time(m - 1) - g.column_time(0));
  for (std::size_t ws = 0; ws < m; ++ws) {
    const auto a = choose_design_points(g, seq, ws, d, stats);
    ASSERT_EQ(a.size(), g.num_tasks());
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      EXPECT_GE(a[v], ws) << "task " << v << " window " << ws;
      EXPECT_LT(a[v], m);
    }
  }
}

TEST_P(ChooserProperty, PinnedLastTaskAlwaysLowestPower) {
  const auto g = random_graph(GetParam() ^ 0x1111ULL);
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const std::size_t m = g.num_design_points();
  for (double frac : {0.2, 0.5, 0.9}) {
    const double d = g.column_time(0) + frac * (g.column_time(m - 1) - g.column_time(0)) +
                     g.task(seq.back()).max_duration();
    const auto a = choose_design_points(g, seq, 0, d, stats);
    EXPECT_EQ(a[seq.back()], m - 1);
  }
}

TEST_P(ChooserProperty, LooserDeadlineNeverIncreasesEnergy) {
  // More slack can only push the chooser toward lower-power (lower-energy)
  // selections in aggregate. Not a strict theorem per-task, but the total
  // energy should be monotone non-increasing within small tolerance.
  const auto g = random_graph(GetParam() ^ 0x2222ULL);
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const std::size_t m = g.num_design_points();
  const double fast = g.column_time(0);
  const double slow = g.column_time(m - 1);
  double prev_energy = 1e300;
  for (double frac : {0.3, 0.6, 1.0}) {
    const double d = fast + frac * (slow - fast) + g.task(seq.back()).max_duration();
    const auto a = choose_design_points(g, seq, 0, d, stats);
    double energy = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) energy += g.task(v).point(a[v]).energy();
    EXPECT_LE(energy, prev_energy * 1.10);
    prev_energy = energy;
  }
}

TEST_P(ChooserProperty, WindowSweepBestIsMinOverWindows) {
  const auto g = random_graph(GetParam() ^ 0x3333ULL);
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const std::size_t m = g.num_design_points();
  const double d = g.column_time(0) + 0.6 * (g.column_time(m - 1) - g.column_time(0));
  const auto out = evaluate_windows(g, seq, d, kModel, stats);
  ASSERT_TRUE(out.has_value());
  if (!out->feasible()) return;
  const double best = out->best_window().sigma;
  for (const auto& w : out->windows) {
    if (w.feasible) { EXPECT_GE(w.sigma, best - 1e-9); }
    EXPECT_LE(w.window_start, m - 1);
  }
  // Window starts are distinct and descending from the sweep's start.
  for (std::size_t i = 1; i < out->windows.size(); ++i)
    EXPECT_EQ(out->windows[i].window_start + 1, out->windows[i - 1].window_start);
}

TEST_P(ChooserProperty, ZeroWeightsStillProduceValidAssignments) {
  // Degenerate ablation: all factor weights zero → B ties everywhere; the
  // chooser must still emit an in-range assignment deterministically.
  const auto g = random_graph(GetParam() ^ 0x4444ULL);
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const std::size_t m = g.num_design_points();
  const double d = g.column_time(0) + 0.7 * (g.column_time(m - 1) - g.column_time(0));
  ChooserOptions opts;
  opts.weights = {0, 0, 0, 0, 0};
  const auto a = choose_design_points(g, seq, 0, d, stats, opts);
  const auto b = choose_design_points(g, seq, 0, d, stats, opts);
  EXPECT_EQ(a, b);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_LT(a[v], m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChooserProperty, ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace basched::core
