#include "basched/core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace basched::core {
namespace {

graph::TaskGraph sample_graph() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{900.0, 1.0}, {100.0, 2.0}}));  // energies 900, 200
  g.add_task(graph::Task("B", {{500.0, 2.0}, {50.0, 4.0}}));   // energies 1000, 200
  g.add_edge(0, 1);
  return g;
}

TEST(GraphStats, ComputedFromGraph) {
  const auto g = sample_graph();
  const GraphStats s(g);
  EXPECT_DOUBLE_EQ(s.i_min, 50.0);
  EXPECT_DOUBLE_EQ(s.i_max, 900.0);
  EXPECT_DOUBLE_EQ(s.e_min, 400.0);   // both tasks at their slowest points
  EXPECT_DOUBLE_EQ(s.e_max, 1900.0);  // both at their fastest
}

TEST(SlackRatio, Definition) {
  EXPECT_DOUBLE_EQ(slack_ratio(100.0, 60.0), 0.4);
  EXPECT_DOUBLE_EQ(slack_ratio(100.0, 100.0), 0.0);
  EXPECT_LT(slack_ratio(100.0, 130.0), 0.0);  // over deadline
}

TEST(SlackRatio, RequiresPositiveDeadline) {
  EXPECT_THROW((void)slack_ratio(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)slack_ratio(-5.0, 1.0), std::invalid_argument);
}

TEST(CurrentRatio, NormalizedToUnitInterval) {
  const auto g = sample_graph();
  const GraphStats s(g);
  EXPECT_DOUBLE_EQ(current_ratio(50.0, s), 0.0);
  EXPECT_DOUBLE_EQ(current_ratio(900.0, s), 1.0);
  EXPECT_NEAR(current_ratio(475.0, s), 0.5, 1e-12);
}

TEST(CurrentRatio, DegenerateRangeIsZero) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 1.0}, {100.0, 2.0}}));
  const GraphStats s(g);
  EXPECT_DOUBLE_EQ(current_ratio(100.0, s), 0.0);
}

TEST(EnergyRatio, NormalizedToUnitInterval) {
  const auto g = sample_graph();
  const GraphStats s(g);
  EXPECT_DOUBLE_EQ(energy_ratio(400.0, s), 0.0);
  EXPECT_DOUBLE_EQ(energy_ratio(1900.0, s), 1.0);
  EXPECT_NEAR(energy_ratio(1150.0, s), 0.5, 1e-12);
}

TEST(Cif, CountsIncreasingTransitions) {
  const std::vector<double> flat{5, 5, 5};
  EXPECT_DOUBLE_EQ(current_increase_fraction(flat), 0.0);
  const std::vector<double> rising{1, 2, 3};
  EXPECT_DOUBLE_EQ(current_increase_fraction(rising), 1.0);
  const std::vector<double> mixed{3, 1, 2, 2};  // one increase out of three
  EXPECT_NEAR(current_increase_fraction(mixed), 1.0 / 3.0, 1e-12);
}

TEST(Cif, DegenerateLengths) {
  EXPECT_DOUBLE_EQ(current_increase_fraction(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(current_increase_fraction(std::vector<double>{7.0}), 0.0);
}

TEST(Cif, OfSchedule) {
  const auto g = sample_graph();
  // A@fast (900) then B@fast (500): decreasing — CIF 0.
  EXPECT_DOUBLE_EQ(current_increase_fraction(g, Schedule{{0, 1}, {0, 0}}), 0.0);
  // A@slow (100) then B@fast (500): one increase out of one — CIF 1.
  EXPECT_DOUBLE_EQ(current_increase_fraction(g, Schedule{{0, 1}, {1, 0}}), 1.0);
}

TEST(Dpf, WeightsPenalizeHighPowerColumns) {
  // m = 4: weights 1, 2/3, 1/3, 0 for columns 0..3.
  const std::vector<std::size_t> only_fastest{2, 0, 0, 0};
  EXPECT_DOUBLE_EQ(dpf_from_histogram(only_fastest, 2), 1.0);
  const std::vector<std::size_t> only_slowest{0, 0, 0, 2};
  EXPECT_DOUBLE_EQ(dpf_from_histogram(only_slowest, 2), 0.0);
  const std::vector<std::size_t> fig4{0, 1, 0, 1};  // T1@DP2, T2@DP4
  EXPECT_NEAR(dpf_from_histogram(fig4, 2), 1.0 / 3.0, 1e-12);
}

TEST(Dpf, DegenerateCases) {
  EXPECT_DOUBLE_EQ(dpf_from_histogram(std::vector<std::size_t>{3}, 3), 0.0);  // m == 1
  EXPECT_DOUBLE_EQ(dpf_from_histogram(std::vector<std::size_t>{0, 0}, 0), 0.0);
}

TEST(FactorWeights, DefaultIsPlainSum) {
  const FactorWeights w;
  EXPECT_DOUBLE_EQ(w.combine(0.1, 0.2, 0.3, 0.4, 0.5), 1.5);
}

TEST(FactorWeights, AblationScalesTerms) {
  FactorWeights w;
  w.cif = 0.0;
  w.dpf = 2.0;
  EXPECT_DOUBLE_EQ(w.combine(0.1, 0.2, 0.3, 1.0, 0.5), 0.1 + 0.2 + 0.3 + 0.0 + 1.0);
}

TEST(FactorWeights, InfeasibilitySurvivesZeroWeight) {
  FactorWeights w;
  w.dpf = 0.0;
  EXPECT_TRUE(std::isinf(w.combine(0.1, 0.2, 0.3, 0.4, kInfeasible)));
}

}  // namespace
}  // namespace basched::core
