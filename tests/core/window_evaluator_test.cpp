#include "basched/core/window_evaluator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::core {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(Windows, G3ExampleEvaluatesFourWindows) {
  // CT(4) = 219.3 <= 230 < CT(5) = 258 → start at 0-based column 3 and sweep
  // 3, 2, 1, 0 — the paper's "Win 4:5 … 1:5".
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const auto out = evaluate_windows(g, seq, graph::kG3ExampleDeadline, kModel, stats);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->windows.size(), 4u);
  EXPECT_EQ(out->windows[0].window_start, 3u);
  EXPECT_EQ(out->windows[3].window_start, 0u);
  EXPECT_TRUE(out->feasible());
  for (const auto& w : out->windows) {
    EXPECT_TRUE(w.feasible);
    EXPECT_LE(w.duration, graph::kG3ExampleDeadline + 1e-6);
    EXPECT_GT(w.sigma, 0.0);
  }
}

TEST(Windows, BestWindowHasMinimalSigma) {
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  const auto out = evaluate_windows(g, seq, graph::kG3ExampleDeadline, kModel, stats);
  ASSERT_TRUE(out.has_value() && out->feasible());
  const double best = out->best_window().sigma;
  for (const auto& w : out->windows)
    if (w.feasible) { EXPECT_GE(w.sigma, best - 1e-9); }
}

TEST(Windows, UnmeetableDeadlineReturnsNullopt) {
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  // CT(0) = 85.2 for G3; a deadline of 50 is hopeless.
  EXPECT_FALSE(evaluate_windows(g, seq, 50.0, kModel, stats).has_value());
}

TEST(Windows, TightDeadlineStartsAtWiderWindow) {
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  // d = 100: CT(1) = 162.4 > 100 > CT(0) = 85.2 → only the full window runs.
  const auto out = evaluate_windows(g, seq, 100.0, kModel, stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->windows.size(), 1u);
  EXPECT_EQ(out->windows[0].window_start, 0u);
}

TEST(Windows, SweepDisabledEvaluatesOnlyFullWindow) {
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  WindowOptions opts;
  opts.sweep = false;
  const auto out = evaluate_windows(g, seq, graph::kG3ExampleDeadline, kModel, stats, opts);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->windows.size(), 1u);
  EXPECT_EQ(out->windows[0].window_start, 0u);
}

TEST(Windows, InvalidInputsThrow) {
  const auto g = graph::make_g3();
  const GraphStats stats(g);
  auto seq = sequence_dec_energy(g);
  EXPECT_THROW((void)evaluate_windows(g, seq, 0.0, kModel, stats), std::invalid_argument);
  std::swap(seq.front(), seq.back());
  EXPECT_THROW((void)evaluate_windows(g, seq, 230.0, kModel, stats), std::invalid_argument);
}

TEST(Windows, SingleDesignPointGraph) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{100.0, 2.0}}));
  g.add_task(graph::Task("B", {{50.0, 3.0}}));
  g.add_edge(0, 1);
  const GraphStats stats(g);
  const auto seq = graph::topological_order(g);
  const auto ok = evaluate_windows(g, seq, 10.0, kModel, stats);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->feasible());
  EXPECT_EQ(ok->windows.size(), 1u);
  EXPECT_FALSE(evaluate_windows(g, seq, 4.0, kModel, stats).has_value());
}

TEST(Windows, G2AllPaperDeadlinesFeasible) {
  const auto g = graph::make_g2();
  const GraphStats stats(g);
  const auto seq = sequence_dec_energy(g);
  for (double d : graph::kG2Deadlines) {
    const auto out = evaluate_windows(g, seq, d, kModel, stats);
    ASSERT_TRUE(out.has_value()) << "deadline " << d;
    EXPECT_TRUE(out->feasible()) << "deadline " << d;
    EXPECT_LE(out->best_window().duration, d + 1e-6);
  }
}

}  // namespace
}  // namespace basched::core
