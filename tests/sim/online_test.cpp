#include "basched/sim/online.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::sim {
namespace {

const battery::RakhmatovVrudhulaModel kModel(graph::kPaperBeta);

TEST(InducedSubgraph, PreservesTasksAndEdges) {
  const auto g = graph::make_g2();
  const auto sub = graph::induced_subgraph(g, {1, 2, 3, 4});  // N2..N5
  EXPECT_EQ(sub.graph.num_tasks(), 4u);
  EXPECT_EQ(sub.original_ids, (std::vector<graph::TaskId>{1, 2, 3, 4}));
  // N2->N3, N2->N4, N3->N5, N4->N5 survive; edges to dropped nodes vanish.
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(2, 3));
  EXPECT_EQ(sub.graph.task(0).name(), "N2");
}

TEST(InducedSubgraph, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)graph::induced_subgraph(g, {}), std::invalid_argument);
  EXPECT_THROW((void)graph::induced_subgraph(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)graph::induced_subgraph(g, {99}), std::invalid_argument);
}

TEST(Online, NoiselessNeverMatchesOfflinePlan) {
  const auto g = graph::make_g3();
  OnlineOptions opts;  // Never, noiseless
  const auto r = execute_online(g, graph::kG3ExampleDeadline, kModel, opts);
  EXPECT_TRUE(r.planned);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.replans, 0);
  // The realized profile is exactly the offline schedule's.
  const auto offline = core::schedule_battery_aware(g, graph::kG3ExampleDeadline, kModel);
  EXPECT_NEAR(r.finish_time, offline.duration, 1e-9);
  EXPECT_NEAR(r.sigma, offline.sigma, 1e-9);
}

TEST(Online, NoiselessAlwaysAlsoMeetsDeadline) {
  const auto g = graph::make_g3();
  OnlineOptions opts;
  opts.policy = ReplanPolicy::Always;
  const auto r = execute_online(g, graph::kG3ExampleDeadline, kModel, opts);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.realized.size(), g.num_tasks());
}

TEST(Online, AllTasksExecutedExactlyOnce) {
  const auto g = graph::make_g2();
  for (auto policy : {ReplanPolicy::Never, ReplanPolicy::Always}) {
    OnlineOptions opts;
    opts.policy = policy;
    opts.noise = {0.7, 1.3, 42};
    const auto r = execute_online(g, 75.0, kModel, opts);
    EXPECT_EQ(r.realized.size(), g.num_tasks());
    EXPECT_GT(r.finish_time, 0.0);
    EXPECT_GT(r.sigma, 0.0);
  }
}

TEST(Online, DeterministicPerSeed) {
  const auto g = graph::make_g2();
  OnlineOptions opts;
  opts.policy = ReplanPolicy::Always;
  opts.noise = {0.8, 1.4, 7};
  const auto a = execute_online(g, 75.0, kModel, opts);
  const auto b = execute_online(g, 75.0, kModel, opts);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.replans, b.replans);
}

TEST(Online, EarlyFinishesShortenTheRun) {
  const auto g = graph::make_g2();
  OnlineOptions opts;
  opts.noise = {0.5, 0.5, 1};  // everything finishes in half the time
  const auto r = execute_online(g, 75.0, kModel, opts);
  const auto offline = core::schedule_battery_aware(g, 75.0, kModel);
  EXPECT_NEAR(r.finish_time, offline.duration * 0.5, 1e-9);
  EXPECT_TRUE(r.deadline_met);
}

TEST(Online, ReplanningHarvestsEarlyFinishes) {
  // When tasks finish early, a replanning executor can downscale the rest
  // and must never do worse on σ than blindly following the stale plan.
  const auto g = graph::make_g3();
  OnlineOptions stale, adaptive;
  stale.noise = adaptive.noise = {0.6, 0.6, 3};
  adaptive.policy = ReplanPolicy::Always;
  const auto rs = execute_online(g, graph::kG3ExampleDeadline, kModel, stale);
  const auto ra = execute_online(g, graph::kG3ExampleDeadline, kModel, adaptive);
  EXPECT_TRUE(rs.deadline_met);
  EXPECT_TRUE(ra.deadline_met);
  EXPECT_LE(ra.sigma, rs.sigma * 1.001);
  EXPECT_GT(ra.replans, 0);
}

TEST(Online, OverrunsReportedHonestly) {
  const auto g = graph::make_g2();
  OnlineOptions opts;
  opts.noise = {1.5, 1.5, 1};  // everything takes 50% longer
  const auto r = execute_online(g, 75.0, kModel, opts);
  // The offline plan nearly fills 75 minutes, so +50% must blow the deadline.
  EXPECT_FALSE(r.deadline_met);
  EXPECT_EQ(r.realized.size(), g.num_tasks());  // it still finishes the work
}

TEST(Online, ReplanningMitigatesOverruns) {
  const auto g = graph::make_g2();
  OnlineOptions stale, adaptive;
  stale.noise = adaptive.noise = {1.25, 1.25, 1};
  adaptive.policy = ReplanPolicy::Always;
  const auto rs = execute_online(g, 75.0, kModel, stale);
  const auto ra = execute_online(g, 75.0, kModel, adaptive);
  // Replanning reacts by speeding the remainder up, finishing no later.
  EXPECT_LE(ra.finish_time, rs.finish_time + 1e-9);
}

TEST(Online, UnmeetableDeadlineFallsBackToSprint) {
  const auto g = graph::make_g3();
  OnlineOptions opts;
  const auto r = execute_online(g, 50.0, kModel, opts);  // CT(0) = 85.2 > 50
  EXPECT_FALSE(r.planned);
  EXPECT_FALSE(r.deadline_met);
  EXPECT_EQ(r.realized.size(), g.num_tasks());
  EXPECT_NEAR(r.finish_time, g.column_time(0), 1e-9);
}

TEST(Online, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)execute_online(g, 0.0, kModel), std::invalid_argument);
  OnlineOptions bad;
  bad.noise = {0.0, 1.0, 1};
  EXPECT_THROW((void)execute_online(g, 75.0, kModel, bad), std::invalid_argument);
  bad.noise = {1.5, 1.0, 1};
  EXPECT_THROW((void)execute_online(g, 75.0, kModel, bad), std::invalid_argument);
}

}  // namespace
}  // namespace basched::sim
