#include "basched/sim/mission.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/ideal.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::sim {
namespace {

graph::TaskGraph small_frame() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 1.0}, {100.0, 2.0}}));
  g.add_task(graph::Task("B", {{300.0, 1.0}, {80.0, 2.0}}));
  g.add_edge(0, 1);
  return g;
}

core::Schedule frame_schedule(const graph::TaskGraph& g, std::size_t col) {
  return {graph::topological_order(g), core::uniform_assignment(g, col)};
}

TEST(Mission, IdealBatteryFrameCountIsAlphaOverFrameEnergy) {
  const auto g = small_frame();
  const auto s = frame_schedule(g, 0);  // energy 700 per frame
  const battery::IdealModel model;
  MissionSpec spec;
  spec.period = 5.0;
  spec.alpha = 3500.0;  // exactly 5 frames
  spec.max_frames = 100;
  const auto r = run_mission(g, s, spec, model);
  EXPECT_FALSE(r.battery_survived);
  // The 5th frame ends exactly at σ == α; death triggers at its last instant,
  // so 4 full frames complete before the fatal one.
  EXPECT_GE(r.frames_completed, 4);
  EXPECT_LE(r.frames_completed, 5);
}

TEST(Mission, SurvivesHorizonOnHugeBattery) {
  const auto g = small_frame();
  const battery::RakhmatovVrudhulaModel model(0.273);
  MissionSpec spec;
  spec.period = 5.0;
  spec.alpha = 1e9;
  spec.max_frames = 20;
  const auto r = run_mission(g, frame_schedule(g, 0), spec, model);
  EXPECT_TRUE(r.battery_survived);
  EXPECT_EQ(r.frames_completed, 20);
  EXPECT_GT(r.final_sigma, 0.0);
}

TEST(Mission, LowPowerScheduleLastsMoreFrames) {
  const auto g = small_frame();
  const battery::RakhmatovVrudhulaModel model(0.273);
  MissionSpec spec;
  spec.period = 6.0;
  spec.alpha = 5000.0;
  spec.max_frames = 200;
  const auto slow = run_mission(g, frame_schedule(g, 1), spec, model);  // 360 mA·min/frame
  const auto fast = run_mission(g, frame_schedule(g, 0), spec, model);  // 700 mA·min/frame
  EXPECT_GT(slow.frames_completed, fast.frames_completed);
  EXPECT_EQ(compare_missions(g, frame_schedule(g, 1), frame_schedule(g, 0), spec, model),
            slow.frames_completed - fast.frames_completed);
}

TEST(Mission, LongerPeriodNeverHurtsRecoveringBattery) {
  const auto g = small_frame();
  const battery::RakhmatovVrudhulaModel model(0.2);
  MissionSpec tight, loose;
  tight.period = 2.0;
  loose.period = 8.0;
  tight.alpha = loose.alpha = 4000.0;
  tight.max_frames = loose.max_frames = 300;
  const auto s = frame_schedule(g, 0);
  const auto rt = run_mission(g, s, tight, model);
  const auto rl = run_mission(g, s, loose, model);
  EXPECT_GE(rl.frames_completed, rt.frames_completed);
}

TEST(Mission, DeathTimeLiesInFatalFrame) {
  const auto g = small_frame();
  const battery::RakhmatovVrudhulaModel model(0.273);
  MissionSpec spec;
  spec.period = 4.0;
  spec.alpha = 3000.0;
  spec.max_frames = 100;
  const auto r = run_mission(g, frame_schedule(g, 0), spec, model);
  ASSERT_FALSE(r.battery_survived);
  const double fatal_start = r.frames_completed * spec.period;
  EXPECT_GE(r.death_time, fatal_start - 1e-6);
  EXPECT_LE(r.death_time, fatal_start + spec.period + 1e-6);
  EXPECT_NEAR(r.final_sigma, spec.alpha, spec.alpha * 1e-3);
}

TEST(Mission, BatteryAwareScheduleBeatsNaiveOnG3Mission) {
  // The headline claim of the title: the battery-aware schedule powers more
  // frames of the same mission than the all-fastest schedule.
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const auto ours = core::schedule_battery_aware(g, graph::kG3ExampleDeadline, model);
  ASSERT_TRUE(ours.feasible);
  const core::Schedule naive{ours.schedule.sequence, core::uniform_assignment(g, 0)};
  MissionSpec spec;
  spec.period = 230.0;
  spec.alpha = 120000.0;
  spec.max_frames = 60;
  const auto frames_ours = run_mission(g, ours.schedule, spec, model).frames_completed;
  const auto frames_naive = run_mission(g, naive, spec, model).frames_completed;
  EXPECT_GT(frames_ours, frames_naive);
}

TEST(Mission, Validation) {
  const auto g = small_frame();
  const battery::IdealModel model;
  MissionSpec spec;
  spec.period = 5.0;
  spec.alpha = 0.0;
  EXPECT_THROW((void)run_mission(g, frame_schedule(g, 0), spec, model), std::invalid_argument);
  spec.alpha = 100.0;
  spec.max_frames = 0;
  EXPECT_THROW((void)run_mission(g, frame_schedule(g, 0), spec, model), std::invalid_argument);
  spec.max_frames = 10;
  spec.period = 1.0;  // shorter than the 2-minute frame
  EXPECT_THROW((void)run_mission(g, frame_schedule(g, 0), spec, model), std::invalid_argument);
}

}  // namespace
}  // namespace basched::sim
