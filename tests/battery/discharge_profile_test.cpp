#include "basched/battery/discharge_profile.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace basched::battery {
namespace {

TEST(DischargeProfile, EmptyProfile) {
  DischargeProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_DOUBLE_EQ(p.end_time(), 0.0);
  EXPECT_DOUBLE_EQ(p.total_charge(), 0.0);
  EXPECT_DOUBLE_EQ(p.average_current(), 0.0);
  EXPECT_DOUBLE_EQ(p.peak_current(), 0.0);
}

TEST(DischargeProfile, AppendChainsIntervals) {
  DischargeProfile p;
  p.append(2.0, 100.0);
  p.append(3.0, 50.0);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.intervals()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(p.end_time(), 5.0);
  EXPECT_DOUBLE_EQ(p.total_charge(), 2.0 * 100.0 + 3.0 * 50.0);
}

TEST(DischargeProfile, AppendAtAllowsGaps) {
  DischargeProfile p;
  p.append_at(0.0, 1.0, 10.0);
  p.append_at(5.0, 1.0, 20.0);
  EXPECT_DOUBLE_EQ(p.end_time(), 6.0);
  EXPECT_DOUBLE_EQ(p.current_at(3.0), 0.0);  // inside the gap
}

TEST(DischargeProfile, OverlapThrows) {
  DischargeProfile p;
  p.append_at(0.0, 2.0, 10.0);
  EXPECT_THROW(p.append_at(1.0, 1.0, 5.0), std::invalid_argument);
}

TEST(DischargeProfile, NonPositiveDurationThrows) {
  DischargeProfile p;
  EXPECT_THROW(p.append(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(p.append(-1.0, 10.0), std::invalid_argument);
}

TEST(DischargeProfile, NegativeCurrentThrows) {
  DischargeProfile p;
  EXPECT_THROW(p.append(1.0, -0.5), std::invalid_argument);
}

TEST(DischargeProfile, NegativeStartThrows) {
  DischargeProfile p;
  EXPECT_THROW(p.append_at(-1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(DischargeProfile, ConstructorSortsIntervals) {
  const DischargeProfile p({{5.0, 1.0, 20.0}, {0.0, 2.0, 10.0}});
  EXPECT_DOUBLE_EQ(p.intervals().front().start, 0.0);
  EXPECT_DOUBLE_EQ(p.intervals().back().start, 5.0);
}

TEST(DischargeProfile, ConstructorDetectsOverlap) {
  EXPECT_THROW(DischargeProfile({{0.0, 2.0, 1.0}, {1.0, 2.0, 1.0}}), std::invalid_argument);
}

TEST(DischargeProfile, CurrentAt) {
  DischargeProfile p;
  p.append(2.0, 100.0);
  p.append(2.0, 50.0);
  EXPECT_DOUBLE_EQ(p.current_at(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p.current_at(1.99), 100.0);
  EXPECT_DOUBLE_EQ(p.current_at(2.0), 50.0);
  EXPECT_DOUBLE_EQ(p.current_at(4.5), 0.0);  // past the end
}

TEST(DischargeProfile, AverageAndPeak) {
  DischargeProfile p;
  p.append(1.0, 100.0);
  p.append(3.0, 20.0);
  EXPECT_DOUBLE_EQ(p.average_current(), (100.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(p.peak_current(), 100.0);
}

TEST(DischargeProfile, AppendRest) {
  DischargeProfile p;
  p.append(1.0, 10.0);
  p.append_rest(2.0);
  p.append(1.0, 10.0);
  EXPECT_DOUBLE_EQ(p.end_time(), 4.0);
  EXPECT_DOUBLE_EQ(p.current_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_charge(), 20.0);
}

TEST(DischargeProfile, SimplifiedMergesEqualAdjacents) {
  DischargeProfile p;
  p.append(1.0, 10.0);
  p.append(1.0, 10.0);
  p.append(1.0, 20.0);
  const DischargeProfile s = p.simplified();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].duration, 2.0);
  EXPECT_DOUBLE_EQ(s.total_charge(), p.total_charge());
}

TEST(DischargeProfile, SimplifiedDropsZeroCurrent) {
  DischargeProfile p;
  p.append(1.0, 10.0);
  p.append_rest(5.0);
  p.append(1.0, 10.0);
  const DischargeProfile s = p.simplified();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.total_charge(), 20.0);
}

TEST(DischargeProfile, ShiftedPreservesShape) {
  DischargeProfile p;
  p.append(2.0, 10.0);
  const DischargeProfile s = p.shifted(3.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].start, 3.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 5.0);
  EXPECT_DOUBLE_EQ(s.total_charge(), 20.0);
}

TEST(DischargeProfile, ConcatenatedRebasesOther) {
  DischargeProfile a;
  a.append(2.0, 10.0);
  DischargeProfile b;
  b.append(1.0, 5.0);
  const DischargeProfile c = a.concatenated(b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.intervals()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(c.total_charge(), 25.0);
}

TEST(DischargeProfile, ConcatenatedPreservesLeadingRestOfOther) {
  DischargeProfile a;
  a.append(2.0, 10.0);
  DischargeProfile b;  // begins with 3 minutes of rest (a gap before t = 3)
  b.append_at(3.0, 1.0, 5.0);
  const DischargeProfile c = a.concatenated(b);
  ASSERT_EQ(c.size(), 2u);
  // b's whole timeline is re-based onto a's end: the leading rest survives
  // as the gap [2, 5).
  EXPECT_DOUBLE_EQ(c.intervals()[1].start, 5.0);
  EXPECT_DOUBLE_EQ(c.end_time(), 6.0);
  EXPECT_DOUBLE_EQ(c.current_at(3.5), 0.0);
  EXPECT_DOUBLE_EQ(c.current_at(5.5), 5.0);
  EXPECT_DOUBLE_EQ(c.total_charge(), 25.0);
}

TEST(DischargeProfile, ConcatenatedWithEmptyOtherIsIdentity) {
  DischargeProfile a;
  a.append(2.0, 10.0);
  const DischargeProfile c = a.concatenated(DischargeProfile{});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.end_time(), 2.0);
}

TEST(DischargeProfile, ShiftedAcceptsNegativeDtDownToZeroStart) {
  DischargeProfile p;
  p.append_at(3.0, 2.0, 10.0);
  const DischargeProfile s = p.shifted(-3.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 2.0);
}

TEST(DischargeProfile, ShiftedRejectsDtPushingStartBelowZero) {
  DischargeProfile p;
  p.append_at(3.0, 2.0, 10.0);
  p.append_at(6.0, 1.0, 5.0);
  try {
    (void)p.shifted(-3.5);
    FAIL() << "shifted(-3.5) should have thrown";
  } catch (const std::invalid_argument& e) {
    // The error must name the real problem (dt vs. the first interval), not
    // a generic overlap/start complaint from interval revalidation.
    EXPECT_NE(std::string(e.what()).find("dt"), std::string::npos);
  }
  EXPECT_THROW((void)p.shifted(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
}

TEST(DischargeProfile, ConstantLoadHelper) {
  const DischargeProfile p = constant_load(250.0, 4.0);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.total_charge(), 1000.0);
}

TEST(DischargeProfile, IntervalAccessors) {
  const DischargeInterval iv{1.0, 2.0, 30.0};
  EXPECT_DOUBLE_EQ(iv.end(), 3.0);
  EXPECT_DOUBLE_EQ(iv.charge(), 60.0);
}

TEST(DischargeProfile, ToStringMentionsIntervals) {
  DischargeProfile p;
  p.append(1.0, 42.0);
  EXPECT_NE(p.to_string().find("42"), std::string::npos);
}

}  // namespace
}  // namespace basched::battery
