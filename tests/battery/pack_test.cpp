#include "basched/battery/pack.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/ideal.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"

namespace basched::battery {
namespace {

DischargeProfile bursts(int count, double current = 500.0, double on = 3.0, double off = 2.0) {
  DischargeProfile p;
  for (int i = 0; i < count; ++i) {
    p.append(on, current);
    if (i + 1 < count) p.append_rest(off);
  }
  return p;
}

TEST(Pack, Validation) {
  const IdealModel m;
  EXPECT_THROW(BatteryPack(m, {}), std::invalid_argument);
  EXPECT_THROW(BatteryPack(m, {100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(BatteryPack(m, {-1.0}), std::invalid_argument);
  EXPECT_NO_THROW(BatteryPack(m, {100.0}));
}

TEST(Pack, IdealCellsSplitLoadExactly) {
  const IdealModel m;
  const BatteryPack pack(m, {4000.0, 4000.0});
  const auto load = bursts(4);  // 4 × 1500 mA·min
  const auto r = pack.serve(load, PackPolicy::RoundRobin);
  ASSERT_TRUE(r.survived);
  EXPECT_EQ(r.intervals_served, 4u);
  EXPECT_EQ(r.cell_intervals[0], 2u);
  EXPECT_EQ(r.cell_intervals[1], 2u);
  EXPECT_DOUBLE_EQ(r.cell_sigma[0], 3000.0);
  EXPECT_DOUBLE_EQ(r.cell_sigma[1], 3000.0);
}

TEST(Pack, IdealPackFailsWhenCellExhausted) {
  const IdealModel m;
  const BatteryPack pack(m, {2000.0, 2000.0});
  // Each burst delivers 1500; cell 0 gets bursts 1 and 3 -> needs 3000 > 2000.
  const auto r = pack.serve(bursts(4), PackPolicy::RoundRobin);
  EXPECT_FALSE(r.survived);
  EXPECT_EQ(r.intervals_served, 2u);
  EXPECT_GT(r.failure_time, 0.0);
}

TEST(Pack, LeastLoadedReroutesWhereRoundRobinFails) {
  const IdealModel m;
  // Asymmetric pack: a big and a tiny cell. Round-robin insists on the tiny
  // cell for every second burst and dies; least-loaded keeps routing to the
  // big one.
  const BatteryPack pack(m, {10000.0, 1000.0});
  const auto load = bursts(4);  // 1500 each; tiny cell cannot take even one
  EXPECT_FALSE(pack.serve(load, PackPolicy::RoundRobin).survived);
  const auto r = pack.serve(load, PackPolicy::LeastLoaded);
  ASSERT_TRUE(r.survived);
  EXPECT_EQ(r.cell_intervals[0], 4u);
  EXPECT_EQ(r.cell_intervals[1], 0u);
}

TEST(Pack, ParallelSplitBeatsMonolithUnderPeukert) {
  // The classic multi-battery result: under a rate-nonlinear model
  // (Peukert, p > 1), halving the per-cell current more than halves the
  // per-cell apparent drain, so a parallel pack of the same *total*
  // capacity outlives the monolith. For p = 1.5 and a constant load the
  // analytic gain is 2^(p-1) = sqrt(2).
  const PeukertModel m(1.5, 100.0);
  const auto load = bursts(6, 800.0, 3.0, 1.0);
  // Monolith drain over the 6 bursts: 100·8^1.5·18 min = 40729 mA·min.
  const double total = 35000.0;  // monolith dies, parallel pack survives
  const BatteryPack pack(m, {total / 2.0, total / 2.0});
  EXPECT_FALSE(pack.serve_monolithic(load).survived);
  const auto split = pack.serve(load, PackPolicy::SplitEvenly);
  EXPECT_TRUE(split.survived);
  EXPECT_EQ(split.intervals_served, 6u);
}

TEST(Pack, SwitchingCannotBeatMonolithUnderLinearSigma) {
  // Honesty theorem: RV σ is linear in current, so time-switching between
  // two half-capacity cells cannot reduce the apparent-charge *sum*; the
  // worse-loaded cell always carries at least half the monolith's σ. Verify
  // on a burst train: max cell σ >= monolith σ / 2 at the end.
  const RakhmatovVrudhulaModel m(0.2);
  const auto load = bursts(8, 600.0, 2.0, 4.0);
  const BatteryPack pack(m, {1e9, 1e9});  // huge cells: observe σ, not death
  const auto split = pack.serve(load, PackPolicy::RoundRobin);
  ASSERT_TRUE(split.survived);
  const double mono_sigma = m.charge_lost(load, load.end_time());
  EXPECT_GE(std::max(split.cell_sigma[0], split.cell_sigma[1]), mono_sigma / 2.0 - 1e-6);
}

TEST(Pack, SplitEvenlyHalvesPerCellCurrent) {
  const IdealModel m;
  const BatteryPack pack(m, {5000.0, 5000.0});
  const auto r = pack.serve(bursts(2, 400.0, 3.0, 1.0), PackPolicy::SplitEvenly);
  ASSERT_TRUE(r.survived);
  // Each cell delivered half of 2 × 1200 = 2400.
  EXPECT_DOUBLE_EQ(r.cell_sigma[0], 1200.0);
  EXPECT_DOUBLE_EQ(r.cell_sigma[1], 1200.0);
  EXPECT_EQ(r.cell_intervals[0], 2u);
  EXPECT_EQ(r.cell_intervals[1], 2u);
}

TEST(Pack, SplitEvenlyFailsWhenAnyCellDies) {
  const IdealModel m;
  const BatteryPack pack(m, {10000.0, 500.0});  // tiny second cell
  const auto r = pack.serve(bursts(2, 800.0, 3.0, 1.0), PackPolicy::SplitEvenly);
  // Each interval puts 400 mA on each cell; 1200 mA·min > 500 kills cell 2
  // during the first burst.
  EXPECT_FALSE(r.survived);
  EXPECT_EQ(r.intervals_served, 0u);
  EXPECT_GT(r.failure_time, 0.0);
  EXPECT_LT(r.failure_time, 3.0);
}

TEST(Pack, RestGapsBenefitAllCells) {
  const RakhmatovVrudhulaModel m(0.2);
  const BatteryPack pack(m, {12000.0, 12000.0});
  // Bursts spaced by long rests: each cell's σ at the end is its delivered
  // charge plus only the *last* burst's residual transient.
  const auto r = pack.serve(bursts(4, 400.0, 2.0, 30.0), PackPolicy::RoundRobin);
  ASSERT_TRUE(r.survived);
  // Cell 0 served bursts 1 and 3 (delivered 1600); burst 3 ended 32 minutes
  // before the profile end, so its transient has mostly decayed.
  EXPECT_NEAR(r.cell_sigma[0], 1600.0, 600.0);
  // Cell 1's last burst ends the profile: transient still fully present.
  EXPECT_GT(r.cell_sigma[1], r.cell_sigma[0]);
}

TEST(Pack, ZeroCurrentIntervalsIgnored) {
  const IdealModel m;
  const BatteryPack pack(m, {1000.0});
  DischargeProfile p;
  p.append(5.0, 0.0);
  p.append(1.0, 100.0);
  const auto r = pack.serve(p, PackPolicy::RoundRobin);
  EXPECT_TRUE(r.survived);
  EXPECT_EQ(r.intervals_served, 1u);
}

TEST(Pack, SingleCellPackMatchesMonolithic) {
  const RakhmatovVrudhulaModel m(0.3);
  const BatteryPack pack(m, {6000.0});
  const auto load = bursts(3);
  const auto a = pack.serve(load, PackPolicy::RoundRobin);
  const auto b = pack.serve_monolithic(load);
  EXPECT_EQ(a.survived, b.survived);
  if (a.survived) { EXPECT_NEAR(a.cell_sigma[0], b.cell_sigma[0], 1e-9); }
}

TEST(Pack, FailureTimeWithinFailingInterval) {
  const IdealModel m;
  const BatteryPack pack(m, {2000.0});
  const auto load = bursts(2);  // second burst (starts at 5.0) exceeds capacity
  const auto r = pack.serve(load, PackPolicy::RoundRobin);
  ASSERT_FALSE(r.survived);
  EXPECT_GE(r.failure_time, 5.0);
  EXPECT_LE(r.failure_time, 8.0);
}

}  // namespace
}  // namespace basched::battery
