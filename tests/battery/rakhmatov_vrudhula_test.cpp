#include "basched/battery/rakhmatov_vrudhula.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace basched::battery {
namespace {

TEST(RvModel, ParameterValidation) {
  EXPECT_THROW(RakhmatovVrudhulaModel(0.0), std::invalid_argument);
  EXPECT_THROW(RakhmatovVrudhulaModel(-1.0), std::invalid_argument);
  EXPECT_THROW(RakhmatovVrudhulaModel(0.5, 0), std::invalid_argument);
  EXPECT_NO_THROW(RakhmatovVrudhulaModel(0.273, 10));
}

TEST(RvModel, DefaultsMatchPaper) {
  const RakhmatovVrudhulaModel m;
  EXPECT_DOUBLE_EQ(m.beta(), 0.273);
  EXPECT_EQ(m.terms(), 10);
  EXPECT_EQ(m.name(), "rakhmatov-vrudhula");
}

TEST(RvModel, SigmaZeroAtTimeZero) {
  const RakhmatovVrudhulaModel m(0.5);
  EXPECT_DOUBLE_EQ(m.charge_lost(constant_load(100.0, 10.0), 0.0), 0.0);
}

TEST(RvModel, EmptyProfileZero) {
  const RakhmatovVrudhulaModel m(0.5);
  EXPECT_DOUBLE_EQ(m.charge_lost(DischargeProfile{}, 5.0), 0.0);
}

TEST(RvModel, NegativeTimeThrows) {
  const RakhmatovVrudhulaModel m(0.5);
  EXPECT_THROW((void)m.charge_lost(constant_load(1.0, 1.0), -1.0), std::invalid_argument);
}

// Golden value computed independently: β = 0.5, I = 100 mA, Δ = 10 min,
// σ(10) = 100 · (10 + 2 · Σ_{m=1}^{10} (1 − e^{−0.25 m² · 10})/(0.25 m²)).
TEST(RvModel, GoldenSingleInterval) {
  const RakhmatovVrudhulaModel m(0.5);
  const double sigma = m.charge_lost(constant_load(100.0, 10.0), 10.0);
  EXPECT_NEAR(sigma, 2174.14, 0.05);
}

TEST(RvModel, SigmaExceedsDeliveredWhileDischarging) {
  const RakhmatovVrudhulaModel m(0.273);
  const auto p = constant_load(500.0, 20.0);
  EXPECT_GT(m.charge_lost(p, 20.0), p.total_charge());
  EXPECT_GE(m.unavailable_charge(p, 20.0), 0.0);
}

TEST(RvModel, RecoveryConvergesToDelivered) {
  const RakhmatovVrudhulaModel m(0.5);
  const auto p = constant_load(100.0, 10.0);
  // Long after the load ends, the unavailable charge has been recovered.
  EXPECT_NEAR(m.charge_lost(p, 1000.0), 1000.0, 1e-6);
  EXPECT_NEAR(m.unavailable_charge(p, 1000.0), 0.0, 1e-6);
}

TEST(RvModel, MonotoneDuringDischarge) {
  const RakhmatovVrudhulaModel m(0.273);
  const auto p = constant_load(300.0, 30.0);
  double prev = 0.0;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const double s = m.charge_lost(p, t);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(RvModel, DecreasesDuringRest) {
  const RakhmatovVrudhulaModel m(0.273);
  const auto p = constant_load(300.0, 10.0);
  const double at_end = m.charge_lost(p, 10.0);
  const double later = m.charge_lost(p, 20.0);
  EXPECT_LT(later, at_end);
  EXPECT_GE(later, p.total_charge() - 1e-9);
}

TEST(RvModel, LinearInCurrent) {
  const RakhmatovVrudhulaModel m(0.4);
  DischargeProfile p1, p3;
  p1.append(5.0, 100.0);
  p1.append(3.0, 40.0);
  p3.append(5.0, 300.0);
  p3.append(3.0, 120.0);
  EXPECT_NEAR(m.charge_lost(p3, 8.0), 3.0 * m.charge_lost(p1, 8.0), 1e-9);
}

TEST(RvModel, AdditiveOverIntervals) {
  const RakhmatovVrudhulaModel m(0.4);
  DischargeProfile both;
  both.append_at(0.0, 2.0, 100.0);
  both.append_at(5.0, 3.0, 50.0);
  DischargeProfile first, second;
  first.append_at(0.0, 2.0, 100.0);
  second.append_at(5.0, 3.0, 50.0);
  const double t = 8.0;
  EXPECT_NEAR(m.charge_lost(both, t), m.charge_lost(first, t) + m.charge_lost(second, t), 1e-9);
}

TEST(RvModel, TimeShiftInvariance) {
  const RakhmatovVrudhulaModel m(0.35);
  DischargeProfile p;
  p.append(4.0, 120.0);
  p.append(2.0, 60.0);
  const double dt = 7.5;
  EXPECT_NEAR(m.charge_lost(p, 6.0), m.charge_lost(p.shifted(dt), 6.0 + dt), 1e-9);
}

TEST(RvModel, LargeBetaApproachesIdeal) {
  const RakhmatovVrudhulaModel m(50.0);
  const auto p = constant_load(200.0, 10.0);
  EXPECT_NEAR(m.charge_lost(p, 10.0), p.total_charge(), p.total_charge() * 1e-3);
}

TEST(RvModel, SmallBetaPenalizesMore) {
  const auto p = constant_load(200.0, 10.0);
  const RakhmatovVrudhulaModel strong(0.1);
  const RakhmatovVrudhulaModel weak(1.0);
  EXPECT_GT(strong.charge_lost(p, 10.0), weak.charge_lost(p, 10.0));
}

TEST(RvModel, SeriesTruncationBehaviour) {
  // The paper truncates at 10 terms. For an interval still active at T the
  // m-th term is ~(1 − e^{−β²m²·…})/(β²m²) ≈ 1/(β²m²), so the neglected tail
  // is bounded by 2·I·Σ_{m>10} 1/(β²m²) ≈ 2I/(10β²) — a known, deliberate
  // undercount (~10-15% here), identical to the paper's cost function. More
  // terms must only *increase* σ, by no more than that bound.
  const RakhmatovVrudhulaModel m10(0.273, 10);
  const RakhmatovVrudhulaModel m60(0.273, 60);
  DischargeProfile p;
  p.append(7.3, 917.0);
  p.append(11.2, 519.0);
  p.append(5.9, 611.0);
  const double t = p.end_time();
  const double s10 = m10.charge_lost(p, t);
  const double s60 = m60.charge_lost(p, t);
  EXPECT_LE(s10, s60);  // every term is non-negative
  const double beta_sq = 0.273 * 0.273;
  const double tail_bound = 2.0 * 917.0 * 3.0 / (10.0 * beta_sq);  // crude per-interval bound
  EXPECT_LE(s60 - s10, tail_bound);
  // Long after the load, truncation does not matter (all exponentials die).
  EXPECT_NEAR(m10.charge_lost(p, t + 2000.0), m60.charge_lost(p, t + 2000.0), 1e-6);
}

TEST(RvModel, ZeroCurrentIntervalContributesNothing) {
  const RakhmatovVrudhulaModel m(0.3);
  DischargeProfile with_rest, without;
  with_rest.append(2.0, 100.0);
  with_rest.append_rest(3.0);
  without.append_at(0.0, 2.0, 100.0);
  EXPECT_NEAR(m.charge_lost(with_rest, 5.0), m.charge_lost(without, 5.0), 1e-12);
}

TEST(RvModel, PartialIntervalEvaluation) {
  // Evaluating mid-interval must equal a profile truncated at that point.
  const RakhmatovVrudhulaModel m(0.3);
  const auto full = constant_load(250.0, 10.0);
  const auto half = constant_load(250.0, 5.0);
  EXPECT_NEAR(m.charge_lost(full, 5.0), m.charge_lost(half, 5.0), 1e-9);
}

// Ordering property from [1] (§3 of the paper): for independent tasks,
// executing in non-increasing current order never hurts.
TEST(RvModel, HighCurrentFirstBeatsLowCurrentFirst) {
  const RakhmatovVrudhulaModel m(0.273);
  DischargeProfile high_first, low_first;
  high_first.append(5.0, 800.0);
  high_first.append(5.0, 100.0);
  low_first.append(5.0, 100.0);
  low_first.append(5.0, 800.0);
  EXPECT_LT(m.charge_lost(high_first, 10.0), m.charge_lost(low_first, 10.0));
}

// The [7] property (§3): spending slack on the later of two identical tasks
// is better than on the earlier one.
TEST(RvModel, SlackOnLaterTaskIsBetter) {
  const RakhmatovVrudhulaModel m(0.273);
  // Two identical tasks; the "downscaled" variant runs at half current for
  // double duration. Apply it to the first vs. the second task.
  DischargeProfile slack_early, slack_late;
  slack_early.append(8.0, 200.0);  // downscaled first task
  slack_early.append(4.0, 400.0);
  slack_late.append(4.0, 400.0);
  slack_late.append(8.0, 200.0);  // downscaled second task
  EXPECT_LT(m.charge_lost(slack_late, 12.0), m.charge_lost(slack_early, 12.0));
}

}  // namespace
}  // namespace basched::battery
