#include "basched/battery/peukert.hpp"
#include "basched/battery/lifetime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "basched/battery/ideal.hpp"

namespace basched::battery {
namespace {

TEST(PeukertModel, ParameterValidation) {
  EXPECT_THROW(PeukertModel(0.9, 100.0), std::invalid_argument);
  EXPECT_THROW(PeukertModel(1.2, 0.0), std::invalid_argument);
  EXPECT_THROW(PeukertModel(1.2, -5.0), std::invalid_argument);
  EXPECT_NO_THROW(PeukertModel(1.0, 1.0));
}

TEST(PeukertModel, ExponentOneIsIdeal) {
  const PeukertModel peukert(1.0, 123.0);
  const IdealModel ideal;
  DischargeProfile p;
  p.append(2.0, 400.0);
  p.append(3.0, 60.0);
  EXPECT_NEAR(peukert.charge_lost(p, 5.0), ideal.charge_lost(p, 5.0), 1e-9);
}

TEST(PeukertModel, RatedCurrentUnpenalized) {
  const PeukertModel m(1.3, 100.0);
  const auto p = constant_load(100.0, 10.0);
  EXPECT_NEAR(m.charge_lost(p, 10.0), 1000.0, 1e-9);
}

TEST(PeukertModel, HighCurrentPenalized) {
  const PeukertModel m(1.2, 100.0);
  const auto p = constant_load(400.0, 10.0);
  // Apparent rate = 100 * 4^1.2 > 400.
  EXPECT_GT(m.charge_lost(p, 10.0), p.total_charge());
}

TEST(PeukertModel, LowCurrentRewarded) {
  const PeukertModel m(1.2, 100.0);
  const auto p = constant_load(25.0, 10.0);
  EXPECT_LT(m.charge_lost(p, 10.0), p.total_charge());
}

TEST(PeukertModel, GoldenValue) {
  const PeukertModel m(1.2, 100.0);
  const auto p = constant_load(400.0, 10.0);
  // 100 · 4^1.2 · 10 = 1000 · 4^1.2.
  EXPECT_NEAR(m.charge_lost(p, 10.0), 1000.0 * std::pow(4.0, 1.2), 1e-6);
}

TEST(PeukertModel, NoRecovery) {
  const PeukertModel m(1.2, 100.0);
  const auto p = constant_load(400.0, 10.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(p, 10.0), m.charge_lost(p, 1000.0));
}

TEST(PeukertModel, OrderIndependent) {
  // Peukert has no memory, so ordering cannot matter — exactly the
  // qualitative defect the RV model fixes.
  const PeukertModel m(1.25, 100.0);
  DischargeProfile a, b;
  a.append(1.0, 500.0);
  a.append(1.0, 10.0);
  b.append(1.0, 10.0);
  b.append(1.0, 500.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(a, 2.0), m.charge_lost(b, 2.0));
}

TEST(PeukertModel, ConstantLoadLifetimeFollowsPeukertLaw) {
  const PeukertModel m(1.5, 100.0);
  const double alpha = 6000.0;
  const auto l1 = constant_load_lifetime(m, 100.0, alpha);
  const auto l2 = constant_load_lifetime(m, 400.0, alpha);
  ASSERT_TRUE(l1 && l2);
  // L ∝ I^-p in normalized units: L1/L2 = (I2/I1)^p = 4^1.5 = 8.
  EXPECT_NEAR(*l1 / *l2, 8.0, 1e-3);
}

TEST(PeukertModel, Accessors) {
  const PeukertModel m(1.3, 250.0);
  EXPECT_DOUBLE_EQ(m.exponent(), 1.3);
  EXPECT_DOUBLE_EQ(m.rated_current(), 250.0);
  EXPECT_EQ(m.name(), "peukert");
}

}  // namespace
}  // namespace basched::battery
