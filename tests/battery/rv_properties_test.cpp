/// Property-based sweeps of the Rakhmatov–Vrudhula model over randomized
/// profiles and parameters (TEST_P over seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "basched/battery/ideal.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/util/rng.hpp"

namespace basched::battery {
namespace {

class RvPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DischargeProfile random_profile(util::Rng& rng, int max_intervals = 8) const {
    DischargeProfile p;
    const int k = static_cast<int>(rng.uniform_int(1, max_intervals));
    for (int i = 0; i < k; ++i) {
      if (rng.bernoulli(0.2)) p.append_rest(rng.uniform(0.5, 5.0));
      p.append(rng.uniform(0.5, 10.0), rng.uniform(10.0, 900.0));
    }
    return p;
  }
};

TEST_P(RvPropertyTest, SigmaNonNegativeAndAtLeastDeliveredAtEnd) {
  util::Rng rng(GetParam());
  const RakhmatovVrudhulaModel m(rng.uniform(0.1, 1.0));
  const auto p = random_profile(rng);
  const double sigma = m.charge_lost(p, p.end_time());
  EXPECT_GE(sigma, 0.0);
  EXPECT_GE(sigma, p.total_charge() - 1e-9);
}

TEST_P(RvPropertyTest, SigmaMonotoneWithinFirstInterval) {
  // σ is monotone while the *first* interval discharges (there is no earlier
  // unavailable charge to recover). Later intervals can see σ dip when a
  // light load follows a heavy one — recovery outpaces consumption — so the
  // global claim would be false.
  util::Rng rng(GetParam() ^ 0xABCDEFULL);
  const RakhmatovVrudhulaModel m(rng.uniform(0.1, 1.0));
  const auto p = random_profile(rng);
  const auto& iv = p.intervals().front();
  if (iv.current > 0.0) {
    double prev = -1.0;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const double s = m.charge_lost(p, iv.start + frac * iv.duration);
      EXPECT_GE(s, prev - 1e-9);
      prev = s;
    }
  }
}

TEST_P(RvPropertyTest, SigmaNeverBelowDeliveredDuringDischarge) {
  // Even when σ dips (recovery), it can never dip below the charge actually
  // delivered so far — the unavailable component is non-negative.
  util::Rng rng(GetParam() ^ 0xBEEFULL);
  const RakhmatovVrudhulaModel m(rng.uniform(0.1, 1.0));
  const auto p = random_profile(rng);
  const IdealModel ideal_equiv;  // delivered charge integrator
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double t = p.end_time() * frac;
    EXPECT_GE(m.charge_lost(p, t), ideal_equiv.charge_lost(p, t) - 1e-9);
  }
}

TEST_P(RvPropertyTest, LongRestRecoversToDelivered) {
  util::Rng rng(GetParam() ^ 0x5555ULL);
  const RakhmatovVrudhulaModel m(rng.uniform(0.3, 1.0));
  const auto p = random_profile(rng);
  const double t = p.end_time() + 2000.0;
  EXPECT_NEAR(m.charge_lost(p, t), p.total_charge(), p.total_charge() * 1e-6 + 1e-6);
}

TEST_P(RvPropertyTest, NonIncreasingCurrentOrderIsOptimalAmongPermutations) {
  // [1]'s theorem, checked exhaustively on 4 random independent tasks.
  util::Rng rng(GetParam() ^ 0x777ULL);
  const RakhmatovVrudhulaModel m(0.273);
  struct Job {
    double current, duration;
  };
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back({rng.uniform(20.0, 900.0), rng.uniform(1.0, 8.0)});

  auto sigma_of = [&](const std::vector<Job>& order) {
    DischargeProfile p;
    for (const auto& j : order) p.append(j.duration, j.current);
    return m.charge_lost(p, p.end_time());
  };

  std::vector<std::size_t> idx{0, 1, 2, 3};
  std::sort(idx.begin(), idx.end());
  double best = 1e300, worst = -1.0;
  do {
    std::vector<Job> order;
    for (auto i : idx) order.push_back(jobs[i]);
    const double s = sigma_of(order);
    best = std::min(best, s);
    worst = std::max(worst, s);
  } while (std::next_permutation(idx.begin(), idx.end()));

  std::vector<Job> noninc = jobs;
  std::sort(noninc.begin(), noninc.end(),
            [](const Job& a, const Job& b) { return a.current > b.current; });
  std::vector<Job> nondec = jobs;
  std::sort(nondec.begin(), nondec.end(),
            [](const Job& a, const Job& b) { return a.current < b.current; });

  EXPECT_NEAR(sigma_of(noninc), best, best * 1e-12 + 1e-9);
  EXPECT_NEAR(sigma_of(nondec), worst, worst * 1e-12 + 1e-9);
}

TEST_P(RvPropertyTest, MoreTermsOnlyIncreaseSigma) {
  // Every series term is non-negative, so σ grows monotonically with the
  // truncation order; the paper's 10-term cost function is a deliberate
  // undercount of the active-interval tail.
  util::Rng rng(GetParam() ^ 0x9999ULL);
  const double beta = rng.uniform(0.2, 0.8);
  const auto p = random_profile(rng);
  const double t = p.end_time();
  double prev = 0.0;
  for (int terms : {1, 5, 10, 40, 80}) {
    const RakhmatovVrudhulaModel m(beta, terms);
    const double s = m.charge_lost(p, t);
    EXPECT_GE(s, prev - 1e-9);
    prev = s;
  }
  // And the truncated value still dominates the delivered charge.
  EXPECT_GE(RakhmatovVrudhulaModel(beta, 10).charge_lost(p, t), p.total_charge() - 1e-9);
}

TEST_P(RvPropertyTest, UnavailableChargeNonNegativeEverywhere) {
  util::Rng rng(GetParam() ^ 0x2468ULL);
  const RakhmatovVrudhulaModel m(rng.uniform(0.1, 1.0));
  const auto p = random_profile(rng);
  for (double frac : {0.1, 0.5, 0.9, 1.0, 1.5}) {
    const double t = p.end_time() * frac;
    EXPECT_GE(m.unavailable_charge(p, t), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RvPropertyTest, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace basched::battery
