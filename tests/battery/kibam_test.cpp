#include "basched/battery/kibam.hpp"
#include "basched/battery/lifetime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace basched::battery {
namespace {

constexpr double kC = 0.4;
constexpr double kK = 0.5;      // 1/min
constexpr double kAlpha = 10000.0;  // mA·min

KibamModel model() { return {kC, kK, kAlpha}; }

TEST(Kibam, ParameterValidation) {
  EXPECT_THROW(KibamModel(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KibamModel(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KibamModel(0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KibamModel(0.5, 1.0, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(KibamModel(0.5, 1.0, 1.0));
}

TEST(Kibam, FullBatteryAtTimeZero) {
  const auto m = model();
  const auto s = m.state_at(constant_load(100.0, 10.0), 0.0);
  EXPECT_NEAR(s.y1, kC * kAlpha, 1e-9);
  EXPECT_NEAR(s.y2, (1.0 - kC) * kAlpha, 1e-9);
  EXPECT_NEAR(m.charge_lost(constant_load(100.0, 10.0), 0.0), 0.0, 1e-9);
}

TEST(Kibam, ChargeConservationBeforeDeath) {
  const auto m = model();
  const auto p = constant_load(100.0, 10.0);
  const auto s = m.state_at(p, 10.0);
  // d(y1+y2)/dt = -I, so total content must equal initial minus delivered.
  EXPECT_NEAR(s.y1 + s.y2, kAlpha - 1000.0, 1e-6);
}

TEST(Kibam, ClosedFormMatchesEulerSimulation) {
  const auto m = model();
  DischargeProfile p;
  p.append(4.0, 600.0);
  p.append_rest(3.0);
  p.append(5.0, 200.0);

  // Fine-step Euler reference of the two-well ODE.
  double y1 = kC * kAlpha, y2 = (1.0 - kC) * kAlpha;
  const double dt = 1e-4;
  for (double t = 0.0; t < p.end_time(); t += dt) {
    const double i = p.current_at(t);
    const double h1 = y1 / kC, h2 = y2 / (1.0 - kC);
    const double flow = kK * kC * (1.0 - kC) * (h2 - h1);
    y1 += dt * (-i + flow);
    y2 += dt * (-flow);
  }
  const auto s = m.state_at(p, p.end_time());
  EXPECT_NEAR(s.y1, y1, kAlpha * 1e-3);
  EXPECT_NEAR(s.y2, y2, kAlpha * 1e-3);
}

TEST(Kibam, SigmaExceedsDeliveredUnderLoad) {
  const auto m = model();
  const auto p = constant_load(800.0, 4.0);
  EXPECT_GT(m.charge_lost(p, 4.0), p.total_charge());
}

TEST(Kibam, RecoveryAfterRest) {
  const auto m = model();
  const auto p = constant_load(800.0, 4.0);
  const double at_end = m.charge_lost(p, 4.0);
  const double rested = m.charge_lost(p, 100.0);
  EXPECT_LT(rested, at_end);
  EXPECT_NEAR(rested, p.total_charge(), p.total_charge() * 1e-3);
}

TEST(Kibam, DeathWhenAvailableWellEmpties) {
  const auto m = model();
  // Draw hard enough to empty the available well well before the bound well.
  const double i = 2000.0;
  const auto p = constant_load(i, 60.0);
  const auto lt = m.lifetime(p, kAlpha);
  ASSERT_TRUE(lt.has_value());
  const auto s = m.state_at(p, *lt);
  EXPECT_NEAR(s.y1, 0.0, kAlpha * 1e-5);
  // Dead well before an ideal battery would be (rate-capacity effect):
  EXPECT_LT(*lt, kAlpha / i);
}

TEST(Kibam, RateCapacityEffectOnDeliveredCharge) {
  const auto m = model();
  const auto slow = constant_load_lifetime(m, 100.0, kAlpha);
  const auto fast = constant_load_lifetime(m, 1500.0, kAlpha);
  ASSERT_TRUE(slow && fast);
  EXPECT_GT(100.0 * *slow, 1500.0 * *fast);  // delivered charge shrinks at high rate
}

TEST(Kibam, SigmaStaysAtLeastAlphaAfterDeath) {
  const auto m = model();
  const auto p = constant_load(2000.0, 60.0);
  const auto lt = m.lifetime(p, kAlpha);
  ASSERT_TRUE(lt.has_value());
  EXPECT_GE(m.charge_lost(p, *lt + 1.0), kAlpha - 1e-6);
}

TEST(Kibam, GentleLoadNearIdeal) {
  // Tiny current: wells stay nearly equalized. The steady-state head lag is
  // (1-c)(h2-h1) = (1-c)·I/(k'c(1-c)) = I/(k'c) = 25 mA·min here, so σ sits
  // within that of the delivered charge.
  const auto m = model();
  const auto p = constant_load(5.0, 100.0);
  EXPECT_NEAR(m.charge_lost(p, 100.0), p.total_charge(), 26.0);
}

TEST(Kibam, Accessors) {
  const auto m = model();
  EXPECT_DOUBLE_EQ(m.c(), kC);
  EXPECT_DOUBLE_EQ(m.kprime(), kK);
  EXPECT_DOUBLE_EQ(m.capacity(), kAlpha);
  EXPECT_EQ(m.name(), "kibam");
}

TEST(Kibam, NegativeTimeThrows) {
  EXPECT_THROW((void)model().state_at(constant_load(1.0, 1.0), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace basched::battery
