#include "basched/battery/incremental_sigma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "basched/battery/ideal.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::battery {
namespace {

constexpr double kRelTol = 1e-12;

void expect_close(double expected, double actual) {
  const double scale = std::max(1.0, std::abs(expected));
  EXPECT_NEAR(actual, expected, kRelTol * scale);
}

/// Builds a random profile with explicit rest intervals and gaps; returns the
/// profile and mirrors every append into `eval`.
DischargeProfile random_profile(util::Rng& rng, IncrementalSigma& eval, int n) {
  DischargeProfile p;
  for (int k = 0; k < n; ++k) {
    const double duration = rng.uniform(0.2, 8.0);
    double current = 0.0;
    if (rng.bernoulli(0.7)) current = rng.uniform(5.0, 600.0);  // else explicit rest
    p.append(duration, current);
    eval.append(duration, current);
  }
  return p;
}

TEST(IncrementalSigma, RvFactoryReturnsIncrementalForm) {
  const RakhmatovVrudhulaModel m;
  const auto eval = m.incremental_sigma();
  ASSERT_NE(dynamic_cast<RvIncrementalSigma*>(eval.get()), nullptr);
}

TEST(IncrementalSigma, EmptyEvaluatorIsZeroEverywhere) {
  const RakhmatovVrudhulaModel m;
  const auto eval = m.incremental_sigma();
  EXPECT_DOUBLE_EQ(eval->end_time(), 0.0);
  EXPECT_DOUBLE_EQ(eval->sigma(0.0), 0.0);
  EXPECT_DOUBLE_EQ(eval->sigma(123.0), 0.0);
}

TEST(IncrementalSigma, MatchesFullRecomputationOnRandomProfiles) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const RakhmatovVrudhulaModel m(seed % 3 == 0 ? 0.1 : 0.273);
    util::Rng rng(seed);
    const auto eval = m.incremental_sigma();
    const DischargeProfile p = random_profile(rng, *eval, 1 + static_cast<int>(seed % 30));

    // Query at interval starts, mid-interval times (truncation at a partial
    // elapsed), exact ends, and past the profile.
    std::vector<double> times;
    for (const auto& iv : p.intervals()) {
      times.push_back(iv.start);
      times.push_back(iv.start + 0.37 * iv.duration);
      times.push_back(iv.end());
    }
    times.push_back(0.0);
    times.push_back(p.end_time() + 15.0);
    for (double t : times) expect_close(m.charge_lost(p, t), eval->sigma(t));
  }
}

TEST(IncrementalSigma, SigmaWithTailMatchesExtendedProfile) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const RakhmatovVrudhulaModel m(0.2);
    util::Rng rng(seed);
    const auto eval = m.incremental_sigma();
    const DischargeProfile prefix = random_profile(rng, *eval, 12);

    const double rest = (seed % 2 == 0) ? rng.uniform(0.1, 10.0) : 0.0;
    const double duration = rng.uniform(0.5, 6.0);
    const double current = rng.uniform(50.0, 900.0);

    DischargeProfile extended = prefix;
    if (rest > 0.0) extended.append_rest(rest);
    extended.append(duration, current);

    const double start = prefix.end_time() + rest;
    for (double frac : {0.0, 0.25, 0.6183, 1.0}) {
      const double t = start + frac * duration;
      expect_close(m.charge_lost(extended, t), eval->sigma_with_tail(rest, duration, current, t));
    }
    // t inside the rest gap before the tail interval begins.
    if (rest > 0.0) {
      const double t = prefix.end_time() + 0.5 * rest;
      expect_close(m.charge_lost(extended, t), eval->sigma_with_tail(rest, duration, current, t));
    }
  }
}

TEST(IncrementalSigma, TailQueriesDoNotMutate) {
  const RakhmatovVrudhulaModel m;
  const auto eval = m.incremental_sigma();
  eval->append(2.0, 100.0);
  const double before = eval->sigma(2.0);
  (void)eval->sigma_with_tail(1.0, 3.0, 50.0, 4.0);
  (void)eval->sigma_with_tail(0.0, 1.0, 500.0, 3.0);
  EXPECT_DOUBLE_EQ(eval->sigma(2.0), before);
  EXPECT_DOUBLE_EQ(eval->end_time(), 2.0);
}

TEST(IncrementalSigma, AgreesAfterRestHeavyProfile) {
  // Alternating heavy bursts and rests — the recovery-effect regime where the
  // decayed partial sums carry most of the value.
  const RakhmatovVrudhulaModel m(0.12);
  const auto eval = m.incremental_sigma();
  DischargeProfile p;
  for (int k = 0; k < 10; ++k) {
    p.append(1.5, 800.0);
    eval->append(1.5, 800.0);
    p.append_rest(4.0);
    eval->append_rest(4.0);
  }
  for (double t : {1.0, 1.5, 3.0, 5.5, 27.2, 54.9, 55.0, 80.0})
    expect_close(m.charge_lost(p, t), eval->sigma(t));
}

TEST(IncrementalSigma, ValidatesArguments) {
  const RakhmatovVrudhulaModel m;
  const auto eval = m.incremental_sigma();
  EXPECT_THROW(eval->append(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(eval->append(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)eval->sigma(-1.0), std::invalid_argument);
  eval->append(1.0, 10.0);
  EXPECT_THROW((void)eval->sigma_with_tail(0.0, 1.0, 10.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)eval->sigma_with_tail(-1.0, 1.0, 10.0, 2.0), std::invalid_argument);
}

TEST(IncrementalSigma, GenericFallbackMatchesModel) {
  const IdealModel ideal;
  const auto eval = ideal.incremental_sigma();
  ASSERT_NE(dynamic_cast<GenericIncrementalSigma*>(eval.get()), nullptr);
  eval->append(2.0, 100.0);
  eval->append_rest(1.0);
  eval->append(1.0, 50.0);
  DischargeProfile p;
  p.append(2.0, 100.0);
  p.append_rest(1.0);
  p.append(1.0, 50.0);
  for (double t : {0.5, 2.0, 2.5, 3.7, 4.0, 9.0})
    EXPECT_DOUBLE_EQ(eval->sigma(t), ideal.charge_lost(p, t));
  EXPECT_DOUBLE_EQ(eval->sigma_with_tail(1.0, 2.0, 30.0, 7.0),
                   ideal.charge_lost(p, 4.0) + 30.0 * 2.0);
}

TEST(IncrementalSigma, OutlivesTheRvModel) {
  std::unique_ptr<IncrementalSigma> eval;
  double expected = 0.0;
  {
    const RakhmatovVrudhulaModel m(0.3);
    eval = m.incremental_sigma();
    eval->append(2.0, 100.0);
    DischargeProfile p;
    p.append(2.0, 100.0);
    expected = m.charge_lost(p, 2.0);
  }
  expect_close(expected, eval->sigma(2.0));  // β/terms were copied out
}

TEST(IncrementalSigma, RepeatedDurationAppendsAreExpFree) {
  // The per-Δt decay cache: the checkpoint recurrence of a back-to-back
  // append is keyed purely on the previous interval's duration, so once a
  // duration has been seen, further appends after it perform zero exp
  // evaluations (the window-evaluator / rest-insertion append pattern).
  const RakhmatovVrudhulaModel m;
  const auto eval = m.incremental_sigma();
  const double durations[] = {2.0, 0.75, 2.0};  // the catalog of this "schedule"
  // Warm: first append has no predecessor; the next few fill the cache.
  for (int k = 0; k < 4; ++k) eval->append(durations[k % 3], 100.0 + k);
  const std::uint64_t before = util::fastmath::exp_evaluations();
  for (int k = 4; k < 64; ++k) eval->append(durations[k % 3], 100.0 + k);
  eval->append(5.5, 10.0);  // keyed on the *previous* duration (2.0) — cached
  EXPECT_EQ(util::fastmath::exp_evaluations(), before);  // all keys cached
  // The first append *after* a never-seen duration costs one row, once.
  eval->append(5.5, 10.0);  // keyed on 5.5 — cold
  const std::uint64_t after_cold = util::fastmath::exp_evaluations();
  EXPECT_EQ(after_cold, before + static_cast<std::uint64_t>(m.terms()));
  eval->append(5.5, 10.0);  // keyed on 5.5 again — cached now
  EXPECT_EQ(util::fastmath::exp_evaluations(), after_cold);
  // The cache must not change the numbers: verify against the full model.
  DischargeProfile p;
  for (int k = 0; k < 64; ++k) p.append(durations[k % 3], 100.0 + k);
  for (int k = 0; k < 3; ++k) p.append(5.5, 10.0);
  expect_close(m.charge_lost(p, p.end_time()), eval->sigma(eval->end_time()));
}

TEST(IncrementalSigma, FullEvaluationProbeCountsOnlyChargeLost) {
  const RakhmatovVrudhulaModel m;
  EXPECT_EQ(m.full_evaluations(), 0u);
  const auto eval = m.incremental_sigma();
  eval->append(1.0, 100.0);
  (void)eval->sigma(1.0);
  (void)eval->sigma_with_tail(0.0, 1.0, 10.0, 1.5);
  EXPECT_EQ(m.full_evaluations(), 0u);  // incremental queries never count
  DischargeProfile p;
  p.append(1.0, 100.0);
  (void)m.charge_lost(p, 1.0);
  (void)m.charge_lost_at_end(p);
  EXPECT_EQ(m.full_evaluations(), 2u);
}

}  // namespace
}  // namespace basched::battery
