#include "basched/battery/ideal.hpp"
#include "basched/battery/lifetime.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace basched::battery {
namespace {

TEST(IdealModel, SigmaEqualsDelivered) {
  const IdealModel m;
  DischargeProfile p;
  p.append(2.0, 100.0);
  p.append(3.0, 50.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(p, p.end_time()), 350.0);
}

TEST(IdealModel, PartialInterval) {
  const IdealModel m;
  const auto p = constant_load(100.0, 10.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(p, 4.0), 400.0);
}

TEST(IdealModel, NoRecoveryNoPenalty) {
  const IdealModel m;
  const auto p = constant_load(100.0, 10.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(p, 10.0), m.charge_lost(p, 100.0));
}

TEST(IdealModel, OrderIndependent) {
  const IdealModel m;
  DischargeProfile a, b;
  a.append(1.0, 500.0);
  a.append(1.0, 10.0);
  b.append(1.0, 10.0);
  b.append(1.0, 500.0);
  EXPECT_DOUBLE_EQ(m.charge_lost(a, 2.0), m.charge_lost(b, 2.0));
}

TEST(IdealModel, NegativeTimeThrows) {
  const IdealModel m;
  EXPECT_THROW((void)m.charge_lost(constant_load(1.0, 1.0), -0.1), std::invalid_argument);
}

TEST(IdealModel, LifetimeIsAlphaOverCurrent) {
  const IdealModel m;
  const auto lt = constant_load_lifetime(m, 200.0, 1000.0);
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 5.0, 1e-6);
}

TEST(IdealModel, Name) { EXPECT_EQ(IdealModel{}.name(), "ideal"); }

}  // namespace
}  // namespace basched::battery
