/// Cross-model consistency: the four battery models must agree on the
/// qualitative physics even though their numbers differ.
#include <gtest/gtest.h>

#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"

namespace basched::battery {
namespace {

DischargeProfile bursty_profile() {
  DischargeProfile p;
  p.append(3.0, 700.0);
  p.append(5.0, 120.0);
  p.append_rest(2.0);
  p.append(4.0, 400.0);
  return p;
}

TEST(ModelComparison, NonlinearModelsChargeMoreThanIdealUnderLoad) {
  const auto p = bursty_profile();
  const double t = p.end_time();
  const IdealModel ideal;
  const RakhmatovVrudhulaModel rv(0.273);
  const KibamModel kibam(0.4, 0.5, 50000.0);
  const double base = ideal.charge_lost(p, t);
  EXPECT_GT(rv.charge_lost(p, t), base);
  EXPECT_GT(kibam.charge_lost(p, t), base);
}

TEST(ModelComparison, PeukertAboveIdealWhenCurrentsExceedRated) {
  const auto p = bursty_profile();  // all currents >= 120 mA
  const PeukertModel peukert(1.2, 100.0);
  const IdealModel ideal;
  EXPECT_GT(peukert.charge_lost(p, p.end_time()), ideal.charge_lost(p, p.end_time()));
}

TEST(ModelComparison, RecoveryModelsConvergeToDeliveredAfterLongRest) {
  const auto p = bursty_profile();
  const double later = p.end_time() + 5000.0;
  const RakhmatovVrudhulaModel rv(0.273);
  const KibamModel kibam(0.4, 0.5, 50000.0);
  EXPECT_NEAR(rv.charge_lost(p, later), p.total_charge(), p.total_charge() * 1e-4);
  EXPECT_NEAR(kibam.charge_lost(p, later), p.total_charge(), p.total_charge() * 1e-4);
}

TEST(ModelComparison, MemorylessModelsIgnoreRest) {
  DischargeProfile with_rest, without_rest;
  with_rest.append(2.0, 300.0);
  with_rest.append_rest(10.0);
  with_rest.append(2.0, 300.0);
  without_rest.append(2.0, 300.0);
  without_rest.append(2.0, 300.0);

  const IdealModel ideal;
  const PeukertModel peukert(1.2, 100.0);
  EXPECT_DOUBLE_EQ(ideal.charge_lost(with_rest, with_rest.end_time()),
                   ideal.charge_lost(without_rest, without_rest.end_time()));
  EXPECT_DOUBLE_EQ(peukert.charge_lost(with_rest, with_rest.end_time()),
                   peukert.charge_lost(without_rest, without_rest.end_time()));
}

TEST(ModelComparison, RecoveryModelsRewardRest) {
  DischargeProfile with_rest, without_rest;
  with_rest.append(2.0, 600.0);
  with_rest.append_rest(10.0);
  with_rest.append(2.0, 600.0);
  without_rest.append(2.0, 600.0);
  without_rest.append(2.0, 600.0);

  const RakhmatovVrudhulaModel rv(0.273);
  const KibamModel kibam(0.4, 0.5, 50000.0);
  EXPECT_LT(rv.charge_lost(with_rest, with_rest.end_time()),
            rv.charge_lost(without_rest, without_rest.end_time()));
  EXPECT_LT(kibam.charge_lost(with_rest, with_rest.end_time()),
            kibam.charge_lost(without_rest, without_rest.end_time()));
}

TEST(ModelComparison, OrderSensitivityOnlyInRecoveryModels) {
  DischargeProfile desc, asc;
  desc.append(3.0, 800.0);
  desc.append(3.0, 100.0);
  asc.append(3.0, 100.0);
  asc.append(3.0, 800.0);
  const double t = 6.0;

  const IdealModel ideal;
  const PeukertModel peukert(1.2, 100.0);
  const RakhmatovVrudhulaModel rv(0.273);
  const KibamModel kibam(0.4, 0.5, 50000.0);

  EXPECT_DOUBLE_EQ(ideal.charge_lost(desc, t), ideal.charge_lost(asc, t));
  EXPECT_DOUBLE_EQ(peukert.charge_lost(desc, t), peukert.charge_lost(asc, t));
  EXPECT_LT(rv.charge_lost(desc, t), rv.charge_lost(asc, t));
  EXPECT_LT(kibam.charge_lost(desc, t), kibam.charge_lost(asc, t));
}

}  // namespace
}  // namespace basched::battery
