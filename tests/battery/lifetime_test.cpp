#include "basched/battery/lifetime.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/ideal.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"

namespace basched::battery {
namespace {

TEST(Lifetime, IdealConstantLoadExact) {
  const IdealModel m;
  const auto p = constant_load(100.0, 100.0);
  const auto lt = find_lifetime(m, p, 2500.0);
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 25.0, 1e-6);
}

TEST(Lifetime, SurvivingProfileReturnsNullopt) {
  const IdealModel m;
  const auto p = constant_load(100.0, 10.0);  // delivers 1000
  EXPECT_FALSE(find_lifetime(m, p, 5000.0).has_value());
}

TEST(Lifetime, InvalidAlphaThrows) {
  const IdealModel m;
  const auto p = constant_load(1.0, 1.0);
  EXPECT_THROW((void)find_lifetime(m, p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)find_lifetime(m, p, -1.0), std::invalid_argument);
}

TEST(Lifetime, CrossingInSecondInterval) {
  const IdealModel m;
  DischargeProfile p;
  p.append(10.0, 50.0);   // delivers 500
  p.append(10.0, 100.0);  // crosses 800 at t = 13
  const auto lt = find_lifetime(m, p, 800.0);
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 13.0, 1e-6);
}

TEST(Lifetime, NoCrossingDuringRest) {
  // With the RV model σ *decreases* during rest, so a crossing reached only
  // transiently inside an interval must be reported there, not later.
  const RakhmatovVrudhulaModel m(0.5);
  DischargeProfile p;
  p.append(10.0, 100.0);
  p.append_rest(50.0);
  const double sigma_peak = m.charge_lost(p, 10.0);
  const double alpha = sigma_peak * 0.999;  // just below the peak
  const auto lt = find_lifetime(m, p, alpha);
  ASSERT_TRUE(lt.has_value());
  EXPECT_LE(*lt, 10.0 + 1e-6);
}

TEST(Lifetime, RecoveredBatterySurvivesHigherAlpha) {
  const RakhmatovVrudhulaModel m(0.5);
  DischargeProfile p;
  p.append(10.0, 100.0);
  const double sigma_peak = m.charge_lost(p, 10.0);
  // Above the peak: never dies.
  EXPECT_FALSE(find_lifetime(m, p, sigma_peak * 1.001).has_value());
}

TEST(Lifetime, EmptyProfileSurvives) {
  const IdealModel m;
  EXPECT_FALSE(find_lifetime(m, DischargeProfile{}, 1.0).has_value());
}

TEST(Lifetime, CrossingExactlyAtIntervalStart) {
  const IdealModel m;
  DischargeProfile p;
  p.append(10.0, 100.0);  // delivers exactly 1000 by t=10
  p.append(10.0, 100.0);
  const auto lt = find_lifetime(m, p, 1000.0);
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 10.0, 1e-6);
}

TEST(Lifetime, ConstantLoadRvShorterThanIdeal) {
  // Rate-capacity effect: at high current the RV battery dies before the
  // ideal one.
  const RakhmatovVrudhulaModel rv(0.273);
  const IdealModel ideal;
  const double alpha = 20000.0;
  const auto rv_lt = constant_load_lifetime(rv, 800.0, alpha);
  const auto id_lt = constant_load_lifetime(ideal, 800.0, alpha);
  ASSERT_TRUE(rv_lt && id_lt);
  EXPECT_LT(*rv_lt, *id_lt);
  EXPECT_NEAR(*id_lt, alpha / 800.0, 1e-6);
}

TEST(Lifetime, ConstantLoadDeliveredChargeShrinksWithRate) {
  const RakhmatovVrudhulaModel rv(0.273);
  const double alpha = 20000.0;
  const auto slow = constant_load_lifetime(rv, 100.0, alpha);
  const auto fast = constant_load_lifetime(rv, 900.0, alpha);
  ASSERT_TRUE(slow && fast);
  EXPECT_GT(100.0 * *slow, 900.0 * *fast);
}

TEST(Lifetime, ConstantLoadValidation) {
  const IdealModel m;
  EXPECT_THROW((void)constant_load_lifetime(m, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)constant_load_lifetime(m, 1.0, 0.0), std::invalid_argument);
}

TEST(Lifetime, ConstantLoadRespectsMaxTime) {
  const IdealModel m;
  // Lifetime would be 1000 minutes; cap at 10.
  EXPECT_FALSE(constant_load_lifetime(m, 1.0, 1000.0, 10.0).has_value());
}

TEST(Lifetime, DefaultModelLifetimeMatchesFreeFunction) {
  const RakhmatovVrudhulaModel m(0.4);
  DischargeProfile p;
  p.append(20.0, 500.0);
  const double alpha = 6000.0;
  const auto a = m.lifetime(p, alpha);
  const auto b = find_lifetime(m, p, alpha);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) { EXPECT_NEAR(*a, *b, 1e-9); }
}

}  // namespace
}  // namespace basched::battery
