/// Tests for the overloaded-retry backoff helper (serve/retry.hpp): full
/// jitter bounds, server-hint flooring, cap growth and saturation, and the
/// determinism contract (same seed → same delay sequence) that keeps the
/// bench's retry path reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "basched/serve/retry.hpp"
#include "basched/util/rng.hpp"

namespace basched::serve {
namespace {

TEST(ServeRetry, DelaysStayWithinFloorAndCap) {
  BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 100;
  Backoff backoff(policy, util::Rng(1));
  // Attempt k draws from [floor, cap_k] where cap_k = base * 2^k, saturated.
  std::uint64_t cap = policy.base_ms;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t d = backoff.next_delay_ms();
    EXPECT_GE(d, policy.base_ms);
    EXPECT_LE(d, cap);
    EXPECT_LE(d, policy.max_ms);  // the ceiling is hard, even late
    cap = std::min<std::uint64_t>(cap * 2, policy.max_ms);
  }
  EXPECT_EQ(backoff.attempts(), 12u);
}

TEST(ServeRetry, ServerHintIsHonoredAsALowerBound) {
  BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 250;
  Backoff backoff(policy, util::Rng(2));
  // The daemon's retry_after_ms knows its queue better than the client's
  // schedule: every delay must respect it, from the very first attempt.
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(backoff.next_delay_ms(/*server_hint_ms=*/40), 40u);
  }
  // A hint above max_ms cannot push a delay past the hard ceiling.
  Backoff clamped(policy, util::Rng(3));
  EXPECT_LE(clamped.next_delay_ms(/*server_hint_ms=*/10'000), policy.max_ms);
}

TEST(ServeRetry, CapGrowsExponentiallyAndSaturates) {
  // With a degenerate single-point jitter window we can observe the cap
  // directly: floor == cap when the hint pins the floor to the cap value.
  BackoffPolicy policy;
  policy.base_ms = 4;
  policy.max_ms = 32;
  policy.multiplier = 2.0;
  Backoff backoff(policy, util::Rng(4));
  // Caps: 4, 8, 16, 32, 32, ... Pin floor to max_ms so [floor, cap]
  // collapses once the cap saturates.
  for (int i = 0; i < 3; ++i) (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.next_delay_ms(/*server_hint_ms=*/32), 32u);  // cap == 32
  EXPECT_EQ(backoff.next_delay_ms(/*server_hint_ms=*/32), 32u);  // stays
}

TEST(ServeRetry, SameSeedSameDelaySequence) {
  const BackoffPolicy policy;
  Backoff a(policy, util::Rng(77));
  Backoff b(policy, util::Rng(77));
  std::vector<std::uint64_t> da;
  std::vector<std::uint64_t> db;
  for (int i = 0; i < 16; ++i) {
    da.push_back(a.next_delay_ms(i % 3 == 0 ? 10 : 0));
    db.push_back(b.next_delay_ms(i % 3 == 0 ? 10 : 0));
  }
  EXPECT_EQ(da, db);
}

TEST(ServeRetry, ResetRestoresTheInitialCap) {
  BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 250;
  Backoff backoff(policy, util::Rng(5));
  for (int i = 0; i < 10; ++i) (void)backoff.next_delay_ms();  // cap at max
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  // Post-reset the window is [base, base] again: the delay is exactly base.
  EXPECT_EQ(backoff.next_delay_ms(), policy.base_ms);
}

}  // namespace
}  // namespace basched::serve
