/// Fault-injected hardening tests for the serve daemon: every byte the
/// server moves goes through serve/socket_io, so flipping the shim's fault
/// knobs (short writes, synthetic EINTR) stresses *all* retry loops at once.
/// On top of the wire faults this suite drives the watchdog paths — client
/// disconnect mid-request, per-request timeouts, and the bounded drain —
/// and asserts the server answers, cancels, and exits cleanly instead of
/// crashing, wedging, or leaking the connection.
///
/// The fault spec is process-global; every test that sets it restores the
/// no-fault spec before returning (gtest_discover_tests runs each case in
/// its own process, so cross-test leakage cannot happen either way).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/json.hpp"
#include "basched/serve/server.hpp"
#include "basched/serve/socket_io.hpp"
#include "basched/util/rng.hpp"

namespace basched::serve {
namespace {

std::string graph_text(std::uint64_t seed, std::size_t tasks = 5) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::serialize(graph::make_series_parallel(tasks, synth, rng));
}

/// A schedule request frame; `extra` merges additional params (timeout_ms…).
std::string schedule_request(const std::string& graph, const std::string& algorithm,
                             json::Object extra = {}) {
  json::Object params = std::move(extra);
  params["graph"] = graph;
  params["deadline"] = 500.0;
  params["algorithm"] = algorithm;
  json::Object frame;
  frame["verb"] = "schedule";
  frame["id"] = 1;
  frame["params"] = json::Value(std::move(params));
  return json::dump(json::Value(std::move(frame))) + "\n";
}

/// Restores the clean (no-fault) spec when a test scope ends, pass or fail.
struct FaultGuard {
  explicit FaultGuard(const sock::FaultSpec& spec) { sock::set_fault_spec(spec); }
  ~FaultGuard() { sock::set_fault_spec(sock::FaultSpec{}); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

/// Minimal blocking client (same shape as server_test's): receive timeout so
/// a wedged server fails the test instead of hanging it.
class Client {
 public:
  static Client tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return Client(fd);
  }

  explicit Client(int fd) : fd_(fd) {
    timeval tv{30, 0};  // generous: sanitizer builds are slow
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~Client() { close(); }
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;

  void send(const std::string& data) const {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  void try_send(const std::string& data) const {
    [[maybe_unused]] const auto rc = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  }

  std::string read_line() {
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  std::string buffer_;
};

class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options = make_tcp_options()) : service_(4) {
    server_ = std::make_unique<Server>(service_, std::move(options));
    runner_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() { drain_and_join(); }

  static ServerOptions make_tcp_options() {
    ServerOptions o;
    o.tcp_port = 0;  // ephemeral
    o.jobs = 2;
    return o;
  }

  [[nodiscard]] Client connect() const { return Client::tcp(server_->tcp_port()); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] Service& service() { return service_; }

  void drain_and_join() {
    if (!runner_.joinable()) return;
    server_->request_drain();
    runner_.join();
  }

 private:
  Service service_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

// ---- fault spec parsing ---------------------------------------------------

TEST(ServeFault, ParseFaultSpecAcceptsKnownClauses) {
  const sock::FaultSpec off = sock::parse_fault_spec("");
  EXPECT_EQ(off.short_write_cap, 0u);
  EXPECT_EQ(off.eintr_every, 0u);

  const sock::FaultSpec defaults = sock::parse_fault_spec("short_write,eintr");
  EXPECT_EQ(defaults.short_write_cap, 1u);
  EXPECT_EQ(defaults.eintr_every, 3u);

  const sock::FaultSpec counted = sock::parse_fault_spec("short_write:4,eintr:2");
  EXPECT_EQ(counted.short_write_cap, 4u);
  EXPECT_EQ(counted.eintr_every, 2u);
}

TEST(ServeFault, ParseFaultSpecRejectsGarbageLoudly) {
  // A typo'd BASCHED_FAULT must never silently test nothing.
  EXPECT_THROW((void)sock::parse_fault_spec("short_wrote:1"), std::invalid_argument);
  EXPECT_THROW((void)sock::parse_fault_spec("eintr:abc"), std::invalid_argument);
  EXPECT_THROW((void)sock::parse_fault_spec("eintr:"), std::invalid_argument);
  EXPECT_THROW((void)sock::parse_fault_spec("short_write:0"), std::invalid_argument);
  EXPECT_THROW((void)sock::parse_fault_spec("eintr:0"), std::invalid_argument);
  EXPECT_THROW((void)sock::parse_fault_spec("eintr:99999999999"), std::invalid_argument);
}

// ---- wire faults ----------------------------------------------------------

TEST(ServeFault, SingleByteWritesStillDeliverWholeResponses) {
  const auto before = sock::fault_counters();
  const FaultGuard guard(sock::parse_fault_spec("short_write:1"));
  ServerFixture fx;
  Client c = fx.connect();

  c.send("{\"verb\":\"ping\",\"id\":1}\n");
  EXPECT_EQ(c.read_line(), R"({"id":1,"ok":true,"result":{"pong":true}})");

  // A schedule response is hundreds of bytes — all reassembled from
  // single-byte sends by send_all's retry loop.
  c.send(schedule_request(graph_text(1), "ours"));
  const auto frame = json::parse(c.read_line()).as_object();
  EXPECT_TRUE(frame.at("ok").as_bool());
  EXPECT_TRUE(frame.at("result").as_object().at("feasible").as_bool());

  const auto after = sock::fault_counters();
  EXPECT_GT(after.short_writes, before.short_writes);  // the fault really fired
}

TEST(ServeFault, InjectedEintrIsRetriedOnEveryPath) {
  const auto before = sock::fault_counters();
  const FaultGuard guard(sock::parse_fault_spec("eintr:3,short_write:7"));
  ServerFixture fx;
  Client c = fx.connect();

  for (int i = 0; i < 4; ++i) {
    c.send(schedule_request(graph_text(1), "ours"));
    const auto frame = json::parse(c.read_line()).as_object();
    EXPECT_TRUE(frame.at("ok").as_bool()) << json::dump(json::Value(frame));
  }

  const auto after = sock::fault_counters();
  EXPECT_GT(after.injected_eintr, before.injected_eintr);
}

TEST(ServeFault, SlowLorisRequestIsAssembledAndAnswered) {
  ServerFixture fx;
  Client c = fx.connect();
  const std::string req = "{\"verb\":\"ping\",\"id\":9}\n";
  for (const char ch : req) {
    c.send(std::string(1, ch));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(c.read_line(), R"({"id":9,"ok":true,"result":{"pong":true}})");
}

TEST(ServeFault, TruncatedFrameThenCloseLeavesServerServing) {
  const FaultGuard guard(sock::parse_fault_spec("short_write:1,eintr:3"));
  ServerFixture fx;
  {
    Client c = fx.connect();
    c.send("{\"verb\":\"schedule\",\"params\":{\"gra");  // no newline, then gone
    c.close();
  }
  Client c2 = fx.connect();
  c2.send("{\"verb\":\"ping\"}\n");
  const auto frame = json::parse(c2.read_line()).as_object();
  EXPECT_TRUE(frame.at("ok").as_bool());
}

// ---- watchdog: disconnect, timeout, bounded drain -------------------------

/// A schedule request that runs 1-2 s unbudgeted (512 serial annealing
/// restarts) but unwinds within one annealing block of its token firing —
/// the knob the watchdog/timeout tests hang their timing margins on.
std::string long_request(json::Object extra = {}) {
  extra["restarts"] = 512.0;
  return schedule_request(graph_text(3, 22), "annealing", std::move(extra));
}

TEST(ServeFault, DisconnectMidRequestCancelsTheSearch) {
  ServerFixture fx;
  {
    Client c = fx.connect();
    // The request runs far longer than the watchdog's poll period; the
    // client vanishing must cancel it, not let it burn seconds of search
    // on a dead connection.
    c.send(long_request());
    c.close();
  }
  // The watchdog fires the request's stop token; the search unwinds as
  // `cancelled` and the worker finds the peer gone on the response write.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fx.server().stats().disconnect_cancels == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fx.drain_and_join();
  EXPECT_GE(fx.server().stats().disconnect_cancels, 1u);
  EXPECT_GE(fx.service().stats().cancelled_stops, 1u);
}

TEST(ServeFault, RequestTimeoutReturnsBestSoFarWithDeadlineReason) {
  ServerFixture fx;
  Client c = fx.connect();
  json::Object extra;
  extra["timeout_ms"] = 30.0;
  c.send(long_request(std::move(extra)));
  const auto frame = json::parse(c.read_line()).as_object();
  ASSERT_TRUE(frame.at("ok").as_bool());
  const auto& result = frame.at("result").as_object();
  // Anytime contract: the budgeted search answers in time with its best
  // incumbent and says why it stopped.
  EXPECT_TRUE(result.at("feasible").as_bool());
  EXPECT_EQ(result.at("stop_reason").as_string(), "deadline");
  EXPECT_GE(fx.service().stats().deadline_stops, 1u);
}

TEST(ServeFault, ServerDefaultTimeoutAppliesWhenRequestSetsNone) {
  ServerOptions o = ServerFixture::make_tcp_options();
  o.default_timeout_ms = 30;
  ServerFixture fx(o);
  Client c = fx.connect();
  c.send(long_request());
  const auto frame = json::parse(c.read_line()).as_object();
  ASSERT_TRUE(frame.at("ok").as_bool());
  EXPECT_EQ(frame.at("result").as_object().at("stop_reason").as_string(), "deadline");
}

TEST(ServeFault, SweepAbortsWithDeadlineErrorWhenBudgetTrips) {
  ServerFixture fx;
  Client c = fx.connect();
  json::Object params;
  params["graph"] = graph_text(3, 22);
  // A realistic (partly feasible) deadline range: ~0.4 ms of algorithm work
  // per point, 256 points — two orders of magnitude past the 1 ms budget.
  params["from"] = 50.0;
  params["to"] = 500.0;
  params["steps"] = 256.0;
  params["timeout_ms"] = 1.0;
  json::Object frame;
  frame["verb"] = "sweep";
  frame["id"] = 2;
  frame["params"] = json::Value(std::move(params));
  c.send(json::dump(json::Value(std::move(frame))) + "\n");

  const auto resp = json::parse(c.read_line()).as_object();
  ASSERT_FALSE(resp.at("ok").as_bool());
  // Sweeps are all-or-nothing: a tripped budget is an explicit `deadline`
  // error, never a silently shortened curve.
  EXPECT_EQ(resp.at("error").as_object().at("code").as_string(), "deadline");
  EXPECT_GE(fx.service().stats().deadline_stops, 1u);
}

TEST(ServeFault, DrainTimeoutForceCancelsInflightRequests) {
  ServerOptions o = ServerFixture::make_tcp_options();
  o.drain_timeout_ms = 50;
  ServerFixture fx(o);
  Client c = fx.connect();
  c.send(long_request());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it start

  // run() must return promptly: the drain deadline force-cancels the search
  // instead of waiting out its remaining restarts.
  const auto t0 = std::chrono::steady_clock::now();
  fx.drain_and_join();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(20));
  EXPECT_GE(fx.server().stats().drain_cancels, 1u);

  // The cancelled request still got an answer before the connection closed:
  // its best-so-far incumbent, marked `cancelled`.
  const std::string line = c.read_line();
  if (!line.empty()) {
    const auto frame = json::parse(line).as_object();
    if (frame.at("ok").as_bool()) {
      EXPECT_EQ(frame.at("result").as_object().at("stop_reason").as_string(), "cancelled");
    }
  }
}

TEST(ServeFault, OverloadedRejectionCarriesRetryHint) {
  ServerOptions o = ServerFixture::make_tcp_options();
  o.max_inflight = 0;  // admission control refuses everything
  o.retry_after_ms = 40;
  ServerFixture fx(o);
  Client c = fx.connect();
  c.send("{\"verb\":\"ping\"}\n");
  const auto frame = json::parse(c.read_line()).as_object();
  ASSERT_FALSE(frame.at("ok").as_bool());
  const auto& error = frame.at("error").as_object();
  EXPECT_EQ(error.at("code").as_string(), "overloaded");
  EXPECT_EQ(error.at("retry_after_ms").as_number(), 40.0);
  EXPECT_GE(fx.server().stats().overloaded, 1u);
}

}  // namespace
}  // namespace basched::serve
