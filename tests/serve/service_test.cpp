/// Tests for the serve verb layer: payloads must be byte-identical to the
/// direct library calls the CLI makes, failures must map to the right wire
/// codes, and same-catalog requests must share the warm-up cost.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_io.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/json.hpp"
#include "basched/serve/service.hpp"
#include "basched/util/rng.hpp"

namespace basched::serve {
namespace {

std::string graph_text(std::uint64_t seed, std::size_t tasks = 6) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::serialize(graph::make_series_parallel(tasks, synth, rng));
}

json::Object response_of(Service& service, const std::string& request) {
  return json::parse(service.handle_line(request).line).as_object();
}

std::string error_code(const json::Object& response) {
  return response.at("error").as_object().at("code").as_string();
}

std::string request(const std::string& verb, json::Object params, int id = 1) {
  json::Object frame;
  frame["verb"] = verb;
  frame["id"] = id;
  frame["params"] = json::Value(std::move(params));
  return json::dump(json::Value(std::move(frame)));
}

TEST(ServeService, PingPongs) {
  Service service;
  EXPECT_EQ(service.handle_line(R"({"verb":"ping","id":9})").line,
            R"({"id":9,"ok":true,"result":{"pong":true}})");
}

TEST(ServeService, FailureModesMapToWireCodes) {
  Service service;
  EXPECT_EQ(error_code(response_of(service, "{{{not json")), "bad_json");
  EXPECT_EQ(error_code(response_of(service, R"({"verb":"frobnicate"})")), "unknown_verb");
  EXPECT_EQ(error_code(response_of(service, R"({"verb":"schedule"})")), "bad_request");
  EXPECT_EQ(error_code(response_of(service, R"(["an","array"])")), "bad_request");

  // Errors echo the request id so clients can correlate.
  const auto r = response_of(service, R"({"verb":"frobnicate","id":"req-3"})");
  EXPECT_EQ(r.at("id").as_string(), "req-3");
  EXPECT_FALSE(r.at("ok").as_bool());
}

TEST(ServeService, BadParamsNameTheParam) {
  Service service;
  json::Object params;
  params["graph"] = graph_text(1);
  // missing required deadline
  auto r = response_of(service, request("schedule", params));
  EXPECT_EQ(error_code(r), "bad_request");
  EXPECT_NE(r.at("error").as_object().at("message").as_string().find("deadline"),
            std::string::npos);

  // unknown param is rejected, not silently ignored
  params["deadline"] = 100.0;
  params["dedline"] = 90.0;
  r = response_of(service, request("schedule", params));
  EXPECT_EQ(error_code(r), "bad_request");
  EXPECT_NE(r.at("error").as_object().at("message").as_string().find("dedline"),
            std::string::npos);

  // invalid graph text is the request's fault, not an internal error
  json::Object bad;
  bad["graph"] = "not a graph";
  bad["deadline"] = 100.0;
  EXPECT_EQ(error_code(response_of(service, request("schedule", bad))), "bad_request");
}

TEST(ServeService, SchedulePayloadMatchesDirectLibraryCall) {
  Service service;
  const std::string g_text = graph_text(2);
  json::Object params;
  params["graph"] = g_text;
  params["deadline"] = 100.0;
  const auto r = response_of(service, request("schedule", params));
  ASSERT_TRUE(r.at("ok").as_bool()) << service.handle_line(request("schedule", params)).line;
  const json::Object& result = r.at("result").as_object();
  ASSERT_TRUE(result.at("feasible").as_bool());

  const auto g = graph::parse(g_text);
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto direct = core::schedule_battery_aware(g, 100.0, model);
  ASSERT_TRUE(direct.feasible);
  EXPECT_EQ(result.at("schedule").as_string(), core::serialize_schedule(g, direct.schedule));
  EXPECT_DOUBLE_EQ(result.at("sigma").as_number(), direct.sigma);
}

TEST(ServeService, BnbPayloadMatchesDirectLibraryCall) {
  Service service;
  const std::string g_text = graph_text(3, 5);
  json::Object params;
  params["graph"] = g_text;
  params["deadline"] = 100.0;
  params["algorithm"] = "bnb";
  const auto r = response_of(service, request("schedule", params));
  ASSERT_TRUE(r.at("ok").as_bool());
  const json::Object& result = r.at("result").as_object();
  ASSERT_TRUE(result.at("feasible").as_bool());

  const auto g = graph::parse(g_text);
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto direct = baselines::schedule_branch_and_bound(g, 100.0, model);
  ASSERT_TRUE(direct.feasible);
  EXPECT_EQ(result.at("schedule").as_string(), core::serialize_schedule(g, direct.schedule));
  EXPECT_DOUBLE_EQ(result.at("sigma").as_number(), direct.sigma);
}

TEST(ServeService, SameCatalogRequestsShareTheWarmupCost) {
  Service service;
  json::Object params;
  params["graph"] = graph_text(4);
  params["deadline"] = 100.0;
  const std::string req = request("schedule", params);

  const auto first = response_of(service, req).at("result").as_object();
  const auto second = response_of(service, req).at("result").as_object();
  // Identical payload...
  EXPECT_EQ(second.at("schedule").as_string(), first.at("schedule").as_string());
  // ...but the second request rides the warm catalog: strictly fewer exps
  // (the first paid the master-cache build on top of identical search work).
  EXPECT_LT(second.at("exp_evals").as_number(), first.at("exp_evals").as_number());
}

TEST(ServeService, EvaluateRoundTripsAScheduleFromScheduleVerb) {
  Service service;
  const std::string g_text = graph_text(5);
  json::Object sparams;
  sparams["graph"] = g_text;
  sparams["deadline"] = 100.0;
  const auto sched = response_of(service, request("schedule", sparams));
  ASSERT_TRUE(sched.at("ok").as_bool());
  const json::Object& sresult = sched.at("result").as_object();
  ASSERT_TRUE(sresult.at("feasible").as_bool());

  json::Object eparams;
  eparams["graph"] = g_text;
  eparams["schedule"] = sresult.at("schedule").as_string();
  eparams["alpha"] = 1e9;  // huge capacity: the battery must survive
  const auto eval = response_of(service, request("evaluate", eparams));
  ASSERT_TRUE(eval.at("ok").as_bool());
  const json::Object& eresult = eval.at("result").as_object();
  EXPECT_DOUBLE_EQ(eresult.at("sigma").as_number(), sresult.at("sigma").as_number());
  EXPECT_DOUBLE_EQ(eresult.at("duration").as_number(), sresult.at("duration").as_number());
  EXPECT_TRUE(eresult.at("death").is_null());
}

TEST(ServeService, InfeasibleDeadlineIsAResultNotAnError) {
  Service service;
  json::Object params;
  params["graph"] = graph_text(6);
  params["deadline"] = 1e-6;  // unmeetable
  const auto r = response_of(service, request("schedule", params));
  ASSERT_TRUE(r.at("ok").as_bool());  // the *request* succeeded
  const json::Object& result = r.at("result").as_object();
  EXPECT_FALSE(result.at("feasible").as_bool());
  EXPECT_FALSE(result.at("error").as_string().empty());
}

TEST(ServeService, StatsCountRequestsAndCatalogTraffic) {
  Service service;
  json::Object params;
  params["graph"] = graph_text(7);
  params["deadline"] = 100.0;
  (void)service.handle_line(request("schedule", params));
  (void)service.handle_line(request("schedule", params));
  (void)service.handle_line("junk");

  const auto r = response_of(service, R"({"verb":"stats"})");
  const json::Object& result = r.at("result").as_object();
  EXPECT_DOUBLE_EQ(result.at("requests").as_number(), 3.0);  // junk never parsed
  EXPECT_DOUBLE_EQ(result.at("errors").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(result.at("by_verb").as_object().at("schedule").as_number(), 2.0);
  const json::Object& catalog = result.at("catalog").as_object();
  EXPECT_DOUBLE_EQ(catalog.at("hits").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(catalog.at("misses").as_number(), 1.0);
}

TEST(ServeService, ShutdownSetsTheDrainFlag) {
  Service service;
  const auto outcome = service.handle_line(R"({"verb":"shutdown","id":1})");
  EXPECT_TRUE(outcome.shutdown);
  EXPECT_TRUE(json::parse(outcome.line).as_object().at("ok").as_bool());
  // Ordinary requests don't.
  EXPECT_FALSE(service.handle_line(R"({"verb":"ping"})").shutdown);
}

TEST(ServeService, SweepReturnsCsvMatchingStepCount) {
  Service service;
  json::Object params;
  params["graph"] = graph_text(8);
  params["from"] = 20.0;
  params["to"] = 60.0;
  params["steps"] = 4;
  const auto r = response_of(service, request("sweep", params));
  ASSERT_TRUE(r.at("ok").as_bool());
  const json::Object& result = r.at("result").as_object();
  const std::string& csv = result.at("csv").as_string();
  EXPECT_FALSE(csv.empty());
  // header + one row per point
  const auto rows = static_cast<std::size_t>(result.at("points").as_number());
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1u : 0u;
  EXPECT_GE(lines, rows);
}

}  // namespace
}  // namespace basched::serve
