/// Tests for the per-catalog warm-state registry: requests against the same
/// (graph, β) catalog must share the decay-row warm-up cost, and eviction
/// must never invalidate an in-flight entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/catalog.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::serve {
namespace {

std::string graph_text(std::uint64_t seed, std::size_t tasks = 6) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::serialize(graph::make_series_parallel(tasks, synth, rng));
}

TEST(ServeCatalog, BorrowedEvaluatorsAdoptTheWarmCacheForFree) {
  const CatalogEntry entry(graph_text(1), 0.273);

  // A cold evaluator pays the warm-up exps in its constructor...
  const std::uint64_t before_cold = util::fastmath::exp_evaluations();
  const core::ScheduleEvaluator cold(entry.graph(), entry.model());
  const std::uint64_t cold_cost = util::fastmath::exp_evaluations() - before_cold;
  EXPECT_GT(cold_cost, 0u);

  // ...while borrowing from the entry copies the master cache: zero exps.
  const std::uint64_t before_borrow = util::fastmath::exp_evaluations();
  auto borrowed = entry.borrow();
  EXPECT_EQ(util::fastmath::exp_evaluations() - before_borrow, 0u);
  ASSERT_NE(borrowed, nullptr);
  entry.give_back(std::move(borrowed));
}

TEST(ServeCatalog, PoolRecyclesReturnedEvaluators) {
  const CatalogEntry entry(graph_text(2), 0.273);
  auto first = entry.borrow();
  const core::ScheduleEvaluator* raw = first.get();
  entry.give_back(std::move(first));
  const auto second = entry.borrow();
  EXPECT_EQ(second.get(), raw);  // same object came back out of the pool
}

TEST(ServeCatalog, RegistrySharesOneEntryPerKey) {
  CatalogRegistry registry(4);
  const std::string g = graph_text(3);
  const auto a = registry.acquire(g, 0.273);
  const auto b = registry.acquire(g, 0.273);
  EXPECT_EQ(a.get(), b.get());

  const auto s = registry.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST(ServeCatalog, BetaIsPartOfTheKey) {
  CatalogRegistry registry(4);
  const std::string g = graph_text(4);
  const auto a = registry.acquire(g, 0.2);
  const auto b = registry.acquire(g, 0.3);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(registry.stats().misses, 2u);
}

TEST(ServeCatalog, LruEvictsButInFlightEntriesStayValid) {
  CatalogRegistry registry(2);
  const std::string g1 = graph_text(10);
  const auto held = registry.acquire(g1, 0.273);  // keep a reference across eviction
  (void)registry.acquire(graph_text(11), 0.273);
  (void)registry.acquire(graph_text(12), 0.273);  // evicts g1 (capacity 2, LRU)
  EXPECT_EQ(registry.stats().size, 2u);

  // The held entry still works even though the registry dropped it...
  EXPECT_EQ(held->borrow()->evaluations(), 0u);

  // ...and re-acquiring g1 is a miss (it was evicted), not a crash.
  const auto again = registry.acquire(g1, 0.273);
  EXPECT_NE(again.get(), held.get());
  EXPECT_EQ(registry.stats().misses, 4u);
}

TEST(ServeCatalog, InvalidGraphPropagatesAndIsNotCached) {
  CatalogRegistry registry(4);
  EXPECT_ANY_THROW((void)registry.acquire("not a graph", 0.273));
  EXPECT_EQ(registry.stats().size, 0u);  // the failure was not cached
  // The registry still works after a failed build.
  EXPECT_NE(registry.acquire(graph_text(5), 0.273), nullptr);
}

}  // namespace
}  // namespace basched::serve
