/// Tests for the serve wire-format JSON: a malformed frame from a client
/// must become a clean json::Error (never UB), and dumps must be
/// byte-stable so responses can be compared exactly.
#include <gtest/gtest.h>

#include <string>

#include "basched/serve/json.hpp"

namespace basched::serve::json {
namespace {

TEST(ServeJson, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-12.5").as_number(), -12.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(parse("  null  ").is_null());  // surrounding whitespace ok
}

TEST(ServeJson, ParsesContainers) {
  const Value v = parse(R"({"a":[1,2,{"b":null}],"c":"x"})");
  const Object& o = v.as_object();
  const Array& a = o.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].as_object().at("b").is_null());
  EXPECT_EQ(o.at("c").as_string(), "x");
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(ServeJson, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  // \u00e9 = é (2-byte UTF-8); surrogate pair = U+1F600 (4-byte UTF-8).
  EXPECT_EQ(parse(R"("\u00e9")").as_string(), "\xC3\xA9");
  EXPECT_EQ(parse(R"("\uD83D\uDE00")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(ServeJson, MalformedInputThrowsCleanly) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1,2",        // unterminated array
      "\"abc",       // unterminated string
      "{\"a\":}",    // missing value
      "{1:2}",       // non-string key
      "[1,]",        // trailing comma
      "tru",         // bad literal
      "1 2",         // trailing garbage
      "nan",         // not a JSON number
      "-",           // sign without digits
      "1.",          // fraction without digits
      "1e",          // exponent without digits
      "1e999",       // out of double range
      "\"\\x\"",     // invalid escape
      "\"\\uD800\"", // unpaired surrogate
      "\"\x01\"",    // raw control character
  };
  for (const char* text : bad) EXPECT_THROW(parse(text), Error) << text;
}

TEST(ServeJson, DeepNestingIsBoundedNotUB) {
  EXPECT_THROW(parse(std::string(100000, '[')), Error);
  // Depth just inside the cap parses fine.
  std::string ok = std::string(60, '[') + "1" + std::string(60, ']');
  EXPECT_NO_THROW(parse(ok));
}

TEST(ServeJson, DumpIsByteStable) {
  Object o;
  o["b"] = 2;
  o["a"] = 1;
  o["s"] = "x\ny";
  // Map order (sorted keys), compact, integral numbers without fraction.
  EXPECT_EQ(dump(Value(std::move(o))), R"({"a":1,"b":2,"s":"x\ny"})");
  EXPECT_EQ(dump(Value(1.5)), "1.5");
  EXPECT_EQ(dump(Value(-0.0)), "0");
  EXPECT_EQ(dump(Value(std::uint64_t{1} << 40)), "1099511627776");
}

TEST(ServeJson, RoundTripsItsOwnDump) {
  const char* docs[] = {
      R"({"verb":"schedule","id":7,"params":{"deadline":26.5,"graph":"g"}})",
      R"([null,true,false,0.25,"\u0007"])",
  };
  for (const char* doc : docs) {
    const Value v = parse(doc);
    EXPECT_EQ(parse(dump(v)), v) << doc;
  }
}

TEST(ServeJson, AccessorsThrowOnTypeMismatch) {
  const Value v = parse("42");
  EXPECT_THROW((void)v.as_string(), Error);
  EXPECT_THROW((void)v.as_object(), Error);
  EXPECT_THROW((void)v.as_array(), Error);
  EXPECT_THROW((void)v.as_bool(), Error);
  EXPECT_NO_THROW((void)v.as_number());
}

}  // namespace
}  // namespace basched::serve::json
