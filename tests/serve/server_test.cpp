/// Socket-level tests of the serve daemon: wire failure modes (malformed
/// frames, oversized lines, mid-request disconnects, requests during drain)
/// must produce clean protocol errors or clean closes — never a crash, hang,
/// or poisoned accept loop. Runs over real TCP/unix sockets on loopback.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/serve/json.hpp"
#include "basched/serve/server.hpp"
#include "basched/util/rng.hpp"

namespace basched::serve {
namespace {

std::string graph_text(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::serialize(graph::make_series_parallel(5, synth, rng));
}

/// Blocking client socket with a receive timeout so a server bug fails the
/// test instead of hanging it.
class Client {
 public:
  static Client tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return Client(fd);
  }

  static Client unix_socket(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return Client(fd);
  }

  explicit Client(int fd) : fd_(fd) {
    timeval tv{30, 0};  // generous: sanitizer builds are slow
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~Client() { close(); }
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;

  void send(const std::string& data) const {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Like send, but tolerates a peer that already closed (RST): used where
  /// the test races a server-side drain on purpose.
  void try_send(const std::string& data) const {
    [[maybe_unused]] const auto rc = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  }

  /// Reads up to '\n' (consumed, not returned). Empty string means EOF,
  /// error, or timeout.
  std::string read_line() {
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  std::string buffer_;
};

std::string error_code_of(const std::string& line) {
  const auto frame = json::parse(line).as_object();
  if (frame.at("ok").as_bool()) return "";
  return frame.at("error").as_object().at("code").as_string();
}

/// Server on an ephemeral loopback port, run() on a background thread.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options = make_tcp_options()) : service_(4) {
    server_ = std::make_unique<Server>(service_, std::move(options));
    runner_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() { drain_and_join(); }

  static ServerOptions make_tcp_options() {
    ServerOptions o;
    o.tcp_port = 0;  // ephemeral
    o.jobs = 2;
    return o;
  }

  [[nodiscard]] Client connect() const { return Client::tcp(server_->tcp_port()); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] Service& service() { return service_; }

  void drain_and_join() {
    if (!runner_.joinable()) return;
    server_->request_drain();
    runner_.join();
  }

 private:
  Service service_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST(ServeServer, PingOverTcp) {
  ServerFixture fx;
  Client c = fx.connect();
  c.send("{\"verb\":\"ping\",\"id\":1}\n");
  EXPECT_EQ(c.read_line(), R"({"id":1,"ok":true,"result":{"pong":true}})");
}

TEST(ServeServer, PingOverUnixSocket) {
  char dir_template[] = "/tmp/basched_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string path = std::string(dir_template) + "/s.sock";
  ServerOptions o;
  o.unix_path = path;
  o.jobs = 2;
  {
    ServerFixture fx(o);
    Client c = Client::unix_socket(path);
    c.send("{\"verb\":\"ping\"}\n");
    EXPECT_EQ(c.read_line(), R"({"id":null,"ok":true,"result":{"pong":true}})");
  }
  ::rmdir(dir_template);  // the server unlinked the socket file on exit
}

TEST(ServeServer, MalformedJsonGetsErrorAndConnectionStaysUsable) {
  ServerFixture fx;
  Client c = fx.connect();
  c.send("this is not json\n");
  EXPECT_EQ(error_code_of(c.read_line()), "bad_json");
  // The connection survives a bad frame: framing is intact, keep going.
  c.send("{\"verb\":\"ping\"}\n");
  EXPECT_EQ(error_code_of(c.read_line()), "");
}

TEST(ServeServer, UnknownVerbGetsErrorOverTheWire) {
  ServerFixture fx;
  Client c = fx.connect();
  c.send("{\"verb\":\"frobnicate\",\"id\":2}\n");
  EXPECT_EQ(error_code_of(c.read_line()), "unknown_verb");
}

TEST(ServeServer, OversizedLineIsRefusedAndConnectionClosed) {
  ServerOptions o = ServerFixture::make_tcp_options();
  o.max_line = 64;
  ServerFixture fx(o);
  Client c = fx.connect();
  c.send(std::string(1000, 'x'));  // no newline: unframeable
  EXPECT_EQ(error_code_of(c.read_line()), "line_too_long");
  EXPECT_EQ(c.read_line(), "");  // server closed the connection

  // The accept loop is unharmed: a fresh connection works.
  Client c2 = fx.connect();
  c2.send("{\"verb\":\"ping\"}\n");
  EXPECT_EQ(error_code_of(c2.read_line()), "");
}

TEST(ServeServer, MidRequestDisconnectLeavesServerAlive) {
  ServerFixture fx;
  {
    Client c = fx.connect();
    c.send("{\"verb\":\"schedule\",\"params\":{\"gra");  // partial frame
    c.close();                                           // client dies mid-request
  }
  // The server must shrug it off and keep serving.
  Client c2 = fx.connect();
  c2.send("{\"verb\":\"ping\"}\n");
  EXPECT_EQ(error_code_of(c2.read_line()), "");
}

TEST(ServeServer, ZeroInflightBudgetRefusesWithOverloaded) {
  ServerOptions o = ServerFixture::make_tcp_options();
  o.max_inflight = 0;  // admission control refuses everything
  ServerFixture fx(o);
  Client c = fx.connect();
  c.send("{\"verb\":\"ping\"}\n");
  EXPECT_EQ(error_code_of(c.read_line()), "overloaded");
}

TEST(ServeServer, RequestDuringDrainGetsErrorOrEof) {
  ServerFixture fx;
  Client c = fx.connect();
  c.send("{\"verb\":\"ping\"}\n");
  ASSERT_EQ(error_code_of(c.read_line()), "");

  fx.server().request_drain();
  // request_drain() only pokes the self-pipe; the run() thread applies it
  // asynchronously. Three races are all legitimate: the ping slips in before
  // the flag (normal pong), it is parsed after the flag (`draining` error),
  // or SHUT_RD wins and it is never read (EOF). What is not acceptable is a
  // hang, a crash, or any other error code.
  c.try_send("{\"verb\":\"ping\"}\n");
  for (std::string line = c.read_line(); !line.empty(); line = c.read_line()) {
    const std::string code = error_code_of(line);
    EXPECT_TRUE(code.empty() || code == "draining") << line;
  }

  fx.drain_and_join();  // run() must return: every thread joined
}

TEST(ServeServer, ShutdownVerbDrainsTheServer) {
  ServerFixture fx;
  Client c = fx.connect();
  c.send("{\"verb\":\"shutdown\",\"id\":7}\n");
  const std::string line = c.read_line();
  EXPECT_EQ(error_code_of(line), "");
  EXPECT_EQ(c.read_line(), "");  // connection closes after shutdown
  fx.drain_and_join();           // and run() returns on its own accord
}

TEST(ServeServer, ScheduleOverTheWireMatchesRepeatedRequests) {
  ServerFixture fx;
  Client c = fx.connect();
  json::Object params;
  params["graph"] = graph_text(1);
  params["deadline"] = 100.0;
  json::Object frame;
  frame["verb"] = "schedule";
  frame["id"] = 1;
  frame["params"] = json::Value(std::move(params));
  const std::string req = json::dump(json::Value(std::move(frame))) + "\n";

  c.send(req);
  const auto first = json::parse(c.read_line()).as_object();
  ASSERT_TRUE(first.at("ok").as_bool());
  c.send(req);
  const auto second = json::parse(c.read_line()).as_object();
  ASSERT_TRUE(second.at("ok").as_bool());

  const auto& r1 = first.at("result").as_object();
  const auto& r2 = second.at("result").as_object();
  EXPECT_EQ(r1.at("schedule").as_string(), r2.at("schedule").as_string());
  // Sequential same-catalog requests share the warm cache.
  EXPECT_LT(r2.at("exp_evals").as_number(), r1.at("exp_evals").as_number());
}

}  // namespace
}  // namespace basched::serve
