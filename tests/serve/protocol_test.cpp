/// Tests for request/response framing: every malformed frame maps to a
/// ProtocolError with the right wire code, and response lines are exact.
#include <gtest/gtest.h>

#include <string>

#include "basched/serve/protocol.hpp"

namespace basched::serve {
namespace {

std::string code_of(const std::string& line) {
  try {
    (void)parse_request(line);
  } catch (const ProtocolError& e) {
    return e.code();
  }
  return "";
}

TEST(ServeProtocol, ParsesMinimalAndFullFrames) {
  const Request minimal = parse_request(R"({"verb":"ping"})");
  EXPECT_EQ(minimal.verb, "ping");
  EXPECT_TRUE(minimal.id.is_null());
  EXPECT_TRUE(minimal.params.empty());

  const Request full =
      parse_request(R"({"verb":"schedule","id":7,"params":{"deadline":26.5}})");
  EXPECT_EQ(full.verb, "schedule");
  EXPECT_DOUBLE_EQ(full.id.as_number(), 7.0);
  EXPECT_DOUBLE_EQ(full.params.at("deadline").as_number(), 26.5);
}

TEST(ServeProtocol, IdMayBeAnyJsonValue) {
  EXPECT_EQ(parse_request(R"({"verb":"v","id":"abc"})").id.as_string(), "abc");
  EXPECT_TRUE(parse_request(R"({"verb":"v","id":null})").id.is_null());
}

TEST(ServeProtocol, MalformedJsonIsBadJson) {
  EXPECT_EQ(code_of("this is not json"), "bad_json");
  EXPECT_EQ(code_of("{\"verb\":"), "bad_json");
  EXPECT_EQ(code_of(""), "bad_json");
}

TEST(ServeProtocol, WrongShapeIsBadRequest) {
  EXPECT_EQ(code_of("[1,2,3]"), "bad_request");            // not an object
  EXPECT_EQ(code_of("42"), "bad_request");                 // not an object
  EXPECT_EQ(code_of(R"({})"), "bad_request");              // missing verb
  EXPECT_EQ(code_of(R"({"verb":17})"), "bad_request");     // verb not a string
  EXPECT_EQ(code_of(R"({"verb":""})"), "bad_request");     // empty verb
  EXPECT_EQ(code_of(R"({"verb":"v","params":3})"), "bad_request");  // params not object
  EXPECT_EQ(code_of(R"({"verb":"v","extra":1})"), "bad_request");   // unknown field
}

TEST(ServeProtocol, ResponseLinesAreExact) {
  json::Object result;
  result["pong"] = true;
  EXPECT_EQ(ok_line(json::Value(7), std::move(result)),
            R"({"id":7,"ok":true,"result":{"pong":true}})");
  EXPECT_EQ(error_line(json::Value(), "bad_json", "oops"),
            R"({"error":{"code":"bad_json","message":"oops"},"id":null,"ok":false})");
}

TEST(ServeProtocol, ErrorMessagesSurviveJsonEscaping) {
  const std::string line = error_line(json::Value(1), "bad_request", "quote \" and \n newline");
  const json::Value frame = json::parse(line);
  EXPECT_EQ(frame.as_object().at("error").as_object().at("message").as_string(),
            "quote \" and \n newline");
}

}  // namespace
}  // namespace basched::serve
