// Drives the real bench_diff binary (path injected via BENCH_DIFF_BIN) over
// small synthetic snapshots written to a temp dir: the gate logic (exit 0/1)
// and the hardened parse errors (exit 2 with a message naming file, row and
// key) are both pinned here.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct DiffRun {
  int exit_code = -1;
  std::string out;  // stdout + stderr interleaved
};

DiffRun run_diff(const std::string& args) {
  const std::string cmd = std::string(BENCH_DIFF_BIN) + " " + args + " 2>&1";
  DiffRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/bench_diff_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    const std::string cmd = "rm -rf " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string write(const std::string& name, const std::string& content) {
    const std::string path = dir_ + "/" + name;
    std::ofstream(path) << content;
    return path;
  }

  /// A minimal well-formed snapshot with one gated row; `speedup` varies.
  static std::string snapshot(double speedup) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"schema\": \"basched-bench-search-v3\",\n"
                  "  \"model\": \"rv\",\n"
                  "  \"results\": [\n"
                  "    {\"mode\": \"incremental\", \"n\": 40, \"full_evals_per_sec\": 1000.0, "
                  "\"delta_evals_per_sec\": 8000.0, \"speedup\": %.1f, \"max_rel_err\": "
                  "1.0e-12}\n"
                  "  ]\n"
                  "}\n",
                  speedup);
    return buf;
  }

  std::string dir_;
};

TEST_F(BenchDiffTest, identical_snapshots_pass) {
  const std::string a = write("a.json", snapshot(8.0));
  const DiffRun r = run_diff(a + " " + a);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("bench_diff: ok"), std::string::npos) << r.out;
}

TEST_F(BenchDiffTest, speedup_regression_beyond_threshold_fails_with_one) {
  const std::string fresh = write("fresh.json", snapshot(5.0));   // 8.0 -> 5.0: -37.5%
  const std::string base = write("base.json", snapshot(8.0));
  const DiffRun r = run_diff(fresh + " " + base);
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("REGR"), std::string::npos) << r.out;
}

TEST_F(BenchDiffTest, missing_metric_key_is_a_parse_error_naming_row_and_key) {
  std::string body = snapshot(8.0);
  const std::string needle = ", \"speedup\": 8.0";
  body.replace(body.find(needle), needle.size(), "");
  const std::string broken = write("broken.json", body);
  const std::string good = write("good.json", snapshot(8.0));
  const DiffRun r = run_diff(broken + " " + good);
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find(broken), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("mode=incremental, n=40"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"speedup\""), std::string::npos) << r.out;
}

TEST_F(BenchDiffTest, malformed_metric_value_is_a_parse_error) {
  std::string body = snapshot(8.0);
  const std::string needle = "\"max_rel_err\": 1.0e-12";
  body.replace(body.find(needle), needle.size(), "\"max_rel_err\": oops");
  const std::string broken = write("broken.json", body);
  const std::string good = write("good.json", snapshot(8.0));
  const DiffRun r = run_diff(good + " " + broken);
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find("\"max_rel_err\""), std::string::npos) << r.out;
}

TEST_F(BenchDiffTest, snapshot_without_schema_is_rejected) {
  std::string body = snapshot(8.0);
  const std::string needle = "  \"schema\": \"basched-bench-search-v3\",\n";
  body.replace(body.find(needle), needle.size(), "");
  const std::string broken = write("broken.json", body);
  const std::string good = write("good.json", snapshot(8.0));
  const DiffRun r = run_diff(broken + " " + good);
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find("missing \"schema\""), std::string::npos) << r.out;
}

TEST_F(BenchDiffTest, unreadable_file_and_bad_usage_exit_two) {
  EXPECT_EQ(run_diff(dir_ + "/nope.json " + dir_ + "/nope.json").exit_code, 2);
  EXPECT_EQ(run_diff("").exit_code, 2);
}

}  // namespace
