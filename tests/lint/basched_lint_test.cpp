// Fixture-driven tests for tools/lint/basched_lint: each rule id is
// demonstrated by a violating fixture plus an allow()-suppressed twin, with
// exact paths, line numbers and exit codes pinned. BASCHED_LINT_BIN and
// BASCHED_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string out;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(BASCHED_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string fixtures(const std::string& sub) {
  return std::string(BASCHED_LINT_FIXTURES) + "/" + sub;
}

// True if `out` has a line starting with `<fixtures>/<suffix>` — pins file,
// line number and rule id without caring about the message tail.
bool has_line(const std::string& out, const std::string& suffix) {
  const std::string want = fixtures(suffix);
  for (std::size_t at = 0; at < out.size();) {
    std::size_t end = out.find('\n', at);
    if (end == std::string::npos) end = out.size();
    if (out.compare(at, want.size(), want) == 0) return true;
    at = end + 1;
  }
  return false;
}

TEST(basched_lint, fixture_tree_reports_every_rule_with_exact_locations) {
  const LintRun r = run_lint(fixtures("src"));
  EXPECT_EQ(r.exit_code, 1) << r.out;

  EXPECT_TRUE(has_line(r.out, "src/core/raw_exp_bad.cpp:5: raw-exp:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/battery/raw_rng_bad.cpp:5: raw-rng:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/serve/raw_socket_bad.cpp:6: raw-socket:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/serve/unordered_iter_bad.cpp:8: unordered-iter:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/util/stdout_bad.cpp:5: stdout-write:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/util/missing_pragma.hpp:1: pragma-once:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/util/missing_include.hpp:6: include-direct:")) << r.out;

  // An allow() without a reason is itself a violation and suppresses nothing.
  EXPECT_TRUE(has_line(r.out, "src/util/allow_no_reason.cpp:6: allow-without-reason:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/util/allow_no_reason.cpp:7: stdout-write:")) << r.out;

  // Justified suppressions are reported as 'allowed', not as violations.
  EXPECT_TRUE(has_line(r.out, "src/core/raw_exp_allowed.cpp:6: allowed: raw-exp")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/battery/raw_rng_allowed.cpp:5: allowed: raw-rng")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/serve/raw_socket_allowed.cpp:7: allowed: raw-socket")) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/serve/unordered_iter_allowed.cpp:10: allowed: unordered-iter"))
      << r.out;
  EXPECT_TRUE(has_line(r.out, "src/util/stdout_allowed.cpp:6: allowed: stdout-write")) << r.out;

  // raw-exp is path-scoped: the graph/ fixture uses std::exp legally.
  EXPECT_EQ(r.out.find("raw_exp_unrestricted"), std::string::npos) << r.out;

  EXPECT_NE(r.out.find("basched_lint: 14 file(s), 9 violation(s), 5 allowed suppression(s)"),
            std::string::npos)
      << r.out;
}

TEST(basched_lint, clean_tree_exits_zero_and_ignores_comments_and_strings) {
  // clean.cpp mentions std::exp in comments and "std::cout"/"rand()" inside
  // string literals; none of it may be reported.
  const LintRun r = run_lint(fixtures("clean"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("basched_lint: 2 file(s), 0 violation(s), 0 allowed suppression(s)"),
            std::string::npos)
      << r.out;
}

TEST(basched_lint, single_file_argument_is_linted_directly) {
  const LintRun r = run_lint(fixtures("src/core/raw_exp_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_TRUE(has_line(r.out, "src/core/raw_exp_bad.cpp:5: raw-exp:")) << r.out;
  EXPECT_NE(r.out.find("1 file(s), 1 violation(s), 0 allowed suppression(s)"), std::string::npos)
      << r.out;
}

TEST(basched_lint, usage_and_missing_path_exit_two) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint(fixtures("does_not_exist")).exit_code, 2);
}

TEST(basched_lint, repo_root_scratch_files_are_rejected) {
  // root_bad/: a zero-byte r1.json (debugging leftover) and a non-BENCH_
  // out.json must both fire root-scratch; BENCH_ok.json and the dotfile are
  // sanctioned. Immediate children only — no recursion.
  const LintRun r = run_lint("--repo-root " + fixtures("root_bad"));
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_TRUE(has_line(r.out, "root_bad/r1.json:1: root-scratch:")) << r.out;
  EXPECT_TRUE(has_line(r.out, "root_bad/out.json:1: root-scratch:")) << r.out;
  EXPECT_EQ(r.out.find("BENCH_ok.json"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find(".scratchrc"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("2 violation(s)"), std::string::npos) << r.out;
}

TEST(basched_lint, repo_root_clean_exits_zero) {
  const LintRun r = run_lint("--repo-root " + fixtures("root_clean"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("0 violation(s)"), std::string::npos) << r.out;
}

TEST(basched_lint, repo_root_missing_directory_exits_two) {
  EXPECT_EQ(run_lint("--repo-root " + fixtures("does_not_exist")).exit_code, 2);
}

TEST(basched_lint, real_repo_root_is_clean) {
  const LintRun r = run_lint("--repo-root " + std::string(BASCHED_SOURCE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST(basched_lint, real_library_sources_are_clean) {
  // The ctest lint_basched_src gate runs this same invocation from CMake;
  // duplicating it here keeps `ctest -R lint` meaningful even when filtered
  // to the gtest binary alone.
  const LintRun r = run_lint(std::string(BASCHED_SOURCE_DIR) + "/src");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find(" 0 violation(s),"), std::string::npos) << r.out;
}

}  // namespace
