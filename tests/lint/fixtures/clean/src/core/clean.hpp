// Fixture: a clean, self-contained header.
#pragma once

#include <string>

std::string describe();
inline double expand(double x) { return x + 1.0; }
