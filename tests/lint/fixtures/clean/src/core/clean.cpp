// Fixture: a fully clean file. Mentions of std::exp in comments and
// "std::cout" or "rand()" inside string literals must not be reported — the
// scanner strips comments and literals before matching.
#include <string>

#include "clean.hpp"

std::string describe() {
  return "never call std::exp, rand() or std::cout from here";
}

double twice(double x) { return expand(x) + expand(x); }  // expand != exp
