// Fixture: std::random_device outside util/rng must trip raw-rng (line 5).
#include <random>

unsigned noisy_seed() {
  std::random_device rd;
  return rd();
}
