// Fixture: raw-rng suppressed with a justification on the same line.
#include <cstdlib>

int jitter() {
  return std::rand();  // basched-lint: allow(raw-rng) fixture for same-line suppression
}
