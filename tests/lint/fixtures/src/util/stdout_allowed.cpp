// Fixture: fprintf(stderr, ...) suppressed with a justification.
#include <cstdio>

void moan(const char* what) {
  // basched-lint: allow(stdout-write) fixture mirrors the assert.hpp abort path
  std::fprintf(stderr, "%s\n", what);
}
