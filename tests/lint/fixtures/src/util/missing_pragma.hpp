// Fixture: a header without #pragma once must trip pragma-once (reported at
// line 1).
inline int answer() { return 42; }
