// Fixture: an allow() without a justification is itself a violation
// (allow-without-reason, line 6) and does NOT suppress the underlying
// finding (stdout-write, line 7).
#include <cstdio>

// basched-lint: allow(stdout-write)
void shout() { std::printf("hi\n"); }
