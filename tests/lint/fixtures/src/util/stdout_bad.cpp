// Fixture: std::cout inside the library must trip stdout-write (line 5).
#include <iostream>

void report(int n) {
  std::cout << n << "\n";
}
