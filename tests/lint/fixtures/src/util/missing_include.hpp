// Fixture: uses std::vector (line 6) without including <vector> — must trip
// include-direct. <cstddef> covers the std::size_t use.
#pragma once
#include <cstddef>

inline std::size_t width(const std::vector<int>& v) { return v.size(); }
