// Fixture: the same raw std::exp, suppressed by an allow() with a reason.
#include <cmath>

double decay(double x) {
  // basched-lint: allow(raw-exp) fixture demonstrates a justified suppression
  return std::exp(-x);
}
