// Fixture: raw std::exp in a core/ path must trip raw-exp (line 5).
#include <cmath>

double decay(double x) {
  return std::exp(-x);
}
