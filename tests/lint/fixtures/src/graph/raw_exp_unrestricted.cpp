// Fixture: raw-exp is scoped to core/, battery/ and baselines/ — a std::exp
// in graph/ is legal and must NOT be reported.
#include <cmath>

double weight(double x) {
  return std::exp(-x) + std::pow(x, 2.0);
}
