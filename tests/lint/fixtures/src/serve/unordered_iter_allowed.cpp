// Fixture: the same unordered iteration, allowed because the reduction is
// order-independent (commutative sum would still be wrong for floats — this
// is a fixture, not an endorsement).
#include <string>
#include <unordered_map>

std::size_t count(const std::unordered_map<std::string, double>& weights) {
  std::size_t n = 0;
  // basched-lint: allow(unordered-iter) order-independent size count, no output depends on order
  for (const auto& entry : weights) n += entry.second > 0.0 ? 1 : 0;
  return n;
}
