// Fixture: raw-socket suppressed with a justification on the line above.
#include <sys/socket.h>

long probe(int fd) {
  char c = 0;
  // basched-lint: allow(raw-socket) fixture for line-above suppression
  return ::recv(fd, &c, 1, MSG_PEEK);
}
