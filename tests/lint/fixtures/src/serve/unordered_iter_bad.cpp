// Fixture: iterating a std::unordered_map (range-for on line 8) feeds an
// output path in nondeterministic order — must trip unordered-iter.
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& entry : weights) sum += entry.second;
  return sum;
}
