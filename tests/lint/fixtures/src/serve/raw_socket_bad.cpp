// Fixture: a bare ::send outside serve/socket_io must trip raw-socket
// (line 6); the wrapper names (send_all, recv_some) must not.
#include <sys/socket.h>

long leak_bytes(int fd, const char* data, unsigned len) {
  return ::send(fd, data, len, 0);
}
