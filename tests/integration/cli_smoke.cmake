# End-to-end smoke test for the baschedule CLI:
#   generate -> schedule -> evaluate -> dot
# Run via: cmake -DBASCHEDULE=<exe> -DWORK_DIR=<dir> -P cli_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step name)
  execute_process(
    COMMAND ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name} failed (rc=${rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_out "${out}" PARENT_SCOPE)
endfunction()

run_step(generate "${BASCHEDULE}" generate --family layered --tasks 9
  --points 4 --seed 7 --out "${WORK_DIR}/graph.txt")
if(NOT EXISTS "${WORK_DIR}/graph.txt")
  message(FATAL_ERROR "generate produced no graph file")
endif()

run_step(schedule "${BASCHEDULE}" schedule --graph "${WORK_DIR}/graph.txt"
  --deadline 100 --algorithm ours --out "${WORK_DIR}/schedule.txt"
  --csv "${WORK_DIR}/profile.csv")
if(NOT EXISTS "${WORK_DIR}/schedule.txt")
  message(FATAL_ERROR "schedule produced no schedule file")
endif()
if(NOT EXISTS "${WORK_DIR}/profile.csv")
  message(FATAL_ERROR "schedule produced no profile CSV")
endif()

run_step(evaluate "${BASCHEDULE}" evaluate --graph "${WORK_DIR}/graph.txt"
  --schedule "${WORK_DIR}/schedule.txt" --alpha 40000)
foreach(needle "tasks" "duration" "sigma")
  if(NOT evaluate_out MATCHES "${needle}")
    message(FATAL_ERROR "evaluate output missing '${needle}':\n${evaluate_out}")
  endif()
endforeach()

run_step(dot "${BASCHEDULE}" dot --graph "${WORK_DIR}/graph.txt"
  --out "${WORK_DIR}/graph.dot")
file(READ "${WORK_DIR}/graph.dot" dot_content)
if(NOT dot_content MATCHES "digraph")
  message(FATAL_ERROR "dot output is not a DOT digraph:\n${dot_content}")
endif()

message(STATUS "cli_smoke: all pipeline stages passed")
