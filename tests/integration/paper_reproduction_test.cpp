/// Guards the paper-level reproduction claims (Tables 2–4 *shape*, not exact
/// values — the pseudocode's ambiguities make bit-exact sequences
/// unreachable; see DESIGN.md §5.3). EXPERIMENTS.md records the measured
/// numbers next to the paper's.
#include <gtest/gtest.h>

#include "basched/analysis/experiment.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/bounds.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched {
namespace {

const battery::RakhmatovVrudhulaModel kModel(graph::kPaperBeta);

core::IterativeResult g3_example() {
  return core::schedule_battery_aware(graph::make_g3(), graph::kG3ExampleDeadline, kModel);
}

TEST(PaperTable3, FourWindowsEvaluatedInFirstIteration) {
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_EQ(r.iterations.front().windows.windows.size(), 4u);  // Win 4:5 … 1:5
}

TEST(PaperTable3, SigmaInPaperBallpark) {
  // Paper: first-iteration minimum 16353 mA·min, final 13737 mA·min. Our
  // faithful-but-not-bit-exact implementation must land in the same regime
  // (the all-DP5 energy floor is ~4500, all-DP4 ~16000, so this band is
  // discriminative).
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.sigma, 8000.0);
  EXPECT_LT(r.sigma, 20000.0);
}

TEST(PaperTable3, DurationNearlyFillsDeadline) {
  // Paper durations: 228.3–229.8 of a 230-minute deadline.
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.duration, 230.0 + 1e-6);
  EXPECT_GT(r.duration, 200.0);  // the slack is nearly exhausted
}

TEST(PaperTable3, IterationsImproveThenTerminate) {
  // Paper: 16353 → 14725 → 13737 → 13737 (stop). Shape: monotone improvement
  // followed by a non-improving final iteration, a handful of iterations
  // total.
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.iterations.size(), 2u);
  EXPECT_LE(r.iterations.size(), 10u);
  EXPECT_LE(r.sigma, r.iterations.front().best_sigma);
}

TEST(PaperTable4, OursBeatsRvDpWhereThePaperSaysItDoes) {
  // Table 4 reports our algorithm ahead of [1] on all six (graph, deadline)
  // cells, by 0.9%–65%. Require: never more than marginally worse anywhere,
  // and strictly better on the loose-deadline cells where the paper's gap is
  // largest (G3 d=230: 65%, G3 d=150: 16.4%, G2 d=55: 15.6%).
  const auto g2 = graph::make_g2();
  const auto g3 = graph::make_g3();
  const auto rows2 = analysis::run_comparisons(
      g2, "G2", {graph::kG2Deadlines.begin(), graph::kG2Deadlines.end()}, graph::kPaperBeta);
  const auto rows3 = analysis::run_comparisons(
      g3, "G3", {graph::kG3Deadlines.begin(), graph::kG3Deadlines.end()}, graph::kPaperBeta);

  int wins = 0, cells = 0;
  for (const auto& rows : {rows2, rows3}) {
    for (const auto& row : rows) {
      ASSERT_TRUE(row.ours_feasible) << row.name << " d=" << row.deadline;
      ASSERT_TRUE(row.baseline_feasible) << row.name << " d=" << row.deadline;
      ++cells;
      if (row.ours_sigma <= row.baseline_sigma) ++wins;
      EXPECT_LE(row.ours_sigma, row.baseline_sigma * 1.10)
          << row.name << " d=" << row.deadline;
    }
  }
  EXPECT_EQ(cells, 6);
  EXPECT_GE(wins, 4);
  // The loosest G3 deadline is the paper's headline cell (65% gap).
  EXPECT_LT(rows3.back().ours_sigma, rows3.back().baseline_sigma);
}

TEST(PaperTable4, BatteryUseDecreasesWithDeadline) {
  // "Notice that as the deadline increases the amount of battery capacity
  // used decreases."
  const auto g2 = graph::make_g2();
  const auto rows = analysis::run_comparisons(
      g2, "G2", {graph::kG2Deadlines.begin(), graph::kG2Deadlines.end()}, graph::kPaperBeta);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[0].ours_sigma, rows[1].ours_sigma);
  EXPECT_GT(rows[1].ours_sigma, rows[2].ours_sigma);
  EXPECT_GT(rows[0].baseline_sigma, rows[1].baseline_sigma);
  EXPECT_GT(rows[1].baseline_sigma, rows[2].baseline_sigma);
}

TEST(PaperSection3, OrderingBoundsHoldOnG3Loads) {
  // §3: non-increasing current order is the best sequence for independent
  // tasks, non-decreasing the worst — applied to G3's chosen loads.
  const auto g = graph::make_g3();
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  const auto b = core::sigma_bounds(g, r.schedule.assignment, kModel);
  EXPECT_GE(r.sigma, b.lower - 1e-6);
  EXPECT_LE(r.sigma, b.upper + 1e-6);
}

TEST(PaperExample, FirstIterationSequenceStartsWithT1) {
  // Every Table 2 sequence begins with T1 (the only source) and ends with
  // T15 (the only sink).
  const auto g = graph::make_g3();
  const auto r = g3_example();
  for (const auto& rec : r.iterations) {
    EXPECT_EQ(g.task(rec.sequence.front()).name(), "T1");
    EXPECT_EQ(g.task(rec.sequence.back()).name(), "T15");
  }
}

TEST(PaperExample, LastTaskAssignedLowestPowerDesignPoint) {
  // Table 2: T15 is at P5 in every iteration (the paper pins the last task).
  const auto g = graph::make_g3();
  const auto r = g3_example();
  ASSERT_TRUE(r.feasible);
  const auto t15 = g.task_by_name("T15");
  EXPECT_EQ(r.schedule.assignment[t15], 4u);
}

}  // namespace
}  // namespace basched
