/// Round-trip fuzzing: every generated graph and every produced schedule
/// must survive serialize → parse → serialize unchanged.
#include <gtest/gtest.h>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/schedule_io.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/io.hpp"
#include "basched/util/rng.hpp"

namespace basched {
namespace {

graph::TaskGraph random_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 2 + seed % 4;
  switch (seed % 5) {
    case 0:
      return graph::make_chain(1 + seed % 12, synth, rng);
    case 1:
      return graph::make_independent(1 + seed % 8, synth, rng);
    case 2:
      return graph::make_fork_join(1 + seed % 3, 3, synth, rng);
    case 3:
      return graph::make_layered_random(2 + seed % 4, 3, 0.4, synth, rng);
    default:
      return graph::make_series_parallel(2 + seed % 10, synth, rng);
  }
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, GraphSerializationIsIdempotent) {
  const auto g = random_graph(GetParam());
  const std::string once = graph::serialize(g);
  const std::string twice = graph::serialize(graph::parse(once));
  EXPECT_EQ(once, twice);
}

TEST_P(RoundTrip, ParsedGraphIsStructurallyIdentical) {
  const auto g = random_graph(GetParam() ^ 0xAAULL);
  const auto p = graph::parse(graph::serialize(g));
  ASSERT_EQ(p.num_tasks(), g.num_tasks());
  EXPECT_EQ(p.num_edges(), g.num_edges());
  EXPECT_EQ(p.num_design_points(), g.num_design_points());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(p.task(v).name(), g.task(v).name());
    for (std::size_t j = 0; j < g.num_design_points(); ++j) {
      EXPECT_DOUBLE_EQ(p.task(v).point(j).current, g.task(v).point(j).current);
      EXPECT_DOUBLE_EQ(p.task(v).point(j).duration, g.task(v).point(j).duration);
    }
    for (graph::TaskId w = 0; w < g.num_tasks(); ++w)
      EXPECT_EQ(p.has_edge(v, w), g.has_edge(v, w));
  }
}

TEST_P(RoundTrip, ScheduleSerializationIsExact) {
  const auto g = random_graph(GetParam() ^ 0xBBULL);
  const std::size_t m = g.num_design_points();
  const double d = g.column_time(0) + 0.6 * (g.column_time(m - 1) - g.column_time(0));
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto r = core::schedule_battery_aware(g, d, model);
  if (!r.feasible) return;  // tight random instance; nothing to round-trip
  const core::Schedule parsed =
      core::parse_schedule(g, core::serialize_schedule(g, r.schedule));
  EXPECT_EQ(parsed.sequence, r.schedule.sequence);
  EXPECT_EQ(parsed.assignment, r.schedule.assignment);
}

TEST_P(RoundTrip, ScheduleSurvivesGraphRoundTrip) {
  // Serialize both graph and schedule, parse both back, and check the
  // schedule still validates and costs the same.
  const auto g = random_graph(GetParam() ^ 0xCCULL);
  const std::size_t m = g.num_design_points();
  const double d = g.column_time(0) + 0.7 * (g.column_time(m - 1) - g.column_time(0));
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto r = core::schedule_battery_aware(g, d, model);
  if (!r.feasible) return;
  const auto g2 = graph::parse(graph::serialize(g));
  const auto s2 = core::parse_schedule(g2, core::serialize_schedule(g, r.schedule));
  EXPECT_NEAR(model.charge_lost_at_end(s2.to_profile(g2)), r.sigma, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace basched
